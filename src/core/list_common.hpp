// Shared pieces of the two linked-list implementations.
#pragma once

#include <functional>

#include "common/stable_atomic.hpp"
#include "core/marked_ptr.hpp"
#include "smr/reclaim_node.hpp"

namespace scot {

// Node layout shared by Harris' and Harris-Michael lists.  The list is
// terminated by a tail sentinel (`rank == 1`, conceptually key == +inf) that
// is never deleted, which lets Do_Find avoid null-successor special cases —
// this mirrors the paper's Figure 3, where Init() installs a single sentinel
// whose key compares greater than every real key.
//
// The link word is a StableAtomic: the pool recycles nodes while stale
// optimistic readers may still protect() through them, so re-initialising
// `next` must be an atomic store, not a plain constructor write
// (DESIGN.md §4).
template <class Key, class Value>
struct ListNode : ReclaimNode {
  Key key;
  Value value;
  std::uint8_t rank;  // 0 = real key, 1 = +infinity tail sentinel
  StableAtomic<marked_ptr<ListNode>> next;

  ListNode(const Key& k, const Value& v, std::uint8_t r)
      : key(k), value(v), rank(r), next(marked_ptr<ListNode>{}) {}
};

// Rank-aware comparisons: the tail sentinel is greater than everything.
template <class Node, class Key, class Compare>
inline bool node_less_than_key(const Node* n, const Key& key,
                               const Compare& cmp) {
  return n->rank == 0 && cmp(n->key, key);
}

template <class Node, class Key, class Compare>
inline bool node_equals_key(const Node* n, const Key& key,
                            const Compare& cmp) {
  return n->rank == 0 && !cmp(n->key, key) && !cmp(key, n->key);
}

}  // namespace scot
