// Concurrent begin_op/protect/retire/scan hammer for every reclaiming
// scheme, run with asymmetric fences ON and OFF against the same seed.  The
// writer continuously swaps out and retires nodes while readers open an
// operation per access — so the era schemes' *activation* publication
// (EBR's epoch reservation, IBR's interval, Hyaline's slot head) is
// hammered as hard as the slot schemes' protect() — and then hold the
// resulting protection; a reservation the (asymmetric) reclaimer side
// fails to observe lets the pool recycle a node a reader still
// dereferences, which the paired-payload check catches — and which TSan
// reports as a plain-write/plain-read race, making the TSan CI dimension
// (SCOT_ASYM=0/1) a second checker.
//
// Two churner threads additionally join and leave the handle registry in a
// tight loop (scoped_handle per iteration, occasionally leaving with a
// pending retire), so registry membership changes race the scans' heavy
// barriers and the late-joiner / orphan-adoption arguments of DESIGN.md §7
// are exercised under both fence disciplines.
#include <gtest/gtest.h>

#include <atomic>

#include "common/xorshift.hpp"
#include "tests/test_util.hpp"

namespace scot {
namespace {

struct StressNode : ReclaimNode {
  std::uint64_t tag1;
  std::uint64_t tag2;
  explicit StressNode(std::uint64_t t) : tag1(t), tag2(t) {}
};

constexpr unsigned kSources = 8;
constexpr unsigned kReaders = 3;
constexpr unsigned kChurners = 2;

template <class Smr>
class AsymStressTest : public ::testing::Test {};

// Slot schemes (protect-side publication) plus the era schemes
// (activation-side publication); NR is omitted — it never reclaims, so the
// recycle-detection invariant is vacuous there.
using AsymSchemes = ::testing::Types<HpDomain, HpOptDomain, HeDomain,
                                     IbrDomain, EbrDomain, HyalineDomain>;
TYPED_TEST_SUITE(AsymStressTest, AsymSchemes);

template <class Smr>
void hammer(bool asym, std::uint64_t seed) {
  SmrConfig cfg = scot::test::small_config(kReaders + 1);
  cfg.asymmetric_fences = asym;
  Smr smr(cfg);

  std::vector<std::atomic<ReclaimNode*>> src(kSources);
  {
    auto w = scoped_handle(smr);
    for (unsigned i = 0; i < kSources; ++i)
      src[i].store(w->template alloc<StressNode>(std::uint64_t{i}),
                   std::memory_order_release);
  }

  const int writes = scot::test::scaled_iters(20000);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  scot::test::run_threads(kReaders + 1 + kChurners, [&](unsigned tid) {
    if (tid >= kReaders + 1) {
      // Churner: joins and leaves the registry in a tight loop while the
      // writer's asymmetric-fence scans are walking it — every iteration
      // interleaves a head push / record claim / release with concurrent
      // heavy-barrier snapshots, plus one protected read so a just-joined
      // record's first reservation is exercised immediately.
      Xoshiro256 rng(seed * 0x7f4a7c15 + tid);
      while (!stop.load(std::memory_order_acquire)) {
        auto h = scoped_handle(smr);
        const unsigned s = static_cast<unsigned>(rng.next_in(kSources));
        h->begin_op();
        ReclaimNode* p = h->protect(src[s], 0);
        if (!h->op_valid()) {
          h->revalidate_op();
        } else if (p != nullptr) {
          const auto* n = static_cast<const StressNode*>(p);
          const std::uint64_t a = n->tag1;
          const std::uint64_t b = n->tag2;
          if (a != b) torn.fetch_add(1, std::memory_order_relaxed);
        }
        h->end_op();
        // Leave mid-workload with a pending retire every few laps, so the
        // orphan donate/adopt path runs under the same fence discipline.
        if (rng.next_in(4) == 0) {
          auto* extra = h->template alloc<StressNode>(0x200000000ULL + tid);
          h->retire(extra);
        }
      }
      return;
    }
    auto sh = scoped_handle(smr);
    auto& h = sh.get();
    Xoshiro256 rng(seed * 0x2545f491 + tid);
    if (tid == kReaders) {
      // Writer: swap a source to a fresh uniquely-tagged node, retire the
      // old one (driving scans at the small_config threshold).
      for (int i = 0; i < writes; ++i) {
        const unsigned s = static_cast<unsigned>(rng.next_in(kSources));
        auto* n = h.template alloc<StressNode>(
            0x100000000ULL + static_cast<std::uint64_t>(i));
        ReclaimNode* old = src[s].exchange(n, std::memory_order_acq_rel);
        h.retire(old);
      }
      stop.store(true, std::memory_order_release);
      return;
    }
    // Reader: a fresh operation per access (activation is on the hot
    // path), protect, then check the paired payload.  While the
    // reservation is held the node must not be recycled, so the two tags
    // must match; a recycle in flight tears them (and trips TSan).
    // Restart-flag schemes (Hyaline) may invalidate the operation instead
    // of protecting — honour the contract and skip the dereference.
    while (!stop.load(std::memory_order_acquire)) {
      const unsigned s = static_cast<unsigned>(rng.next_in(kSources));
      h.begin_op();
      ReclaimNode* p = h.protect(src[s], 0);
      if (!h.op_valid()) {
        h.revalidate_op();
      } else if (p != nullptr) {
        const auto* n = static_cast<const StressNode*>(p);
        const std::uint64_t a = n->tag1;
        const std::uint64_t b = n->tag2;
        if (a != b) torn.fetch_add(1, std::memory_order_relaxed);
      }
      h.end_op();
    }
  });

  EXPECT_EQ(torn.load(), 0u)
      << "a protected node was recycled under "
      << (asym ? "asymmetric" : "classic") << " fences";
}

TYPED_TEST(AsymStressTest, ProtectRetireScanAsymmetric) {
  hammer<TypeParam>(/*asym=*/true, /*seed=*/0xA5A5);
}

TYPED_TEST(AsymStressTest, ProtectRetireScanClassic) {
  hammer<TypeParam>(/*asym=*/false, /*seed=*/0xA5A5);
}

}  // namespace
}  // namespace scot
