// Michael's CAS-based lock-free deque (PODC 2003), adapted for portable
// single-word CAS and SMR compatibility via *anchor indirection*.
//
// The original algorithm packs {left, right, status} into one double-width
// anchor word and mutates it with DCAS-width CAS.  Here the anchor is an
// immutable heap object behind a single CAS-able pointer: every transition
// allocates a fresh Anchor, installs it with one pointer CAS, and retires
// the old one through the SMR domain like any node.  That keeps the
// algorithm's linearization structure byte-for-byte (each anchor CAS is one
// of Michael's anchor transitions) while staying on portable 64-bit CAS —
// and it makes the anchor itself subject to the paper's discipline, which
// is the interesting part: *two* object kinds now flow through retire().
//
// Recovery discipline (DESIGN.md §11): the anchor is the traversal; restart
// means re-protect it.  Nodes hanging off a protected anchor are protected
// by publish-then-validate — publish the node's address, then re-check
// `anchor_ == A`: while A is installed no node reachable from it has been
// retired (pops replace the anchor *before* retiring), so a successful
// validation proves the published node was unretired at the validation
// point and the hazard store precedes any future scan.  Interval schemes
// (IBR) make publish() a no-op and rely on the reservation instead; that
// still covers every node reachable from a protected anchor (its birth
// predates the anchor's install, which the reservation covers) but NOT a
// node this thread allocated mid-operation — self-allocated objects must
// be re-acquired with protect(), never publish-then-validate (see the
// own-stabilization path in push()).  The recovery
// escape is stabilization helping: an operation that meets a non-STABLE
// anchor fixes the neighbor link and installs the STABLE twin instead of
// spinning, counted in ds_recoveries.
//
// Protection roles (ascending slot order): hp.anchor = the anchor snapshot,
// hp.node = the end node being pushed over / popped, hp.prev = its inward
// neighbor (stabilization only).
//
// ABA safety: anchors are freshly allocated per transition and never
// re-installed, and a protected anchor cannot be recycled by the pool, so
// `anchor_ == A` with A protected always means "still the same
// installation".
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>

#include "common/align.hpp"
#include "common/stable_atomic.hpp"
#include "core/marked_ptr.hpp"
#include "smr/handle_registry.hpp"
#include "smr/reclaim_node.hpp"
#include "smr/smr.hpp"

namespace scot {

template <class T, SmrDomainV2 Smr>
class Deque {
 public:
  enum class Status : std::uint8_t { kStable, kRPush, kLPush };

  struct Node;
  using MP = marked_ptr<Node>;
  using Link = StableAtomic<MP>;

  struct Node : ReclaimNode {
    T value;
    Link left, right;
    explicit Node(const T& v = {}) : value(v), left(MP{}), right(MP{}) {}
  };

  // Immutable after its publishing CAS: all three fields are written before
  // the install and never mutated, so plain reads through a protected,
  // validated anchor pointer are race-free.
  struct Anchor : ReclaimNode {
    Node* left;
    Node* right;
    Status status;
    Anchor(Node* l, Node* r, Status s) : left(l), right(r), status(s) {}
  };

  using AMP = marked_ptr<Anchor>;
  using ALink = StableAtomic<AMP>;
  using Handle = typename Smr::Handle;
  using Guard = TraversalGuard<Handle>;
  using AnchorSlot = ProtectionSlot<Handle, Anchor>;
  using NodeSlot = ProtectionSlot<Handle, Node>;

  static constexpr unsigned kSlotsRequired = 3;

  // Slot roles in index (= ascending-dup) order.
  struct Hp {
    AnchorSlot anchor;
    NodeSlot node, prev;
    explicit Hp(Guard& g)
        : anchor(g.template slot<Anchor>()),
          node(g.template slot<Node>()),
          prev(g.template slot<Node>()) {}
  };

  explicit Deque(Smr& smr) : smr_(smr) {
    auto h = scoped_handle(smr_);
    Anchor* a = h->template alloc<Anchor>(nullptr, nullptr, Status::kStable);
    anchor_.store(AMP(a), std::memory_order_release);
  }

  ~Deque() {
    // Single-threaded teardown.  A quiescent anchor is almost always
    // STABLE; if the last operation's stabilization lost its final CAS to
    // a stale helper, complete the link fix here so the right-link walk
    // below covers every node.
    auto sh = scoped_handle(smr_);
    auto& h = sh.get();
    Anchor* A = anchor_.load(std::memory_order_relaxed).ptr();
    if (A->status == Status::kRPush) {
      Node* r = A->right;
      r->left.load(std::memory_order_relaxed)
          .ptr()
          ->right.store(MP(r), std::memory_order_relaxed);
    } else if (A->status == Status::kLPush) {
      Node* l = A->left;
      l->right.load(std::memory_order_relaxed)
          .ptr()
          ->left.store(MP(l), std::memory_order_relaxed);
    }
    Node* n = A->left;
    Node* const last = A->right;
    while (n != nullptr) {
      Node* next = n == last
                       ? nullptr
                       : n->right.load(std::memory_order_relaxed).ptr();
      h.dealloc_unpublished(n);
      n = next;
    }
    h.dealloc_unpublished(A);
  }

  Deque(const Deque&) = delete;
  Deque& operator=(const Deque&) = delete;

  void push_right(Handle& h, const T& value) { push<false>(h, value); }
  void push_left(Handle& h, const T& value) { push<true>(h, value); }
  std::optional<T> pop_right(Handle& h) { return pop<false>(h); }
  std::optional<T> pop_left(Handle& h) { return pop<true>(h); }

  // Single-threaded size (tests / teardown only).  Walks the link chain
  // whose final fix cannot be pending: the right-link chain is complete
  // unless the anchor is mid-RPUSH, the left-link chain unless mid-LPUSH.
  std::size_t size_unsafe() const {
    const Anchor* A = anchor_.load(std::memory_order_acquire).ptr();
    if (A->right == nullptr) return 0;
    std::size_t n = 1;
    if (A->status == Status::kRPush) {
      for (const Node* c = A->right; c != A->left;
           c = c->left.load(std::memory_order_acquire).ptr())
        ++n;
    } else {
      for (const Node* c = A->left; c != A->right;
           c = c->right.load(std::memory_order_acquire).ptr())
        ++n;
    }
    return n;
  }

 private:
  // Mirrored accessors so one template body serves both ends.  `Inward`
  // is the direction from the operated end toward the middle.
  template <bool Left>
  static Node* end_of(const Anchor* a) {
    return Left ? a->left : a->right;
  }
  template <bool Left>
  static Node* other_end_of(const Anchor* a) {
    return Left ? a->right : a->left;
  }
  template <bool Left>
  static Link& inward(Node* n) {  // link from the end node toward the middle
    return Left ? n->right : n->left;
  }
  template <bool Left>
  static Link& outward(Node* n) {  // link from the neighbor toward the end
    return Left ? n->left : n->right;
  }
  template <bool Left>
  Anchor* make_anchor(Handle& h, Node* end, Node* other, Status s) {
    return Left ? h.template alloc<Anchor>(end, other, s)
                : h.template alloc<Anchor>(other, end, s);
  }
  template <bool Left>
  static constexpr Status push_status() {
    return Left ? Status::kLPush : Status::kRPush;
  }

  template <bool Left>
  void push(Handle& h, const T& value) {
    Guard guard(h);
    Hp hp(guard);
    Node* n = h.template alloc<Node>(value);
    for (;;) {
      Protected<Anchor> a = hp.anchor.protect(anchor_);
      if (!guard.valid()) {
        restart(guard);
        continue;
      }
      Anchor* A = a.get();
      if (A->right == nullptr) {  // empty: both ends become n, already stable
        n->left.store(MP{}, std::memory_order_relaxed);
        n->right.store(MP{}, std::memory_order_relaxed);
        Anchor* na = h.template alloc<Anchor>(n, n, Status::kStable);
        AMP expected(A);
        if (anchor_.compare_exchange_strong(expected, AMP(na),
                                            std::memory_order_seq_cst,
                                            std::memory_order_relaxed)) {
          h.retire(A);
          return;
        }
        h.dealloc_unpublished(na);
        restart(guard);
      } else if (A->status == Status::kStable) {
        Node* end = end_of<Left>(A);
        hp.node.publish(end);
        if (anchor_.load(std::memory_order_seq_cst) != AMP(A) ||
            !guard.valid()) {
          restart(guard);
          continue;
        }
        // n's inward link is final before the install; the neighbor's
        // outward link is what stabilization fixes afterwards.
        inward<Left>(n).store(MP(end), std::memory_order_relaxed);
        outward<Left>(n).store(MP{}, std::memory_order_relaxed);
        Anchor* na =
            make_anchor<Left>(h, n, other_end_of<Left>(A), push_status<Left>());
        AMP expected(A);
        if (anchor_.compare_exchange_strong(expected, AMP(na),
                                            std::memory_order_seq_cst,
                                            std::memory_order_relaxed)) {
          h.retire(A);
          // Our own stabilization, not a help.  Re-protect through
          // protect(), NOT publish-then-validate: na is self-allocated,
          // so its birth era can exceed an interval scheme's reserved
          // upper bound — a no-op publish() plus a successful anchor
          // re-read would NOT protect it (IBR).  protect() bumps the
          // reservation to the era of the load, which covers na's birth.
          Protected<Anchor> pa = hp.anchor.protect(anchor_);
          if (pa.get() == na && guard.valid()) {
            stabilize_end<Left>(guard, hp, na);
          }
          return;
        }
        h.dealloc_unpublished(na);
        restart(guard);
      } else {
        help_stabilize(guard, hp, A);
      }
    }
  }

  template <bool Left>
  std::optional<T> pop(Handle& h) {
    Guard guard(h);
    Hp hp(guard);
    for (;;) {
      Protected<Anchor> a = hp.anchor.protect(anchor_);
      if (!guard.valid()) {
        restart(guard);
        continue;
      }
      Anchor* A = a.get();
      if (A->right == nullptr) return std::nullopt;  // empty
      if (A->right == A->left) {
        // Single node; single-node anchors are STABLE by construction.
        Node* end = A->right;
        hp.node.publish(end);
        if (anchor_.load(std::memory_order_seq_cst) != AMP(A) ||
            !guard.valid()) {
          restart(guard);
          continue;
        }
        Anchor* na =
            h.template alloc<Anchor>(nullptr, nullptr, Status::kStable);
        AMP expected(A);
        if (anchor_.compare_exchange_strong(expected, AMP(na),
                                            std::memory_order_seq_cst,
                                            std::memory_order_relaxed)) {
          T value = end->value;  // end is published + validated above
          h.retire(A);
          h.retire(end);
          return value;
        }
        h.dealloc_unpublished(na);
        restart(guard);
      } else if (A->status == Status::kStable) {
        Node* end = end_of<Left>(A);
        hp.node.publish(end);
        if (anchor_.load(std::memory_order_seq_cst) != AMP(A) ||
            !guard.valid()) {
          restart(guard);
          continue;
        }
        Node* neighbor = inward<Left>(end).load(std::memory_order_seq_cst).ptr();
        // Re-validate: neighbor must be the value consistent with A (a
        // later round could have rewritten end's inward link after A was
        // replaced).  end stays dereferenceable either way — it is
        // published — but the anchor we build from neighbor must not be.
        if (anchor_.load(std::memory_order_seq_cst) != AMP(A)) {
          restart(guard);
          continue;
        }
        Anchor* na =
            make_anchor<Left>(h, neighbor, other_end_of<Left>(A),
                              Status::kStable);
        AMP expected(A);
        if (anchor_.compare_exchange_strong(expected, AMP(na),
                                            std::memory_order_seq_cst,
                                            std::memory_order_relaxed)) {
          T value = end->value;
          h.retire(A);
          h.retire(end);
          return value;
        }
        h.dealloc_unpublished(na);
        restart(guard);
      } else {
        help_stabilize(guard, hp, A);
      }
    }
  }

  // Help path for an operation that met a non-STABLE anchor: the recovery
  // escape (the protected snapshot is reused to finish someone else's
  // stabilization instead of spinning on the anchor).
  void help_stabilize(Guard& g, Hp& hp, Anchor* A) {
    ++g.handle().ds_recoveries;
    if (A->status == Status::kRPush) {
      stabilize_end<false>(g, hp, A);
    } else {
      stabilize_end<true>(g, hp, A);
    }
  }

  // Completes a push's second phase for the anchor A (protected in
  // hp.anchor, status == push_status<Left>()): fix the neighbor's outward
  // link to point at the new end node, then install A's STABLE twin.
  // Every early return is safe: it fires only when the anchor has already
  // moved on, or when another thread is provably past this point and will
  // install the twin (or a future operation's help pass will).
  template <bool Left>
  void stabilize_end(Guard& g, Hp& hp, Anchor* A) {
    Handle& h = g.handle();
    Node* end = end_of<Left>(A);
    hp.node.publish(end);
    if (anchor_.load(std::memory_order_seq_cst) != AMP(A) || !g.valid())
      return;  // already stabilized
    // Non-null: a push-status anchor is only ever installed over a
    // non-empty deque, and the end's inward link was set pre-install.
    Node* neighbor = inward<Left>(end).load(std::memory_order_seq_cst).ptr();
    assert(neighbor != nullptr);
    hp.prev.publish(neighbor);
    if (anchor_.load(std::memory_order_seq_cst) != AMP(A) || !g.valid())
      return;
    MP out = outward<Left>(neighbor).load(std::memory_order_seq_cst);
    if (out.ptr() != end) {
      if (anchor_.load(std::memory_order_seq_cst) != AMP(A)) return;
      if (!outward<Left>(neighbor).compare_exchange_strong(
              out, MP(end), std::memory_order_seq_cst,
              std::memory_order_relaxed)) {
        return;  // another helper fixed it and proceeds to the twin CAS
      }
    }
    Anchor* na = make_anchor<Left>(h, end, other_end_of<Left>(A),
                                   Status::kStable);
    AMP expected(A);
    if (anchor_.compare_exchange_strong(expected, AMP(na),
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
      h.retire(A);
    } else {
      h.dealloc_unpublished(na);
    }
  }

  void restart(Guard& g) {
    ++g.handle().ds_restarts;
    g.revalidate();
  }

  alignas(kCacheLine) ALink anchor_{AMP{}};
  Smr& smr_;
};

}  // namespace scot
