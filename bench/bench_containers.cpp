// Scheme × container grid: MSQueue, TreiberStack, and the Michael deque
// under all 7 reclamation schemes (ROADMAP "Beyond maps"; DESIGN.md §11).
// Two workloads per container:
//   mixed  — every worker rolls 50% push / 50% pop per op (the container
//            analogue of the paper's headline write-heavy mix)
//   split  — even workers are pure producers, odd workers pure consumers
//            (the queue's natural serving shape; skipped at 1 thread where
//            it degenerates to the mixed roll)
// Expected shape: the stack's single-CAS top makes it the contention
// ceiling (restarts high, recoveries 0 by construction); the queue's
// help-swing recoveries grow with producers; the deque pays the anchor
// indirection but stays flat across schemes if the guard API is truly
// structure-agnostic — that flatness is what this grid is for.
#include "bench/fig_common.hpp"

namespace {

using namespace scot::bench;

// run_grid() with the container twists: the workload is a push/pop mix
// (read% pinned to 0) and the split flag is forced per grid so one
// invocation emits both workload variants for the CI artifact.
void run_container_grid(const char* title, scot::StructureId structure,
                        std::uint64_t range, int def_ms, bool split) {
  const auto threads = env_threads();
  const int ms = env_ms(def_ms);
  const unsigned runs = env_runs();

  CaseConfig proto;
  proto.structure = structure;
  proto.key_range = range;
  proto.read_pct = 0;  // containers have no read op
  proto.insert_pct = 50;
  proto.delete_pct = 50;
  proto.millis = ms;
  proto.runs = runs;
  proto.sample_memory = true;
  apply_session_flags(proto);
  proto.split_workload = split;

  std::printf("== %s ==\n", title);
  std::printf("   structure=%s prefill=%llu mix=%s ms=%d runs=%u",
              structure_name(structure),
              static_cast<unsigned long long>(range / 2),
              split ? "split producer/consumer" : "50 push / 50 pop", ms,
              runs);
  if (proto.pin_threads) std::printf(" pinned");
  if (!proto.asymmetric_fences) std::printf(" no-asym");
  if (proto.background_reclaim) std::printf(" bg-reclaim");
  std::printf("\n");

  std::vector<std::string> header{"threads"};
  for (scot::SchemeId s : kAllSchemes) header.push_back(scheme_name(s));
  Table t(std::move(header));
  for (unsigned th : threads) {
    if (split && th < 2) continue;  // needs at least one of each role
    std::vector<std::string> row{std::to_string(th)};
    for (scot::SchemeId s : kAllSchemes) {
      CaseConfig cfg = proto;
      cfg.scheme = s;
      cfg.threads = th;
      const CaseResult r = run_case(cfg);
      fig_record(title, cfg, r);
      row.push_back(format_double(r.mops, 2));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("   (Mops/s; higher is better)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  fig_init(argc, argv, "containers");
  std::printf(
      "SCOT reproduction — scheme x container grid (queue/stack/deque)\n\n");
  struct Grid {
    const char* mixed_title;
    const char* split_title;
    scot::StructureId structure;
  };
  constexpr Grid kGrids[] = {
      {"Containers: MS queue, mixed 50/50",
       "Containers: MS queue, split producers/consumers",
       scot::StructureId::kMSQueue},
      {"Containers: Treiber stack, mixed 50/50",
       "Containers: Treiber stack, split producers/consumers",
       scot::StructureId::kTreiberStack},
      {"Containers: Michael deque, mixed 50/50",
       "Containers: Michael deque, split producers/consumers",
       scot::StructureId::kDeque},
  };
  for (const Grid& g : kGrids) {
    run_container_grid(g.mixed_title, g.structure, 2048, 300, false);
    run_container_grid(g.split_title, g.structure, 2048, 300, true);
  }
  return fig_finish();
}
