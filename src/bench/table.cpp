#include "bench/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace scot::bench {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_si(double v) {
  char buf[64];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

}  // namespace scot::bench
