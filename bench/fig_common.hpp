// Shared scaffolding for the figure-reproduction binaries: one table per
// (structure, key range), rows = thread counts, columns = SMR schemes —
// the same series the paper plots.  Every binary funnels through
// fig_init() / fig_record() / fig_finish(), which parse the shared
// optional flags (--json, --seed, --dist, ...) and write the scot-bench
// JSON report when requested.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/options.hpp"
#include "bench/report/report.hpp"
#include "bench/runner.hpp"
#include "bench/table.hpp"

namespace scot::bench {

// Per-binary session: flags parsed once in fig_init(), cells recorded by
// run_grid()/fig_record(), JSON written by fig_finish().
struct FigSession {
  std::string bench;  // binary family tag in the report, e.g. "fig8"
  BenchFlags flags;
  BenchReport report;
};

inline FigSession& fig_session() {
  static FigSession s;
  return s;
}

// Parses the shared optional flags.  Exits 0 on --help, 2 on an unknown or
// malformed flag or on stray positional arguments (the figure binaries
// take none) — never silently ignores input.
inline void fig_init(int argc, char** argv, const char* bench) {
  FigSession& s = fig_session();
  s.bench = bench;
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string error;
  if (!extract_bench_flags(args, s.flags, &error)) {
    std::fprintf(stderr, "%s: %s\nusage: %s %s\n", argv[0], error.c_str(),
                 argv[0], kFlagUsage);
    std::exit(2);
  }
  if (s.flags.help) {
    std::printf("usage: %s %s\n", argv[0], kFlagUsage);
    std::exit(0);
  }
  if (!args.empty()) {
    std::fprintf(stderr, "%s: unexpected argument '%s'\nusage: %s %s\n",
                 argv[0], args.front().c_str(), argv[0], kFlagUsage);
    std::exit(2);
  }
}

// Copies the session flags into a case: seed, key distribution, pinning,
// op budget, and (when --preset was given) the workload mix.
inline void apply_session_flags(CaseConfig& cfg) {
  const BenchFlags& f = fig_session().flags;
  cfg.seed = f.seed;
  cfg.key_dist = f.dist;
  cfg.zipf_theta = f.zipf_theta;
  cfg.pin_threads = f.pin;
  cfg.op_budget = f.op_budget;
  cfg.asymmetric_fences = f.asym;
  cfg.background_reclaim = f.bg;
  cfg.reclaim_interval_us = f.reclaim_interval_us;
  cfg.memory_target = f.memory_target;
  // Serving-layer shape (bench_kv).  --shards is grid state, not case
  // state — bench_kv picks its shard counts before building cases — so
  // only the per-case knobs flow through here.
  cfg.value_size = f.value_size;
  cfg.key_len = f.key_len;
  // Container shape (bench_containers): --split pins producer/consumer
  // roles; the map/kv binaries never read it.
  cfg.split_workload = f.split;
  if (f.preset) {
    cfg.read_pct = f.preset->read_pct;
    cfg.insert_pct = f.preset->insert_pct;
    cfg.delete_pct = f.preset->delete_pct;
  }
}

inline void fig_record(const std::string& label, const CaseConfig& cfg,
                       const CaseResult& result) {
  FigSession& s = fig_session();
  s.report.add(s.bench, label, cfg, result);
}

// Writes the JSON report when --json was given; returns main()'s exit code.
inline int fig_finish() {
  FigSession& s = fig_session();
  if (s.flags.json_path.empty()) return 0;
  std::string error;
  if (!s.report.write_file(s.flags.json_path, &error)) {
    std::fprintf(stderr, "failed to write %s: %s\n",
                 s.flags.json_path.c_str(), error.c_str());
    return 1;
  }
  std::printf("wrote %zu cell(s) to %s\n", s.report.cells().size(),
              s.flags.json_path.c_str());
  return 0;
}

enum class Metric { kThroughputMops, kAvgPending };

struct GridSpec {
  const char* title;
  StructureId structure;
  std::uint64_t key_range;
  Metric metric = Metric::kThroughputMops;
  int read_pct = 50;  // paper headline mix: 50r / 25i / 25d
  int insert_pct = 25;
  int delete_pct = 25;
  bool include_nr = true;  // the paper's memory figures omit NR
};

inline void run_grid(const GridSpec& spec, int def_ms) {
  const auto threads = env_threads();
  const int ms = env_ms(def_ms);
  const unsigned runs = env_runs();

  CaseConfig proto;
  proto.structure = spec.structure;
  proto.key_range = spec.key_range;
  proto.read_pct = spec.read_pct;
  proto.insert_pct = spec.insert_pct;
  proto.delete_pct = spec.delete_pct;
  proto.millis = ms;
  proto.runs = runs;
  proto.sample_memory = spec.metric == Metric::kAvgPending;
  apply_session_flags(proto);

  std::printf("== %s ==\n", spec.title);
  std::printf("   structure=%s range=%llu mix=%d/%d/%d ms=%d runs=%u",
              structure_name(spec.structure),
              static_cast<unsigned long long>(spec.key_range), proto.read_pct,
              proto.insert_pct, proto.delete_pct, ms, runs);
  if (proto.key_dist == KeyDist::kZipfian)
    std::printf(" dist=zipfian(%.2f)", proto.zipf_theta);
  if (proto.pin_threads) std::printf(" pinned");
  if (!proto.asymmetric_fences) std::printf(" no-asym");
  if (proto.background_reclaim) std::printf(" bg-reclaim");
  std::printf("\n");

  std::vector<std::string> header{"threads"};
  std::vector<SchemeId> schemes;
  for (SchemeId s : kAllSchemes) {
    if (!spec.include_nr && s == SchemeId::kNR) continue;
    schemes.push_back(s);
    header.push_back(scheme_name(s));
  }
  Table t(std::move(header));
  for (unsigned th : threads) {
    std::vector<std::string> row{std::to_string(th)};
    for (SchemeId s : schemes) {
      CaseConfig cfg = proto;
      cfg.scheme = s;
      cfg.threads = th;
      const CaseResult r = run_case(cfg);
      fig_record(spec.title, cfg, r);
      row.push_back(spec.metric == Metric::kThroughputMops
                        ? format_double(r.mops, 2)
                        : format_double(r.avg_pending, 0));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("%s\n", spec.metric == Metric::kThroughputMops
                          ? "   (Mops/s; higher is better)"
                          : "   (avg not-yet-reclaimed nodes; lower is "
                            "better; HLN reported via the domain-wide gauge)");
  std::printf("\n");
}

}  // namespace scot::bench
