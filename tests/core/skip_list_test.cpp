// Skip list tests: both the Fraser-style optimistic (SCOT) variant and the
// Herlihy-Shavit eager-unlink baseline, typed over every SMR scheme.
#include <gtest/gtest.h>

#include <set>

#include "tests/test_util.hpp"

namespace scot {
namespace {

using Key = std::uint64_t;
using Val = std::uint64_t;

template <class Smr>
class SkipListTest : public ::testing::Test {};

TYPED_TEST_SUITE(SkipListTest, test::AllSchemes);

template <class SL, class Smr>
void check_semantics(Smr& smr) {
  SL sl(smr);
  auto& h = smr.handle(0);
  EXPECT_FALSE(sl.contains(h, 5));
  EXPECT_FALSE(sl.erase(h, 5));
  EXPECT_TRUE(sl.insert(h, 5, 50));
  EXPECT_FALSE(sl.insert(h, 5, 51)) << "duplicate";
  EXPECT_TRUE(sl.contains(h, 5));
  EXPECT_EQ(sl.get(h, 5).value_or(0), 50u);
  EXPECT_TRUE(sl.erase(h, 5));
  EXPECT_FALSE(sl.erase(h, 5));
  EXPECT_FALSE(sl.contains(h, 5));
  EXPECT_EQ(sl.size_unsafe(), 0u);
  EXPECT_TRUE(sl.check_structure_unsafe());
}

TYPED_TEST(SkipListTest, BasicSemanticsScot) {
  TypeParam smr(test::small_config());
  check_semantics<SkipList<Key, Val, TypeParam>>(smr);
}

TYPED_TEST(SkipListTest, BasicSemanticsEager) {
  TypeParam smr(test::small_config());
  check_semantics<SkipList<Key, Val, TypeParam, SkipListEagerTraits>>(smr);
}

TYPED_TEST(SkipListTest, ManyKeysMirrorReferenceSet) {
  TypeParam smr(test::small_config());
  SkipList<Key, Val, TypeParam> sl(smr);
  auto& h = smr.handle(0);
  std::set<Key> ref;
  Xoshiro256 rng(77);
  const int iters = test::scaled_iters(20000);
  for (int i = 0; i < iters; ++i) {
    const Key k = rng.next_in(300);
    if (rng.next_in(2)) {
      ASSERT_EQ(sl.insert(h, k, k), ref.insert(k).second) << "step " << i;
    } else {
      ASSERT_EQ(sl.erase(h, k), ref.erase(k) == 1) << "step " << i;
    }
  }
  EXPECT_EQ(sl.size_unsafe(), ref.size());
  for (Key k = 0; k < 300; ++k)
    EXPECT_EQ(sl.contains(h, k), ref.count(k) == 1) << k;
  EXPECT_TRUE(sl.check_structure_unsafe());
}

TYPED_TEST(SkipListTest, LevelsStaySortedSublists) {
  TypeParam smr(test::small_config());
  SkipList<Key, Val, TypeParam> sl(smr);
  auto& h = smr.handle(0);
  for (Key k = 0; k < 500; ++k) ASSERT_TRUE(sl.insert(h, k * 7 % 500, k));
  EXPECT_TRUE(sl.check_structure_unsafe());
  for (Key k = 0; k < 500; k += 3) ASSERT_TRUE(sl.erase(h, k));
  EXPECT_TRUE(sl.check_structure_unsafe());
}

TYPED_TEST(SkipListTest, DisjointConcurrentInserts) {
  TypeParam smr(test::small_config(4));
  SkipList<Key, Val, TypeParam> sl(smr);
  test::run_threads(4, [&](unsigned tid) {
    auto& h = smr.handle(tid);
    for (Key i = 0; i < 400; ++i) ASSERT_TRUE(sl.insert(h, i * 4 + tid, tid));
  });
  auto& h = smr.handle(0);
  EXPECT_EQ(sl.size_unsafe(), 1600u);
  EXPECT_TRUE(sl.check_structure_unsafe());
  for (Key k = 0; k < 1600; ++k) ASSERT_TRUE(sl.contains(h, k)) << k;
}

TYPED_TEST(SkipListTest, SameKeyRaces) {
  TypeParam smr(test::small_config(4));
  SkipList<Key, Val, TypeParam> sl(smr);
  const int rounds = test::scaled_iters(100);
  for (int round = 0; round < rounds; ++round) {
    std::atomic<int> ins{0}, del{0};
    test::run_threads(4, [&](unsigned tid) {
      if (sl.insert(smr.handle(tid), 33, tid)) ins.fetch_add(1);
    });
    EXPECT_EQ(ins.load(), 1) << "round " << round;
    test::run_threads(4, [&](unsigned tid) {
      if (sl.erase(smr.handle(tid), 33)) del.fetch_add(1);
    });
    EXPECT_EQ(del.load(), 1) << "round " << round;
  }
}

template <class SL, class Smr>
void churn_then_drain_sl(Smr& smr, unsigned threads, Key range, int iters) {
  SL sl(smr);
  test::run_threads(threads, [&](unsigned tid) {
    auto& h = smr.handle(tid);
    Xoshiro256 rng(tid * 97 + 3);
    for (int i = 0; i < iters; ++i) {
      const Key k = rng.next_in(range);
      switch (rng.next_in(4)) {
        case 0:
        case 1:
          sl.insert(h, k, k);
          break;
        case 2:
          sl.erase(h, k);
          break;
        default:
          sl.contains(h, k);
          break;
      }
    }
  });
  EXPECT_TRUE(sl.check_structure_unsafe());
  auto& h = smr.handle(0);
  for (Key k = 0; k < range; ++k) {
    const bool was_present = sl.contains(h, k);
    const bool erased = sl.erase(h, k);
    ASSERT_EQ(was_present, erased) << "key " << k;
  }
  EXPECT_EQ(sl.size_unsafe(), 0u);
}

TYPED_TEST(SkipListTest, TinyRangeChurnCoherenceScot) {
  TypeParam smr(test::small_config(8));
  churn_then_drain_sl<SkipList<Key, Val, TypeParam>>(smr, 8, 12,
                                                     test::scaled_iters(25000));
}

TYPED_TEST(SkipListTest, TinyRangeChurnCoherenceEager) {
  TypeParam smr(test::small_config(8));
  churn_then_drain_sl<SkipList<Key, Val, TypeParam, SkipListEagerTraits>>(
      smr, 8, 12, test::scaled_iters(25000));
}

TYPED_TEST(SkipListTest, MidRangeChurnCoherence) {
  TypeParam smr(test::small_config(4));
  churn_then_drain_sl<SkipList<Key, Val, TypeParam>>(smr, 4, 512,
                                                     test::scaled_iters(25000));
}

TYPED_TEST(SkipListTest, StableKeysSurviveChurn) {
  TypeParam smr(test::small_config(4));
  SkipList<Key, Val, TypeParam> sl(smr);
  for (Key k = 0; k < 128; k += 2) ASSERT_TRUE(sl.insert(smr.handle(0), k, k));
  std::atomic<bool> stop{false};
  std::atomic<int> misses{0};
  test::run_threads(4, [&](unsigned tid) {
    auto& h = smr.handle(tid);
    Xoshiro256 rng(tid);
    if (tid == 0) {
      const int iters = test::scaled_iters(30000);
      for (int i = 0; i < iters; ++i) {
        const Key k = rng.next_in(64) * 2 + 1;
        if (rng.next_in(2)) {
          sl.insert(h, k, k);
        } else {
          sl.erase(h, k);
        }
      }
      stop.store(true);
    } else {
      while (!stop.load(std::memory_order_relaxed)) {
        if (!sl.contains(h, rng.next_in(64) * 2)) misses.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(misses.load(), 0);
}

}  // namespace
}  // namespace scot
