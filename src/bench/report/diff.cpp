#include "bench/report/diff.hpp"

#include <map>

namespace scot::bench {

DiffReport diff_reports(const BenchReport& baseline,
                        const BenchReport& candidate,
                        const DiffOptions& options) {
  // First occurrence wins on duplicate keys; reports written by one binary
  // run never contain duplicates.
  std::map<std::string, const ReportCell*> cand_by_key;
  for (const ReportCell& c : candidate.cells())
    cand_by_key.emplace(cell_key(c), &c);

  DiffReport out;
  out.baseline_hw_threads = baseline.meta().hardware_threads;
  out.candidate_hw_threads = candidate.meta().hardware_threads;
  out.hw_mismatch = out.baseline_hw_threads != 0 &&
                    out.candidate_hw_threads != 0 &&
                    out.baseline_hw_threads != out.candidate_hw_threads;
  std::map<std::string, bool> base_keys;
  for (const ReportCell& b : baseline.cells()) {
    const std::string key = cell_key(b);
    if (!base_keys.emplace(key, true).second) continue;  // duplicate
    const auto it = cand_by_key.find(key);
    if (it == cand_by_key.end()) {
      out.only_baseline.push_back(key);
      continue;
    }
    CellDelta d;
    d.key = key;
    d.base_mops = b.result.mops;
    d.cand_mops = it->second->result.mops;
    if (d.base_mops > 0) {
      d.delta_pct = (d.cand_mops - d.base_mops) / d.base_mops * 100.0;
      d.regression = d.delta_pct < -options.threshold_pct;
    }
    if (d.regression) ++out.regressions;
    out.deltas.push_back(std::move(d));
  }
  for (const ReportCell& c : candidate.cells()) {
    const std::string key = cell_key(c);
    if (base_keys.find(key) == base_keys.end()) {
      out.only_candidate.push_back(key);
      base_keys.emplace(key, false);  // report each missing key once
    }
  }
  return out;
}

}  // namespace scot::bench
