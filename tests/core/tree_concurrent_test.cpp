// Concurrent Natarajan-Mittal tree tests: the tagged-edge pruning races are
// the tree-shaped version of the Figure 2 hazard, so these lean on tiny key
// ranges to maximize chain formation and helping.
#include <gtest/gtest.h>

#include <atomic>

#include "tests/test_util.hpp"

namespace scot {
namespace {

using Key = std::uint64_t;
using Val = std::uint64_t;

template <class Smr>
class TreeConcurrentTest : public ::testing::Test {};

TYPED_TEST_SUITE(TreeConcurrentTest, test::AllSchemes);

TYPED_TEST(TreeConcurrentTest, DisjointInsertsAllPresent) {
  TypeParam smr(test::small_config(4));
  NatarajanMittalTree<Key, Val, TypeParam> tree(smr);
  constexpr Key kPerThread = 500;
  test::run_threads(4, [&](unsigned tid) {
    auto& h = smr.handle(tid);
    for (Key i = 0; i < kPerThread; ++i) {
      ASSERT_TRUE(tree.insert(h, i * 4 + tid, tid));
    }
  });
  auto& h = smr.handle(0);
  EXPECT_EQ(tree.size_unsafe(), 4 * kPerThread);
  EXPECT_TRUE(tree.check_structure_unsafe());
  for (Key k = 0; k < 4 * kPerThread; ++k) {
    ASSERT_TRUE(tree.contains(h, k)) << k;
  }
}

TYPED_TEST(TreeConcurrentTest, DisjointErasesAllGone) {
  TypeParam smr(test::small_config(4));
  NatarajanMittalTree<Key, Val, TypeParam> tree(smr);
  auto& h0 = smr.handle(0);
  for (Key k = 0; k < 2000; ++k) ASSERT_TRUE(tree.insert(h0, k, k));
  test::run_threads(4, [&](unsigned tid) {
    auto& h = smr.handle(tid);
    for (Key i = 0; i < 500; ++i) {
      ASSERT_TRUE(tree.erase(h, i * 4 + tid)) << i * 4 + tid;
    }
  });
  EXPECT_EQ(tree.size_unsafe(), 0u);
  EXPECT_TRUE(tree.check_structure_unsafe());
}

TYPED_TEST(TreeConcurrentTest, SameKeyEraseExactlyOneWins) {
  TypeParam smr(test::small_config(4));
  NatarajanMittalTree<Key, Val, TypeParam> tree(smr);
  const int rounds = test::scaled_iters(200);
  for (int round = 0; round < rounds; ++round) {
    ASSERT_TRUE(tree.insert(smr.handle(0), 9, 9));
    std::atomic<int> wins{0};
    test::run_threads(4, [&](unsigned tid) {
      if (tree.erase(smr.handle(tid), 9)) wins.fetch_add(1);
    });
    EXPECT_EQ(wins.load(), 1) << "round " << round;
    EXPECT_FALSE(tree.contains(smr.handle(0), 9));
    EXPECT_TRUE(tree.check_structure_unsafe()) << "round " << round;
  }
}

TYPED_TEST(TreeConcurrentTest, SameKeyInsertExactlyOneWins) {
  TypeParam smr(test::small_config(4));
  NatarajanMittalTree<Key, Val, TypeParam> tree(smr);
  const int rounds = test::scaled_iters(200);
  for (int round = 0; round < rounds; ++round) {
    std::atomic<int> wins{0};
    test::run_threads(4, [&](unsigned tid) {
      if (tree.insert(smr.handle(tid), 9, tid)) wins.fetch_add(1);
    });
    EXPECT_EQ(wins.load(), 1) << "round " << round;
    ASSERT_TRUE(tree.erase(smr.handle(0), 9));
  }
}

TYPED_TEST(TreeConcurrentTest, SiblingDeletesRace) {
  // Deleting both children of one internal node concurrently is the
  // double-flag case retire_chain must disambiguate via the survivor.
  TypeParam smr(test::small_config(2));
  NatarajanMittalTree<Key, Val, TypeParam> tree(smr);
  const int rounds = test::scaled_iters(500);
  for (int round = 0; round < rounds; ++round) {
    auto& h0 = smr.handle(0);
    ASSERT_TRUE(tree.insert(h0, 10, 0));
    ASSERT_TRUE(tree.insert(h0, 20, 0));
    std::atomic<int> wins{0};
    test::run_threads(2, [&](unsigned tid) {
      auto& h = smr.handle(tid);
      if (tree.erase(h, tid == 0 ? 10 : 20)) wins.fetch_add(1);
    });
    EXPECT_EQ(wins.load(), 2) << "both deletes target distinct keys";
    EXPECT_EQ(tree.size_unsafe(), 0u) << "round " << round;
    EXPECT_TRUE(tree.check_structure_unsafe()) << "round " << round;
  }
}

TYPED_TEST(TreeConcurrentTest, TinyRangeChurnCoherence) {
  TypeParam smr(test::small_config(8));
  NatarajanMittalTree<Key, Val, TypeParam> tree(smr);
  test::run_threads(8, [&](unsigned tid) {
    auto& h = smr.handle(tid);
    Xoshiro256 rng(tid * 31 + 7);
    const int iters = test::scaled_iters(40000);
    for (int i = 0; i < iters; ++i) {
      const Key k = rng.next_in(12);
      switch (rng.next_in(4)) {
        case 0:
        case 1:
          tree.insert(h, k, k);
          break;
        case 2:
          tree.erase(h, k);
          break;
        default:
          tree.contains(h, k);
          break;
      }
    }
  });
  auto& h = smr.handle(0);
  EXPECT_TRUE(tree.check_structure_unsafe());
  for (Key k = 0; k < 12; ++k) {
    { const bool was_present = tree.contains(h, k); const bool erased = tree.erase(h, k); EXPECT_EQ(was_present, erased) << "key " << k; }
  }
  EXPECT_EQ(tree.size_unsafe(), 0u);
}

TYPED_TEST(TreeConcurrentTest, StableKeysSurviveNeighbourChurn) {
  TypeParam smr(test::small_config(4));
  NatarajanMittalTree<Key, Val, TypeParam> tree(smr);
  for (Key k = 0; k < 64; k += 2)
    ASSERT_TRUE(tree.insert(smr.handle(0), k, k));
  std::atomic<bool> stop{false};
  std::atomic<int> misses{0};
  test::run_threads(4, [&](unsigned tid) {
    auto& h = smr.handle(tid);
    Xoshiro256 rng(tid + 3);
    if (tid == 0) {
      const int iters = test::scaled_iters(40000);
      for (int i = 0; i < iters; ++i) {
        const Key k = rng.next_in(32) * 2 + 1;  // odd keys only
        if (rng.next_in(2)) {
          tree.insert(h, k, k);
        } else {
          tree.erase(h, k);
        }
      }
      stop.store(true);
    } else {
      while (!stop.load(std::memory_order_relaxed)) {
        const Key k = rng.next_in(32) * 2;
        if (!tree.contains(h, k)) misses.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(misses.load(), 0) << "even keys were never deleted";
}

TYPED_TEST(TreeConcurrentTest, MixedSizesRangeChurn) {
  TypeParam smr(test::small_config(4));
  NatarajanMittalTree<Key, Val, TypeParam> tree(smr);
  test::run_threads(4, [&](unsigned tid) {
    auto& h = smr.handle(tid);
    Xoshiro256 rng(tid * 101 + 1);
    const int iters = test::scaled_iters(30000);
    for (int i = 0; i < iters; ++i) {
      const Key k = rng.next_in(1024);
      if (rng.next_in(2)) {
        tree.insert(h, k, k);
      } else {
        tree.erase(h, k);
      }
    }
  });
  EXPECT_TRUE(tree.check_structure_unsafe());
  // Drain and verify coherence.
  auto& h = smr.handle(0);
  for (Key k = 0; k < 1024; ++k) {
    { const bool was_present = tree.contains(h, k); const bool erased = tree.erase(h, k); EXPECT_EQ(was_present, erased); }
  }
  EXPECT_EQ(tree.size_unsafe(), 0u);
}

}  // namespace
}  // namespace scot
