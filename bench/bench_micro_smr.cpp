// Microbenchmarks of the SMR primitives (google-benchmark): the per-call
// cost of protect / dup / begin+end / alloc+retire for every scheme.  These
// expose the mechanism behind the figure-level results: HP pays a fence per
// protect, HE amortizes it per era change, IBR/Hyaline make dup free, and
// HPopt's snapshot scan beats HP's per-node rescan on retire-heavy loads.
#include <benchmark/benchmark.h>

#include <atomic>

#include "core/core.hpp"

namespace {

using namespace scot;

struct ProbeNode : ReclaimNode {
  std::uint64_t payload = 0;
};

template <class Smr>
void BM_Protect(benchmark::State& state) {
  SmrConfig cfg;
  cfg.max_threads = 2;
  Smr smr(cfg);
  auto& h = smr.handle(0);
  auto* n = h.template alloc<ProbeNode>();
  std::atomic<ReclaimNode*> src{n};
  h.begin_op();
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.protect(src, 0));
  }
  h.end_op();
  h.dealloc_unpublished(n);
}

template <class Smr>
void BM_Dup(benchmark::State& state) {
  SmrConfig cfg;
  cfg.max_threads = 2;
  Smr smr(cfg);
  auto& h = smr.handle(0);
  auto* n = h.template alloc<ProbeNode>();
  std::atomic<ReclaimNode*> src{n};
  h.begin_op();
  (void)h.protect(src, 0);
  for (auto _ : state) {
    h.dup(0, 1);
  }
  h.end_op();
  h.dealloc_unpublished(n);
}

template <class Smr>
void BM_BeginEndOp(benchmark::State& state) {
  SmrConfig cfg;
  cfg.max_threads = 2;
  Smr smr(cfg);
  auto& h = smr.handle(0);
  for (auto _ : state) {
    h.begin_op();
    h.end_op();
  }
}

template <class Smr>
void BM_AllocRetire(benchmark::State& state) {
  SmrConfig cfg;
  cfg.max_threads = 2;
  cfg.scan_threshold = 128;  // paper calibration
  Smr smr(cfg);
  auto& h = smr.handle(0);
  for (auto _ : state) {
    auto* n = h.template alloc<ProbeNode>();
    h.retire(n);
  }
}

#define SCOT_REGISTER_SCHEME(scheme)                      \
  BENCHMARK(BM_Protect<scheme>)->Name("protect/" #scheme); \
  BENCHMARK(BM_Dup<scheme>)->Name("dup/" #scheme);         \
  BENCHMARK(BM_BeginEndOp<scheme>)->Name("op/" #scheme);   \
  BENCHMARK(BM_AllocRetire<scheme>)->Name("alloc_retire/" #scheme)

SCOT_REGISTER_SCHEME(NoReclaimDomain);
SCOT_REGISTER_SCHEME(EbrDomain);
SCOT_REGISTER_SCHEME(HpDomain);
SCOT_REGISTER_SCHEME(HpOptDomain);
SCOT_REGISTER_SCHEME(HeDomain);
SCOT_REGISTER_SCHEME(IbrDomain);
SCOT_REGISTER_SCHEME(HyalineDomain);

}  // namespace

BENCHMARK_MAIN();
