// MSQueue recovery validation through the scot::AnyQueue facade, for every
// scheme: FIFO semantics, per-producer order under concurrency (the
// queue-shaped linearizability witness), element conservation, and the
// per-shape recovery-counter contract (DESIGN.md §11).  Runs in both fence
// disciplines via the SCOT_ASYM env knob — no test code changes needed.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/any_container.hpp"
#include "tests/test_util.hpp"

namespace scot {
namespace {

AnyContainerOptions small_options(unsigned threads = 4) {
  AnyContainerOptions options;
  options.smr = test::small_config(threads);
  return options;
}

TEST(AnyContainerRegistry, CoversTheFullSchemeCrossProduct) {
  for (SchemeId s : kAllSchemes) {
    for (StructureId d : kContainerStructures) {
      EXPECT_NE(AnyContainerRegistry::instance().find(s, d), nullptr)
          << scheme_name(s) << "/" << structure_name(d);
    }
  }
}

TEST(AnyContainer, MapAndKvStructuresAreNotContainerCells) {
  EXPECT_FALSE(
      AnyContainer::make(SchemeId::kEBR, StructureId::kHMList).has_value());
  EXPECT_FALSE(
      AnyContainer::make(SchemeId::kEBR, StructureId::kKvHash).has_value());
  EXPECT_FALSE(
      AnyContainer::make(SchemeId::kEBR, StructureId::kNone).has_value());
}

TEST(AnyQueue, MakeEnforcesTheContainerKind) {
  EXPECT_TRUE(AnyQueue::make(SchemeId::kHP).has_value());
  EXPECT_FALSE(
      AnyQueue::make(SchemeId::kHP, StructureId::kTreiberStack).has_value())
      << "a stack must not open as a queue";
  EXPECT_FALSE(AnyQueue::make(SchemeId::kHP, StructureId::kDeque).has_value());
}

TEST(AnyQueue, ReportsItsIdentity) {
  auto q = AnyQueue::make(SchemeId::kHLN, StructureId::kMSQueue,
                          small_options());
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->container().scheme(), SchemeId::kHLN);
  EXPECT_EQ(q->container().structure(), StructureId::kMSQueue);
  EXPECT_EQ(q->container().kind(), ContainerKind::kQueue);
  EXPECT_STREQ(q->container().structure_name(), "MSQueue");
}

TEST(AnyQueue, EverySchemeFifoSingleThreaded) {
  constexpr std::uint64_t kItems = 256;
  for (SchemeId s : kAllSchemes) {
    SCOPED_TRACE(scheme_name(s));
    auto q = AnyQueue::make(s, StructureId::kMSQueue, small_options());
    ASSERT_TRUE(q.has_value());
    auto session = q->session();
    EXPECT_EQ(session.dequeue(), std::nullopt) << "starts empty";
    for (std::uint64_t i = 0; i < kItems; ++i)
      EXPECT_TRUE(session.enqueue(i * 3));
    EXPECT_EQ(q->size_unsafe(), kItems);
    for (std::uint64_t i = 0; i < kItems; ++i) {
      const auto v = session.dequeue();
      ASSERT_TRUE(v.has_value()) << i;
      EXPECT_EQ(*v, i * 3) << "FIFO order";
    }
    EXPECT_EQ(session.dequeue(), std::nullopt) << "drained";
    EXPECT_EQ(q->size_unsafe(), 0u);
  }
}

TEST(AnyQueue, UnionSurfaceRejectsTheWrongEnds) {
  auto c = AnyContainer::make(SchemeId::kEBR, StructureId::kMSQueue,
                              small_options());
  ASSERT_TRUE(c.has_value());
  auto session = c->session();
  EXPECT_FALSE(session.push_front(1)) << "queues only grow at the back";
  EXPECT_TRUE(session.push_back(1));
  EXPECT_EQ(session.pop_back(), std::nullopt)
      << "queues only shrink at the front";
  EXPECT_EQ(session.pop_front(), 1u);
}

// Producers/consumers: per-producer FIFO order is preserved and every
// element is popped or drained exactly once — under every scheme, with the
// recovery discipline doing real work (head/tail contention).
TEST(AnyQueue, EverySchemeConcurrentConservationAndOrder) {
  const unsigned kProducers = 2, kConsumers = 2;
  const std::uint64_t kPerProducer =
      static_cast<std::uint64_t>(test::scaled_iters(20000));
  for (SchemeId s : kAllSchemes) {
    SCOPED_TRACE(scheme_name(s));
    auto q = AnyQueue::make(s, StructureId::kMSQueue,
                            small_options(kProducers + kConsumers));
    ASSERT_TRUE(q.has_value());
    std::atomic<unsigned> producers_left{kProducers};
    std::vector<std::vector<std::uint64_t>> popped(kConsumers);
    test::run_threads(kProducers + kConsumers, [&](unsigned t) {
      auto session = q->session();
      if (t < kProducers) {
        for (std::uint64_t i = 0; i < kPerProducer; ++i)
          ASSERT_TRUE(session.enqueue((static_cast<std::uint64_t>(t) << 32) | i));
        producers_left.fetch_sub(1, std::memory_order_release);
      } else {
        auto& mine = popped[t - kProducers];
        mine.reserve(kPerProducer);
        for (;;) {
          const auto v = session.dequeue();
          if (v.has_value()) {
            mine.push_back(*v);
          } else if (producers_left.load(std::memory_order_acquire) == 0) {
            // One more look after the last producer finished: its elements
            // were linked before the flag flipped.
            const auto last = session.dequeue();
            if (!last.has_value()) break;
            mine.push_back(*last);
          }
        }
      }
    });
    // Drain the remainder single-threaded.
    std::vector<std::uint64_t> drained;
    {
      auto session = q->session();
      while (const auto v = session.dequeue()) drained.push_back(*v);
    }
    // Conservation: every tagged element exactly once.
    std::vector<std::uint64_t> all = drained;
    for (const auto& p : popped) all.insert(all.end(), p.begin(), p.end());
    ASSERT_EQ(all.size(), kProducers * kPerProducer);
    std::sort(all.begin(), all.end());
    EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
        << "duplicate element popped";
    for (unsigned t = 0; t < kProducers; ++t) {
      EXPECT_EQ(all[t * kPerProducer], static_cast<std::uint64_t>(t) << 32);
      EXPECT_EQ(all[(t + 1) * kPerProducer - 1],
                (static_cast<std::uint64_t>(t) << 32) | (kPerProducer - 1));
    }
    // Per-consumer streams must see each producer's elements in FIFO order.
    for (const auto& p : popped) {
      std::vector<std::uint64_t> last_seq(kProducers, 0);
      std::vector<bool> seen(kProducers, false);
      for (const std::uint64_t v : p) {
        const auto prod = static_cast<unsigned>(v >> 32);
        const std::uint64_t seq = v & 0xffffffffu;
        ASSERT_LT(prod, kProducers);
        if (seen[prod]) {
          EXPECT_GT(seq, last_seq[prod]) << "per-producer FIFO violated";
        }
        seen[prod] = true;
        last_seq[prod] = seq;
      }
    }
    EXPECT_EQ(q->size_unsafe(), 0u);
    // The recovery contract is shape-specific (DESIGN.md §11): the queue's
    // escapes are help-swing-tail events.  Counters are cumulative and
    // contention-dependent, so only their readability is asserted here;
    // values land in the bench tables.
    (void)q->restarts();
    (void)q->recoveries();
  }
}

// The tid surface stays usable for fixed-capacity callers.
TEST(AnyQueue, DeprecatedTidSurfaceStillWorks) {
  auto q = AnyQueue::make(SchemeId::kIBR, StructureId::kMSQueue,
                          small_options(2));
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->enqueue(0, 11));
  EXPECT_TRUE(q->enqueue(1, 22));
  EXPECT_EQ(q->dequeue(0), 11u);
  EXPECT_EQ(q->dequeue(1), 22u);
  EXPECT_EQ(q->dequeue(0), std::nullopt);
}

// Destruction with elements still linked must release every node through
// the domain (the ASan lane is the witness).
TEST(AnyQueue, TeardownWithResidentElementsDoesNotLeak) {
  for (SchemeId s : kAllSchemes) {
    SCOPED_TRACE(scheme_name(s));
    auto q = AnyQueue::make(s, StructureId::kMSQueue, small_options());
    ASSERT_TRUE(q.has_value());
    auto session = q->session();
    for (std::uint64_t i = 0; i < 128; ++i) ASSERT_TRUE(session.enqueue(i));
    session.reset();  // leave before the queue is destroyed
  }
}

}  // namespace
}  // namespace scot
