// Hyaline-1S (Nikolaev & Ravindran, PLDI 2021): snapshot-free robust
// reclamation with distributed reference counting.
//
// Mechanics reproduced here:
//  * One reservation *slot* per handle: { head of a retirement list, era }.
//    enter() publishes the current era and activates the slot; leave()
//    detaches the slot's accumulated list and decrements the reference
//    count of every batch that appears on it.
//  * retire() accumulates nodes into a per-thread *batch*.  A full batch is
//    handed to every active slot whose era could allow the owning thread to
//    hold a reference (slot era >= batch min birth era — the "1S" filter);
//    each insertion uses a distinct member node of the batch as the list
//    entry, which is why the batch must have at least as many nodes as
//    there are slots.  With dynamic membership the required batch size is
//    `max(batch_capacity, live records + 1)` — it adapts as threads join.
//  * The batch's reference counter starts with a creator guard so that
//    concurrent leave() decrements cannot hit zero before all insertions
//    are accounted; whichever thread moves the counter to zero frees the
//    whole batch ("reclamation by any thread", the property the paper
//    credits for Hyaline's performance).
//  * Robustness: protect() checks the birth era of the loaded node; if the
//    node is younger than the published era the thread refreshes its
//    reservation and raises a restart flag that the data structures poll
//    via op_valid().  The type-stable pool guarantees this birth-era read
//    is safe even if the node was concurrently reclaimed (see
//    reclaim_node.hpp).
//
// Membership is dynamic (see nr.hpp): the reservation slot lives inside the
// Handle, seal_batch() walks the live registry, and leave() donates the
// unsealed batch to the domain's orphan list — the natural Hyaline handoff,
// since sealed batches are already owned by "whoever drops the last
// reference".
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

#include "common/align.hpp"
#include "common/asymfence.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "smr/handle_core.hpp"
#include "smr/handle_registry.hpp"
#include "smr/node_pool.hpp"
#include "smr/reclaimer.hpp"
#include "smr/smr_config.hpp"

namespace scot {

class HyalineDomain {
 public:
  static constexpr const char* kName = "HLN";
  static constexpr bool kRobust = true;

  struct BatchHandle {
    std::atomic<std::int64_t> refs{0};
    ReclaimNode* first = nullptr;
    unsigned count = 0;
  };

  class Handle : public HandleCore<HyalineDomain, Handle> {
   public:
    using Base = HandleCore<HyalineDomain, Handle>;
    using Base::retire;  // typed retire(Protected<T>) — API v2
    Handle(HyalineDomain* dom, unsigned tid) : Base(dom, tid) {}

    void begin_op() noexcept {
      era_local_ = dom_->clock_.load(std::memory_order_acquire);
      slot_.era.store(era_local_, std::memory_order_release);
      // Activation must be visible to retirers before this operation
      // performs any shared loads (StoreLoad).  Classic: a seq_cst head
      // store.  Asymmetric: release store + compiler barrier; seal_batch()
      // compensates with one heavy barrier before reading the slots
      // (DESIGN.md §5, activation case).  The era store above is release-
      // ordered before the head store either way, so a retirer that sees
      // the slot active also sees an era at least as new as era_local_.
      const asymfence::Path fences = dom_->fence_path_;
#ifndef NDEBUG
      // Debug check that the previous operation deactivated the slot.  An
      // exchange (a full RMW even at relaxed strength) reads the
      // coherence-latest value, so the check cannot misfire on a stale
      // load under the relaxed activation discipline; the store below then
      // publishes kActiveEmpty exactly as in release builds.  (A relaxed
      // load would in fact also be sound — while the slot is inactive no
      // other thread writes it, and a thread always observes its own last
      // store — but the exchange makes that reasoning unnecessary.)
      const std::uintptr_t prev =
          slot_.head.exchange(kInactive, std::memory_order_relaxed);
      assert(prev == kInactive &&
             "begin_op on a slot the previous operation left active");
#endif
      if (fences == asymfence::Path::kClassic) {
        slot_.head.store(kActiveEmpty, std::memory_order_seq_cst);
      } else {
        slot_.head.store(kActiveEmpty, std::memory_order_release);
        asymfence::light_barrier(fences);
      }
    }

    void end_op() noexcept {
      const std::uintptr_t prev =
          slot_.head.exchange(kInactive, std::memory_order_acq_rel);
      drain(prev);
    }

    // `Src` is std::atomic<P> or StableAtomic<P> (pool-recycled link words).
    template <class Src, class P = typename Src::value_type>
    P protect(const Src& src, unsigned /*idx*/) noexcept {
      P v = src.load(std::memory_order_acquire);
      ReclaimNode* n = smr_raw(v);
      if (n != nullptr && birth_era_of(n) > era_local_) {
        // The node is younger than our reservation: its batch may skip our
        // slot, so dereferencing it would be unsafe.  Refresh the
        // reservation and make the data structure restart from an anchor.
        end_op();
        begin_op();
        restart_ = true;
      }
      return v;
    }

    template <class T>
    void publish(T* /*p*/, unsigned /*idx*/) noexcept {}
    void dup(unsigned /*i*/, unsigned /*j*/) noexcept {}

    bool op_valid() const noexcept { return !restart_; }
    void revalidate_op() noexcept { restart_ = false; }

    void retire(ReclaimNode* n) {
      n->debug_state = kNodeRetired;
      n->retire_era = dom_->clock_.load(std::memory_order_acquire);
      n->batch = nullptr;
      push_to_batch(n);
      if (!dom_->bg_.is_active() && adopt_all_mailboxes() > 0) {
        obs::count(stats_, obs::Counter::kOrphanAdoptions);
        obs::trace_instant(obs::TraceKind::kAdopt);
      }
      dom_->counters_.on_retire(dom_->cfg_.track_stats);
      obs::count(stats_, obs::Counter::kRetires);
      obs::peak(stats_, batch_count_);
      era_tick();
      if (batch_count_ >= required_batch()) {
        if (dom_->bg_.is_active()) {
          // Donate the accumulated batch whole; the service thread splices
          // it into its own batch and runs the seal (with its single heavy
          // barrier) off the operation path.
          dom_->bg_.mailbox.donate(batch_head_, batch_tail_);
          batch_head_ = nullptr;
          batch_tail_ = nullptr;
          batch_count_ = 0;
          batch_min_birth_ = 0;
          dom_->bg_.thread.ring();
        } else {
          seal_batch();
        }
      }
    }

    std::uint64_t on_alloc_era() noexcept {
      era_tick();
      return dom_->clock_.load(std::memory_order_acquire);
    }

    // Test hooks.
    unsigned pending_batch_size() const noexcept { return batch_count_; }
    std::uint64_t reservation_era() const noexcept { return era_local_; }

    // --- background-reclaimer hooks (service thread only; DESIGN.md §9) ---
    unsigned bg_collect() { return adopt_all_mailboxes(); }
    // Seals only when the spliced batch has enough member nodes for every
    // registry record; a short batch keeps accumulating until the next
    // round's adoptions top it up.
    bool bg_reclaim() {
      if (batch_count_ == 0 || batch_count_ < required_batch()) return false;
      seal_batch();
      return true;
    }

   private:
    friend class HyalineDomain;

    void era_tick() noexcept {
      if (++tick_ >= dom_->bg_.effective_era_freq()) {
        tick_ = 0;
        dom_->clock_.fetch_add(1, std::memory_order_acq_rel);
        obs::count(stats_, obs::Counter::kEraAdvances);
      }
    }

    void push_to_batch(ReclaimNode* n) noexcept {
      const std::uint64_t birth = birth_era_of(n);
      if (batch_count_ == 0 || birth < batch_min_birth_)
        batch_min_birth_ = birth;
      n->smr_next = batch_head_;
      if (batch_head_ == nullptr) batch_tail_ = n;
      batch_head_ = n;
      ++batch_count_;
    }

    // Splices every donated retire (departed threads' unsealed batches and
    // anything parked in the background mailbox) into this thread's batch,
    // restoring the min-birth bound.  Returns the number of nodes adopted
    // (0 = both mailboxes were raced empty).
    unsigned adopt_all_mailboxes() noexcept {
      unsigned adopted = 0;
      adopted += splice_mailbox(dom_->orphans_);
      adopted += splice_mailbox(dom_->bg_.mailbox);
      return adopted;
    }

    unsigned splice_mailbox(RetireMailbox& mailbox) noexcept {
      if (mailbox.empty()) return 0;
      ReclaimNode* n = mailbox.take_all();
      unsigned adopted = 0;
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        push_to_batch(n);
        ++adopted;
        n = next;
      }
      return adopted;
    }

    // A batch needs one member node per live registry record (each
    // insertion consumes a distinct node as the list entry) plus one, so
    // the threshold adapts to membership: total_records() is incremented
    // before a record is published, so this bound can only over-estimate,
    // never under-estimate, the chain seal_batch() will walk.  The floor is
    // the effective background threshold (initialized to batch_capacity_
    // and retuned by the adaptive controller; the registry term keeps it
    // correct regardless of how far the controller lowers it).
    unsigned required_batch() const noexcept {
      const auto total =
          static_cast<unsigned>(dom_->registry_.total_records());
      return std::max(dom_->bg_.effective_scan_threshold(), total + 1);
    }

    // Hands the accumulated batch to all active, era-overlapping slots.
    // The batch seal is Hyaline's reclaim cadence, so it carries the kScans
    // counter and the scan-latency histogram (nodes are counted as
    // reclaimed later, in free_batch, when the last reference drops).
    void seal_batch() {
      obs::TraceSpan span(obs::TraceKind::kSeal);
      const std::uint64_t stats_t0 = obs::scan_begin(stats_);
      // Surface in-flight activations before reading the slots: every node
      // in this batch was unlinked before it was retired, so an activation
      // the barrier does not surface belongs to a thread whose shared
      // loads are all ordered after those unlinks — it cannot reach any
      // node of this batch, and skipping its slot is safe (DESIGN.md §5).
      if (dom_->fence_path_ != asymfence::Path::kClassic) {
        asymfence::heavy_barrier(dom_->fence_path_);
        obs::count(stats_, obs::Counter::kHeavyBarriers);
      }
      // Snapshot the registry AFTER the barrier.  Records pushed after
      // this read are skippable by the same argument as an un-surfaced
      // activation; records in the snapshot cover every thread that could
      // hold a reference into this batch (DESIGN.md §7).
      auto* snap = dom_->registry_.head();
      unsigned len = 0;
      for (auto* r = snap; r != nullptr; r = r->next_record()) ++len;
      if (batch_count_ < len + 1) {
        // The registry grew between the threshold check and the snapshot:
        // not enough member nodes to give every slot a distinct entry.
        // Keep accumulating; the next retire re-checks against the larger
        // required_batch().
        obs::scan_end(stats_, stats_t0, 0);
        return;
      }
      auto* bh = new BatchHandle;
      bh->refs.store(kGuard, std::memory_order_relaxed);
      bh->first = batch_head_;
      bh->count = batch_count_;
      for (ReclaimNode* n = batch_head_; n != nullptr; n = n->smr_next)
        n->batch = bh;

      std::int64_t inserted = 0;
      ReclaimNode* entry = batch_head_;
      for (auto* r = snap; r != nullptr && entry != nullptr;
           r = r->next_record()) {
        auto& slot = r->handle.slot_;
        std::uintptr_t h = slot.head.load(std::memory_order_acquire);
        for (;;) {
          if (h == kInactive) break;
          if (slot.era.load(std::memory_order_acquire) < batch_min_birth_) {
            // 1S filter: the slot's thread entered before any node in this
            // batch was born; it would have restarted rather than hold a
            // reference into the batch.
            break;
          }
          entry->slot_next = reinterpret_cast<ReclaimNode*>(h);
          if (slot.head.compare_exchange_weak(
                  h, reinterpret_cast<std::uintptr_t>(entry),
                  std::memory_order_acq_rel, std::memory_order_acquire)) {
            ++inserted;
            entry = entry->smr_next;  // consume one member node per slot
            break;
          }
        }
      }
      batch_head_ = nullptr;
      batch_tail_ = nullptr;
      batch_count_ = 0;
      batch_min_birth_ = 0;
      obs::scan_end(stats_, stats_t0, 0);
      adjust(bh, inserted - kGuard);
    }

    void drain(std::uintptr_t list) noexcept {
      auto* e = reinterpret_cast<ReclaimNode*>(list);
      assert(list != kInactive);
      while (e != nullptr) {
        ReclaimNode* next = e->slot_next;  // read before the batch can die
        adjust(static_cast<BatchHandle*>(e->batch), -1);
        e = next;
      }
    }

    void adjust(BatchHandle* bh, std::int64_t delta) noexcept {
      if (bh->refs.fetch_add(delta, std::memory_order_acq_rel) + delta == 0)
        free_batch(bh);
    }

    void free_batch(BatchHandle* bh) noexcept {
      std::uint64_t freed = 0;
      ReclaimNode* n = bh->first;
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        dom_->pool().free(tid_, n, n->alloc_size);
        ++freed;
        n = next;
      }
      assert(freed == bh->count);
      dom_->counters_.on_free(freed, dom_->cfg_.track_stats);
      // Charged to the handle that dropped the last reference ("reclamation
      // by any thread"), which is always the calling thread — single-writer.
      obs::count(stats_, obs::Counter::kNodesReclaimed, freed);
      delete bh;
    }

    struct SlotData {
      std::atomic<std::uintptr_t> head{kInactive};
      std::atomic<std::uint64_t> era{0};
    };

    // Reservation slot (moved from the domain's per-tid array; the
    // record's alignment isolates it from other threads' lines).
    SlotData slot_;
    std::uint64_t era_local_ = 0;
    bool restart_ = false;
    unsigned tick_ = 0;
    ReclaimNode* batch_head_ = nullptr;
    ReclaimNode* batch_tail_ = nullptr;
    unsigned batch_count_ = 0;
    std::uint64_t batch_min_birth_ = 0;
  };

  explicit HyalineDomain(SmrConfig cfg = {})
      : cfg_(cfg),
        pool_(cfg.max_threads),
        batch_capacity_(cfg.batch_capacity != 0 ? cfg.batch_capacity
                                                : cfg.max_threads + 1),
        fence_path_(asymfence::resolve(cfg.asymmetric_fences))
#ifndef SCOT_DISALLOW_TID_SHIM
        ,
        shim_(cfg.max_threads)
#endif
  {
    // Hyaline's reclaim cadence is the batch size, so that is what the
    // adaptive controller tunes (era_freq rides along for the clock rate).
    bg_.scan_threshold.store(batch_capacity_, std::memory_order_relaxed);
    bg_.era_freq.store(cfg_.era_freq, std::memory_order_relaxed);
    if (cfg_.background_reclaim) start_background_reclaimer();
  }

  ~HyalineDomain() {
    stop_background_reclaimer();
    drain_all();
  }

  // --- dynamic membership (see nr.hpp for the reference walkthrough) ------
  Handle& join() {
    auto* rec =
        registry_.acquire([this](unsigned idx) { return Handle(this, idx); });
    rec->handle.registry_record_ = rec;
    pool_.ensure_shards(rec->index + 1);
    obs::count(rec->handle.stats_, obs::Counter::kJoins);
    obs::trace_instant(obs::TraceKind::kJoin);
    return rec->handle;
  }

  // Contract: no operation in flight (the slot is inactive and drained).
  // The unsealed batch is donated whole — this is Hyaline's natural
  // handoff: sealed batches already belong to "whoever drops the last
  // reference", so only the private accumulating batch needs a new owner.
  void leave(Handle& h) {
    assert(h.slot_.head.load(std::memory_order_relaxed) == kInactive &&
           "leave() with an operation in flight");
    if (h.batch_count_ > 0) {
      if (bg_.is_active()) {
        bg_.mailbox.donate(h.batch_head_, h.batch_tail_);
        bg_.thread.ring();
      } else {
        orphans_.donate(h.batch_head_, h.batch_tail_);
      }
      h.batch_head_ = nullptr;
      h.batch_tail_ = nullptr;
      h.batch_count_ = 0;
      h.batch_min_birth_ = 0;
      obs::count(h.stats_, obs::Counter::kOrphanDonations);
    }
    obs::count(h.stats_, obs::Counter::kLeaves);
    obs::trace_instant(obs::TraceKind::kLeave);
    registry_.release(record_of(h));
  }

  unsigned active_handles() const noexcept { return registry_.active(); }
  std::size_t total_handle_records() const noexcept {
    return registry_.total_records();
  }
  const HandleRegistry<Handle>& registry() const noexcept { return registry_; }

#ifndef SCOT_DISALLOW_TID_SHIM
  // DEPRECATED: fixed-capacity tid-indexed access (joins once per tid and
  // pins the record forever).  New code should use scoped_handle(domain).
  Handle& handle(unsigned tid) { return shim_.get(*this, tid); }
#endif

  // --- background reclamation (smr/reclaimer.hpp, DESIGN.md §9) -----------
  ReclaimControl& reclaim_control() noexcept { return bg_; }
  bool background_active() const noexcept { return bg_.is_active(); }
  BgReclaimStats background_stats() const noexcept { return bg_stats_of(bg_); }
  bool counts_heavy_barrier_per_reclaim() const noexcept {
    return fence_path_ != asymfence::Path::kClassic;
  }

  void start_background_reclaimer() {
    if (bg_.thread.running()) return;
    if (!reclaimer_)
      reclaimer_ = std::make_unique<DomainReclaimer<HyalineDomain>>(*this);
    bg_.active.store(true, std::memory_order_release);
    bg_.thread.start(cfg_.reclaim_interval_us,
                     [this] { reclaimer_->round(); });
  }

  void stop_background_reclaimer() {
    bg_.active.store(false, std::memory_order_release);
    bg_.thread.stop();
    if (reclaimer_) {
      reclaimer_->detach();
      reclaimer_.reset();
    }
  }

  const SmrConfig& config() const noexcept { return cfg_; }
  NodePool& pool() noexcept { return pool_; }
  std::int64_t pending_nodes() const noexcept {
    return counters_.pending.load(std::memory_order_relaxed);
  }
  const SmrCounters& counters() const noexcept { return counters_; }
  std::uint64_t era() const noexcept {
    return clock_.load(std::memory_order_acquire);
  }
  // The configured batch-size floor; the effective threshold also adapts
  // upward to the live registry size (see Handle::required_batch).
  unsigned batch_capacity() const noexcept { return batch_capacity_; }
  asymfence::Path fence_path() const noexcept { return fence_path_; }

  // Observability (DESIGN.md §8): the per-handle cell list and the
  // aggregated snapshot.
  obs::DomainStats& obs_stats() noexcept { return stats_obs_; }
  obs::StatsSnapshot stats() const {
    obs::StatsSnapshot s = stats_obs_.snapshot();
    s.enabled = SCOT_STATS != 0 && cfg_.track_stats;
    s.pending = pending_nodes();
    s.retired_total = counters_.retired.load(std::memory_order_relaxed);
    s.reclaimed_total = counters_.reclaimed.load(std::memory_order_relaxed);
    return s;
  }

 private:
  friend class Handle;

  static constexpr std::uintptr_t kActiveEmpty = 0;
  static constexpr std::uintptr_t kInactive = 1;
  static constexpr std::int64_t kGuard = std::int64_t{1} << 62;

  using Record = HandleRegistry<Handle>::Record;
  static Record* record_of(Handle& h) noexcept {
    return static_cast<Record*>(h.registry_record_);
  }

  // Destructor-time cleanup: all threads quiescent, slots inactive and
  // drained, so only unsealed per-record batches and orphans remain.
  void drain_all() {
    std::uint64_t freed = 0;
    for (auto* r = registry_.head(); r != nullptr; r = r->next_record()) {
      ReclaimNode* n = r->handle.batch_head_;
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        pool_.free(r->index, n, n->alloc_size);
        ++freed;
        n = next;
      }
      r->handle.batch_head_ = nullptr;
      r->handle.batch_tail_ = nullptr;
      r->handle.batch_count_ = 0;
    }
    ReclaimNode* chains[] = {orphans_.take_all(), bg_.mailbox.take_all()};
    for (ReclaimNode* n : chains) {
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        pool_.free(0, n, n->alloc_size);
        ++freed;
        n = next;
      }
    }
    counters_.on_free(freed, cfg_.track_stats);
  }

  SmrConfig cfg_;
  NodePool pool_;
  SmrCounters counters_;
  std::atomic<std::uint64_t> clock_{1};
  unsigned batch_capacity_;
  asymfence::Path fence_path_;
  // Declared before the registry: handles hold raw cell pointers, so the
  // cell list must be destroyed after the records are.
  obs::DomainStats stats_obs_;
  HandleRegistry<Handle> registry_;
  OrphanList orphans_;
  ReclaimControl bg_;
  std::unique_ptr<DomainReclaimer<HyalineDomain>> reclaimer_;
#ifndef SCOT_DISALLOW_TID_SHIM
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  TidHandleShim<Handle> shim_;
#pragma GCC diagnostic pop
#endif
};

}  // namespace scot
