// Umbrella header for the reclamation schemes, plus the compile-time
// concepts data structures are written against (v1 indexed calls and the
// v2 guard-centric surface — see smr/guard.hpp and DESIGN.md §6).
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>

#include "common/stable_atomic.hpp"
#include "smr/ebr.hpp"
#include "smr/guard.hpp"
#include "smr/he.hpp"
#include "smr/hp.hpp"
#include "smr/hyaline.hpp"
#include "smr/ibr.hpp"
#include "smr/nr.hpp"
#include "smr/registry.hpp"
#include "smr/smr_config.hpp"

namespace scot {

// The v1 policy interface: indexed protection with manual slot bookkeeping.
// Kept intact as the compatibility surface — HandleCore and the scheme
// handles still provide every one of these calls, so pre-v2 code keeps
// compiling.  See DESIGN.md §4: indexed protection maps to real slots for
// HP/HE and to no-ops for EBR/IBR/Hyaline/NR, so one SCOT implementation
// serves all schemes.
template <class D>
concept SmrDomain = requires(D d, typename D::Handle& h,
                             const std::atomic<ReclaimNode*>& src,
                             ReclaimNode* n, unsigned idx) {
  { D::kName } -> std::convertible_to<const char*>;
  { D::kRobust } -> std::convertible_to<bool>;
#ifndef SCOT_DISALLOW_TID_SHIM
  { d.handle(idx) } -> std::same_as<typename D::Handle&>;
#endif
  { d.pending_nodes() } -> std::convertible_to<std::int64_t>;
  h.begin_op();
  h.end_op();
  { h.protect(src, idx) } -> std::same_as<ReclaimNode*>;
  h.publish(n, idx);
  h.dup(idx, idx);
  { h.op_valid() } -> std::convertible_to<bool>;
  h.revalidate_op();
  h.retire(n);
};

// The v2 contract the data structures in src/core are written against:
// everything v1 provides, plus the typed guard-centric surface — RAII
// operation guards, named protection slots with the ascending-dup
// discipline asserted inside, typed Protected<T> views and typed
// retirement.  All of it is a zero-cost veneer over the v1 calls, so any
// SmrDomain whose handle derives from HandleCore models SmrDomainV2 for
// free.
template <class D>
concept SmrDomainV2 =
    SmrDomain<D> &&
    requires(D d, typename D::Handle& h, TraversalGuard<typename D::Handle>& g,
             ProtectionSlot<typename D::Handle, ReclaimNode> slot,
             const StableAtomic<marked_ptr<ReclaimNode>>& link,
             Protected<ReclaimNode> p, ReclaimNode* anchor) {
      { d.config() } -> std::convertible_to<const SmrConfig&>;
      { g.handle() } -> std::same_as<typename D::Handle&>;
      { g.valid() } -> std::convertible_to<bool>;
      g.revalidate();
      { g.template slot<ReclaimNode>() } ->
          std::same_as<ProtectionSlot<typename D::Handle, ReclaimNode>>;
      { slot.protect(link) } -> std::same_as<Protected<ReclaimNode>>;
      slot.publish(anchor);
      slot.dup_from(slot);
      h.retire(p);
    };

static_assert(SmrDomainV2<NoReclaimDomain>);
static_assert(SmrDomainV2<EbrDomain>);
static_assert(SmrDomainV2<HpDomain>);
static_assert(SmrDomainV2<HpOptDomain>);
static_assert(SmrDomainV2<HeDomain>);
static_assert(SmrDomainV2<IbrDomain>);
static_assert(SmrDomainV2<HyalineDomain>);

// Dynamic membership (this PR): threads join()/leave() the domain at any
// point in its lifetime instead of being bound to a [0, max_threads) tid at
// construction.  join() returns a handle backed by a registry record;
// leave() retires the record for reuse and hands any still-pending retired
// nodes to the domain for adoption by the next retirer.  scoped_handle(d)
// (smr/handle_registry.hpp) is the RAII spelling and the preferred way to
// obtain a handle.  d.handle(tid) remains as a deprecated fixed-capacity
// shim.  See DESIGN.md §7 for the lifecycle invariants.
template <class D>
concept SmrDomainDynamic =
    SmrDomainV2<D> && requires(D d, typename D::Handle& h) {
      { d.join() } -> std::same_as<typename D::Handle&>;
      d.leave(h);
      { d.active_handles() } -> std::convertible_to<unsigned>;
      { d.total_handle_records() } -> std::convertible_to<std::size_t>;
      { d.registry() } ->
          std::same_as<const HandleRegistry<typename D::Handle>&>;
      // Background reclamation (DESIGN.md §9): every domain exposes the
      // uniform lifecycle surface; NR's is a no-op.
      { d.background_active() } -> std::convertible_to<bool>;
      { d.background_stats() } -> std::same_as<BgReclaimStats>;
      d.start_background_reclaimer();
      d.stop_background_reclaimer();
    };

static_assert(SmrDomainDynamic<NoReclaimDomain>);
static_assert(SmrDomainDynamic<EbrDomain>);
static_assert(SmrDomainDynamic<HpDomain>);
static_assert(SmrDomainDynamic<HpOptDomain>);
static_assert(SmrDomainDynamic<HeDomain>);
static_assert(SmrDomainDynamic<IbrDomain>);
static_assert(SmrDomainDynamic<HyalineDomain>);

// RAII guard for an SMR critical section (v1 spelling; TraversalGuard is
// the v2 equivalent and additionally owns slot allocation).
template <class Handle>
class OpGuard {
 public:
  explicit OpGuard(Handle& h) : h_(h) { h_.begin_op(); }
  ~OpGuard() { h_.end_op(); }
  OpGuard(const OpGuard&) = delete;
  OpGuard& operator=(const OpGuard&) = delete;

 private:
  Handle& h_;
};

}  // namespace scot
