// Per-operation latency percentiles across the scheme x structure grid.
//
// Every cell runs the standard harness workload (mixed 50/25/25 by default)
// with the runner's latency sampler on: every Nth operation is timed into a
// log-bucketed histogram (obs/histogram.hpp) and the merged p50/p99/p999
// land in the scot-bench v2 cells.  This is the reclamation tail-latency
// view the throughput figures hide — a scheme whose scans stall readers
// shows up here as a p999 spike long before it dents Mops.
//
// --trace <path> additionally writes the Chrome trace-event JSON of every
// SMR event ring (scan/seal/barrier spans, join/leave/adopt instants) after
// the sweep; load it in chrome://tracing or https://ui.perfetto.dev.  The
// rings only record in builds configured with -DSCOT_TRACE=ON — in a
// default build the file is written but empty.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fig_common.hpp"
#include "obs/trace.hpp"

namespace scot::bench {
namespace {

constexpr StructureId kStructures[] = {
    StructureId::kHMList,   StructureId::kHList, StructureId::kNMTree,
    StructureId::kHashMap,  StructureId::kSkipList,
};

int run(int argc, char** argv) {
  // Peel --trace by hand: extract_bench_flags (via fig_init) hard-errors on
  // flags it does not own.
  std::string trace_path;
  std::vector<char*> rest{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  fig_init(static_cast<int>(rest.size()), rest.data(), "latency");

  const auto threads = env_threads();
  const unsigned th = threads.back();  // deepest configured thread count
  const int ms = env_ms(200);
  const unsigned runs = env_runs();

  for (const StructureId structure : kStructures) {
    CaseConfig proto;
    proto.structure = structure;
    proto.key_range = 512;
    proto.threads = th;
    proto.millis = ms;
    proto.runs = runs;
    apply_session_flags(proto);

    char title[96];
    std::snprintf(title, sizeof(title), "latency: %s",
                  structure_name(structure));
    std::printf("== %s ==\n", title);
    std::printf("   range=%llu threads=%u mix=%d/%d/%d ms=%d runs=%u "
                "sample=1/%u\n",
                static_cast<unsigned long long>(proto.key_range), th,
                proto.read_pct, proto.insert_pct, proto.delete_pct, ms, runs,
                proto.latency_sample_every);

    Table t({"scheme", "p50 ns", "p99 ns", "p99.9 ns", "Mops"});
    for (const SchemeId s : kAllSchemes) {
      CaseConfig cfg = proto;
      cfg.scheme = s;
      const CaseResult r = run_case(cfg);
      fig_record(title, cfg, r);
      t.add_row({scheme_name(s), format_double(r.p50_ns, 0),
                 format_double(r.p99_ns, 0), format_double(r.p999_ns, 0),
                 format_double(r.mops, 2)});
    }
    t.print();
    std::printf("   (sampled per-op latency; bucket midpoints, <=6.25%% "
                "bucket error)\n\n");
  }

  const int rc = fig_finish();
  if (!trace_path.empty()) {
    const auto& log = scot::obs::TraceLog::instance();
    if (!log.export_chrome(trace_path)) {
      std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("wrote %llu trace event(s) to %s%s\n",
                static_cast<unsigned long long>(log.total_events()),
                trace_path.c_str(),
                SCOT_TRACE ? "" : " (build with -DSCOT_TRACE=ON to record)");
  }
  return rc;
}

}  // namespace
}  // namespace scot::bench

int main(int argc, char** argv) { return scot::bench::run(argc, argv); }
