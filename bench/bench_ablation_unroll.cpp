// Ablation (paper §3.2, Figure 5 left vs right): the unrolled two-phase
// Do_Find needs 2 hazard dups per safe-zone step and 1 per zone step; the
// simple variant needs 3 everywhere.  Under HP each extra dup is a store to
// a shared-visible slot, so the unrolled version should win, most visibly
// at small key ranges where traversals are short and dup cost is a large
// fraction of the operation.
//
// Both variants are registered AnyMap cells (StructureId::kHList unrolled,
// StructureId::kHListSimple simple), so the runs go through the registry-
// driven run_case() and the JSON cells carry distinct structure identities
// that bench_diff keys on.
#include <cstdio>

#include "bench/fig_common.hpp"

using namespace scot;
using namespace scot::bench;

static CaseResult run_list(StructureId structure, unsigned threads,
                           std::uint64_t range, int ms, SchemeId scheme,
                           const char* variant) {
  CaseConfig cfg;
  cfg.structure = structure;
  cfg.scheme = scheme;
  cfg.threads = threads;
  cfg.key_range = range;
  cfg.millis = ms;
  cfg.runs = env_runs();
  apply_session_flags(cfg);
  const CaseResult r = run_case(cfg);
  fig_record(std::string("unroll ablation, ") + variant, cfg, r);
  return r;
}

int main(int argc, char** argv) {
  fig_init(argc, argv, "ablation_unroll");
  const int ms = env_ms(300);
  std::printf(
      "SCOT ablation — §3.2 unrolled (Fig 5 right) vs simple (Fig 5 left) "
      "Do_Find\n\n");
  for (SchemeId scheme : {SchemeId::kHP, SchemeId::kHE}) {
    for (std::uint64_t range : {std::uint64_t{512}, std::uint64_t{10000}}) {
      Table t({"threads", "unrolled Mops", "simple Mops", "speedup"});
      for (unsigned th : env_threads()) {
        const CaseResult fast =
            run_list(StructureId::kHList, th, range, ms, scheme, "unrolled");
        const CaseResult simple = run_list(StructureId::kHListSimple, th,
                                           range, ms, scheme, "simple");
        t.add_row({std::to_string(th), format_double(fast.mops, 2),
                   format_double(simple.mops, 2),
                   format_double(simple.mops > 0 ? fast.mops / simple.mops : 0,
                                 3)});
      }
      std::printf("== %s, key range %llu ==\n", scheme_name(scheme),
                  static_cast<unsigned long long>(range));
      t.print();
      std::printf("\n");
    }
  }
  return fig_finish();
}
