// NR: the "no reclamation" baseline (leak memory).
//
// The paper's throughput figures include NR as the practical upper bound for
// performance: retirement is a counter bump and nothing is ever reclaimed.
// Interestingly the paper observes that EBR (and others) can *beat* NR when
// recycling is cheaper than fresh allocation — with this library's pool the
// same effect reproduces, because NR always takes the carve path while the
// reclaiming schemes hit their thread-local free lists.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/align.hpp"
#include "smr/handle_core.hpp"
#include "smr/node_pool.hpp"
#include "smr/smr_config.hpp"

namespace scot {

class NoReclaimDomain {
 public:
  static constexpr const char* kName = "NR";
  static constexpr bool kRobust = false;

  class Handle : public HandleCore<NoReclaimDomain, Handle> {
   public:
    using Base = HandleCore<NoReclaimDomain, Handle>;
    using Base::retire;  // typed retire(Protected<T>) — API v2
    Handle(NoReclaimDomain* dom, unsigned tid) : Base(dom, tid) {}

    void begin_op() noexcept {}
    void end_op() noexcept {}

    // `Src` is std::atomic<P> or StableAtomic<P> (pool-recycled link words).
    template <class Src, class P = typename Src::value_type>
    P protect(const Src& src, unsigned /*idx*/) noexcept {
      return src.load(std::memory_order_acquire);
    }
    template <class T>
    void publish(T* /*p*/, unsigned /*idx*/) noexcept {}
    void dup(unsigned /*i*/, unsigned /*j*/) noexcept {}

    static constexpr bool op_valid() noexcept { return true; }
    void revalidate_op() noexcept {}

    void retire(ReclaimNode* n) noexcept {
      n->debug_state = kNodeRetired;
      dom_->counters_.on_retire(dom_->cfg_.track_stats);
    }

    std::uint64_t on_alloc_era() noexcept { return 0; }
  };

  explicit NoReclaimDomain(SmrConfig cfg = {})
      : cfg_(cfg), pool_(cfg.max_threads) {
    handles_.reserve(cfg_.max_threads);
    for (unsigned t = 0; t < cfg_.max_threads; ++t)
      handles_.push_back(std::make_unique<Handle>(this, t));
  }

  Handle& handle(unsigned tid) { return *handles_.at(tid); }
  const SmrConfig& config() const noexcept { return cfg_; }
  NodePool& pool() noexcept { return pool_; }
  std::int64_t pending_nodes() const noexcept {
    return counters_.pending.load(std::memory_order_relaxed);
  }
  const SmrCounters& counters() const noexcept { return counters_; }

 private:
  friend class Handle;
  SmrConfig cfg_;
  NodePool pool_;
  SmrCounters counters_;
  std::vector<std::unique_ptr<Handle>> handles_;
};

}  // namespace scot
