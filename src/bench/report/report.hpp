// BenchReport: run metadata plus one entry per benchmark cell, serialised
// to the versioned scot-bench JSON schema (documented in README
// "Bench telemetry & regression gate").  bench_cli and the figure/table
// binaries write these files; bench_diff reads two of them back.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bench/options.hpp"

namespace scot::bench {

inline constexpr const char* kReportSchemaName = "scot-bench";
// v2 adds per-cell latency percentiles (p50_ns/p99_ns/p999_ns) and
// meta.stats_enabled.  v3 adds meta.noise_floor_pct and the background-
// reclaimer cell fields (bg/reclaim_interval_us/memory_target; cell_key
// grows a "|bg" suffix only when the reclaimer is on).  Strictly additive:
// the parser still loads v1/v2 files (the new fields default to 0/false/off),
// and cell_key() ignores measurements, so old baselines diff cleanly
// against new runs.  v4 adds the serving-layer cell fields
// (value_size/key_len/shards; cell_key grows "|vs<n>"/"|kl<n>"/"|sh<n>"
// suffixes only when non-zero) — again additive, so integer-keyed cells
// keep their v3 keys byte-for-byte.  v5 adds the container-concept cell
// field (split; cell_key grows a "|split" suffix only for split
// producer/consumer runs), so map/kv cells keep their v4 keys.
inline constexpr int kReportSchemaVersion = 5;

struct ReportMeta {
  std::string schema = kReportSchemaName;
  int schema_version = kReportSchemaVersion;
  std::string git_sha;        // configure-time HEAD (see src/CMakeLists.txt)
  std::string compiler;       // e.g. "gcc 12.2.0"
  std::string flags;          // CXX flags of the active build type
  std::string build_type;     // Release / RelWithDebInfo / ...
  unsigned hardware_threads = 0;
  std::string timestamp_utc;  // ISO 8601, e.g. "2026-07-30T12:00:00Z"
  // Which asymmetric-fence implementation the host would use when a run
  // requests asymmetric fences: "membarrier" or "fence-fallback"
  // (src/common/asymfence.hpp).  Cells record per-run on/off separately.
  std::string asym_fence;
  // Whether the binary was compiled with the SMR telemetry counters
  // (SCOT_STATS; DESIGN.md §8).  v2; loads as false from v1 files.
  bool stats_enabled = false;
  // Measured stats-on vs stats-off throughput delta of this host/binary
  // (bench_micro_smr sweep).  0 when the binary never measured it; loads
  // as 0 from files that predate the field.
  double noise_floor_pct = 0.0;
};

// Metadata of the running binary: build-time macros + runtime clock.
ReportMeta current_meta();

struct ReportCell {
  std::string bench;  // binary family, e.g. "fig8"
  std::string label;  // grid title, e.g. "Fig 8a: Harris-Michael list, ..."
  CaseConfig cfg;
  CaseResult result;
};

// Stable identity of a cell across runs: everything that defines the
// workload, none of the measurements.  seed/millis/runs are deliberately
// excluded so a short smoke run can be compared against the committed
// baseline.
std::string cell_key(const ReportCell& cell);

class BenchReport {
 public:
  BenchReport() : meta_(current_meta()) {}
  explicit BenchReport(ReportMeta meta) : meta_(std::move(meta)) {}

  void add(std::string bench, std::string label, const CaseConfig& cfg,
           const CaseResult& result);

  const ReportMeta& meta() const { return meta_; }
  // Mutable access for binaries that measure meta fields at run time
  // (bench_micro_smr records the stats noise floor it just swept).
  ReportMeta& meta() { return meta_; }
  const std::vector<ReportCell>& cells() const { return cells_; }

  std::string to_json() const;
  bool write_file(const std::string& path, std::string* error = nullptr) const;

  // Strict load: wrong schema name, unsupported version, or an
  // unresolvable scheme/structure name is an error, not a skipped cell.
  static std::optional<BenchReport> from_json(std::string_view text,
                                              std::string* error = nullptr);
  static std::optional<BenchReport> load_file(const std::string& path,
                                              std::string* error = nullptr);

 private:
  ReportMeta meta_;
  std::vector<ReportCell> cells_;
};

}  // namespace scot::bench
