// Figure 10: average number of retired-but-not-yet-reclaimed nodes for the
// lists (lower is better).  Expected shape: HP/HPopt lowest, EBR highest.
// Deviation from the paper: we *can* report Hyaline-1S because our pending
// gauge is domain-wide rather than per-thread (see EXPERIMENTS.md).
#include "bench/fig_common.hpp"

int main(int argc, char** argv) {
  using namespace scot::bench;
  fig_init(argc, argv, "fig10");
  std::printf("SCOT reproduction — Figure 10 (list memory overhead)\n\n");
  GridSpec a{"Fig 10a: Harris-Michael list, range 512", StructureId::kHMList,
             512, Metric::kAvgPending};
  a.include_nr = false;
  run_grid(a, 300);
  GridSpec b{"Fig 10a: Harris list (SCOT), range 512", StructureId::kHListWF,
             512, Metric::kAvgPending};
  b.include_nr = false;
  run_grid(b, 300);
  GridSpec c{"Fig 10b: Harris-Michael list, range 10,000",
             StructureId::kHMList, 10000, Metric::kAvgPending};
  c.include_nr = false;
  run_grid(c, 300);
  GridSpec d{"Fig 10b: Harris list (SCOT), range 10,000",
             StructureId::kHListWF, 10000, Metric::kAvgPending};
  d.include_nr = false;
  run_grid(d, 300);
  return fig_finish();
}
