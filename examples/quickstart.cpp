// Quickstart: the smallest complete SCOT program, against the single
// public entry point (scot.hpp, API v2).
//
// Creates a hazard-pointer reclamation domain, a Harris list with SCOT
// traversals on top of it, and runs a few threads of mixed operations.
// Scheme and structure are compile-time types here; see
// examples/any_map_runtime.cpp for picking both at runtime through
// scot::AnyMap.
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "scot.hpp"

int main() {
  using namespace scot;

  // 1. A reclamation domain.  Every scheme shares the same interface; swap
  //    HpDomain for EbrDomain / HeDomain / IbrDomain / HyalineDomain and the
  //    rest of the program is unchanged.
  SmrConfig cfg;
  cfg.max_threads = 4;  // handle ids 0..3
  HpDomain smr(cfg);

  // 2. A data structure templated over the domain.
  HarrisList<std::uint64_t, std::uint64_t, HpDomain> list(smr);

  // 3. Single-threaded use: every operation takes the thread's handle.
  //    scoped_handle() joins the domain and leaves again at scope end.
  auto main_handle = scoped_handle(smr);
  auto& h = main_handle.get();
  list.insert(h, 7, 700);
  list.insert(h, 3, 300);
  std::printf("contains(7) = %d\n", list.contains(h, 7));
  std::printf("get(3)      = %llu\n",
              static_cast<unsigned long long>(list.get(h, 3).value_or(0)));
  list.erase(h, 7);
  std::printf("contains(7) = %d after erase\n", list.contains(h, 7));

  // 4. Concurrent use: one handle per thread, nothing else to manage —
  //    retired nodes are reclaimed safely behind the scenes even while
  //    other threads are mid-traversal.
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      auto worker_handle = scoped_handle(smr);
      auto& handle = worker_handle.get();
      for (std::uint64_t i = 0; i < 10000; ++i) {
        const std::uint64_t k = (i * 31 + t) % 512;
        if (i % 3 == 0) {
          list.erase(handle, k);
        } else {
          list.insert(handle, k, k);
        }
        list.contains(handle, (k * 7) % 512);
      }
    });
  }
  for (auto& w : workers) w.join();

  std::printf("final size        = %zu\n", list.size_unsafe());
  std::printf("retired, unfreed  = %lld (bounded: hazard pointers are "
              "robust)\n",
              static_cast<long long>(smr.pending_nodes()));
  return 0;
}
