// Robustness property (the paper's (A)): a stalled thread must not cause
// unbounded memory growth under the robust schemes (HP/HPopt/HE/IBR/HLN),
// while EBR — by design — grows without bound until the stalled thread
// resumes.  This is the behavioural split that motivates the whole paper.
#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace scot {
namespace {

using test::TestNode;

template <class Smr>
class SmrRobustnessTest : public ::testing::Test {};

TYPED_TEST_SUITE(SmrRobustnessTest, test::ReclaimingSchemes);

// A stalled reader: opens an operation, protects one old node, then stops
// participating while a writer churns through fresh allocate/retire cycles.
template <class Smr>
std::int64_t pending_after_stalled_churn(Smr& smr, int churn) {
  auto stalled_h = scoped_handle(smr);
  auto writer_h = scoped_handle(smr);
  auto& stalled = stalled_h.get();
  auto& writer = writer_h.get();
  auto* old_node = writer.template alloc<TestNode>(std::uint64_t{1});
  std::atomic<ReclaimNode*> src{old_node};
  stalled.begin_op();
  (void)stalled.protect(src, 0);
  writer.retire(old_node);
  test::churn_retire(writer, churn);
  const std::int64_t pending = smr.pending_nodes();
  stalled.end_op();
  return pending;
}

TYPED_TEST(SmrRobustnessTest, StalledThreadBoundsGarbageIffRobust) {
  TypeParam smr(test::small_config(2));
  const int kChurn = test::scaled_iters(20000);
  const std::int64_t pending = pending_after_stalled_churn(smr, kChurn);
  if constexpr (TypeParam::kRobust) {
    // Theorem 1 flavour: H*N protected + N*R limbo slack + batch slack.
    EXPECT_LT(pending, 2048)
        << TypeParam::kName << " claims robustness but garbage grew";
  } else {
    EXPECT_GT(pending, kChurn / 2)
        << "EBR with a stalled reader should accumulate almost all retires";
  }
}

TYPED_TEST(SmrRobustnessTest, ResumedThreadUnblocksReclamation) {
  TypeParam smr(test::small_config(2));
  (void)pending_after_stalled_churn(smr, test::scaled_iters(20000));
  // (end_op() happens inside pending_after_stalled_churn.)
  auto writer_h = scoped_handle(smr);
  test::churn_retire(writer_h.get(), 4000);  // new scans after the stall
  EXPECT_LT(smr.pending_nodes(), 2048)
      << "all schemes must recover once the stalled thread resumes";
}

TYPED_TEST(SmrRobustnessTest, RepeatedStallsStayBounded) {
  if constexpr (!TypeParam::kRobust) {
    GTEST_SKIP() << "EBR is expected to be unbounded here";
  } else {
    TypeParam smr(test::small_config(2));
    for (int round = 0; round < 5; ++round) {
      const std::int64_t pending = pending_after_stalled_churn(smr, 5000);
      EXPECT_LT(pending, 2048) << "round " << round;
    }
  }
}

TYPED_TEST(SmrRobustnessTest, ManyStalledReadersStillBounded) {
  if constexpr (!TypeParam::kRobust) {
    GTEST_SKIP();
  } else {
    TypeParam smr(test::small_config(4));
    auto writer_h = scoped_handle(smr);
    auto& writer = writer_h.get();
    std::vector<TestNode*> victims;
    std::vector<std::unique_ptr<std::atomic<ReclaimNode*>>> srcs;
    std::vector<ScopedHandle<TypeParam>> readers;
    for (unsigned t = 0; t < 3; ++t) {
      auto* v = writer.template alloc<TestNode>(std::uint64_t{t});
      victims.push_back(v);
      srcs.push_back(std::make_unique<std::atomic<ReclaimNode*>>(v));
      readers.push_back(scoped_handle(smr));
      readers.back()->begin_op();
      (void)readers.back()->protect(*srcs.back(), 0);
    }
    for (auto* v : victims) writer.retire(v);
    test::churn_retire(writer, test::scaled_iters(20000));
    EXPECT_LT(smr.pending_nodes(), 4096);
    for (auto* v : victims) {
      EXPECT_EQ(v->debug_state, kNodeRetired) << "victims remain protected";
    }
    for (auto& r : readers) r->end_op();
  }
}

}  // namespace
}  // namespace scot
