// scot::AnyMap — the type-erased facade over the scheme × structure cross
// product, driven by the runtime registry (core/registry.hpp).
//
// AnyMap lets callers pick the reclamation scheme and the data structure as
// *runtime values* — the capability the per-scheme bench translation units
// used to fake with 7 copies of the same template instantiation.  Virtual
// dispatch sits only at operation granularity (one indirect call per
// insert/erase/contains/get); inside an operation the fully typed traversal
// runs, protect() included, so the PR 3 asymmetric-fence fast path is
// untouched (acceptance-checked by bench_micro_smr against BENCH_pr3.json).
//
// Threading contract: identical to the typed structures.  `tid` selects the
// per-thread handle of the underlying domain; a given tid must only ever be
// used by one thread at a time, and tids are dense in
// [0, options.smr.max_threads).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/registry.hpp"
#include "smr/registry.hpp"
#include "smr/smr_config.hpp"

namespace scot {

struct AnyMapOptions {
  SmrConfig smr;                 // domain configuration (max_threads, ...)
  std::size_t hash_buckets = 0;  // HashMap cells only; 0 = 64 buckets
};

namespace detail {

// The abstract implementation the registry factories produce.  One concrete
// TypedAnyMap<Smr, DS> per registered cell lives in src/core/any_map.cpp.
class AnyMapImpl {
 public:
  virtual ~AnyMapImpl() = default;
  virtual bool insert(unsigned tid, std::uint64_t key, std::uint64_t value) = 0;
  virtual bool erase(unsigned tid, std::uint64_t key) = 0;
  virtual bool contains(unsigned tid, std::uint64_t key) = 0;
  virtual std::optional<std::uint64_t> get(unsigned tid, std::uint64_t key) = 0;
  virtual std::size_t size_unsafe() const = 0;
  virtual std::int64_t pending_nodes() const = 0;
  virtual std::uint64_t restarts() const = 0;
  virtual std::uint64_t recoveries() const = 0;
};

}  // namespace detail

class AnyMap {
 public:
  using Key = std::uint64_t;
  using Value = std::uint64_t;

  // Builds the (scheme, structure) cell through the runtime registry.
  // Returns nullopt for unregistered cells (e.g. StructureId::kNone).
  // Defined in src/core/any_map.cpp, the only TU that pays for the cross
  // product's template instantiations.
  static std::optional<AnyMap> make(SchemeId scheme, StructureId structure,
                                    const AnyMapOptions& options = {});

  AnyMap(AnyMap&&) = default;
  AnyMap& operator=(AnyMap&&) = default;

  // --- operations (one virtual hop each; `tid` picks the handle) ----------
  bool insert(unsigned tid, Key key, Value value = {}) {
    return impl_->insert(tid, key, value);
  }
  bool erase(unsigned tid, Key key) { return impl_->erase(tid, key); }
  bool contains(unsigned tid, Key key) { return impl_->contains(tid, key); }
  std::optional<Value> get(unsigned tid, Key key) {
    return impl_->get(tid, key);
  }

  // --- observers -----------------------------------------------------------
  // Single-threaded full iteration over the structure (tests/teardown only).
  std::size_t size_unsafe() const { return impl_->size_unsafe(); }
  // Domain-wide retired-but-unreclaimed gauge (the paper's Figures 10-12).
  std::int64_t pending_nodes() const { return impl_->pending_nodes(); }
  // Table 2 telemetry, summed over all handles.
  std::uint64_t restarts() const { return impl_->restarts(); }
  std::uint64_t recoveries() const { return impl_->recoveries(); }

  SchemeId scheme() const { return scheme_; }
  StructureId structure() const { return structure_; }
  const char* scheme_name() const { return scot::scheme_name(scheme_); }
  const char* structure_name() const {
    return scot::structure_name(structure_);
  }
  unsigned max_threads() const { return max_threads_; }

 private:
  AnyMap(SchemeId scheme, StructureId structure, unsigned max_threads,
         std::unique_ptr<detail::AnyMapImpl> impl)
      : scheme_(scheme),
        structure_(structure),
        max_threads_(max_threads),
        impl_(std::move(impl)) {}

  SchemeId scheme_;
  StructureId structure_;
  unsigned max_threads_;
  std::unique_ptr<detail::AnyMapImpl> impl_;
};

}  // namespace scot
