// Umbrella header for the reclamation schemes, plus the compile-time concept
// data structures are written against.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>

#include "smr/ebr.hpp"
#include "smr/he.hpp"
#include "smr/hp.hpp"
#include "smr/hyaline.hpp"
#include "smr/ibr.hpp"
#include "smr/nr.hpp"
#include "smr/smr_config.hpp"

namespace scot {

// The policy interface every data structure in src/core is templated over.
// See DESIGN.md §4: indexed protection maps to real slots for HP/HE and to
// no-ops for EBR/IBR/Hyaline/NR, so one SCOT implementation serves all
// schemes.
template <class D>
concept SmrDomain = requires(D d, typename D::Handle& h,
                             const std::atomic<ReclaimNode*>& src,
                             ReclaimNode* n, unsigned idx) {
  { D::kName } -> std::convertible_to<const char*>;
  { D::kRobust } -> std::convertible_to<bool>;
  { d.handle(idx) } -> std::same_as<typename D::Handle&>;
  { d.pending_nodes() } -> std::convertible_to<std::int64_t>;
  h.begin_op();
  h.end_op();
  { h.protect(src, idx) } -> std::same_as<ReclaimNode*>;
  h.publish(n, idx);
  h.dup(idx, idx);
  { h.op_valid() } -> std::convertible_to<bool>;
  h.revalidate_op();
  h.retire(n);
};

static_assert(SmrDomain<NoReclaimDomain>);
static_assert(SmrDomain<EbrDomain>);
static_assert(SmrDomain<HpDomain>);
static_assert(SmrDomain<HpOptDomain>);
static_assert(SmrDomain<HeDomain>);
static_assert(SmrDomain<IbrDomain>);
static_assert(SmrDomain<HyalineDomain>);

// RAII guard for an SMR critical section.
template <class Handle>
class OpGuard {
 public:
  explicit OpGuard(Handle& h) : h_(h) { h_.begin_op(); }
  ~OpGuard() { h_.end_op(); }
  OpGuard(const OpGuard&) = delete;
  OpGuard& operator=(const OpGuard&) = delete;

 private:
  Handle& h_;
};

}  // namespace scot
