// Compile-time-gated event tracing with a Chrome trace-event exporter.
//
// Each thread that emits an event owns one fixed-capacity SPSC ring of
// TSC-stamped slots; rings are claimed from (and on thread exit returned to)
// a process-wide leaky registry, so thread churn reuses rings instead of
// growing without bound.  The exporter walks every ring and writes Chrome
// trace-event JSON (the `traceEvents` array format) that chrome://tracing
// and Perfetto load directly.
//
// Slot discipline: every slot field is a relaxed atomic plus a per-slot
// sequence word derived from the *monotonic event index* — writer marks the
// slot busy (odd), stores the fields, then publishes `2*index + 2` with
// release.  A reader accepts a slot only when the sequence it acquires
// matches the event index it expects, re-checked after reading the fields,
// so a wrapped or in-flight slot is skipped rather than torn (and the
// index-derived sequence cannot ABA across wraps).  Everything is atomic,
// so the ring is TSan-clean by construction — stats_test hammers exactly
// this wrap/snapshot race.
//
// The ring and registry types are always compiled (tests exercise them in
// every configuration); only the emission hooks — TraceSpan, trace_instant —
// and the thread-local ring claim are gated by SCOT_TRACE, so the default
// build carries no tracing code on any path.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/timing.hpp"

#ifndef SCOT_TRACE
#define SCOT_TRACE 0
#endif

namespace scot::obs {

enum class TraceKind : std::uint32_t {
  kScan = 0,   // limbo scan (duration)
  kSeal,       // Hyaline batch seal (duration)
  kBarrier,    // process-wide heavy barrier (duration)
  kJoin,       // registry join (instant)
  kLeave,      // registry leave (instant)
  kAdopt,      // orphan adoption (instant)
  kKindCount_
};

inline constexpr const char* trace_kind_name(TraceKind k) noexcept {
  switch (k) {
    case TraceKind::kScan: return "scan";
    case TraceKind::kSeal: return "seal";
    case TraceKind::kBarrier: return "barrier";
    case TraceKind::kJoin: return "join";
    case TraceKind::kLeave: return "leave";
    case TraceKind::kAdopt: return "adopt";
    case TraceKind::kKindCount_: break;
  }
  return "?";
}

inline constexpr bool trace_kind_instant(TraceKind k) noexcept {
  return k == TraceKind::kJoin || k == TraceKind::kLeave ||
         k == TraceKind::kAdopt;
}

// Timestamp source: raw TSC where cheap, steady-clock ns elsewhere.  The
// exporter converts to wall microseconds with a two-point calibration, so
// the unit here only needs to be monotonic and linear.
inline std::uint64_t trace_clock() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return now_ns();
#endif
}

struct TraceEvent {
  std::uint64_t start = 0;  // trace_clock units
  std::uint64_t dur = 0;
  TraceKind kind = TraceKind::kScan;
};

// Fixed-capacity single-producer ring; any thread may snapshot.
class TraceRing {
 public:
  static constexpr std::size_t kCapacity = std::size_t{1} << 12;

  // Producer side (owning thread only).
  void emit(TraceKind k, std::uint64_t start, std::uint64_t dur) noexcept {
    Slot& s = slots_[head_ & (kCapacity - 1)];
    s.seq.store(2 * head_ + 1, std::memory_order_relaxed);  // busy
    s.start.store(start, std::memory_order_relaxed);
    s.dur.store(dur, std::memory_order_relaxed);
    s.kind.store(static_cast<std::uint32_t>(k), std::memory_order_relaxed);
    s.seq.store(2 * head_ + 2, std::memory_order_release);  // published
    ++head_;
    count_.store(head_, std::memory_order_release);
  }

  // Total events ever emitted (>= kCapacity once wrapped).
  std::uint64_t events_emitted() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

  // Appends the currently readable events, oldest first.  Slots the writer
  // has wrapped past or is mid-write on are skipped, never torn.  Returns
  // the number of events appended.
  std::size_t snapshot(std::vector<TraceEvent>& out) const {
    const std::uint64_t c = count_.load(std::memory_order_acquire);
    const std::uint64_t lo = c > kCapacity ? c - kCapacity : 0;
    std::size_t appended = 0;
    for (std::uint64_t i = lo; i < c; ++i) {
      const Slot& s = slots_[i & (kCapacity - 1)];
      const std::uint64_t want = 2 * i + 2;
      if (s.seq.load(std::memory_order_acquire) != want) continue;
      TraceEvent e;
      e.start = s.start.load(std::memory_order_relaxed);
      e.dur = s.dur.load(std::memory_order_relaxed);
      e.kind =
          static_cast<TraceKind>(s.kind.load(std::memory_order_relaxed));
      if (s.seq.load(std::memory_order_acquire) != want) continue;
      out.push_back(e);
      ++appended;
    }
    return appended;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> start{0};
    std::atomic<std::uint64_t> dur{0};
    std::atomic<std::uint32_t> kind{0};
  };

  Slot slots_[kCapacity];
  std::uint64_t head_ = 0;  // writer-private
  std::atomic<std::uint64_t> count_{0};
};

// Process-wide ring registry: a leaky singleton (threads may still release
// rings during static destruction) holding an intrusive list of rings with
// a claimed flag for reuse across thread churn.
class TraceLog {
 public:
  static TraceLog& instance() {
    static TraceLog* g = new TraceLog;  // leaked by design
    return *g;
  }

  TraceRing* claim() {
    for (Node* n = head_.load(std::memory_order_acquire); n != nullptr;
         n = n->next) {
      bool free = false;
      if (n->claimed.compare_exchange_strong(free, true,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed))
        return &n->ring;
    }
    auto* n = new Node;
    n->claimed.store(true, std::memory_order_relaxed);
    n->id = static_cast<std::uint32_t>(
        ids_.fetch_add(1, std::memory_order_relaxed));
    Node* h = head_.load(std::memory_order_relaxed);
    do {
      n->next = h;
    } while (!head_.compare_exchange_weak(h, n, std::memory_order_release,
                                          std::memory_order_relaxed));
    return &n->ring;
  }

  void release(TraceRing* r) noexcept {
    for (Node* n = head_.load(std::memory_order_acquire); n != nullptr;
         n = n->next) {
      if (&n->ring == r) {
        n->claimed.store(false, std::memory_order_release);
        return;
      }
    }
  }

  // Chrome trace-event JSON ({"traceEvents": [...]}), loadable in
  // chrome://tracing and Perfetto.  Duration events use ph:"X" (ts/dur in
  // microseconds); instant events use ph:"i" with thread scope.  One export
  // "tid" per ring.  Returns false if the file cannot be opened.
  bool export_chrome(const std::string& path) const {
    std::ofstream os(path);
    if (!os) return false;
    export_chrome_to(os);
    return os.good();
  }

  template <class Stream>
  void export_chrome_to(Stream& os) const {
    // Two-point calibration: trace_clock units -> wall microseconds.
    const std::uint64_t tsc1 = trace_clock();
    const std::uint64_t ns1 = now_ns();
    double ns_per_tick = 1.0;
    if (tsc1 > tsc0_ && ns1 > ns0_)
      ns_per_tick = static_cast<double>(ns1 - ns0_) /
                    static_cast<double>(tsc1 - tsc0_);
    os << "{\"traceEvents\":[";
    bool first = true;
    std::vector<TraceEvent> events;
    for (Node* n = head_.load(std::memory_order_acquire); n != nullptr;
         n = n->next) {
      events.clear();
      n->ring.snapshot(events);
      for (const TraceEvent& e : events) {
        const double ts_us =
            static_cast<double>(e.start - tsc0_) * ns_per_tick / 1000.0;
        const double dur_us =
            static_cast<double>(e.dur) * ns_per_tick / 1000.0;
        if (!first) os << ",";
        first = false;
        os << "{\"name\":\"" << trace_kind_name(e.kind)
           << "\",\"cat\":\"smr\",\"pid\":1,\"tid\":" << n->id;
        if (trace_kind_instant(e.kind)) {
          os << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts_us << "}";
        } else {
          os << ",\"ph\":\"X\",\"ts\":" << ts_us << ",\"dur\":" << dur_us
             << "}";
        }
      }
    }
    os << "]}";
  }

  std::uint64_t total_events() const noexcept {
    std::uint64_t total = 0;
    for (Node* n = head_.load(std::memory_order_acquire); n != nullptr;
         n = n->next)
      total += n->ring.events_emitted();
    return total;
  }

 private:
  TraceLog() : tsc0_(trace_clock()), ns0_(now_ns()) {}

  struct Node {
    TraceRing ring;
    std::atomic<bool> claimed{false};
    std::uint32_t id = 0;
    Node* next = nullptr;  // immutable once published
  };

  std::atomic<Node*> head_{nullptr};
  std::atomic<std::uint64_t> ids_{0};
  const std::uint64_t tsc0_;
  const std::uint64_t ns0_;
};

#if SCOT_TRACE
namespace trace_detail {
struct RingHolder {
  TraceRing* ring;
  RingHolder() : ring(TraceLog::instance().claim()) {}
  ~RingHolder() { TraceLog::instance().release(ring); }
};
}  // namespace trace_detail

inline TraceRing& tls_trace_ring() {
  thread_local trace_detail::RingHolder holder;
  return *holder.ring;
}
#endif

// Instant event (join/leave/adopt).  Compiles away when SCOT_TRACE=0.
inline void trace_instant(TraceKind k) noexcept {
#if SCOT_TRACE
  tls_trace_ring().emit(k, trace_clock(), 0);
#else
  (void)k;
#endif
}

// RAII duration event (scan/seal/barrier).  Compiles away when SCOT_TRACE=0.
class TraceSpan {
 public:
#if SCOT_TRACE
  explicit TraceSpan(TraceKind k) noexcept : kind_(k), t0_(trace_clock()) {}
  ~TraceSpan() { tls_trace_ring().emit(kind_, t0_, trace_clock() - t0_); }
#else
  explicit TraceSpan(TraceKind k) noexcept { (void)k; }
  ~TraceSpan() = default;
#endif
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
#if SCOT_TRACE
  TraceKind kind_;
  std::uint64_t t0_;
#endif
};

}  // namespace scot::obs
