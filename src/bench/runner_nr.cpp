#include "bench/runner.hpp"
#include "bench/runner_impl.hpp"

namespace scot::bench {

CaseResult run_case_nr(const CaseConfig& cfg) {
  return detail::run_with_scheme<NoReclaimDomain>(cfg);
}

}  // namespace scot::bench
