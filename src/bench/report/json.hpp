// Dependency-free JSON for the bench telemetry subsystem: a streaming
// writer (pretty-printed, stable key order, so the committed baseline
// diffs cleanly in review) and a small recursive-descent parser used by
// bench_diff to read result files back.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace scot::bench::json {

// Parsed JSON value.  Objects keep parallel `keys`/`items` vectors so the
// member order of the input survives; arrays use `items` alone.  (Parallel
// vectors rather than vector<pair<string, Value>> because a pair of an
// incomplete type is formally unsupported.)
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<std::string> keys;  // object member names, parallel to items
  std::vector<Value> items;       // array elements or object member values

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  // Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  double num_or(double def) const {
    return type == Type::kNumber ? number : def;
  }
  std::string_view str_or(std::string_view def) const {
    return type == Type::kString ? std::string_view(string) : def;
  }
};

// Whole-document parse; rejects trailing garbage.  `error`, when given,
// receives a one-line reason with the byte offset.
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

// `s` as a double-quoted JSON string with all mandatory escapes applied.
std::string quote(std::string_view s);

// Streaming writer producing 2-space-indented output.  Usage errors
// (value with no open array, key outside an object) are programming bugs
// in the caller; the writer does not try to diagnose them.
class Writer {
 public:
  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();
  Writer& key(std::string_view k);  // must be inside an object

  Writer& value(std::string_view v);
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(double v);  // non-finite values serialise as null
  Writer& value(std::uint64_t v);
  Writer& value(std::int64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  Writer& value(bool v);
  Writer& null();

  std::string take() { return std::move(out_); }
  const std::string& str() const { return out_; }

 private:
  void pre_value();
  void newline_indent();

  std::string out_;
  std::vector<bool> has_entry_;  // per open scope: wrote at least one entry
  bool after_key_ = false;
};

}  // namespace scot::bench::json
