// Runtime scheme registry: the closed set of reclamation schemes this build
// knows, as *values*.
//
// `SchemeId` used to live in the bench layer (src/bench/options.hpp), which
// meant the CLI owned the scheme name table while the SMR layer only knew
// types.  API v2 inverts that: this header is the single source of truth for
// scheme identity — the bench options, the JSON reports, the `scot::AnyMap`
// facade and the examples all resolve names through it.  Adding a scheme is
// one enum value + one `kSchemeInfos` row here, plus one registration line
// in src/core/any_map.cpp (see DESIGN.md §6 for the full recipe).
//
// This header is deliberately light (no domain headers): it is included by
// everything that talks *about* schemes.  The scheme types themselves are
// only pulled in by the translation units that instantiate them.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace scot {

enum class SchemeId { kNR, kEBR, kHP, kHPopt, kHE, kIBR, kHLN };

inline constexpr SchemeId kAllSchemes[] = {
    SchemeId::kNR, SchemeId::kEBR, SchemeId::kHP,  SchemeId::kHPopt,
    SchemeId::kHE, SchemeId::kIBR, SchemeId::kHLN};

// One row per scheme.  `robust` mirrors Domain::kRobust; src/core/any_map.cpp
// static_asserts the two never drift apart.
struct SchemeInfo {
  SchemeId id;
  const char* name;    // paper-artifact CLI spelling (Appendix A.5)
  bool robust;         // bounded garbage under stalled threads
};

inline constexpr SchemeInfo kSchemeInfos[] = {
    {SchemeId::kNR, "NR", false},     {SchemeId::kEBR, "EBR", false},
    {SchemeId::kHP, "HP", true},      {SchemeId::kHPopt, "HPopt", true},
    {SchemeId::kHE, "HE", true},      {SchemeId::kIBR, "IBR", true},
    {SchemeId::kHLN, "HLN", true},
};

inline constexpr SchemeInfo scheme_info(SchemeId s) noexcept {
  for (const SchemeInfo& info : kSchemeInfos) {
    if (info.id == s) return info;
  }
  return SchemeInfo{s, "?", false};
}

inline constexpr const char* scheme_name(SchemeId s) noexcept {
  return scheme_info(s).name;
}

// Reverse lookup for the paper-artifact CLI spellings; names are case-exact.
inline std::optional<SchemeId> scheme_from_name(std::string_view name) {
  for (const SchemeInfo& info : kSchemeInfos) {
    if (name == info.name) return info.id;
  }
  return std::nullopt;
}

}  // namespace scot
