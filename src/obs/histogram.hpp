// Log-linear latency histogram (HdrHistogram-style), dependency-free.
//
// Values are bucketed by octave (position of the most significant bit) and
// each octave is split into 2^kSubBits linear sub-buckets, so the relative
// bucket width is bounded by 2^-kSubBits (6.25% with 4 sub-bits) across the
// full uint64 range.  That bound is what the stats_test checks: a percentile
// read from the histogram must land within one bucket of the same percentile
// computed from the sorted raw samples.
//
// Concurrency contract (DESIGN.md §8): buckets are relaxed atomics with a
// single-writer discipline — record() is a plain load+store pair (compiles
// to ordinary increments on x86/ARM), merge()/percentile() read other
// threads' cells with relaxed loads.  Readers may observe a mid-flight
// histogram; the aggregate is approximate while writers run and exact in
// quiescence, exactly like the domain-wide pending gauge.  No fences, no
// RMWs, nothing on any fast path.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

namespace scot::obs {

class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 4;
  static constexpr unsigned kSubBuckets = 1u << kSubBits;
  // One linear group for values < kSubBuckets, then one group per octave.
  static constexpr unsigned kGroups = 64 - kSubBits + 1;
  static constexpr unsigned kBucketCount = kGroups * kSubBuckets;

  // Single-writer record (the owning thread); see the header comment.
  void record(std::uint64_t v) noexcept {
    bump(buckets_[index_of(v)], 1);
    bump(count_, 1);
    bump(sum_, v);
    if (v < min_.load(std::memory_order_relaxed))
      min_.store(v, std::memory_order_relaxed);
    if (v > max_.load(std::memory_order_relaxed))
      max_.store(v, std::memory_order_relaxed);
  }

  // Bucket-wise merge of another histogram into this one.  This histogram
  // must be owned by the calling thread; `o` may still be written (the
  // merge then captures a relaxed snapshot).
  void merge(const LatencyHistogram& o) noexcept {
    for (unsigned i = 0; i < kBucketCount; ++i)
      bump(buckets_[i], o.buckets_[i].load(std::memory_order_relaxed));
    bump(count_, o.count_.load(std::memory_order_relaxed));
    bump(sum_, o.sum_.load(std::memory_order_relaxed));
    const std::uint64_t omin = o.min_.load(std::memory_order_relaxed);
    const std::uint64_t omax = o.max_.load(std::memory_order_relaxed);
    if (omin < min_.load(std::memory_order_relaxed))
      min_.store(omin, std::memory_order_relaxed);
    if (omax > max_.load(std::memory_order_relaxed))
      max_.store(omax, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t min() const noexcept {
    const std::uint64_t m = min_.load(std::memory_order_relaxed);
    return count() == 0 ? 0 : m;
  }
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  double mean() const noexcept {
    const std::uint64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
  }

  // Value at percentile p (0..100]: the representative (midpoint) value of
  // the bucket containing the ceil(p% * count)-th sample.  0 when empty.
  double percentile(double p) const noexcept {
    const std::uint64_t total = count();
    if (total == 0) return 0.0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(total) + 0.5);
    if (rank < 1) rank = 1;
    if (rank > total) rank = total;
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBucketCount; ++i) {
      seen += buckets_[i].load(std::memory_order_relaxed);
      if (seen >= rank) return value_of(i);
    }
    return value_of(kBucketCount - 1);
  }

  // Bucket index of a value: linear below kSubBuckets, log-linear above.
  static unsigned index_of(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<unsigned>(v);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned group = msb - kSubBits + 1;
    const unsigned sub =
        static_cast<unsigned>((v >> (msb - kSubBits)) & (kSubBuckets - 1));
    return group * kSubBuckets + sub;
  }

  // Representative (midpoint) value of a bucket.
  static double value_of(unsigned index) noexcept {
    const unsigned group = index / kSubBuckets;
    const unsigned sub = index % kSubBuckets;
    if (group == 0) return static_cast<double>(sub);
    const unsigned shift = group - 1;
    const double base =
        static_cast<double>(kSubBuckets + sub) * exp2u(shift);
    return base + exp2u(shift) / 2.0;
  }

 private:
  static void bump(std::atomic<std::uint64_t>& a, std::uint64_t n) noexcept {
    a.store(a.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);
  }
  static double exp2u(unsigned e) noexcept {
    double v = 1.0;
    while (e >= 32) { v *= 4294967296.0; e -= 32; }
    return v * static_cast<double>(std::uint64_t{1} << e);
  }

  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace scot::obs
