// Sequential set semantics for the three list variants (Harris-Michael,
// Harris+SCOT, Harris+SCOT simple traversal), typed over all seven SMR
// schemes: one implementation bug in protect/dup plumbing typically shows up
// as a semantic failure in exactly one (structure, scheme) cell.
#include <gtest/gtest.h>

#include <limits>

#include "tests/test_util.hpp"

namespace scot {
namespace {

using Key = std::uint64_t;
using Val = std::uint64_t;

template <class Smr>
struct ListFixtures {
  using HM = HarrisMichaelList<Key, Val, Smr>;
  using HL = HarrisList<Key, Val, Smr>;
  using HLSimple = HarrisList<Key, Val, Smr, HarrisListSimpleTraits>;
};

template <class Smr>
class ListSemanticsTest : public ::testing::Test {};

TYPED_TEST_SUITE(ListSemanticsTest, test::AllSchemes);

template <class List, class Smr>
void check_basic_semantics(Smr& smr) {
  List list(smr);
  auto& h = smr.handle(0);
  EXPECT_FALSE(list.contains(h, 1));
  EXPECT_FALSE(list.erase(h, 1));
  EXPECT_EQ(list.size_unsafe(), 0u);

  EXPECT_TRUE(list.insert(h, 1, 10));
  EXPECT_TRUE(list.insert(h, 3, 30));
  EXPECT_TRUE(list.insert(h, 2, 20));
  EXPECT_FALSE(list.insert(h, 2, 99)) << "duplicate insert must fail";
  EXPECT_EQ(list.size_unsafe(), 3u);

  EXPECT_TRUE(list.contains(h, 1));
  EXPECT_TRUE(list.contains(h, 2));
  EXPECT_TRUE(list.contains(h, 3));
  EXPECT_FALSE(list.contains(h, 4));

  EXPECT_EQ(list.get(h, 1).value_or(0), 10u);
  EXPECT_EQ(list.get(h, 2).value_or(0), 20u) << "duplicate must keep old value";
  EXPECT_FALSE(list.get(h, 4).has_value());

  EXPECT_TRUE(list.erase(h, 2));
  EXPECT_FALSE(list.erase(h, 2));
  EXPECT_FALSE(list.contains(h, 2));
  EXPECT_EQ(list.size_unsafe(), 2u);

  // Reinsert after erase.
  EXPECT_TRUE(list.insert(h, 2, 21));
  EXPECT_EQ(list.get(h, 2).value_or(0), 21u);
}

template <class List, class Smr>
void check_boundary_keys(Smr& smr) {
  List list(smr);
  auto& h = smr.handle(0);
  const Key lo = 0;
  const Key hi = std::numeric_limits<Key>::max();
  EXPECT_TRUE(list.insert(h, lo, 1));
  EXPECT_TRUE(list.insert(h, hi, 2));
  EXPECT_TRUE(list.contains(h, lo));
  EXPECT_TRUE(list.contains(h, hi));
  EXPECT_FALSE(list.insert(h, hi, 3));
  EXPECT_TRUE(list.erase(h, lo));
  EXPECT_TRUE(list.contains(h, hi)) << "erasing 0 must not disturb max-key";
  EXPECT_TRUE(list.erase(h, hi));
  EXPECT_EQ(list.size_unsafe(), 0u);
}

template <class List, class Smr>
void check_descending_and_ascending_fill(Smr& smr) {
  {
    List list(smr);
    auto& h = smr.handle(0);
    for (Key k = 100; k-- > 0;) EXPECT_TRUE(list.insert(h, k, k));
    EXPECT_EQ(list.size_unsafe(), 100u);
    for (Key k = 0; k < 100; ++k) EXPECT_TRUE(list.contains(h, k));
  }
  {
    List list(smr);
    auto& h = smr.handle(0);
    for (Key k = 0; k < 100; ++k) EXPECT_TRUE(list.insert(h, k, k));
    for (Key k = 0; k < 100; ++k) EXPECT_TRUE(list.erase(h, k));
    EXPECT_EQ(list.size_unsafe(), 0u);
  }
}

TYPED_TEST(ListSemanticsTest, HarrisMichaelBasics) {
  TypeParam smr(test::small_config());
  check_basic_semantics<typename ListFixtures<TypeParam>::HM>(smr);
}
TYPED_TEST(ListSemanticsTest, HarrisScotBasics) {
  TypeParam smr(test::small_config());
  check_basic_semantics<typename ListFixtures<TypeParam>::HL>(smr);
}
TYPED_TEST(ListSemanticsTest, HarrisScotSimpleBasics) {
  TypeParam smr(test::small_config());
  check_basic_semantics<typename ListFixtures<TypeParam>::HLSimple>(smr);
}

TYPED_TEST(ListSemanticsTest, HarrisMichaelBoundaryKeys) {
  TypeParam smr(test::small_config());
  check_boundary_keys<typename ListFixtures<TypeParam>::HM>(smr);
}
TYPED_TEST(ListSemanticsTest, HarrisScotBoundaryKeys) {
  TypeParam smr(test::small_config());
  check_boundary_keys<typename ListFixtures<TypeParam>::HL>(smr);
}

TYPED_TEST(ListSemanticsTest, HarrisMichaelFillPatterns) {
  TypeParam smr(test::small_config());
  check_descending_and_ascending_fill<typename ListFixtures<TypeParam>::HM>(
      smr);
}
TYPED_TEST(ListSemanticsTest, HarrisScotFillPatterns) {
  TypeParam smr(test::small_config());
  check_descending_and_ascending_fill<typename ListFixtures<TypeParam>::HL>(
      smr);
}

TYPED_TEST(ListSemanticsTest, CustomComparatorReversesOrder) {
  TypeParam smr(test::small_config());
  HarrisList<Key, Val, TypeParam, HarrisListTraits, std::greater<Key>> list(
      smr);
  auto& h = smr.handle(0);
  EXPECT_TRUE(list.insert(h, 5, 0));
  EXPECT_TRUE(list.insert(h, 9, 0));
  EXPECT_TRUE(list.insert(h, 1, 0));
  EXPECT_FALSE(list.insert(h, 9, 0));
  EXPECT_TRUE(list.contains(h, 9));
  EXPECT_TRUE(list.erase(h, 5));
  EXPECT_FALSE(list.contains(h, 5));
  EXPECT_EQ(list.size_unsafe(), 2u);
}

TYPED_TEST(ListSemanticsTest, EraseToEmptyAndReuse) {
  TypeParam smr(test::small_config());
  typename ListFixtures<TypeParam>::HL list(smr);
  auto& h = smr.handle(0);
  for (int round = 0; round < 10; ++round) {
    for (Key k = 0; k < 20; ++k) ASSERT_TRUE(list.insert(h, k, k));
    for (Key k = 0; k < 20; ++k) ASSERT_TRUE(list.erase(h, k));
    ASSERT_EQ(list.size_unsafe(), 0u) << "round " << round;
  }
  // Node recycling must have kicked in for reclaiming schemes.
  if constexpr (!std::is_same_v<TypeParam, NoReclaimDomain>) {
    EXPECT_GT(smr.pool().total_reused(), 0u);
  }
}

TYPED_TEST(ListSemanticsTest, GetReturnsInsertedValueNotDefault) {
  TypeParam smr(test::small_config());
  typename ListFixtures<TypeParam>::HM list(smr);
  auto& h = smr.handle(0);
  EXPECT_TRUE(list.insert(h, 123, 456));
  auto v = list.get(h, 123);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 456u);
}

}  // namespace
}  // namespace scot
