// Blocking half of the background reclaimer service thread (DESIGN.md §9).
//
// Kept out of the header so the scheme headers never pull <mutex> /
// <condition_variable> into every TU, and so the doorbell protocol lives in
// exactly one place.
//
// Doorbell protocol (mutator side is ring(), wait side is the loop body):
//  * ring() stores `work_ = true` (release) and notifies only when it
//    observes `sleeping_ == true` (acquire).  The service thread sets
//    `sleeping_` under the mutex *before* evaluating the wait predicate, and
//    the predicate re-reads `work_`, so the only way a ring is missed is
//    when it lands after the predicate check and before the notify matters —
//    and then the bounded wait_for wakes the thread within one
//    reclaim_interval anyway.  Lost wakeups cost latency (≤ interval), never
//    correctness.
//  * `work_` is cleared *before* the round callback runs: a donation that
//    arrives mid-round re-arms the flag and the next predicate check fires
//    immediately instead of sleeping on a non-empty mailbox.

#include "smr/reclaimer.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

namespace scot {

struct ReclaimerThreadBase::Impl {
  std::mutex mu;
  std::condition_variable cv;
  bool stop_requested = false;
  std::function<void()> round;
  std::thread thread;
};

ReclaimerThreadBase::ReclaimerThreadBase() : impl_(new Impl) {}

ReclaimerThreadBase::~ReclaimerThreadBase() {
  stop();
  delete impl_;
}

void ReclaimerThreadBase::start(unsigned interval_us,
                                std::function<void()> round) {
  if (running_.load(std::memory_order_acquire)) return;
  impl_->stop_requested = false;
  impl_->round = std::move(round);
  running_.store(true, std::memory_order_release);
  const auto interval = std::chrono::microseconds(
      interval_us == 0 ? 1 : interval_us);
  impl_->thread = std::thread([this, interval] {
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(impl_->mu);
        sleeping_.store(true, std::memory_order_release);
        impl_->cv.wait_for(lk, interval, [this] {
          return impl_->stop_requested ||
                 work_.load(std::memory_order_acquire);
        });
        sleeping_.store(false, std::memory_order_release);
        if (impl_->stop_requested) break;
      }
      // Consume the doorbell before working: a ring that lands during the
      // round triggers another immediate round rather than being absorbed.
      work_.store(false, std::memory_order_relaxed);
      impl_->round();
    }
  });
}

void ReclaimerThreadBase::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop_requested = true;
  }
  impl_->cv.notify_one();
  impl_->thread.join();
  impl_->round = nullptr;
  running_.store(false, std::memory_order_release);
}

void ReclaimerThreadBase::ring() noexcept {
  work_.store(true, std::memory_order_release);
  if (sleeping_.load(std::memory_order_acquire)) impl_->cv.notify_one();
}

bool ReclaimerThreadBase::running() const noexcept {
  return running_.load(std::memory_order_acquire);
}

}  // namespace scot
