// Registry-driven run_case: builds the (scheme, structure) cell through the
// concept's type-erased facade and feeds it to the matching per-concept
// measured loop, dispatching on container_kind(cfg.structure).  This single
// translation unit replaces the seven per-scheme runner_<scheme>.cpp TUs
// the harness used to need for compile-time scheme selection.
#include "bench/runner.hpp"

#include <cstdio>
#include <cstdlib>

#include "bench/runner_impl.hpp"
#include "core/any_container.hpp"
#include "core/any_map.hpp"

namespace scot::bench {

namespace {

CaseResult run_one_any_map(const CaseConfig& cfg, std::uint64_t run_seed) {
  AnyMapOptions options;
  options.smr = detail::smr_config_for(cfg);
  options.hash_buckets = detail::bucket_count_for(cfg);
  auto map = AnyMap::make(cfg.scheme, cfg.structure, options);
  if (!map) {
    // The v1 per-scheme switch could not miss a case without a compiler
    // warning; the runtime registry can (a dropped registration line).
    // Emitting a fake 0.0-Mops cell would poison JSON reports and
    // baselines, so fail loudly instead.
    std::fprintf(stderr,
                 "run_case: no registered AnyMap cell for %s/%s — "
                 "check src/core/any_map.cpp registrations\n",
                 scheme_name(cfg.scheme), structure_name(cfg.structure));
    std::exit(2);
  }
  return detail::run_one_map(*map, cfg, run_seed);
}

CaseResult run_one_any_container(const CaseConfig& cfg,
                                 std::uint64_t run_seed) {
  AnyContainerOptions options;
  options.smr = detail::smr_config_for(cfg);
  auto c = AnyContainer::make(cfg.scheme, cfg.structure, options);
  if (!c) {
    std::fprintf(stderr,
                 "run_case: no registered AnyContainer cell for %s/%s — "
                 "check src/core/any_container.cpp registrations\n",
                 scheme_name(cfg.scheme), structure_name(cfg.structure));
    std::exit(2);
  }
  return detail::run_one_container(*c, container_kind(cfg.structure), cfg,
                                   run_seed);
}

CaseResult run_one_any(const CaseConfig& cfg, std::uint64_t run_seed) {
  switch (container_kind(cfg.structure)) {
    case ContainerKind::kMap:
      return run_one_any_map(cfg, run_seed);
    case ContainerKind::kQueue:
    case ContainerKind::kStack:
    case ContainerKind::kDeque:
      return run_one_any_container(cfg, run_seed);
    case ContainerKind::kKv:
      // The kv concept's op surface (string keys, blob values) needs the
      // dedicated bench_kv harness; run_case cannot shape its workload.
      std::fprintf(stderr,
                   "run_case: structure %s is kv-concept — use bench_kv, "
                   "not the integer-keyed harness\n",
                   structure_name(cfg.structure));
      std::exit(2);
    case ContainerKind::kNone:
      break;
  }
  return {};
}

}  // namespace

CaseResult run_case(const CaseConfig& cfg) {
  if (cfg.structure == StructureId::kNone)
    return {};  // micro-SMR cells are never run through the harness
  return detail::median_of_runs(
      cfg, [&](std::uint64_t seed) { return run_one_any(cfg, seed); });
}

}  // namespace scot::bench
