// Regression gate over two scot-bench JSON result files (the --json output
// of bench_cli and the figure/table binaries):
//
//     bench_diff [--threshold <pct>] [--report-only] [--strict-hw]
//                <baseline.json> <candidate.json>
//
// Cells are matched by workload identity (bench, label, structure, scheme,
// threads, key range, mix, distribution); seed/duration/runs are ignored so
// a smoke run can be gated against the committed full baseline.  A cell
// regresses when candidate throughput drops more than <pct> percent below
// the baseline (default 5).
//
// When the two reports record different meta.hardware_threads the deltas
// measure the machines, not the code; bench_diff always warns about the
// mismatch, and with --strict-hw treats it as an input error (exit 2,
// --report-only notwithstanding: asking for strictness and ignoring it
// would be worse than either alone).
//
// Exit codes: 0 = no regressions, 1 = regression(s), 2 = usage error,
// unreadable/invalid input, an empty cell intersection, or a
// hardware-thread mismatch under --strict-hw.  Under --report-only only
// those input errors still fail (exit 2); every comparison outcome exits
// 0.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/options.hpp"
#include "bench/report/diff.hpp"
#include "bench/report/report.hpp"
#include "bench/table.hpp"

using namespace scot::bench;

static void usage(std::FILE* f, const char* argv0) {
  std::fprintf(f,
               "usage: %s [--threshold <pct>] [--report-only] [--strict-hw] "
               "<baseline.json> <candidate.json>\n",
               argv0);
}

int main(int argc, char** argv) {
  DiffOptions options;
  bool report_only = false;
  bool strict_hw = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help") {
      usage(stdout, argv[0]);
      return 0;
    }
    if (a == "--report-only") {
      report_only = true;
      continue;
    }
    if (a == "--strict-hw") {
      strict_hw = true;
      continue;
    }
    if (a == "--threshold") {
      double v = 0;
      if (i + 1 >= argc || !parse_double(argv[++i], v) || v < 0) {
        std::fprintf(stderr, "%s: --threshold needs a percentage >= 0\n",
                     argv[0]);
        usage(stderr, argv[0]);
        return 2;
      }
      options.threshold_pct = v;
      continue;
    }
    if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], a.c_str());
      usage(stderr, argv[0]);
      return 2;
    }
    paths.push_back(a);
  }
  if (paths.size() != 2) {
    usage(stderr, argv[0]);
    return 2;
  }

  std::string error;
  const auto baseline = BenchReport::load_file(paths[0], &error);
  if (!baseline) {
    std::fprintf(stderr, "%s: %s: %s\n", argv[0], paths[0].c_str(),
                 error.c_str());
    return 2;
  }
  const auto candidate = BenchReport::load_file(paths[1], &error);
  if (!candidate) {
    std::fprintf(stderr, "%s: %s: %s\n", argv[0], paths[1].c_str(),
                 error.c_str());
    return 2;
  }

  std::printf("baseline:  %s (%s, %s)\n", paths[0].c_str(),
              baseline->meta().git_sha.c_str(),
              baseline->meta().timestamp_utc.c_str());
  std::printf("candidate: %s (%s, %s)\n\n", paths[1].c_str(),
              candidate->meta().git_sha.c_str(),
              candidate->meta().timestamp_utc.c_str());

  const DiffReport diff = diff_reports(*baseline, *candidate, options);

  if (diff.hw_mismatch) {
    std::fprintf(stderr,
                 "%s: WARNING: hardware_threads differ (baseline %u, "
                 "candidate %u) — deltas compare machines, not code%s\n",
                 argv[0], diff.baseline_hw_threads, diff.candidate_hw_threads,
                 strict_hw ? "" : " (use --strict-hw to fail on this)");
    if (strict_hw) return 2;
  }

  Table t({"cell", "base Mops", "cand Mops", "delta%", ""});
  for (const CellDelta& d : diff.deltas) {
    t.add_row({d.key, format_double(d.base_mops, 3),
               format_double(d.cand_mops, 3), format_double(d.delta_pct, 1),
               d.regression ? "REGRESSION" : ""});
  }
  t.print();
  for (const std::string& k : diff.only_baseline)
    std::printf("missing from candidate: %s\n", k.c_str());
  for (const std::string& k : diff.only_candidate)
    std::printf("missing from baseline:  %s\n", k.c_str());

  std::printf("\n%zu cell(s) compared, %d regression(s) beyond -%.1f%%\n",
              diff.deltas.size(), diff.regressions, options.threshold_pct);
  if (diff.deltas.empty()) {
    // Label/grid drift empties the intersection; under --report-only that
    // must stay advisory, not turn the CI job red.
    std::fprintf(stderr, "%s: no comparable cells between the two files\n",
                 argv[0]);
    return report_only ? 0 : 2;
  }
  if (diff.regressions > 0) {
    if (report_only) {
      std::printf("(--report-only: exiting 0 despite regressions)\n");
      return 0;
    }
    return 1;
  }
  return 0;
}
