// The Michael-Scott lock-free FIFO queue (PODC 1996), written against the
// guard API v2 with the paper's recovery discipline applied to its shape.
//
// A queue has no traversal to recover: both anchors (head_, tail_) are
// single links, so the SCOT discipline degenerates to protect-and-validate
// on the anchor itself (DESIGN.md §11).  Restart means "re-read the
// anchor"; the recovery optimization survives in one place — a dequeuer or
// enqueuer that finds the tail lagging *helps* swing it forward and resumes
// from its already-protected snapshot instead of re-reading, which is
// counted in ds_recoveries exactly like the list's §3.2.1 escapes.
//
// Protection roles (ascending slot order): hp.head = the node being
// dequeued (last-safe), hp.next = its successor (first-unsafe).  Enqueue
// only ever dereferences the tail, so it reuses slot 0.
//
// Reclamation-compatibility argument, per scheme family:
//  * HP/HPopt/HE/IBR: protect() internally re-reads the anchor until the
//    published value is stable, so a protected node is linked at protection
//    time and cannot have been reclaimed.  Dequeue re-validates
//    `head_ == hd` after protecting the successor (the predecessor-link
//    validation of §3.2 with head_ as the predecessor).
//  * EBR/NR: protection is free; validation still bounds wasted work.
//  * Hyaline: guard.valid() is polled after every protect; an invalidated
//    operation revalidates and restarts from the anchor.
// ABA on the head/tail CAS is impossible while the expected node is
// protected: a protected node cannot be reclaimed, hence not recycled.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>

#include "common/align.hpp"
#include "common/stable_atomic.hpp"
#include "core/marked_ptr.hpp"
#include "smr/handle_registry.hpp"
#include "smr/reclaim_node.hpp"
#include "smr/smr.hpp"

namespace scot {

template <class T, SmrDomainV2 Smr>
class MSQueue {
 public:
  struct Node : ReclaimNode {
    T value;
    StableAtomic<marked_ptr<Node>> next;
    explicit Node(const T& v = {}) : value(v), next(marked_ptr<Node>{}) {}
  };

  using MP = marked_ptr<Node>;
  using Link = StableAtomic<MP>;
  using Handle = typename Smr::Handle;
  using Guard = TraversalGuard<Handle>;
  using NodeSlot = ProtectionSlot<Handle, Node>;

  static constexpr unsigned kSlotsRequired = 2;

  // Slot roles in index (= ascending-dup) order.
  struct Hp {
    NodeSlot head, next;
    explicit Hp(Guard& g)
        : head(g.template slot<Node>()), next(g.template slot<Node>()) {}
  };

  explicit MSQueue(Smr& smr) : smr_(smr) {
    auto h = scoped_handle(smr_);
    Node* dummy = h->template alloc<Node>();
    head_.store(MP(dummy), std::memory_order_release);
    tail_.store(MP(dummy), std::memory_order_release);
  }

  ~MSQueue() {
    // Single-threaded teardown: the dummy plus every still-linked node.
    auto sh = scoped_handle(smr_);
    auto& h = sh.get();
    Node* n = head_.load(std::memory_order_relaxed).ptr();
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed).ptr();
      h.dealloc_unpublished(n);
      n = next;
    }
  }

  MSQueue(const MSQueue&) = delete;
  MSQueue& operator=(const MSQueue&) = delete;

  void enqueue(Handle& h, const T& value) {
    Guard guard(h);
    Hp hp(guard);
    Node* n = h.template alloc<Node>(value);
    for (;;) {
      Protected<Node> t = hp.head.protect(tail_);
      if (!guard.valid()) {
        restart(guard);
        continue;
      }
      const MP next = t->next.load(std::memory_order_seq_cst);
      if (next.ptr() == nullptr) {
        MP expected{};
        if (t->next.compare_exchange_strong(expected, MP(n),
                                            std::memory_order_seq_cst,
                                            std::memory_order_relaxed)) {
          // Swing the tail; losing this CAS just means someone helped.
          MP te(t.get());
          tail_.compare_exchange_strong(te, MP(n), std::memory_order_seq_cst,
                                        std::memory_order_relaxed);
          return;
        }
        restart(guard);  // lost the link race; re-read the anchor
      } else {
        // Lagging tail: help swing it and resume from the protected
        // snapshot — the queue-shaped recovery escape (no anchor re-read
        // needed; the CAS result tells us everything the re-read would).
        MP te(t.get());
        tail_.compare_exchange_strong(te, next.clean(),
                                      std::memory_order_seq_cst,
                                      std::memory_order_relaxed);
        ++h.ds_recoveries;
      }
    }
  }

  std::optional<T> dequeue(Handle& h) {
    Guard guard(h);
    Hp hp(guard);
    for (;;) {
      Protected<Node> hd = hp.head.protect(head_);
      if (!guard.valid()) {
        restart(guard);
        continue;
      }
      Protected<Node> next = hp.next.protect(hd->next);
      if (!guard.valid()) {
        restart(guard);
        continue;
      }
      // Predecessor-link validation (§3.2, head_ as predecessor): both the
      // empty verdict and the value read below are only meaningful if hd
      // was still the head when its successor was protected.
      if (head_.load(std::memory_order_seq_cst) != MP(hd.get())) {
        restart(guard);
        continue;
      }
      if (next.get() == nullptr) return std::nullopt;  // empty
      // Help a tail lagging at the dummy before excising it.
      MP t = tail_.load(std::memory_order_seq_cst);
      if (t.ptr() == hd.get()) {
        tail_.compare_exchange_strong(t, MP(next.get()),
                                      std::memory_order_seq_cst,
                                      std::memory_order_relaxed);
        ++h.ds_recoveries;
      }
      // Read the value before the head CAS: next is protected, and a
      // node's value is immutable after publication, so the read is safe
      // even if another dequeuer wins and next becomes the new dummy.
      T value = next->value;
      MP expected(hd.get());
      if (head_.compare_exchange_strong(expected, MP(next.get()),
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        h.retire(hd.get());  // the old dummy; unlinked by the CAS
        return value;
      }
      restart(guard);
    }
  }

  // Single-threaded size (tests / teardown only); excludes the dummy.
  std::size_t size_unsafe() const {
    std::size_t n = 0;
    const Node* c = head_.load(std::memory_order_acquire).ptr();
    c = c->next.load(std::memory_order_acquire).ptr();
    while (c != nullptr) {
      ++n;
      c = c->next.load(std::memory_order_acquire).ptr();
    }
    return n;
  }

 private:
  void restart(Guard& g) {
    ++g.handle().ds_restarts;
    g.revalidate();
  }

  alignas(kCacheLine) Link head_{MP{}};
  alignas(kCacheLine) Link tail_{MP{}};
  Smr& smr_;
};

}  // namespace scot
