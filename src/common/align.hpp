// Cache-line alignment helpers shared by the SMR schemes and the benchmark
// harness.  Per-thread metadata that is written on the hot path (hazard
// slots, era reservations, operation counters) must live on its own cache
// line, otherwise the cross-thread scans performed during reclamation turn
// into false-sharing storms.
#pragma once

#include <cstddef>
#include <new>

namespace scot {

// std::hardware_destructive_interference_size is 64 on x86-64 with GCC, but
// adjacent-line prefetching makes 128 the safe padding unit for data that is
// both written locally and scanned remotely (this is what most published SMR
// implementations, including the Hazard Eras and IBR benchmarks, use).
inline constexpr std::size_t kCacheLine = 64;
inline constexpr std::size_t kFalseSharingRange = 128;

// Wraps a value so that it occupies (at least) one false-sharing range.
template <class T>
struct alignas(kFalseSharingRange) Padded {
  T value{};

  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
};

}  // namespace scot
