// IBR: interval-based reclamation (Wen et al., PPoPP 2018), 2GE variant,
// with the reservation-snapshot scan optimization from the paper.
//
// Each thread publishes one *interval* [lower, upper] instead of per-index
// eras: `lower` is the era at operation start, `upper` is bumped lazily by
// protect() whenever the global era has advanced.  A retired node is
// reclaimable once its lifetime [birth, retire] overlaps no thread's
// interval.  Because protection is not indexed, dup() is a no-op — this is
// the "simplified programming model" the paper credits IBR with.
//
// Ordering note: begin_op stores `lower` (release) before `upper`.  A
// reclaimer snapshots `upper` first and `lower` second; if it observes the
// new upper it is guaranteed to observe the new lower.  A torn pair with a
// stale *lower* maps kIdle to 0 and widens conservatively; a torn pair
// with a stale *upper* yields an empty interval, which is safe not by
// widening but by the fence discipline: an `upper` publication the
// reclaimer cannot see means the operation's shared loads are all ordered
// after the scan's barrier, so it cannot reach the nodes being freed
// (DESIGN.md §5, IBR tear note).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/align.hpp"
#include "common/asymfence.hpp"
#include "smr/handle_core.hpp"
#include "smr/node_pool.hpp"
#include "smr/smr_config.hpp"

namespace scot {

class IbrDomain {
 public:
  static constexpr const char* kName = "IBR";
  static constexpr bool kRobust = true;
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  class Handle : public HandleCore<IbrDomain, Handle> {
   public:
    using Base = HandleCore<IbrDomain, Handle>;
    using Base::retire;  // typed retire(Protected<T>) — API v2
    Handle(IbrDomain* dom, unsigned tid) : Base(dom, tid) {}

    void begin_op() noexcept {
      // Activation publishes the interval: `lower` first (release), then
      // `upper`, whose store carries the StoreLoad edge against this
      // operation's shared loads.  Classic: seq_cst.  Asymmetric: release +
      // compiler barrier, compensated by the heavy barrier scans issue
      // before collect_intervals() (DESIGN.md §5, activation case).  Both
      // eras come from the clock value loaded first, so the published
      // interval can never lag the era this operation validates against.
      const std::uint64_t e = dom_->clock_.load(std::memory_order_acquire);
      upper_cache_ = e;
      (*dom_->res_[tid_]).lower.store(e, std::memory_order_release);
      const asymfence::Path fences = dom_->fence_path_;
      if (fences == asymfence::Path::kClassic) {
        (*dom_->res_[tid_]).upper.store(e, std::memory_order_seq_cst);
      } else {
        (*dom_->res_[tid_]).upper.store(e, std::memory_order_release);
        asymfence::light_barrier(fences);
      }
    }

    void end_op() noexcept {
      (*dom_->res_[tid_]).upper.store(kIdle, std::memory_order_release);
      (*dom_->res_[tid_]).lower.store(kIdle, std::memory_order_release);
    }

    // The common case (era unchanged since the last bump) is fence-free
    // either way; the asymmetric discipline relaxes the `upper` bump, whose
    // StoreLoad edge against the loop's re-read is restored by the heavy
    // barrier scans issue before collect_intervals() (DESIGN.md §5).
    // `Src` is std::atomic<P> or StableAtomic<P>.
    template <class Src, class P = typename Src::value_type>
    P protect(const Src& src, unsigned /*idx*/) noexcept {
      const asymfence::Path fences = dom_->fence_path_;
      for (;;) {
        P v = src.load(std::memory_order_acquire);
        const std::uint64_t e = dom_->clock_.load(std::memory_order_seq_cst);
        if (e == upper_cache_) return v;
        if (fences == asymfence::Path::kClassic) {
          (*dom_->res_[tid_]).upper.store(e, std::memory_order_seq_cst);
        } else {
          (*dom_->res_[tid_]).upper.store(e, std::memory_order_release);
          asymfence::light_barrier(fences);
        }
        upper_cache_ = e;
      }
    }

    template <class T>
    void publish(T* /*p*/, unsigned /*idx*/) noexcept {}
    void dup(unsigned /*i*/, unsigned /*j*/) noexcept {}
    static constexpr bool op_valid() noexcept { return true; }
    void revalidate_op() noexcept {}

    void retire(ReclaimNode* n) {
      n->debug_state = kNodeRetired;
      n->retire_era = dom_->clock_.load(std::memory_order_acquire);
      limbo_.push(n);
      dom_->counters_.on_retire(dom_->cfg_.track_stats);
      era_tick();
      if (limbo_.count >= dom_->cfg_.scan_threshold) scan();
    }

    std::uint64_t on_alloc_era() noexcept {
      era_tick();
      return dom_->clock_.load(std::memory_order_acquire);
    }

    void scan() {
      if (dom_->fence_path_ != asymfence::Path::kClassic)
        asymfence::heavy_barrier(dom_->fence_path_);
      snapshot_.clear();
      dom_->collect_intervals(snapshot_);
      std::uint64_t freed = 0;
      ReclaimNode* n = limbo_.take();
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        if (lifetime_reserved(birth_era_of(n), n->retire_era)) {
          limbo_.push(n);
        } else {
          dom_->pool().free(tid_, n, n->alloc_size);
          ++freed;
        }
        n = next;
      }
      dom_->counters_.on_free(freed, dom_->cfg_.track_stats);
    }

    unsigned limbo_size() const noexcept { return limbo_.count; }

   private:
    friend class IbrDomain;

    bool lifetime_reserved(std::uint64_t birth,
                           std::uint64_t retire) const noexcept {
      for (const auto& [lo, hi] : snapshot_) {
        if (birth <= hi && retire >= lo) return true;
      }
      return false;
    }

    void era_tick() noexcept {
      if (++tick_ >= dom_->cfg_.era_freq) {
        tick_ = 0;
        dom_->clock_.fetch_add(1, std::memory_order_acq_rel);
      }
    }


    LimboList limbo_;
    std::uint64_t upper_cache_ = kIdle;
    unsigned tick_ = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> snapshot_;
  };

  explicit IbrDomain(SmrConfig cfg = {})
      : cfg_(cfg),
        pool_(cfg.max_threads),
        res_(cfg.max_threads),
        fence_path_(asymfence::resolve(cfg.asymmetric_fences)) {
    for (auto& r : res_) {
      r->lower.store(kIdle, std::memory_order_relaxed);
      r->upper.store(kIdle, std::memory_order_relaxed);
    }
    handles_.reserve(cfg_.max_threads);
    for (unsigned t = 0; t < cfg_.max_threads; ++t)
      handles_.push_back(std::make_unique<Handle>(this, t));
  }

  ~IbrDomain() { drain_all(); }

  Handle& handle(unsigned tid) { return *handles_.at(tid); }
  const SmrConfig& config() const noexcept { return cfg_; }
  NodePool& pool() noexcept { return pool_; }
  std::int64_t pending_nodes() const noexcept {
    return counters_.pending.load(std::memory_order_relaxed);
  }
  const SmrCounters& counters() const noexcept { return counters_; }
  std::uint64_t era() const noexcept {
    return clock_.load(std::memory_order_acquire);
  }
  asymfence::Path fence_path() const noexcept { return fence_path_; }

  void collect_intervals(
      std::vector<std::pair<std::uint64_t, std::uint64_t>>& out) const {
    for (unsigned t = 0; t < cfg_.max_threads; ++t) {
      // upper first, then lower (see the ordering note above).
      const std::uint64_t hi = res_[t]->upper.load(std::memory_order_acquire);
      const std::uint64_t lo = res_[t]->lower.load(std::memory_order_acquire);
      if (lo == kIdle && hi == kIdle) continue;
      // kIdle halves of a torn observation widen conservatively; a
      // stale-upper tear can produce an empty interval, covered by the
      // scan barrier instead (see the ordering note at the top).
      out.emplace_back(lo == kIdle ? 0 : lo, hi == kIdle ? ~std::uint64_t{0} : hi);
    }
  }

 private:
  friend class Handle;

  struct ReservationData {
    std::atomic<std::uint64_t> lower{kIdle};
    std::atomic<std::uint64_t> upper{kIdle};
  };

  void drain_all() {
    std::uint64_t freed = 0;
    for (auto& h : handles_) {
      ReclaimNode* n = h->limbo_.take();
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        pool_.free(h->tid(), n, n->alloc_size);
        ++freed;
        n = next;
      }
    }
    counters_.on_free(freed, cfg_.track_stats);
  }

  SmrConfig cfg_;
  NodePool pool_;
  SmrCounters counters_;
  std::atomic<std::uint64_t> clock_{1};
  std::vector<Padded<ReservationData>> res_;
  asymfence::Path fence_path_;
  std::vector<std::unique_ptr<Handle>> handles_;
};

}  // namespace scot
