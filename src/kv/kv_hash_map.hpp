// KvHashMap: a string-keyed, lock-free hash map with incremental resize —
// the shard type behind scot::KvStore (DESIGN.md §10).
//
// Layout.  One AtomicChunkedArray<BucketSlot> holds every bucket directory
// generation ever published: generation g occupies the flat index range
// [N0*(2^g - 1), N0*(2^(g+1) - 1)) where N0 is the initial bucket count, so
// doubling never moves or frees a live BucketSlot.  Chunks are CAS-installed
// and immortal for the map's lifetime, which is why readers can never
// observe a torn directory: a published generation index always dereferences
// to fully constructed slots (the install CAS releases the value-initialised
// chunk; operator[] acquires it).
//
// Chains are Michael-style sorted lists (by hash, then key bytes) of pooled
// KvNode cells with the key inline after the struct.  The value lives in a
// separate KvBlob cell reached through the node's `val` link; upsert is a
// CAS swap of that link (replaced blobs retire through SMR), and erase
// linearizes by exchanging `val` to tagged-null before the usual
// mark-then-unlink of the node.  Both cells come from the domain's NodePool
// via alloc_extra(), so values up to ~4KB recycle through the same
// per-thread shards as list nodes.
//
// Incremental resize (freeze -> copy -> DONE -> seal -> sever -> retire):
//   * One doubling round in flight at a time (`pending_` counts old-gen
//     buckets not yet DONE; the winner of pending_ 0->N re-validates gen_
//     under the claim — a claimant that slept across complete rounds
//     between its gen_ load and the CAS win must not publish over a later
//     generation, so a stale claim is simply undone — then extends the
//     directory, seeds every child head with kPendBit, and publishes
//     gen_+1.  gen_ only ever moves g -> g+1 by CAS, so it is monotone).
//   * Every operation routes by the current generation; while a round is in
//     flight it first checks the *parent* bucket (same low index bits, one
//     generation down) and, if that parent is not DONE, migrates it to
//     completion before operating.  Writers that find pending_ != 0 also
//     help migrate a couple of buckets past a rotating cursor, so rounds
//     drain under write load instead of relying on lucky access patterns.
//   * freeze tags (kTagBit) the bucket head and every next/val link in
//     chain order.  A tagged link fails every mutation CAS (insert, mark,
//     unlink, upsert, erase all expect untagged words), so the chain is
//     immutable once the freezer's walk completes; any op that runs into a
//     tag restarts from the generation load.
//   * copy walks the frozen chain under hazard protection and inserts a
//     fresh copy of every live pair (val not tagged-null) into the child
//     buckets of the next generation.  Normal operations never touch a
//     child chain before the parent is DONE, so a half-copied child is
//     never observable.  While the round is in flight EVERY word of a
//     child chain — the seeded head, each node's next, the terminal null —
//     carries kPendBit; insert_copy installs pend-tagged words and bails
//     out the moment it reads a word without the bit.
//   * The DONE CAS winner first SEALS both child chains (clears kPendBit
//     from every link; clients that race the seal help by clearing any
//     pend word they meet), then severs every parent link (head, next,
//     val) to tagged-null, and only then retires the old nodes and blobs
//     through the shard's SMR domain — the unlink-before-retire order that
//     hazard-style validation needs.  Readers still standing on the frozen
//     chain hold hazard/era protection, so reclamation waits for them.  A
//     frozen-live value is returned only while the bucket is not yet DONE
//     (checked after the protect; past that point the child chain may hold
//     newer values), and a tagged-null val is reported absent only when the
//     node's next link is untagged — sever tags it, an erase at most marks
//     it — because a severed pair may be live in the child.  Both checks
//     re-route the op through the current generation otherwise.  The
//     pending_ decrement happens after the seal, so a later round's freeze
//     never observes a pend word.
//   * A helper can sleep at any point and wake after its round — or several
//     later rounds — completed, so every helper loop has an escape hatch:
//     the freeze and copy walks are hazard-protected and re-check the
//     bucket's DONE flag, and insert_copy requires kPendBit on every word
//     it traverses and on its commit CAS's expected value.  That closes
//     the insert-then-delete ABA: post-round client mutations only ever
//     install pend-free words (the seal strips the bit, erase/unlink
//     install clean() words, inserts install clean words), so a stale
//     helper's pend-expected commit can only succeed while the round is
//     still in flight — it can neither spin against a severed chain nor
//     resurrect a key that a live eraser removed after the round
//     (DESIGN.md §10 gives the full argument).
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/align.hpp"
#include "common/chunked_list.hpp"
#include "common/stable_atomic.hpp"
#include "core/marked_ptr.hpp"
#include "smr/handle_registry.hpp"
#include "smr/smr.hpp"

namespace scot {

// FNV-1a over the key bytes with a SplitMix64 finalizer: the low bits pick
// the bucket and the high bits pick the KvStore shard, so both need full
// avalanche.
inline std::uint64_t kv_hash(std::string_view key) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

// Value cell: length + inline bytes.  Immutable after publication (updates
// swap the whole blob), so readers need no per-byte synchronisation beyond
// the publishing CAS.
struct KvBlob : ReclaimNode {
  std::uint32_t vlen;

  explicit KvBlob(std::uint32_t n) noexcept : vlen(n) {}

  char* bytes() noexcept { return reinterpret_cast<char*>(this + 1); }
  std::string_view view() const noexcept {
    return {reinterpret_cast<const char*>(this + 1), vlen};
  }
};

// Chain node: immutable identity (hash + inline key) plus two mutable
// links.  `next` carries kMarkBit for Michael's logical deletion; both
// links carry kTagBit while the chain is frozen for migration and are
// stored as tagged-null once the bucket has been severed.
struct KvNode : ReclaimNode {
  using BlobMP = marked_ptr<KvBlob>;

  std::uint64_t hash;
  std::uint32_t klen;
  StableAtomic<marked_ptr<KvNode>> next;
  StableAtomic<BlobMP> val;

  KvNode(std::uint64_t h, std::uint32_t kl, KvBlob* blob) noexcept
      : hash(h), klen(kl) {
    next.store(marked_ptr<KvNode>{}, std::memory_order_relaxed);
    val.store(BlobMP(blob), std::memory_order_relaxed);
  }

  char* key_bytes() noexcept { return reinterpret_cast<char*>(this + 1); }
  std::string_view key() const noexcept {
    return {reinterpret_cast<const char*>(this + 1), klen};
  }
};

// Total order of chain positions: by hash, then key bytes.
inline int kv_compare(std::uint64_t hash, std::string_view key,
                      const KvNode* n) noexcept {
  if (hash != n->hash) return hash < n->hash ? -1 : 1;
  const int c = key.compare(n->key());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

enum class KvPut {
  kInserted,   // key was absent; a fresh node was linked
  kUpdated,    // key was present; the value blob was swapped
  kRejected,   // key or value exceeds the pooled-cell ceiling
};

template <SmrDomainV2 Smr>
class KvHashMap {
 public:
  using Handle = typename Smr::Handle;
  using Guard = TraversalGuard<Handle>;
  using MP = marked_ptr<KvNode>;
  using BlobMP = marked_ptr<KvBlob>;
  using Link = StableAtomic<MP>;
  using NodeSlot = ProtectionSlot<Handle, KvNode>;
  using BlobSlot = ProtectionSlot<Handle, KvBlob>;

  // find (next/curr/prev) + blob, then the child-chain roles used only by
  // migration (cnext/ccurr/cprev).  Fits the default slots_per_thread = 8.
  static constexpr unsigned kSlotsRequired = 7;

  struct Options {
    std::size_t initial_buckets = 16;            // rounded up to a power of 2
    std::size_t max_buckets = std::size_t{1} << 20;
    unsigned max_load_factor = 4;  // double when size > factor * buckets
  };

  static constexpr std::size_t max_key_bytes() {
    return NodePool::max_node_bytes() - sizeof(KvNode);
  }
  static constexpr std::size_t max_value_bytes() {
    return NodePool::max_node_bytes() - sizeof(KvBlob);
  }

  explicit KvHashMap(Smr& smr, Options opt = {}) : smr_(smr) {
    initial_ = std::bit_ceil(std::max<std::size_t>(opt.initial_buckets, 1));
    max_buckets_ = std::max(std::bit_ceil(
                                std::max<std::size_t>(opt.max_buckets, 1)),
                            initial_);
    max_load_factor_ = std::max(1u, opt.max_load_factor);
    buckets_.ensure(gen_base(0) + gen_count(0) - 1);
  }

  ~KvHashMap() {
    // Single-threaded teardown.  Walk every generation ever published:
    // severed buckets hold tagged-null heads and are skipped (their copies
    // live one generation up; their old cells were retired through SMR);
    // live or frozen-but-not-copied chains still own their cells and any
    // attached blobs.
    auto sh = scoped_handle(smr_);
    auto& h = sh.get();
    const std::uint32_t gmax = gen_.load(std::memory_order_relaxed);
    for (std::uint32_t g = 0; g <= gmax; ++g) {
      for (std::size_t j = 0; j < gen_count(g); ++j) {
        KvNode* n = slot_at(g, j).head.load(std::memory_order_relaxed).ptr();
        while (n != nullptr) {
          KvNode* next = n->next.load(std::memory_order_relaxed).ptr();
          KvBlob* blob = n->val.load(std::memory_order_relaxed).ptr();
          if (blob != nullptr) h.dealloc_unpublished(blob);
          h.dealloc_unpublished(n);
          n = next;
        }
      }
    }
  }

  KvHashMap(const KvHashMap&) = delete;
  KvHashMap& operator=(const KvHashMap&) = delete;

  KvPut put(Handle& h, std::string_view key, std::string_view value) {
    if (key.size() > max_key_bytes() || value.size() > max_value_bytes())
      return KvPut::kRejected;
    const std::uint64_t hash = kv_hash(key);
    for (;;) {
      const std::uint32_t g = route(h, hash);
      const PutOutcome r =
          try_put(h, slot_at(g, bucket_index(g, hash)), hash, key, value);
      if (r == PutOutcome::kMigrate) continue;
      if (r == PutOutcome::kUpdated) return KvPut::kUpdated;
      size_.fetch_add(1, std::memory_order_relaxed);
      maybe_resize(h);
      return KvPut::kInserted;
    }
  }

  bool erase(Handle& h, std::string_view key) {
    const std::uint64_t hash = kv_hash(key);
    for (;;) {
      const std::uint32_t g = route(h, hash);
      const OpOutcome r =
          try_erase(h, slot_at(g, bucket_index(g, hash)), hash, key);
      if (r == OpOutcome::kMigrate) continue;
      if (r == OpOutcome::kTrue) {
        size_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
      return false;
    }
  }

  bool get(Handle& h, std::string_view key, std::string* out) {
    const std::uint64_t hash = kv_hash(key);
    for (;;) {
      const std::uint32_t g = route(h, hash);
      const OpOutcome r =
          try_get(h, slot_at(g, bucket_index(g, hash)), hash, key, out);
      if (r != OpOutcome::kMigrate) return r == OpOutcome::kTrue;
    }
  }

  std::optional<std::string> get(Handle& h, std::string_view key) {
    std::string out;
    if (!get(h, key, &out)) return std::nullopt;
    return out;
  }

  bool contains(Handle& h, std::string_view key) {
    const std::uint64_t hash = kv_hash(key);
    for (;;) {
      const std::uint32_t g = route(h, hash);
      const OpOutcome r =
          try_contains(h, slot_at(g, bucket_index(g, hash)), hash, key);
      if (r != OpOutcome::kMigrate) return r == OpOutcome::kTrue;
    }
  }

  // Runs every bucket of an in-flight round to completion.  Quiesces the
  // resize state (pending_migration() == 0 afterwards when no concurrent
  // writer starts a new round).
  void drain_migrations(Handle& h) {
    for (;;) {
      const std::uint64_t p = pending_.load(std::memory_order_acquire);
      if (p == 0) return;
      const std::uint32_t g = gen_.load(std::memory_order_acquire);
      // pending_ == gen_count(g) with gen_ still g is exactly the
      // claimed-but-unpublished window of round g -> g+1 (a published
      // round's count starts at gen_count(g-1) and only shrinks; the
      // re-read pins g to the value gen_ had when pending_ was sampled).
      // There is nothing to migrate yet: help finish the publish if the
      // winner has seeded the child directory, otherwise yield to it
      // instead of hot-spinning over already-DONE buckets.
      if (p == gen_count(g) && gen_.load(std::memory_order_acquire) == g) {
        if (!try_help_publish(g)) std::this_thread::yield();
        continue;
      }
      if (g == 0) return;
      for (std::size_t j = 0; j < gen_count(g - 1); ++j) {
        if (slot_at(g - 1, j).done.load(std::memory_order_acquire) == 0)
          migrate_bucket(h, g - 1, j);
      }
    }
  }

  // Quiescent observers (tests / teardown / reporting).
  std::size_t size_unsafe() {
    auto sh = scoped_handle(smr_);
    drain_migrations(sh.get());
    const std::uint32_t g = gen_.load(std::memory_order_acquire);
    std::size_t n = 0;
    for (std::size_t j = 0; j < gen_count(g); ++j) {
      const KvNode* c =
          slot_at(g, j).head.load(std::memory_order_acquire).ptr();
      while (c != nullptr) {
        if (c->val.load(std::memory_order_acquire).ptr() != nullptr) ++n;
        c = c->next.load(std::memory_order_acquire).ptr();
      }
    }
    return n;
  }

  std::size_t size_approx() const {
    const std::int64_t s = size_.load(std::memory_order_relaxed);
    return s > 0 ? static_cast<std::size_t>(s) : 0;
  }
  std::size_t bucket_count() const {
    return gen_count(gen_.load(std::memory_order_acquire));
  }
  std::uint32_t generation() const {
    return gen_.load(std::memory_order_acquire);
  }
  std::uint64_t pending_migration() const {
    return pending_.load(std::memory_order_acquire);
  }
  std::uint64_t migrated_buckets() const {
    return migrated_.load(std::memory_order_relaxed);
  }

 private:
  struct BucketSlot {
    // Explicit initializers, not value-init: StableAtomic's default
    // constructor deliberately writes nothing (pool-recycled links must not
    // clobber concurrent stores), so `new BucketSlot[n]()` alone would
    // leave garbage heads.  The chunk-install CAS releases these stores.
    Link head{MP{}};
    // 0 while this bucket's chain is authoritative for its generation;
    // 1 once its content has been fully copied one generation up.
    std::atomic<std::uint32_t> done{0};
  };

  enum class FindStatus { kFound, kAbsent, kMigrate };
  enum class PutOutcome { kInserted, kUpdated, kMigrate };
  enum class OpOutcome { kTrue, kFalse, kMigrate };

  struct Position {
    Link* prev;
    KvNode* curr;
    MP next;
    FindStatus status;
  };

  // Slot roles in ascending-dup order; blob sits above the list roles so
  // get() can dup nothing and protect the value last.
  struct Hp {
    NodeSlot next, curr, prev;
    BlobSlot blob;
    explicit Hp(Guard& g)
        : next(g.template slot<KvNode>()),
          curr(g.template slot<KvNode>()),
          prev(g.template slot<KvNode>()),
          blob(g.template slot<KvBlob>()) {}
  };
  // Child-chain roles for the migration copy pass (indices 4..6).
  struct ChildHp {
    NodeSlot next, curr, prev;
    explicit ChildHp(Guard& g)
        : next(g.template slot<KvNode>()),
          curr(g.template slot<KvNode>()),
          prev(g.template slot<KvNode>()) {}
  };
  // Freeze-walk roles (the freezer opens its own guard; indices 0..1).
  struct FreezeHp {
    NodeSlot next, curr;
    explicit FreezeHp(Guard& g)
        : next(g.template slot<KvNode>()),
          curr(g.template slot<KvNode>()) {}
  };

  // --- directory geometry -------------------------------------------------
  std::size_t gen_count(std::uint32_t g) const { return initial_ << g; }
  std::size_t gen_base(std::uint32_t g) const {
    return initial_ * ((std::size_t{1} << g) - 1);
  }
  BucketSlot& slot_at(std::uint32_t g, std::size_t j) {
    return buckets_[gen_base(g) + j];
  }
  std::size_t bucket_index(std::uint32_t g, std::uint64_t hash) const {
    return static_cast<std::size_t>(hash) & (gen_count(g) - 1);
  }

  // Loads the current generation and, while a round is in flight, brings
  // this key's parent bucket to DONE so the caller may operate on the
  // current-generation chain.  The pending_ == 0 fast path costs one
  // acquire load per operation.
  std::uint32_t route(Handle& h, std::uint64_t hash) {
    const std::uint32_t g = gen_.load(std::memory_order_acquire);
    if (g == 0 || pending_.load(std::memory_order_acquire) == 0) return g;
    const std::size_t p =
        static_cast<std::size_t>(hash) & (gen_count(g - 1) - 1);
    if (slot_at(g - 1, p).done.load(std::memory_order_acquire) == 0)
      migrate_bucket(h, g - 1, p);
    return g;
  }

  void restart(Guard& g) {
    ++g.handle().ds_restarts;
    g.revalidate();
  }

  // --- allocation helpers -------------------------------------------------
  KvBlob* make_blob(Handle& h, std::string_view value) {
    KvBlob* b = h.template alloc_extra<KvBlob>(
        value.size(), static_cast<std::uint32_t>(value.size()));
    if (!value.empty()) std::memcpy(b->bytes(), value.data(), value.size());
    return b;
  }
  KvNode* make_node(Handle& h, std::uint64_t hash, std::string_view key,
                    KvBlob* blob) {
    KvNode* n = h.template alloc_extra<KvNode>(
        key.size(), hash, static_cast<std::uint32_t>(key.size()), blob);
    if (!key.empty()) std::memcpy(n->key_bytes(), key.data(), key.size());
    return n;
  }

  // --- chain traversal ----------------------------------------------------
  // Michael's Find over one bucket chain, with one extra exit: any tagged
  // word means the chain is frozen (or severed) for migration, and the
  // operation must re-route through the current generation.
  Position find(Guard& g, Hp& hp, Link& head, std::uint64_t hash,
                std::string_view key) {
    Handle& h = g.handle();
    for (;;) {
      Link* prev = &head;
      MP curr_m = hp.curr.protect(head);
      if (!g.valid()) {
        restart(g);
        continue;
      }
      if (curr_m.tagged()) return {nullptr, nullptr, MP{}, FindStatus::kMigrate};
      if (curr_m.pended()) {
        // This bucket just became authoritative and its DONE winner is
        // still sealing: help clear the construction bit and re-walk.
        head.compare_exchange_strong(curr_m, curr_m.without_pend(),
                                     std::memory_order_seq_cst,
                                     std::memory_order_relaxed);
        restart(g);
        continue;
      }
      KvNode* curr = curr_m.ptr();
      bool retry = false;
      while (curr != nullptr) {
        MP next = hp.next.protect(curr->next);
        if (!g.valid()) {
          retry = true;
          break;
        }
        const MP pv = prev->load(std::memory_order_seq_cst);
        if (pv == MP(curr).with_pend()) {
          MP e = pv;
          prev->compare_exchange_strong(e, MP(curr),
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed);
          retry = true;
          break;
        }
        if (pv != MP(curr)) {
          if (pv.tagged())
            return {nullptr, nullptr, MP{}, FindStatus::kMigrate};
          retry = true;
          break;
        }
        if (next.pended()) {
          MP e = next;
          curr->next.compare_exchange_strong(e, next.without_pend(),
                                             std::memory_order_seq_cst,
                                             std::memory_order_relaxed);
          retry = true;
          break;
        }
        if (next.tagged()) return {nullptr, nullptr, MP{}, FindStatus::kMigrate};
        if (next.marked()) {
          // Eager unlink of the logically deleted curr; the unlink winner
          // owns the node's retirement (its blob was already claimed by
          // the eraser's val exchange).
          MP expected(curr);
          if (!prev->compare_exchange_strong(expected, next.clean(),
                                             std::memory_order_seq_cst,
                                             std::memory_order_relaxed)) {
            if (expected.tagged())
              return {nullptr, nullptr, MP{}, FindStatus::kMigrate};
            retry = true;
            break;
          }
          h.retire(curr);
          curr = next.ptr();
          hp.curr.dup_from(hp.next);
          continue;
        }
        const int c = kv_compare(hash, key, curr);
        if (c <= 0) {
          return {prev, curr, next,
                  c == 0 ? FindStatus::kFound : FindStatus::kAbsent};
        }
        prev = &curr->next;
        hp.prev.dup_from(hp.curr);
        curr = next.ptr();
        hp.curr.dup_from(hp.next);
      }
      if (!retry) return {prev, nullptr, MP{}, FindStatus::kAbsent};
      restart(g);
    }
  }

  // Finishes a half-completed erase whose val link is already tagged-null:
  // marks the node and makes one unlink attempt.  The unlink winner (here
  // or a later find() cleanup) retires the node.
  void help_erase(Handle& h, const Position& pos) {
    MP next = pos.curr->next.load(std::memory_order_seq_cst);
    while (!next.marked() && !next.tagged()) {
      if (pos.curr->next.compare_exchange_strong(next, next.with_mark(),
                                                 std::memory_order_seq_cst,
                                                 std::memory_order_relaxed)) {
        next = next.with_mark();
        break;
      }
    }
    if (!next.marked() || next.tagged()) return;  // frozen: migrator's job
    MP expected(pos.curr);
    if (pos.prev->compare_exchange_strong(expected, next.clean(),
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
      h.retire(pos.curr);
    }
  }

  PutOutcome try_put(Handle& h, BucketSlot& b, std::uint64_t hash,
                     std::string_view key, std::string_view value) {
    Guard g(h);
    Hp hp(g);
    KvNode* n = nullptr;
    KvBlob* nb = nullptr;
    const auto discard = [&] {
      if (n != nullptr) h.dealloc_unpublished(n);
      if (nb != nullptr) h.dealloc_unpublished(nb);
    };
    for (;;) {
      Position pos = find(g, hp, b.head, hash, key);
      if (pos.status == FindStatus::kMigrate) {
        discard();
        return PutOutcome::kMigrate;
      }
      if (pos.status == FindStatus::kFound) {
        const BlobMP bv = pos.curr->val.load(std::memory_order_seq_cst);
        if (bv.tagged()) {
          if (bv.ptr() != nullptr) {  // frozen live value
            discard();
            return PutOutcome::kMigrate;
          }
          help_erase(h, pos);  // tagged-null: a delete is in flight
          continue;            // then race to reinsert
        }
        if (nb == nullptr) nb = make_blob(h, value);
        BlobMP expected = bv;
        if (pos.curr->val.compare_exchange_strong(expected, BlobMP(nb),
                                                  std::memory_order_seq_cst,
                                                  std::memory_order_relaxed)) {
          nb = nullptr;        // published
          h.retire(bv.ptr());  // the replaced blob is ours to retire
          if (n != nullptr) h.dealloc_unpublished(n);
          return PutOutcome::kUpdated;
        }
        continue;  // lost the val race (update/erase/freeze); re-find
      }
      // Absent: link a fresh node before pos.curr.
      if (nb == nullptr) nb = make_blob(h, value);
      if (n == nullptr) {
        n = make_node(h, hash, key, nb);
      } else {
        n->val.store(BlobMP(nb), std::memory_order_relaxed);
      }
      n->next.store(MP(pos.curr), std::memory_order_relaxed);
      MP expected(pos.curr);
      if (pos.prev->compare_exchange_strong(expected, MP(n),
                                            std::memory_order_seq_cst,
                                            std::memory_order_relaxed)) {
        return PutOutcome::kInserted;
      }
      if (expected.tagged()) {
        discard();
        return PutOutcome::kMigrate;
      }
    }
  }

  OpOutcome try_erase(Handle& h, BucketSlot& b, std::uint64_t hash,
                      std::string_view key) {
    Guard g(h);
    Hp hp(g);
    for (;;) {
      Position pos = find(g, hp, b.head, hash, key);
      if (pos.status == FindStatus::kMigrate) return OpOutcome::kMigrate;
      if (pos.status == FindStatus::kAbsent) return OpOutcome::kFalse;
      const BlobMP bv = pos.curr->val.load(std::memory_order_seq_cst);
      if (bv.tagged()) {
        if (bv.ptr() != nullptr) return OpOutcome::kMigrate;  // frozen
        help_erase(h, pos);
        // Tagged-null is either a concurrent erase or a migration sever;
        // only the sever also tags the next link.  A severed pair may be
        // live in the child bucket, so the op must re-route.
        if (pos.curr->next.load(std::memory_order_seq_cst).tagged())
          return OpOutcome::kMigrate;
        return OpOutcome::kFalse;  // lost to a concurrent erase
      }
      // The exchange to tagged-null is the linearization point of the
      // delete (readers treat tagged-null as absent) and claims blob
      // custody for this eraser.
      BlobMP expected = bv;
      if (!pos.curr->val.compare_exchange_strong(expected,
                                                 BlobMP(nullptr, kTagBit),
                                                 std::memory_order_seq_cst,
                                                 std::memory_order_relaxed)) {
        continue;  // val changed under us; re-find
      }
      help_erase(h, pos);
      h.retire(bv.ptr());
      return OpOutcome::kTrue;
    }
  }

  OpOutcome try_get(Handle& h, BucketSlot& b, std::uint64_t hash,
                    std::string_view key, std::string* out) {
    Guard g(h);
    Hp hp(g);
    for (;;) {
      Position pos = find(g, hp, b.head, hash, key);
      if (pos.status == FindStatus::kMigrate) return OpOutcome::kMigrate;
      if (pos.status == FindStatus::kAbsent) return OpOutcome::kFalse;
      // protect() republishes until the val word is stable, and every blob
      // retirement is preceded by a store that moves val off the blob
      // (update CAS, erase exchange, migration sever) — the standard
      // publish-then-validate argument, applied to the value link.  A
      // tagged (frozen) live blob is still readable: the frozen chain stays
      // authoritative until its bucket is DONE.
      const Protected<KvBlob> pb = hp.blob.protect(pos.curr->val);
      if (!g.valid()) {
        restart(g);
        continue;
      }
      if (pb.get() == nullptr) {
        // Tagged-null is either an erase or a migration sever; only the
        // sever also tags the next link.  A severed pair may be live in
        // the child bucket, so re-route instead of reporting absent.
        if (pos.curr->next.load(std::memory_order_seq_cst).tagged())
          return OpOutcome::kMigrate;
        return OpOutcome::kFalse;  // erased
      }
      if (pb.tagged() && b.done.load(std::memory_order_seq_cst) != 0) {
        // Frozen live value, but the bucket has been copied out: the child
        // chain is authoritative now and may hold a newer value.
        return OpOutcome::kMigrate;
      }
      if (out != nullptr) out->assign(pb->view());
      return OpOutcome::kTrue;
    }
  }

  OpOutcome try_contains(Handle& h, BucketSlot& b, std::uint64_t hash,
                         std::string_view key) {
    Guard g(h);
    Hp hp(g);
    Position pos = find(g, hp, b.head, hash, key);
    if (pos.status == FindStatus::kMigrate) return OpOutcome::kMigrate;
    if (pos.status == FindStatus::kAbsent) return OpOutcome::kFalse;
    const BlobMP bv = pos.curr->val.load(std::memory_order_seq_cst);
    if (bv.ptr() != nullptr) {
      if (bv.tagged() && b.done.load(std::memory_order_seq_cst) != 0)
        return OpOutcome::kMigrate;  // copied out; child is authoritative
      return OpOutcome::kTrue;
    }
    // Distinguish erase (next at most marked) from sever (next tagged):
    // a severed pair may be live in the child bucket.
    if (pos.curr->next.load(std::memory_order_seq_cst).tagged())
      return OpOutcome::kMigrate;
    return OpOutcome::kFalse;
  }

  // --- resize -------------------------------------------------------------
  void maybe_resize(Handle& h) {
    if (pending_.load(std::memory_order_acquire) != 0) {
      help_drain(h);
      return;
    }
    const std::uint32_t g = gen_.load(std::memory_order_acquire);
    const std::size_t n = gen_count(g);
    if (n >= max_buckets_) return;
    const std::int64_t size = size_.load(std::memory_order_relaxed);
    if (size <= static_cast<std::int64_t>(
                    static_cast<std::size_t>(max_load_factor_) * n))
      return;
    std::uint64_t expected = 0;
    if (!pending_.compare_exchange_strong(expected, n,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
      return;  // another writer owns the round
    // Winning the claim is not yet the round's start: this thread may have
    // slept between the gen_ load above and the CAS win, across one or more
    // COMPLETE rounds (pending_ back at 0).  Publishing g+1 then would
    // either wedge the map (pending_ counts buckets that are already DONE
    // and can never be decremented again) or regress gen_ outright.  So
    // re-validate under the claim: gen_ advances only while a claim is held
    // and a stale claim blocks any new claim, so if it still reads g here
    // it stays g until we publish.
    if (gen_.load(std::memory_order_seq_cst) != g) {
      // Stale claim.  While we held it no round could start and no
      // decrement could land (every bucket of the completed rounds is
      // DONE), so a plain store restores the idle state.
      pending_.store(0, std::memory_order_release);
      return;
    }
    // Extend the directory for generation g+1 and seed every child head
    // with kPendBit BEFORE publishing, so (a) any thread that reads the new
    // generation can address every child slot and (b) the in-flight child
    // chains carry the construction bit from their very first word (the
    // sole writer here is the validated claim holder: nothing else touches
    // gen g+1 slots until gen_ is published).
    buckets_.ensure(gen_base(g + 1) + gen_count(g + 1) - 1);
    for (std::size_t j = 0; j < gen_count(g + 1); ++j)
      slot_at(g + 1, j).head.store(MP(nullptr, kPendBit),
                                   std::memory_order_relaxed);
    seeded_gen_.store(g + 1, std::memory_order_release);
    // CAS, not store: a drainer that saw seeded_gen_ may have published on
    // our behalf, and by now later rounds may have run — a blind store
    // could regress gen_.
    std::uint32_t eg = g;
    gen_.compare_exchange_strong(eg, g + 1, std::memory_order_seq_cst,
                                 std::memory_order_relaxed);
  }

  // Finishes the publish of a claimed round g -> g+1 on the winner's
  // behalf, once the winner has extended and seeded the child directory
  // (seeded_gen_ == g+1; ensure/seed are permanent, so observing that value
  // means the directory is usable forever after).  Safe against arbitrary
  // staleness of `g`: gen_ is monotone and only this round's publish moves
  // it from g, so the CAS succeeding means the round really was in its
  // claimed-but-unpublished window.
  bool try_help_publish(std::uint32_t g) {
    if (seeded_gen_.load(std::memory_order_acquire) != g + 1) return false;
    std::uint32_t eg = g;
    gen_.compare_exchange_strong(eg, g + 1, std::memory_order_seq_cst,
                                 std::memory_order_relaxed);
    return true;
  }

  // Writers that see a round in flight migrate a couple of buckets past a
  // rotating cursor, so the round completes under write load even when the
  // access pattern never touches the cold buckets.
  void help_drain(Handle& h) {
    const std::uint32_t g = gen_.load(std::memory_order_acquire);
    const std::uint64_t p = pending_.load(std::memory_order_acquire);
    if (p == 0) return;
    if (p == gen_count(g) && gen_.load(std::memory_order_acquire) == g) {
      try_help_publish(g);  // claimed but unpublished: nothing to migrate
      return;
    }
    if (g == 0) return;
    const std::size_t old_n = gen_count(g - 1);
    const std::uint64_t cur = cursor_.fetch_add(2, std::memory_order_relaxed);
    for (unsigned i = 0; i < 2; ++i) {
      const std::size_t p = static_cast<std::size_t>(cur + i) & (old_n - 1);
      if (slot_at(g - 1, p).done.load(std::memory_order_acquire) == 0)
        migrate_bucket(h, g - 1, p);
    }
  }

  // Brings bucket (old_gen, p) to DONE: freeze, cooperative copy, then the
  // DONE winner seals the child chains, severs and retires the old chain.
  // Runs to completion; safe to call from any number of helpers
  // concurrently.
  void migrate_bucket(Handle& h, std::uint32_t old_gen, std::size_t p) {
    BucketSlot& ps = slot_at(old_gen, p);
    if (ps.done.load(std::memory_order_acquire) != 0) return;
    freeze_chain(h, ps);
    copy_chain(h, old_gen, p, ps);
    std::uint32_t expected = 0;
    if (ps.done.compare_exchange_strong(expected, 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
      // Seal before the pending_ decrement: the next round can only claim
      // once pending_ hits 0, so its freeze never meets a kPendBit word.
      seal_chain(h, slot_at(old_gen + 1, p));
      seal_chain(h, slot_at(old_gen + 1, p + gen_count(old_gen)));
      sever_and_retire(h, ps);
      migrated_.fetch_add(1, std::memory_order_relaxed);
      pending_.fetch_sub(1, std::memory_order_release);
    }
  }

  // DONE-winner epilogue, part 1: strips kPendBit from every link of a
  // now-authoritative child chain (the seeded head, each node's next,
  // including terminal nulls).  The chain is live — clients reached it the
  // moment the parent's done flag rose — so the walk is hazard-protected
  // and tolerates concurrent inserts (they install pend-free words),
  // unlinks (an unlinked node's word no longer matters), and clients
  // helping with the same clears.  No post-round mutation re-installs the
  // bit and a stale copier's pend-expected commit cannot succeed once the
  // round is over, so one completed pass leaves the chain pend-free.
  void seal_chain(Handle& h, BucketSlot& cb) {
    Guard g(h);
    FreezeHp hp(g);
    for (;;) {
      MP head = cb.head.load(std::memory_order_seq_cst);
      while (head.pended() &&
             !cb.head.compare_exchange_strong(head, head.without_pend(),
                                              std::memory_order_seq_cst,
                                              std::memory_order_seq_cst)) {
      }
      MP curr_m = hp.curr.protect(cb.head);
      if (!g.valid()) {
        restart(g);
        continue;
      }
      KvNode* n = curr_m.ptr();
      bool invalidated = false;
      while (n != nullptr) {
        MP nx = n->next.load(std::memory_order_seq_cst);
        while (nx.pended() &&
               !n->next.compare_exchange_strong(nx, nx.without_pend(),
                                                std::memory_order_seq_cst,
                                                std::memory_order_seq_cst)) {
        }
        const Protected<KvNode> step = hp.next.protect(n->next);
        if (!g.valid()) {
          invalidated = true;
          break;
        }
        n = step.get();
        hp.curr.dup_from(hp.next);
      }
      if (!invalidated) return;
      restart(g);
    }
  }

  // Tags the head and every val/next link, in chain order.  After the head
  // is tagged no insert can land at the front and no unlink of the first
  // node can succeed; inductively, once a node's next is tagged its
  // successor is pinned in the chain.  That pin argument holds only against
  // *mutators*, not against a DONE winner's sever-and-retire — a freezer
  // that sleeps here while other helpers finish the round would otherwise
  // wake up standing on retired nodes — so the walk is hazard-protected
  // like every other traversal.  After a sever, every link reads
  // tagged-null and the walk terminates immediately.  Mutators race the
  // tag CASes and may win individual rounds, but every winner strictly
  // decreases the remaining untagged suffix's work, so the loop terminates.
  void freeze_chain(Handle& h, BucketSlot& ps) {
    Guard g(h);
    FreezeHp hp(g);
    for (;;) {
      MP head = ps.head.load(std::memory_order_seq_cst);
      // A bucket only becomes a freeze target one full round after it was
      // built, and its construction round sealed it before decrementing
      // pending_ — so the construction bit must be long gone.
      assert(!head.pended());
      while (!head.tagged() &&
             !ps.head.compare_exchange_strong(head, head.with_tag(),
                                              std::memory_order_seq_cst,
                                              std::memory_order_seq_cst)) {
      }
      MP curr_m = hp.curr.protect(ps.head);
      if (!g.valid()) {
        restart(g);
        continue;
      }
      KvNode* n = curr_m.ptr();
      bool invalidated = false;
      while (n != nullptr) {
        BlobMP v = n->val.load(std::memory_order_seq_cst);
        while (!v.tagged() &&
               !n->val.compare_exchange_strong(v, v.with_tag(),
                                               std::memory_order_seq_cst,
                                               std::memory_order_seq_cst)) {
        }
        MP nx = n->next.load(std::memory_order_seq_cst);
        while (!nx.tagged() &&
               !n->next.compare_exchange_strong(nx, nx.with_tag(),
                                                std::memory_order_seq_cst,
                                                std::memory_order_seq_cst)) {
        }
        // n->next is tagged (immutable to mutators) from here on, so the
        // successor protect stabilises at once and the hazard covers the
        // next node before we step onto it.  A concurrent sever overwrites
        // the link to tagged-null, which ends the walk.
        const Protected<KvNode> step = hp.next.protect(n->next);
        if (!g.valid()) {
          invalidated = true;
          break;
        }
        n = step.get();
        hp.curr.dup_from(hp.next);
      }
      if (!invalidated) return;
      restart(g);
    }
  }

  // Copies every live pair of the frozen chain into the child buckets of
  // generation old_gen+1.  Hazard-protected even though the chain is
  // immutable: a concurrent helper may win the DONE race and sever/retire
  // the chain under us, which the prev-link validation detects.
  void copy_chain(Handle& h, std::uint32_t old_gen, std::size_t /*p*/,
                  BucketSlot& ps) {
    const std::uint32_t new_gen = old_gen + 1;
    for (;;) {
      if (ps.done.load(std::memory_order_acquire) != 0) return;
      Guard g(h);
      Hp hp(g);
      ChildHp chp(g);
      Link* prev = &ps.head;
      MP curr_m = hp.curr.protect(ps.head);
      if (!g.valid()) {
        restart(g);
        continue;
      }
      KvNode* curr = curr_m.ptr();
      bool retry = false;
      while (curr != nullptr) {
        const MP next = hp.next.protect(curr->next);
        if (!g.valid()) {
          retry = true;
          break;
        }
        if (prev->load(std::memory_order_seq_cst).ptr() != curr) {
          retry = true;  // severed under us (or freeze still racing)
          break;
        }
        const Protected<KvBlob> pb = hp.blob.protect(curr->val);
        if (!g.valid()) {
          retry = true;
          break;
        }
        if (!next.marked() && pb.get() != nullptr) {
          if (!insert_copy(g, chp, h,
                           slot_at(new_gen, static_cast<std::size_t>(
                                                curr->hash) &
                                                (gen_count(new_gen) - 1)),
                           ps.done, curr, pb.get())) {
            retry = true;
            break;
          }
        }
        prev = &curr->next;
        hp.prev.dup_from(hp.curr);
        curr = next.ptr();
        hp.curr.dup_from(hp.next);
      }
      if (!retry) return;
      if (ps.done.load(std::memory_order_acquire) != 0) return;
      restart(g);
    }
  }

  // Insert-if-absent of a copy of (src, blob) into a child chain.  While
  // the round is in flight the child chain is invisible to normal
  // operations, so the only races are between helpers copying the same
  // bucket, which insert-if-absent absorbs.  A helper can also sleep here
  // across the end of its round and into later ones; then the child chain
  // is live — or frozen/severed by a later round — and this helper must
  // not commit a stale copy.  The kPendBit discipline enforces that:
  // every word of an in-flight child chain carries the bit (seeded head,
  // each installed next, terminal nulls), the DONE winner's seal strips it,
  // and every post-round mutation installs pend-free words.  So this walk
  // requires the bit on every word it reads — a clean, tagged, or marked
  // word means the round is over — and the commit CAS's expected value
  // carries it too.  That closes the insert-then-delete ABA a bare
  // expected-value check cannot see: if another helper copies this key
  // here, the round completes, and a client then erases and unlinks that
  // copy, prev holds the pend-FREE word MP(curr) — our pend-expected CAS
  // fails instead of resurrecting the erased key.  (The parent-DONE check
  // before the commit is kept as a cheap early exit; the pend bit is what
  // carries the safety argument, see DESIGN.md §10.)
  // Returns false when the whole copy pass must restart (guard invalidated
  // or round over); the caller re-checks the parent's DONE flag and exits.
  bool insert_copy(Guard& g, ChildHp& chp, Handle& h, BucketSlot& cb,
                   const std::atomic<std::uint32_t>& parent_done,
                   const KvNode* src, const KvBlob* blob) {
    const std::uint64_t hash = src->hash;
    const std::string_view key = src->key();
    KvNode* n = nullptr;
    KvBlob* nb = nullptr;
    const auto discard = [&] {
      if (n != nullptr) h.dealloc_unpublished(n);
      if (nb != nullptr) h.dealloc_unpublished(nb);
    };
    for (;;) {
      Link* prev = &cb.head;
      MP curr_m = chp.curr.protect(cb.head);
      if (!g.valid()) {
        discard();
        return false;
      }
      if (curr_m.tagged() || !curr_m.pended()) {  // round over: sealed,
        discard();                                // frozen, or severed
        return false;
      }
      KvNode* curr = curr_m.ptr();
      bool retry = false;
      while (curr != nullptr) {
        const MP next = chp.next.protect(curr->next);
        if (!g.valid()) {
          discard();
          return false;
        }
        const MP pv = prev->load(std::memory_order_seq_cst);
        if (pv != MP(curr, kPendBit)) {
          if (pv.tagged() || !pv.pended()) {
            discard();
            return false;
          }
          retry = true;  // a concurrent helper's copy landed here
          break;
        }
        if (next.tagged() || next.marked() || !next.pended()) {
          discard();
          return false;
        }
        const int c = kv_compare(hash, key, curr);
        if (c == 0) {  // another helper won this pair
          discard();
          return true;
        }
        if (c < 0) break;
        prev = &curr->next;
        chp.prev.dup_from(chp.curr);
        curr = next.ptr();
        chp.curr.dup_from(chp.next);
      }
      if (retry) continue;
      if (parent_done.load(std::memory_order_seq_cst) != 0) {
        discard();
        return false;
      }
      if (nb == nullptr) nb = make_blob(h, blob->view());
      if (n == nullptr) {
        n = make_node(h, hash, key, nb);
      }
      n->next.store(MP(curr, kPendBit), std::memory_order_relaxed);
      MP expected(curr, kPendBit);
      if (prev->compare_exchange_strong(expected, MP(n, kPendBit),
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return true;
      }
      if (expected.tagged() || !expected.pended()) {
        discard();
        return false;
      }
    }
  }

  // DONE-winner epilogue.  Severs EVERY link of the frozen chain (head,
  // next, val) to tagged-null first and retires the cells only afterwards:
  // a reader that protected a node or blob through one of these links did
  // so while the link still pointed at it, so validation-based schemes see
  // either the pre-sever word (protection holds, reclamation waits) or a
  // tagged word (operation re-routes).
  void sever_and_retire(Handle& h, BucketSlot& ps) {
    std::vector<KvNode*> nodes;
    for (KvNode* n = ps.head.load(std::memory_order_seq_cst).ptr();
         n != nullptr; n = n->next.load(std::memory_order_seq_cst).ptr()) {
      nodes.push_back(n);
    }
    ps.head.store(MP(nullptr, kTagBit), std::memory_order_seq_cst);
    for (KvNode* n : nodes) {
      n->next.store(MP(nullptr, kMarkBit | kTagBit),
                    std::memory_order_seq_cst);
    }
    std::vector<KvBlob*> blobs;
    blobs.reserve(nodes.size());
    for (KvNode* n : nodes) {
      const BlobMP v = n->val.load(std::memory_order_seq_cst);
      n->val.store(BlobMP(nullptr, kTagBit), std::memory_order_seq_cst);
      // A marked node's blob was claimed by its eraser; only live frozen
      // blobs are the migrator's to retire.
      if (v.ptr() != nullptr) blobs.push_back(v.ptr());
    }
    Guard g(h);  // retire inside an op bracket, like every structure here
    for (KvBlob* b : blobs) h.retire(b);
    for (KvNode* n : nodes) h.retire(n);
  }

  AtomicChunkedArray<BucketSlot> buckets_;
  std::size_t initial_ = 16;
  std::size_t max_buckets_ = std::size_t{1} << 20;
  unsigned max_load_factor_ = 4;
  alignas(kCacheLine) std::atomic<std::uint32_t> gen_{0};
  // Highest generation whose directory extension + kPendBit head seeding
  // has completed (monotone; written only by validated round claimants).
  // Gates try_help_publish: helpers may finish a stalled winner's gen_
  // publish only once the child slots are fully usable.
  std::atomic<std::uint32_t> seeded_gen_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> cursor_{0};
  alignas(kCacheLine) std::atomic<std::int64_t> size_{0};
  std::atomic<std::uint64_t> migrated_{0};
  Smr& smr_;
};

}  // namespace scot
