// scot::AnyMap — the type-erased facade over the scheme × structure cross
// product, driven by the runtime registry (core/registry.hpp).
//
// AnyMap lets callers pick the reclamation scheme and the data structure as
// *runtime values* — the capability the per-scheme bench translation units
// used to fake with 7 copies of the same template instantiation.  Virtual
// dispatch sits only at operation granularity (one indirect call per
// insert/erase/contains/get); inside an operation the fully typed traversal
// runs, protect() included, so the PR 3 asymmetric-fence fast path is
// untouched (acceptance-checked by bench_micro_smr against BENCH_pr3.json).
//
// Threading contract.  The preferred surface is `AnyMap::Session`: each
// worker thread opens a session (`map.session()`), which joins the
// underlying domain's dynamic handle registry, and operates through it —
// no tid, no fixed thread cap, threads may come and go for the life of the
// map.  The tid-indexed calls remain as the deprecated fixed-capacity
// surface: `tid` selects a lazily joined, permanently pinned handle and
// must be dense in [0, options.smr.max_threads).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "core/registry.hpp"
#include "obs/stats.hpp"
#include "smr/registry.hpp"
#include "smr/smr_config.hpp"

namespace scot {

struct AnyMapOptions {
  SmrConfig smr;                 // domain configuration (max_threads, ...)
  std::size_t hash_buckets = 0;  // HashMap cells only; 0 = 64 buckets
};

namespace detail {

// The abstract implementation the registry factories produce.  One concrete
// TypedAnyMap<Smr, DS> per registered cell lives in src/core/any_map.cpp.
class AnyMapImpl {
 public:
  virtual ~AnyMapImpl() = default;
  virtual bool insert(unsigned tid, std::uint64_t key, std::uint64_t value) = 0;
  virtual bool erase(unsigned tid, std::uint64_t key) = 0;
  virtual bool contains(unsigned tid, std::uint64_t key) = 0;
  virtual std::optional<std::uint64_t> get(unsigned tid, std::uint64_t key) = 0;
  // Session surface: a handle is joined/left through the type-erased
  // boundary as an opaque pointer; the *_with calls skip the tid lookup
  // entirely (the session holds the resolved handle).
  virtual void* join_handle() = 0;
  virtual void leave_handle(void* h) = 0;
  virtual bool insert_with(void* h, std::uint64_t key, std::uint64_t value) = 0;
  virtual bool erase_with(void* h, std::uint64_t key) = 0;
  virtual bool contains_with(void* h, std::uint64_t key) = 0;
  virtual std::optional<std::uint64_t> get_with(void* h, std::uint64_t key) = 0;
  virtual std::size_t size_unsafe() const = 0;
  virtual std::int64_t pending_nodes() const = 0;
  virtual std::uint64_t restarts() const = 0;
  virtual std::uint64_t recoveries() const = 0;
  virtual unsigned active_handles() const = 0;
  virtual std::size_t total_handle_records() const = 0;
  virtual obs::StatsSnapshot stats() const = 0;
};

}  // namespace detail

class AnyMap {
 public:
  using Key = std::uint64_t;
  using Value = std::uint64_t;

  // Builds the (scheme, structure) cell through the runtime registry.
  // Returns nullopt for unregistered cells (e.g. StructureId::kNone).
  // Defined in src/core/any_map.cpp, the only TU that pays for the cross
  // product's template instantiations.
  static std::optional<AnyMap> make(SchemeId scheme, StructureId structure,
                                    const AnyMapOptions& options = {});

  AnyMap(AnyMap&&) = default;
  AnyMap& operator=(AnyMap&&) = default;

  // One thread's membership in the map's reclamation domain: joins the
  // dynamic handle registry on construction, leaves (donating any pending
  // retires for adoption) on destruction.  Move-only; use one Session per
  // thread and do not share it.  This replaces the tid calls:
  //
  //   auto s = map.session();
  //   s.insert(k, v);  s.contains(k);  ...
  //
  // The session pins no capacity: thousands of short-lived workers may
  // open and close sessions against one map.
  class Session {
   public:
    Session() = default;
    Session(Session&& o) noexcept
        : impl_(std::exchange(o.impl_, nullptr)), h_(o.h_) {}
    Session& operator=(Session&& o) noexcept {
      if (this != &o) {
        reset();
        impl_ = std::exchange(o.impl_, nullptr);
        h_ = o.h_;
      }
      return *this;
    }
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;
    ~Session() { reset(); }

    bool insert(Key key, Value value = {}) {
      return impl_->insert_with(h_, key, value);
    }
    bool erase(Key key) { return impl_->erase_with(h_, key); }
    bool contains(Key key) { return impl_->contains_with(h_, key); }
    std::optional<Value> get(Key key) { return impl_->get_with(h_, key); }

    explicit operator bool() const noexcept { return impl_ != nullptr; }

    // Leaves the domain early (idempotent).
    void reset() noexcept {
      if (impl_ != nullptr) {
        impl_->leave_handle(h_);
        impl_ = nullptr;
      }
    }

   private:
    friend class AnyMap;
    explicit Session(detail::AnyMapImpl* impl)
        : impl_(impl), h_(impl->join_handle()) {}

    detail::AnyMapImpl* impl_ = nullptr;
    void* h_ = nullptr;  // the domain's Handle, type-erased
  };

  // Opens a session for the calling thread.  The map must outlive it.
  Session session() { return Session(impl_.get()); }

  // --- operations (one virtual hop each; `tid` picks the handle) ----------
  // DEPRECATED fixed-capacity surface: lazily joins one pinned handle per
  // tid in [0, max_threads).  Prefer session().
  bool insert(unsigned tid, Key key, Value value = {}) {
    return impl_->insert(tid, key, value);
  }
  bool erase(unsigned tid, Key key) { return impl_->erase(tid, key); }
  bool contains(unsigned tid, Key key) { return impl_->contains(tid, key); }
  std::optional<Value> get(unsigned tid, Key key) {
    return impl_->get(tid, key);
  }

  // --- observers -----------------------------------------------------------
  // Single-threaded full iteration over the structure (tests/teardown only).
  std::size_t size_unsafe() const { return impl_->size_unsafe(); }
  // Domain-wide retired-but-unreclaimed gauge (the paper's Figures 10-12).
  std::int64_t pending_nodes() const { return impl_->pending_nodes(); }
  // Table 2 telemetry, summed over all handle records ever created (the
  // counters are cumulative across join/leave reuse).
  std::uint64_t restarts() const { return impl_->restarts(); }
  std::uint64_t recoveries() const { return impl_->recoveries(); }
  // Handle-registry gauges: sessions currently open (plus pinned tid
  // handles), and the high-water record count.
  unsigned active_handles() const { return impl_->active_handles(); }
  std::size_t total_handle_records() const {
    return impl_->total_handle_records();
  }
  // Aggregated observability snapshot of the underlying domain (DESIGN.md
  // §8): retire/scan/barrier/orphan counters, limbo peak, scan-latency
  // percentiles.  Zeroed (enabled=false) when stats are compiled out or the
  // domain runs with track_stats=false.
  obs::StatsSnapshot stats() const { return impl_->stats(); }

  SchemeId scheme() const { return scheme_; }
  StructureId structure() const { return structure_; }
  const char* scheme_name() const { return scot::scheme_name(scheme_); }
  const char* structure_name() const {
    return scot::structure_name(structure_);
  }
  unsigned max_threads() const { return max_threads_; }

 private:
  AnyMap(SchemeId scheme, StructureId structure, unsigned max_threads,
         std::unique_ptr<detail::AnyMapImpl> impl)
      : scheme_(scheme),
        structure_(structure),
        max_threads_(max_threads),
        impl_(std::move(impl)) {}

  SchemeId scheme_;
  StructureId structure_;
  unsigned max_threads_;
  std::unique_ptr<detail::AnyMapImpl> impl_;
};

}  // namespace scot
