// The one translation unit that instantiates the scheme × kv-structure
// cross product and registers it with AnyKvRegistry — the string-keyed
// sibling of src/core/any_map.cpp.  KvStore::make() also lives here: a
// store is just N registry cells built from one inherited SmrConfig.
#include "kv/any_kv.hpp"

#include <utility>
#include <vector>

#include "kv/kv_hash_map.hpp"
#include "kv/kv_store.hpp"
#include "smr/smr.hpp"

namespace scot {
namespace {

template <class Smr>
class TypedAnyKv final : public detail::AnyKvImpl {
  using Handle = typename Smr::Handle;
  using Map = KvHashMap<Smr>;

 public:
  explicit TypedAnyKv(const AnyKvOptions& options)
      : smr_(options.smr),
        map_(smr_, typename Map::Options{options.initial_buckets,
                                         options.max_buckets,
                                         options.max_load_factor}) {}

  void* join_handle() override { return &smr_.join(); }
  void leave_handle(void* h) override { smr_.leave(*static_cast<Handle*>(h)); }

  bool put_with(void* h, std::string_view key,
                std::string_view value) override {
    return map_.put(*static_cast<Handle*>(h), key, value) ==
           KvPut::kInserted;
  }
  bool erase_with(void* h, std::string_view key) override {
    return map_.erase(*static_cast<Handle*>(h), key);
  }
  bool contains_with(void* h, std::string_view key) override {
    return map_.contains(*static_cast<Handle*>(h), key);
  }
  bool get_with(void* h, std::string_view key, std::string* out) override {
    return map_.get(*static_cast<Handle*>(h), key, out);
  }
  bool put_ok(std::string_view key, std::string_view value) const override {
    return key.size() <= Map::max_key_bytes() &&
           value.size() <= Map::max_value_bytes();
  }

  std::size_t size_unsafe() override { return map_.size_unsafe(); }
  std::int64_t pending_nodes() const override { return smr_.pending_nodes(); }
  std::uint64_t restarts() const override {
    std::uint64_t n = 0;
    for (const auto* r = smr_.registry().head(); r != nullptr;
         r = r->next_record())
      n += r->handle.ds_restarts;
    return n;
  }
  std::uint64_t recoveries() const override {
    std::uint64_t n = 0;
    for (const auto* r = smr_.registry().head(); r != nullptr;
         r = r->next_record())
      n += r->handle.ds_recoveries;
    return n;
  }
  unsigned active_handles() const override { return smr_.active_handles(); }
  obs::StatsSnapshot stats() const override { return smr_.stats(); }
  std::size_t bucket_count() const override { return map_.bucket_count(); }
  std::uint64_t migrated_buckets() const override {
    return map_.migrated_buckets();
  }
  std::uint64_t pending_migration() const override {
    return map_.pending_migration();
  }

 private:
  // Declaration order is destruction order in reverse: the map's teardown
  // deallocates through the domain, so the domain must outlive it.
  mutable Smr smr_;
  Map map_;
};

template <class Smr>
std::unique_ptr<detail::AnyKvImpl> make_cell(const AnyKvOptions& options) {
  return std::make_unique<TypedAnyKv<Smr>>(options);
}

const bool kRegistered = [] {
  auto& reg = AnyKvRegistry::instance();
  reg.add(SchemeId::kNR, StructureId::kKvHash, &make_cell<NoReclaimDomain>);
  reg.add(SchemeId::kEBR, StructureId::kKvHash, &make_cell<EbrDomain>);
  reg.add(SchemeId::kHP, StructureId::kKvHash, &make_cell<HpDomain>);
  reg.add(SchemeId::kHPopt, StructureId::kKvHash, &make_cell<HpOptDomain>);
  reg.add(SchemeId::kHE, StructureId::kKvHash, &make_cell<HeDomain>);
  reg.add(SchemeId::kIBR, StructureId::kKvHash, &make_cell<IbrDomain>);
  reg.add(SchemeId::kHLN, StructureId::kKvHash, &make_cell<HyalineDomain>);
  return true;
}();

}  // namespace

std::optional<AnyKv> AnyKv::make(SchemeId scheme, StructureId structure,
                                 const AnyKvOptions& options) {
  // ODR-use the registrar so linking make() always pulls the registrations.
  (void)kRegistered;
  const AnyKvRegistry::Factory factory =
      AnyKvRegistry::instance().find(scheme, structure);
  if (factory == nullptr) return std::nullopt;
  return AnyKv(scheme, structure, factory(options));
}

std::optional<KvStore> KvStore::make(SchemeId scheme, StructureId structure,
                                     const KvStoreOptions& options) {
  const unsigned n = options.shards == 0 ? 1 : options.shards;
  AnyKvOptions shard_options;
  shard_options.smr = options.smr;  // per-shard SmrConfig inheritance
  shard_options.initial_buckets = options.initial_buckets_per_shard;
  shard_options.max_buckets = options.max_buckets_per_shard;
  shard_options.max_load_factor = options.max_load_factor;
  std::vector<AnyKv> shards;
  shards.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    auto shard = AnyKv::make(scheme, structure, shard_options);
    if (!shard) return std::nullopt;
    shards.push_back(std::move(*shard));
  }
  return KvStore(std::move(shards));
}

}  // namespace scot
