// Growable chunked containers — the antidote to fixed-capacity "time bomb"
// arrays (libreclaim's rope.h warns about exactly this for deletion lists).
//
// Two shapes live here:
//
//  * `ChunkedList<T>` — a single-owner growable sequence built from
//    fixed-size chunks.  Elements never move once pushed (stable addresses),
//    push_back never invalidates anything, and clear() keeps the chunks so a
//    reusable scratch buffer (the HPopt/HE/IBR reservation snapshots) is
//    allocation-free after its first high-water pass.  Random-access
//    iterators make std::sort / std::lower_bound / std::binary_search work
//    directly on it.
//
//  * `AtomicChunkedArray<T>` — a lock-free, lazily materialized array with
//    geometric chunk sizes.  Readers index it with two dependent loads and
//    never take a lock; growth installs a chunk with one CAS (the loser
//    frees its allocation).  Chunks are never deallocated or moved while the
//    array lives, so a reference handed out once stays valid — the property
//    the node pool's shard directory and any concurrently-scanned per-slot
//    state need.  Capacity is geometric (first chunk 64, doubling), so the
//    practical limit is the address space, not a tunable.
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <iterator>
#include <memory>
#include <vector>

namespace scot {

template <class T>
class ChunkedList {
 public:
  static constexpr std::size_t kChunkLog = 8;  // 256 elements per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkLog;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;

  ChunkedList() = default;
  ChunkedList(const ChunkedList&) = delete;
  ChunkedList& operator=(const ChunkedList&) = delete;

  void push_back(const T& v) {
    const std::size_t chunk = size_ >> kChunkLog;
    if (chunk == chunks_.size())
      chunks_.push_back(std::make_unique<T[]>(kChunkSize));
    chunks_[chunk][size_ & kChunkMask] = v;
    ++size_;
  }

  T& operator[](std::size_t i) noexcept {
    assert(i < size_);
    return chunks_[i >> kChunkLog][i & kChunkMask];
  }
  const T& operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return chunks_[i >> kChunkLog][i & kChunkMask];
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  // Keeps the chunks: the next fill up to the high-water mark is
  // allocation-free.
  void clear() noexcept { size_ = 0; }

  // Random-access iterator over (list, index); cheap enough for the sorted
  // snapshot queries the SMR scans run (tens of elements, two indirections
  // per access).
  class iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = T*;
    using reference = T&;

    iterator() = default;
    iterator(ChunkedList* l, std::size_t i) : l_(l), i_(i) {}

    reference operator*() const { return (*l_)[i_]; }
    pointer operator->() const { return &(*l_)[i_]; }
    reference operator[](difference_type d) const {
      return (*l_)[i_ + static_cast<std::size_t>(d)];
    }

    iterator& operator++() { ++i_; return *this; }
    iterator operator++(int) { iterator t = *this; ++i_; return t; }
    iterator& operator--() { --i_; return *this; }
    iterator operator--(int) { iterator t = *this; --i_; return t; }
    iterator& operator+=(difference_type d) {
      i_ = static_cast<std::size_t>(static_cast<difference_type>(i_) + d);
      return *this;
    }
    iterator& operator-=(difference_type d) { return *this += -d; }
    friend iterator operator+(iterator a, difference_type d) { return a += d; }
    friend iterator operator+(difference_type d, iterator a) { return a += d; }
    friend iterator operator-(iterator a, difference_type d) { return a -= d; }
    friend difference_type operator-(iterator a, iterator b) {
      return static_cast<difference_type>(a.i_) -
             static_cast<difference_type>(b.i_);
    }
    friend bool operator==(iterator a, iterator b) { return a.i_ == b.i_; }
    friend bool operator!=(iterator a, iterator b) { return a.i_ != b.i_; }
    friend bool operator<(iterator a, iterator b) { return a.i_ < b.i_; }
    friend bool operator>(iterator a, iterator b) { return a.i_ > b.i_; }
    friend bool operator<=(iterator a, iterator b) { return a.i_ <= b.i_; }
    friend bool operator>=(iterator a, iterator b) { return a.i_ >= b.i_; }

   private:
    ChunkedList* l_ = nullptr;
    std::size_t i_ = 0;
  };

  iterator begin() noexcept { return iterator(this, 0); }
  iterator end() noexcept { return iterator(this, size_); }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::size_t size_ = 0;
};

// Lock-free growable array: chunk c holds (64 << c) elements, covering
// indices [64 * (2^c - 1), 64 * (2^(c+1) - 1)).  26 chunk slots cover ~4e9
// elements — effectively unbounded for per-thread records.
template <class T>
class AtomicChunkedArray {
 public:
  static constexpr unsigned kFirstLog = 6;  // first chunk: 64 elements
  static constexpr unsigned kMaxChunks = 26;

  AtomicChunkedArray() = default;
  AtomicChunkedArray(const AtomicChunkedArray&) = delete;
  AtomicChunkedArray& operator=(const AtomicChunkedArray&) = delete;

  ~AtomicChunkedArray() {
    for (auto& c : chunks_) delete[] c.load(std::memory_order_relaxed);
  }

  // Lock-free: two dependent loads.  The element must have been ensure()d.
  T& operator[](std::size_t i) const noexcept {
    const auto [c, off] = locate(i);
    T* chunk = chunks_[c].load(std::memory_order_acquire);
    assert(chunk != nullptr && "index was never ensure()d");
    return chunk[off];
  }

  // Makes every index in [0, i] addressable.  Thread-safe and lock-free:
  // concurrent callers race to install a chunk with one CAS; the loser
  // deletes its allocation.  Elements are value-initialized.
  void ensure(std::size_t i) {
    const auto [c, off] = locate(i);
    (void)off;
    for (unsigned k = 0; k <= c; ++k) {
      if (chunks_[k].load(std::memory_order_acquire) != nullptr) continue;
      T* fresh = new T[chunk_size(k)]();
      T* expected = nullptr;
      if (!chunks_[k].compare_exchange_strong(expected, fresh,
                                              std::memory_order_release,
                                              std::memory_order_acquire))
        delete[] fresh;
    }
  }

  static constexpr std::size_t chunk_size(unsigned c) noexcept {
    return std::size_t{1} << (kFirstLog + c);
  }

 private:
  static std::pair<unsigned, std::size_t> locate(std::size_t i) noexcept {
    const std::size_t biased = (i >> kFirstLog) + 1;
    const unsigned c = static_cast<unsigned>(std::bit_width(biased)) - 1;
    assert(c < kMaxChunks);
    const std::size_t off =
        i - (((std::size_t{1} << c) - 1) << kFirstLog);
    return {c, off};
  }

  std::atomic<T*> chunks_[kMaxChunks] = {};
};

}  // namespace scot
