// Ablation (paper §3.2, Figure 5 left vs right): the unrolled two-phase
// Do_Find needs 2 hazard dups per safe-zone step and 1 per zone step; the
// simple variant needs 3 everywhere.  Under HP each extra dup is a store to
// a shared-visible slot, so the unrolled version should win, most visibly
// at small key ranges where traversals are short and dup cost is a large
// fraction of the operation.
#include <cstdio>

#include "bench/fig_common.hpp"
#include "bench/runner_impl.hpp"

using namespace scot;
using namespace scot::bench;

template <class Traits>
static CaseResult run_list(unsigned threads, std::uint64_t range, int ms,
                           SchemeId scheme, const char* variant) {
  CaseConfig cfg;
  cfg.scheme = scheme;
  cfg.threads = threads;
  cfg.key_range = range;
  cfg.millis = ms;
  cfg.runs = env_runs();
  apply_session_flags(cfg);
  const CaseResult r =
      scheme == SchemeId::kHP
          ? scot::bench::detail::run_structure<
                HarrisList<std::uint64_t, std::uint64_t, HpDomain, Traits>,
                HpDomain>(cfg)
          : scot::bench::detail::run_structure<
                HarrisList<std::uint64_t, std::uint64_t, HeDomain, Traits>,
                HeDomain>(cfg);
  fig_record(std::string("unroll ablation, ") + variant, cfg, r);
  return r;
}

int main(int argc, char** argv) {
  fig_init(argc, argv, "ablation_unroll");
  const int ms = env_ms(300);
  std::printf(
      "SCOT ablation — §3.2 unrolled (Fig 5 right) vs simple (Fig 5 left) "
      "Do_Find\n\n");
  for (SchemeId scheme : {SchemeId::kHP, SchemeId::kHE}) {
    for (std::uint64_t range : {std::uint64_t{512}, std::uint64_t{10000}}) {
      Table t({"threads", "unrolled Mops", "simple Mops", "speedup"});
      for (unsigned th : env_threads()) {
        const CaseResult fast =
            run_list<HarrisListTraits>(th, range, ms, scheme, "unrolled");
        const CaseResult simple =
            run_list<HarrisListSimpleTraits>(th, range, ms, scheme, "simple");
        t.add_row({std::to_string(th), format_double(fast.mops, 2),
                   format_double(simple.mops, 2),
                   format_double(simple.mops > 0 ? fast.mops / simple.mops : 0,
                                 3)});
      }
      std::printf("== %s, key range %llu ==\n", scheme_name(scheme),
                  static_cast<unsigned long long>(range));
      t.print();
      std::printf("\n");
    }
  }
  return fig_finish();
}
