// Shared helpers for the SCOT test suite.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/xorshift.hpp"
#include "core/core.hpp"

namespace scot::test {

using AllSchemes =
    ::testing::Types<NoReclaimDomain, EbrDomain, HpDomain, HpOptDomain,
                     HeDomain, IbrDomain, HyalineDomain>;

using ReclaimingSchemes = ::testing::Types<EbrDomain, HpDomain, HpOptDomain,
                                           HeDomain, IbrDomain, HyalineDomain>;

using RobustSchemes =
    ::testing::Types<HpDomain, HpOptDomain, HeDomain, IbrDomain, HyalineDomain>;

inline SmrConfig small_config(unsigned threads = 4) {
  SmrConfig cfg;
  cfg.max_threads = threads;
  cfg.scan_threshold = 16;
  cfg.era_freq = 8;
  return cfg;
}

// Runs `fn(tid)` on `threads` std::threads and joins them.
template <class F>
void run_threads(unsigned threads, F&& fn) {
  std::vector<std::thread> ts;
  ts.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) ts.emplace_back(fn, t);
  for (auto& t : ts) t.join();
}

// A dummy reclaimable node for SMR-layer tests.
struct TestNode : ReclaimNode {
  std::uint64_t payload;
  explicit TestNode(std::uint64_t p = 0) : payload(p) {}
};

// Churn helper: allocate-and-retire `n` nodes through `h` to force scans and
// era advancement.
template <class Handle>
void churn_retire(Handle& h, int n) {
  for (int i = 0; i < n; ++i) {
    auto* node = h.template alloc<TestNode>(static_cast<std::uint64_t>(i));
    h.retire(node);
  }
}

}  // namespace scot::test
