// Hash map (array of SCOT lists) integration tests.
#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace scot {
namespace {

using Key = std::uint64_t;
using Val = std::uint64_t;

template <class Smr>
class HashMapTest : public ::testing::Test {};

TYPED_TEST_SUITE(HashMapTest, test::AllSchemes);

TYPED_TEST(HashMapTest, BasicSemantics) {
  TypeParam smr(test::small_config());
  HashMap<Key, Val, TypeParam> map(smr, 16);
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  EXPECT_EQ(map.bucket_count(), 16u);
  EXPECT_FALSE(map.contains(h, 1));
  EXPECT_TRUE(map.insert(h, 1, 100));
  EXPECT_FALSE(map.insert(h, 1, 200));
  EXPECT_EQ(map.get(h, 1).value_or(0), 100u);
  EXPECT_TRUE(map.erase(h, 1));
  EXPECT_FALSE(map.erase(h, 1));
  EXPECT_EQ(map.size_unsafe(), 0u);
}

TYPED_TEST(HashMapTest, KeysSpreadAcrossBuckets) {
  TypeParam smr(test::small_config());
  HashMap<Key, Val, TypeParam> map(smr, 8);
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  for (Key k = 0; k < 400; ++k) ASSERT_TRUE(map.insert(h, k, k));
  EXPECT_EQ(map.size_unsafe(), 400u);
  for (Key k = 0; k < 400; ++k) {
    ASSERT_TRUE(map.contains(h, k));
    ASSERT_EQ(map.get(h, k).value_or(~0ull), k);
  }
}

TYPED_TEST(HashMapTest, SingleBucketDegeneratesToList) {
  // With one bucket every key collides: the map must still be a correct set
  // (this exercises SCOT list behaviour through the map adapter).
  TypeParam smr(test::small_config());
  HashMap<Key, Val, TypeParam> map(smr, 1);
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  for (Key k = 0; k < 100; ++k) ASSERT_TRUE(map.insert(h, k, k));
  for (Key k = 0; k < 100; k += 2) ASSERT_TRUE(map.erase(h, k));
  for (Key k = 0; k < 100; ++k) EXPECT_EQ(map.contains(h, k), k % 2 == 1);
}

TYPED_TEST(HashMapTest, ConcurrentMixedChurnCoherence) {
  TypeParam smr(test::small_config(4));
  HashMap<Key, Val, TypeParam> map(smr, 32);
  test::run_threads(4, [&](unsigned tid) {
    auto sh = scoped_handle(smr);
    auto& h = sh.get();
    Xoshiro256 rng(tid + 1);
    for (int i = 0; i < 30000; ++i) {
      const Key k = rng.next_in(256);
      switch (rng.next_in(4)) {
        case 0:
        case 1:
          map.insert(h, k, k);
          break;
        case 2:
          map.erase(h, k);
          break;
        default:
          map.contains(h, k);
          break;
      }
    }
  });
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  for (Key k = 0; k < 256; ++k) {
    { const bool was_present = map.contains(h, k); const bool erased = map.erase(h, k); EXPECT_EQ(was_present, erased) << "key " << k; }
  }
  EXPECT_EQ(map.size_unsafe(), 0u);
}

TYPED_TEST(HashMapTest, WaitFreeTraitsCompose) {
  TypeParam smr(test::small_config(2));
  HashMap<Key, Val, TypeParam, HarrisListWaitFreeTraits> map(smr, 4);
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  for (Key k = 0; k < 64; ++k) ASSERT_TRUE(map.insert(h, k, k));
  for (Key k = 0; k < 64; ++k) EXPECT_TRUE(map.contains(h, k));
  for (Key k = 0; k < 64; ++k) ASSERT_TRUE(map.erase(h, k));
  EXPECT_EQ(map.size_unsafe(), 0u);
}

}  // namespace
}  // namespace scot
