// Microbenchmarks of the SMR primitives: the per-call cost of protect /
// dup / begin+end / alloc+retire for every scheme.  These expose the
// mechanism behind the figure-level results: HP pays a fence per protect,
// HE amortizes it per era change, IBR/Hyaline make dup free, and HPopt's
// snapshot scan beats HP's per-node rescan on retire-heavy loads.
//
// Two modes:
//  * default           — the google-benchmark suite.  protect/* benchmarks
//                        take an Arg: 1 = asymmetric fences, 0 = classic
//                        seq_cst publication.
//  * --json <path>     — two fixed-iteration latency sweeps per (scheme,
//                        fence discipline), measured in ns and TSC cycles
//                        per call and written as scot-bench v1 cells
//                        (bench "micro_smr", structure "none"):
//                          protect-latency   — a hot protect() loop (the
//                                              PR 3 A/B evidence;
//                                              BENCH_pr3.json is a capture)
//                          begin_op-latency  — operation activation: one
//                                              begin_op + first protect +
//                                              end_op per iteration, the
//                                              era-scheme read-side cost
//                                              the asymmetric activation
//                                              discipline lifts
//                                              (BENCH_pr5.json is a
//                                              capture).
//                        google-benchmark flags are not accepted in this
//                        mode.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/report/report.hpp"
#include "common/asymfence.hpp"
#include "common/timing.hpp"
#include "core/core.hpp"

namespace {

using namespace scot;

struct ProbeNode : ReclaimNode {
  std::uint64_t payload = 0;
};

// --- google-benchmark suite -------------------------------------------------

template <class Smr>
void BM_Protect(benchmark::State& state) {
  SmrConfig cfg;
  cfg.max_threads = 2;
  cfg.asymmetric_fences = state.range(0) != 0;
  Smr smr(cfg);
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  auto* n = h.template alloc<ProbeNode>();
  std::atomic<ReclaimNode*> src{n};
  h.begin_op();
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.protect(src, 0));
  }
  h.end_op();
  h.dealloc_unpublished(n);
}

template <class Smr>
void BM_Dup(benchmark::State& state) {
  SmrConfig cfg;
  cfg.max_threads = 2;
  Smr smr(cfg);
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  auto* n = h.template alloc<ProbeNode>();
  std::atomic<ReclaimNode*> src{n};
  h.begin_op();
  (void)h.protect(src, 0);
  for (auto _ : state) {
    h.dup(0, 1);
  }
  h.end_op();
  h.dealloc_unpublished(n);
}

template <class Smr>
void BM_BeginEndOp(benchmark::State& state) {
  SmrConfig cfg;
  cfg.max_threads = 2;
  Smr smr(cfg);
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  for (auto _ : state) {
    h.begin_op();
    h.end_op();
  }
}

template <class Smr>
void BM_AllocRetire(benchmark::State& state) {
  SmrConfig cfg;
  cfg.max_threads = 2;
  cfg.scan_threshold = 128;  // paper calibration
  Smr smr(cfg);
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  for (auto _ : state) {
    auto* n = h.template alloc<ProbeNode>();
    h.retire(n);
  }
}

#define SCOT_REGISTER_SCHEME(scheme)                       \
  BENCHMARK(BM_Protect<scheme>)                            \
      ->Name("protect/" #scheme)                           \
      ->Arg(1)                                             \
      ->Arg(0);                                            \
  BENCHMARK(BM_Dup<scheme>)->Name("dup/" #scheme);         \
  BENCHMARK(BM_BeginEndOp<scheme>)->Name("op/" #scheme);   \
  BENCHMARK(BM_AllocRetire<scheme>)->Name("alloc_retire/" #scheme)

SCOT_REGISTER_SCHEME(NoReclaimDomain);
SCOT_REGISTER_SCHEME(EbrDomain);
SCOT_REGISTER_SCHEME(HpDomain);
SCOT_REGISTER_SCHEME(HpOptDomain);
SCOT_REGISTER_SCHEME(HeDomain);
SCOT_REGISTER_SCHEME(IbrDomain);
SCOT_REGISTER_SCHEME(HyalineDomain);

// --- protect-latency sweep (--json mode) ------------------------------------

inline std::uint64_t read_tsc() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return 0;  // cycles_per_op reported as 0 on non-TSC targets
#endif
}

struct LatencySample {
  double seconds = 0;
  double ns_per_op = 0;
  double cycles_per_op = 0;
  std::uint64_t iters = 0;
};

// Warmup + timed loop (ns and TSC) around one measured call.  Both sweeps
// share this scaffolding so their cells stay comparable: any change to the
// iteration counts or the cycle accounting applies to both.
template <class Body>
LatencySample measure_loop(Body&& body) {
  constexpr std::uint64_t kWarmup = 1u << 14;
  constexpr std::uint64_t kIters = 1u << 21;  // ~2M calls per sample
  for (std::uint64_t i = 0; i < kWarmup; ++i) body();
  const std::uint64_t c0 = read_tsc();
  const std::uint64_t t0 = now_ns();
  for (std::uint64_t i = 0; i < kIters; ++i) body();
  const std::uint64_t t1 = now_ns();
  const std::uint64_t c1 = read_tsc();

  LatencySample s;
  s.iters = kIters;
  s.seconds = ns_to_sec(t1 - t0);
  s.ns_per_op = static_cast<double>(t1 - t0) / static_cast<double>(kIters);
  s.cycles_per_op =
      c1 > c0 ? static_cast<double>(c1 - c0) / static_cast<double>(kIters)
              : 0.0;
  return s;
}

template <class Smr>
LatencySample measure_protect(bool asym, bool track_stats = true) {
  SmrConfig cfg;
  cfg.max_threads = 2;
  cfg.asymmetric_fences = asym;
  cfg.track_stats = track_stats;
  Smr smr(cfg);
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  auto* n = h.template alloc<ProbeNode>();
  std::atomic<ReclaimNode*> src{n};
  h.begin_op();
  const LatencySample s =
      measure_loop([&] { benchmark::DoNotOptimize(h.protect(src, 0)); });
  h.end_op();
  h.dealloc_unpublished(n);
  return s;
}

// Operation activation: begin_op + the operation's first protect + end_op.
// The first protect is part of the measurement deliberately — HE (and HP)
// have an empty begin_op and only become visible to reclaimers at their
// first slot publish, so begin_op alone would measure zero for exactly the
// scheme whose activation store the asymmetric discipline relaxes.
template <class Smr>
LatencySample measure_activation(bool asym, bool track_stats = true) {
  SmrConfig cfg;
  cfg.max_threads = 2;
  cfg.asymmetric_fences = asym;
  cfg.track_stats = track_stats;
  Smr smr(cfg);
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  auto* n = h.template alloc<ProbeNode>();
  std::atomic<ReclaimNode*> src{n};
  const LatencySample s = measure_loop([&] {
    h.begin_op();
    benchmark::DoNotOptimize(h.protect(src, 0));
    h.end_op();
  });
  h.dealloc_unpublished(n);
  return s;
}

void record_sample(bench::BenchReport& report, const char* label,
                   bench::SchemeId id, bool asym, const LatencySample& s,
                   const char* unit) {
  using bench::CaseConfig;
  using bench::CaseResult;
  CaseConfig cfg;
  cfg.structure = bench::StructureId::kNone;
  cfg.scheme = id;
  cfg.threads = 1;
  cfg.key_range = 0;
  cfg.read_pct = 100;
  cfg.insert_pct = 0;
  cfg.delete_pct = 0;
  cfg.millis = 0;
  cfg.op_budget = s.iters;
  cfg.asymmetric_fences = asym;
  CaseResult r;
  r.total_ops = s.iters;
  r.seconds = s.seconds;
  r.mops = static_cast<double>(s.iters) / s.seconds / 1e6;
  r.ns_per_op = s.ns_per_op;
  r.cycles_per_op = s.cycles_per_op;
  report.add("micro_smr", label, cfg, r);
  std::printf("  %-6s %-9s %8.2f ns/%s %9.1f cycles\n",
              bench::scheme_name(id), asym ? "asym" : "classic", s.ns_per_op,
              unit, s.cycles_per_op);
}

template <class Smr>
void sweep_scheme(bench::BenchReport& report, bench::SchemeId id) {
  for (const bool asym : {true, false})
    record_sample(report, "protect-latency", id, asym,
                  measure_protect<Smr>(asym), "protect");
}

template <class Smr>
void sweep_activation(bench::BenchReport& report, bench::SchemeId id) {
  for (const bool asym : {true, false})
    record_sample(report, "begin_op-latency", id, asym,
                  measure_activation<Smr>(asym), "op");
}

// Stats-overhead guard (report-only): the telemetry counters live on the
// retire/scan/join/leave paths, never on protect()/begin_op(), so the asym
// fast path with track_stats on must cost the same as with it off.  A >2%
// delta is almost certainly a regression that put a counter on the fast
// path.  The measured delta is the binary's noise floor and is recorded in
// the report meta (noise_floor_pct) so downstream diffs can calibrate; the
// loud warning is only printed on hosts with real parallelism — on a
// 1-hardware-thread container the sweep measures scheduler jitter, not
// counter cost, and the warning would cry wolf on every CI run.  Returns
// the worst (most positive) delta seen across the two sweeps.
template <class Smr>
double sweep_stats_overhead(bench::SchemeId id, bool warn) {
  const auto pct = [](const LatencySample& on, const LatencySample& off) {
    return off.ns_per_op > 0
               ? (on.ns_per_op - off.ns_per_op) / off.ns_per_op * 100.0
               : 0.0;
  };
  const double protect_pct =
      pct(measure_protect<Smr>(true, true), measure_protect<Smr>(true, false));
  const double act_pct = pct(measure_activation<Smr>(true, true),
                             measure_activation<Smr>(true, false));
  std::printf("  %-6s protect %+6.2f%%  begin_op %+6.2f%%%s\n",
              bench::scheme_name(id), protect_pct, act_pct,
              warn && (protect_pct > 2.0 || act_pct > 2.0)
                  ? "   ** WARNING: stats overhead >2% on asym fast path **"
                  : "");
  return std::max(protect_pct, act_pct);
}

int run_latency_sweep(const std::string& json_path) {
  bench::BenchReport report;
  std::printf("   fence path when asymmetric: %s\n",
              asymfence::runtime_path_name());
  std::printf("== protect-latency: fenced vs. asymmetric ==\n");
  sweep_scheme<NoReclaimDomain>(report, bench::SchemeId::kNR);
  sweep_scheme<EbrDomain>(report, bench::SchemeId::kEBR);
  sweep_scheme<HpDomain>(report, bench::SchemeId::kHP);
  sweep_scheme<HpOptDomain>(report, bench::SchemeId::kHPopt);
  sweep_scheme<HeDomain>(report, bench::SchemeId::kHE);
  sweep_scheme<IbrDomain>(report, bench::SchemeId::kIBR);
  sweep_scheme<HyalineDomain>(report, bench::SchemeId::kHLN);
  std::printf(
      "== begin_op-latency (activation: begin_op + first protect + end_op) "
      "==\n");
  sweep_activation<NoReclaimDomain>(report, bench::SchemeId::kNR);
  sweep_activation<EbrDomain>(report, bench::SchemeId::kEBR);
  sweep_activation<HpDomain>(report, bench::SchemeId::kHP);
  sweep_activation<HpOptDomain>(report, bench::SchemeId::kHPopt);
  sweep_activation<HeDomain>(report, bench::SchemeId::kHE);
  sweep_activation<IbrDomain>(report, bench::SchemeId::kIBR);
  sweep_activation<HyalineDomain>(report, bench::SchemeId::kHLN);
  std::printf(
      "== stats overhead (asym path, track_stats on vs off; guard <2%%) "
      "==\n");
  const bool warn = report.meta().hardware_threads > 1;
  double floor = 0.0;
  floor = std::max(floor, sweep_stats_overhead<NoReclaimDomain>(
                              bench::SchemeId::kNR, warn));
  floor = std::max(floor,
                   sweep_stats_overhead<EbrDomain>(bench::SchemeId::kEBR, warn));
  floor = std::max(floor,
                   sweep_stats_overhead<HpDomain>(bench::SchemeId::kHP, warn));
  floor = std::max(floor, sweep_stats_overhead<HpOptDomain>(
                              bench::SchemeId::kHPopt, warn));
  floor = std::max(floor,
                   sweep_stats_overhead<HeDomain>(bench::SchemeId::kHE, warn));
  floor = std::max(floor,
                   sweep_stats_overhead<IbrDomain>(bench::SchemeId::kIBR, warn));
  floor = std::max(floor, sweep_stats_overhead<HyalineDomain>(
                              bench::SchemeId::kHLN, warn));
  report.meta().noise_floor_pct = floor;
  if (!warn)
    std::printf(
        "  (1 hardware thread: deltas above are scheduler jitter; warning "
        "suppressed, noise floor %.2f%% recorded in report meta)\n",
        floor);
  std::string error;
  if (!report.write_file(json_path, &error)) {
    std::fprintf(stderr, "failed to write %s: %s\n", json_path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("wrote %zu cell(s) to %s\n", report.cells().size(),
              json_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Our flags are peeled off by hand (extract_bench_flags would reject the
  // --benchmark_* flags google-benchmark owns in the default mode).
  std::string json_path;
  std::vector<char*> rest{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) {
    if (rest.size() > 1) {
      std::fprintf(stderr,
                   "%s: --json mode takes no other arguments (got '%s')\n",
                   argv[0], rest[1]);
      return 2;
    }
    return run_latency_sweep(json_path);
  }
  int bench_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&bench_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, rest.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
