// any_map_runtime: pick the reclamation scheme AND the data structure from
// the command line — no templates at the call site, no rebuild per
// combination.  This is the scot::AnyMap facade over the runtime registry:
// one virtual hop per operation, the fully typed SCOT traversal (protect()
// fast path included) inside it.
//
//   ./examples/any_map_runtime                 # defaults: HLN SkipList
//   ./examples/any_map_runtime EBR tree
//   ./examples/any_map_runtime HPopt listlf
//
// Schemes: NR EBR HP HPopt HE IBR HLN (scot::scheme_from_name).
// Structures: paper CLI modes (listlf listwf listhm tree hash skip skiphs)
// or registry names (HList, NMTree, ...) — both spellings resolve through
// the same registry tables.
#include <cstdio>
#include <thread>
#include <vector>

#include "scot.hpp"

int main(int argc, char** argv) {
  using namespace scot;

  SchemeId scheme = SchemeId::kHLN;
  StructureId structure = StructureId::kSkipList;
  if (argc > 1) {
    const auto s = scheme_from_name(argv[1]);
    if (!s) {
      std::fprintf(stderr, "unknown scheme '%s' (try NR EBR HP HPopt HE IBR "
                   "HLN)\n", argv[1]);
      return 2;
    }
    scheme = *s;
  }
  if (argc > 2) {
    auto d = structure_from_mode(argv[2]);
    if (!d) d = structure_from_name(argv[2]);
    if (!d || *d == StructureId::kNone) {
      std::fprintf(stderr, "unknown structure '%s' (try listlf listwf listhm "
                   "tree hash skip skiphs)\n", argv[2]);
      return 2;
    }
    structure = *d;
  }

  constexpr unsigned kThreads = 4;
  AnyMapOptions options;
  options.smr.max_threads = kThreads;
  auto map = AnyMap::make(scheme, structure, options);
  if (!map) {
    std::fprintf(stderr, "no registered cell for %s/%s\n",
                 scheme_name(scheme), structure_name(structure));
    return 1;
  }
  std::printf("running %s over %s (%s)\n", map->structure_name(),
              map->scheme_name(),
              scheme_info(scheme).robust ? "robust" : "not robust");

  // Same workload as quickstart, selected entirely at runtime.  Each worker
  // opens a Session — an RAII membership in the scheme's dynamic handle
  // registry — instead of being handed a fixed tid; threads may come and go
  // for the life of the map (a second wave below reuses the same records).
  auto wave = [&map](unsigned threads, unsigned rounds) {
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&map, t, rounds] {
        auto session = map->session();  // joins; leaves at scope exit
        for (std::uint64_t i = 0; i < rounds; ++i) {
          const std::uint64_t k = (i * 31 + t) % 512;
          if (i % 3 == 0) {
            session.erase(k);
          } else {
            session.insert(k, k);
          }
          session.contains((k * 7) % 512);
        }
      });
    }
    for (auto& w : workers) w.join();
  };
  wave(kThreads, 10000);
  wave(kThreads, 10000);  // fresh threads, recycled handle records

  std::printf("final size        = %zu\n", map->size_unsafe());
  std::printf("retired, unfreed  = %lld\n",
              static_cast<long long>(map->pending_nodes()));
  std::printf("traversal restarts= %llu (recoveries %llu)\n",
              static_cast<unsigned long long>(map->restarts()),
              static_cast<unsigned long long>(map->recoveries()));
  std::printf("handle records    = %zu (active now %u)\n",
              map->total_handle_records(), map->active_handles());
  return 0;
}
