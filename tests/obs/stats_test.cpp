// Observability layer (DESIGN.md §8): counter aggregation across handle
// join/leave churn, histogram percentiles against a sorted-sample reference,
// and the trace ring's wrap-without-tearing guarantee (the TSan lane runs
// the concurrent cases to check the relaxed-cell contract).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <sstream>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "tests/test_util.hpp"

namespace scot {
namespace {

using test::TestNode;

// ---------------------------------------------------------------- counters

template <class Smr>
class StatsDomainTest : public ::testing::Test {};

TYPED_TEST_SUITE(StatsDomainTest, test::AllSchemes);

TYPED_TEST(StatsDomainTest, CountersAggregateAcrossJoinLeaveChurn) {
  constexpr unsigned kThreads = 4;
  const int laps = test::scaled_iters(50);
  constexpr int kRetiresPerLap = 20;
  TypeParam smr(test::small_config(kThreads));
  test::run_threads(kThreads, [&](unsigned tid) {
    for (int lap = 0; lap < laps; ++lap) {
      auto h = scoped_handle(smr);
      for (int i = 0; i < kRetiresPerLap; ++i) {
        auto* n = h->template alloc<TestNode>(std::uint64_t{tid});
        h->retire(n);
      }
    }
  });
  const obs::StatsSnapshot s = smr.stats();
  if (!s.enabled) GTEST_SKIP() << "stats compiled out (SCOT_STATS=0)";
  const std::uint64_t joins =
      static_cast<std::uint64_t>(kThreads) * static_cast<std::uint64_t>(laps);
  // Join/leave/retire counts are exact in quiescence: every scoped_handle
  // lap is one join and one leave, every retire() is one count, and cells
  // survive record reuse, so churned-through records lose nothing.
  EXPECT_EQ(s.joins, joins);
  EXPECT_EQ(s.leaves, joins);
  EXPECT_EQ(s.retires, joins * kRetiresPerLap);
  EXPECT_EQ(s.retires, s.retired_total)
      << "cell-summed retires must match the domain gauge";
  EXPECT_EQ(s.nodes_reclaimed, s.reclaimed_total)
      << "cell-summed frees must match the domain gauge";
  EXPECT_EQ(s.pending,
            static_cast<std::int64_t>(s.retired_total - s.reclaimed_total));
  EXPECT_EQ(s.scan_count, s.scans)
      << "every counted scan must have recorded one latency sample";
  if constexpr (!std::is_same_v<TypeParam, NoReclaimDomain>) {
    EXPECT_GT(s.scans, 0u);
    EXPECT_GT(s.nodes_reclaimed, 0u);
    EXPECT_GT(s.limbo_peak, 0u);
    EXPECT_GT(s.scan_p50_ns, 0.0);
    EXPECT_GE(s.scan_p999_ns, s.scan_p50_ns);
  }
  const std::string dump = s.to_string();
  EXPECT_NE(dump.find("retires: "), std::string::npos);
  EXPECT_NE(dump.find("scan_p99_ns: "), std::string::npos);
}

TYPED_TEST(StatsDomainTest, OrphanHandoffIsCounted) {
  if constexpr (std::is_same_v<TypeParam, NoReclaimDomain>) {
    GTEST_SKIP() << "NR has no orphan path";
  } else {
    TypeParam smr(test::small_config(3));
    auto reader = scoped_handle(smr);
    std::atomic<ReclaimNode*> src{nullptr};
    {
      auto w = scoped_handle(smr);
      auto* victim = w->template alloc<TestNode>(std::uint64_t{1});
      src.store(victim);
      // Pin the victim so the leaver's final scan cannot free it: the
      // limbo remainder (or Hyaline's open batch) must be donated.
      reader->begin_op();
      (void)reader->protect(src, 0);
      w->retire(victim);
    }
    obs::StatsSnapshot s = smr.stats();
    if (!s.enabled) GTEST_SKIP() << "stats compiled out (SCOT_STATS=0)";
    EXPECT_GE(s.orphan_donations, 1u)
        << "leave with unreclaimable retires must donate";
    {
      auto w2 = scoped_handle(smr);
      auto* n = w2->template alloc<TestNode>(std::uint64_t{2});
      w2->retire(n);  // first retire adopts the orphan mailbox
    }
    EXPECT_GE(smr.stats().orphan_adoptions, 1u)
        << "the next retirer must adopt the donated nodes";
    reader->end_op();
  }
}

TYPED_TEST(StatsDomainTest, RuntimeDisabledSnapshotIsZero) {
  auto cfg = test::small_config(2);
  cfg.track_stats = false;
  TypeParam smr(cfg);
  {
    auto h = scoped_handle(smr);
    test::churn_retire(h.get(), 100);
  }
  const obs::StatsSnapshot s = smr.stats();
  EXPECT_FALSE(s.enabled);
  EXPECT_EQ(s.joins, 0u);
  EXPECT_EQ(s.retires, 0u);
  EXPECT_EQ(s.scans, 0u);
  EXPECT_EQ(s.limbo_peak, 0u);
  EXPECT_EQ(s.scan_count, 0u);
  EXPECT_EQ(s.to_string(), "stats: disabled\n");
}

TEST(DomainStats, SnapshotSumsCountersAndMaxMergesPeaks) {
  obs::DomainStats ds;
  obs::StatsCell* a = ds.make_cell(true);
  if (a == nullptr) GTEST_SKIP() << "stats compiled out (SCOT_STATS=0)";
  obs::StatsCell* b = ds.make_cell(true);
  obs::count(a, obs::Counter::kRetires, 5);
  obs::count(b, obs::Counter::kRetires, 7);
  obs::count(a, obs::Counter::kJoins);
  obs::peak(a, 10);
  obs::peak(b, 3);
  obs::peak(b, 2);  // lower watermark must not regress the max
  const std::uint64_t t0 = obs::scan_begin(a);
  obs::scan_end(a, t0, 4);
  const obs::StatsSnapshot s = ds.snapshot();
  EXPECT_EQ(s.retires, 12u);
  EXPECT_EQ(s.joins, 1u);
  EXPECT_EQ(s.limbo_peak, 10u);
  EXPECT_EQ(s.scans, 1u);
  EXPECT_EQ(s.nodes_reclaimed, 4u);
  EXPECT_EQ(s.scan_count, 1u);
  // Null cells (runtime-disabled) are silently ignored by every helper.
  obs::StatsCell* off = ds.make_cell(false);
  EXPECT_EQ(off, nullptr);
  obs::count(off, obs::Counter::kRetires);
  obs::peak(off, 99);
  obs::scan_end(off, obs::scan_begin(off), 1);
  EXPECT_EQ(ds.snapshot().retires, 12u);
}

// --------------------------------------------------------------- histogram

// The histogram's rank convention, replicated for the reference.
std::uint64_t rank_of(double p, std::uint64_t total) {
  auto rank = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(total) + 0.5);
  return std::min(std::max<std::uint64_t>(rank, 1), total);
}

TEST(LatencyHistogram, PercentilesMatchSortedSampleReference) {
  using H = obs::LatencyHistogram;
  auto hist = std::make_unique<H>();
  std::vector<std::uint64_t> samples;
  Xoshiro256 rng(42);
  for (int i = 0; i < 20000; ++i) {
    // Body around a few hundred "ns" with a 1% heavy tail, mimicking the
    // scan-latency shape the bench records.
    std::uint64_t v = 50 + rng.next_in(2000);
    if (rng.next_in(100) == 0) v += 100000 + rng.next_in(1000000);
    samples.push_back(v);
    hist->record(v);
  }
  std::sort(samples.begin(), samples.end());
  EXPECT_EQ(hist->count(), samples.size());
  EXPECT_EQ(hist->min(), samples.front());
  EXPECT_EQ(hist->max(), samples.back());
  for (const double p : {50.0, 90.0, 99.0, 99.9}) {
    const std::uint64_t exact = samples[rank_of(p, samples.size()) - 1];
    const double got = hist->percentile(p);
    // "Within one bucket" of the reference: the log-linear layout bounds
    // the relative bucket width by 2^-kSubBits (6.25%).
    const unsigned want_bucket = H::index_of(exact);
    const unsigned got_bucket =
        H::index_of(static_cast<std::uint64_t>(got));
    const unsigned dist = want_bucket > got_bucket
                              ? want_bucket - got_bucket
                              : got_bucket - want_bucket;
    EXPECT_LE(dist, 1u) << "p" << p << ": got " << got << " vs exact "
                        << exact;
  }
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  using H = obs::LatencyHistogram;
  auto a = std::make_unique<H>();
  auto b = std::make_unique<H>();
  auto combined = std::make_unique<H>();
  Xoshiro256 rng(7);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t va = 10 + rng.next_in(500);
    const std::uint64_t vb = 1000 + rng.next_in(50000);
    a->record(va);
    combined->record(va);
    b->record(vb);
    combined->record(vb);
  }
  a->merge(*b);
  EXPECT_EQ(a->count(), combined->count());
  EXPECT_EQ(a->sum(), combined->sum());
  EXPECT_EQ(a->min(), combined->min());
  EXPECT_EQ(a->max(), combined->max());
  // merge() is bucket-wise, so percentiles agree exactly, not just within
  // a bucket.
  for (const double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(a->percentile(p), combined->percentile(p)) << "p" << p;
  }
}

TEST(LatencyHistogram, BucketRelativeErrorIsBounded) {
  using H = obs::LatencyHistogram;
  unsigned last = 0;
  for (std::uint64_t v = 0; v < 200000; v += 1 + v / 64) {
    const unsigned idx = H::index_of(v);
    EXPECT_GE(idx, last) << "bucket index must be monotone in the value";
    last = idx;
    const double mid = H::value_of(idx);
    // Midpoint error is at most one bucket width: exact below kSubBuckets,
    // then bounded by v * 2^-kSubBits.
    EXPECT_LE(std::abs(mid - static_cast<double>(v)),
              static_cast<double>(v) / H::kSubBuckets + 1.0)
        << "value " << v;
  }
}

// ------------------------------------------------------------------- trace

TEST(TraceRing, WrapsWithoutTearingUnderConcurrentSnapshots) {
  auto ring = std::make_unique<obs::TraceRing>();
  constexpr std::uint64_t kEvents = 3 * obs::TraceRing::kCapacity;
  std::atomic<bool> done{false};
  test::run_threads(2, [&](unsigned tid) {
    if (tid == 0) {
      // Writer: every field is derived from the event index, so any torn
      // read on the reader side breaks an arithmetic invariant.
      for (std::uint64_t i = 0; i < kEvents; ++i) {
        ring->emit(static_cast<obs::TraceKind>(i % 3), i, 2 * i + 1);
      }
      done.store(true, std::memory_order_release);
      return;
    }
    std::vector<obs::TraceEvent> out;
    while (!done.load(std::memory_order_acquire)) {
      out.clear();
      ring->snapshot(out);
      std::uint64_t prev = 0;
      bool first = true;
      for (const obs::TraceEvent& e : out) {
        EXPECT_EQ(e.dur, 2 * e.start + 1) << "torn slot";
        EXPECT_EQ(static_cast<std::uint32_t>(e.kind), e.start % 3);
        if (!first) {
          EXPECT_GT(e.start, prev) << "snapshot out of order";
        }
        prev = e.start;
        first = false;
      }
    }
  });
  EXPECT_EQ(ring->events_emitted(), kEvents);
  std::vector<obs::TraceEvent> fin;
  ring->snapshot(fin);
  ASSERT_LE(fin.size(), obs::TraceRing::kCapacity);
  ASSERT_FALSE(fin.empty());
  EXPECT_EQ(fin.back().start, kEvents - 1)
      << "a quiescent snapshot must end at the newest event";
  EXPECT_EQ(fin.size(), obs::TraceRing::kCapacity)
      << "a quiescent snapshot retains exactly one ring of history";
}

TEST(TraceLog, ClaimReleaseReusesRingsAndExportsChromeJson) {
  auto& log = obs::TraceLog::instance();
  obs::TraceRing* a = log.claim();
  obs::TraceRing* b = log.claim();
  EXPECT_NE(a, b);
  a->emit(obs::TraceKind::kScan, obs::trace_clock(), 100);
  a->emit(obs::TraceKind::kJoin, obs::trace_clock(), 0);
  log.release(b);
  obs::TraceRing* c = log.claim();
  EXPECT_EQ(c, b) << "claim() must reuse released rings";
  std::ostringstream os;
  log.export_chrome_to(os);
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  EXPECT_NE(json.find("\"name\":\"scan\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos)
      << "scan must export as a duration event";
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos)
      << "join must export as an instant event";
  EXPECT_GE(log.total_events(), 2u);
  log.release(a);
  log.release(c);
}

}  // namespace
}  // namespace scot
