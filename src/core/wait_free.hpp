// Wait-free traversal support (Figure 7 of the paper).
//
// SCOT traversals are lock-free: a traversal restarts when its dangerous-zone
// validation fails, and an adversarial scheduler can starve a single reader.
// The paper restores wait-freedom for Search with a custom
// fast-path/slow-path protocol:
//
//  * A starved searcher publishes (key, input-tag) in its per-thread record
//    (`Request_Help`) and switches to `Slow_Search`.
//  * Every Insert/Delete polls one peer record per DELAY operations
//    (`Help_Threads`, round-robin) and joins the helpee's Slow_Search.
//  * All participants run the same traversal; whoever finishes first
//    publishes the result with a single CAS on the helpee's record
//    (tag -> output).  Versioned tags make late helpers' CASes fail
//    (Lemma 5: uniqueness), and the round-robin scan bounds the wait
//    (Lemma 4), giving a wait-free Search (Theorem 7) with only standard
//    CAS — no dynamically allocated descriptors.
//
// The record encodes the paper's {Value, IsInput} pair in one 64-bit word:
// bit 0 is IsInput; for inputs the remaining bits carry the slow-path cycle
// number, for outputs they carry the boolean search result.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "common/align.hpp"
#include "common/chunked_list.hpp"

namespace scot {

enum class WfPoll : std::uint8_t {
  kContinue,   // no result yet, keep traversing
  kStale,      // the input tag moved on (helper only): abandon
  kDoneFalse,  // another participant published "not found"
  kDoneTrue,   // another participant published "found"
};

template <class Key>
class WfHelpRegistry {
  static_assert(std::is_trivially_copyable_v<Key>,
                "wait-free help records publish keys through std::atomic");

 public:
  static constexpr int kDelay = 8;  // help once per kDelay update operations

  struct alignas(kFalseSharingRange) Record {
    // --- shared fields ---
    std::atomic<std::uint64_t> help_tag{0};  // (value << 1) | is_input
    std::atomic<Key> help_key{};
    // --- owner-private fields ---
    int next_check = kDelay;
    unsigned next_tid = 0;
    std::uint64_t local_tag = 0;
  };

  // Records are indexed by SMR handle tid (= registry record index), which
  // can exceed the configured max_threads under dynamic join/leave churn.
  // The array therefore grows on demand: `max_threads` only seeds the
  // initial population.
  explicit WfHelpRegistry(unsigned max_threads) {
    const unsigned n = max_threads == 0 ? 1 : max_threads;
    records_.ensure(n - 1);
    count_.store(n, std::memory_order_release);
  }

  static constexpr std::uint64_t input_tag(std::uint64_t version) noexcept {
    return (version << 1) | 1;
  }
  static constexpr std::uint64_t output_tag(bool found) noexcept {
    return static_cast<std::uint64_t>(found) << 1;
  }
  static constexpr bool is_input(std::uint64_t tag) noexcept {
    return (tag & 1) != 0;
  }
  static constexpr bool output_value(std::uint64_t tag) noexcept {
    return (tag >> 1) != 0;
  }

  // Paper's Request_Help: publish the key, then the input tag (the order
  // matters: helpers read the tag, then the key, then re-check the tag).
  std::uint64_t request_help(unsigned tid, const Key& key) {
    Record& r = record(tid);
    r.help_key.store(key, std::memory_order_release);
    const std::uint64_t tag = input_tag(r.local_tag);
    r.help_tag.store(tag, std::memory_order_seq_cst);
    ++r.local_tag;
    return tag;
  }

  // Paper's Help_Threads: amortized round-robin poll.  Returns true and
  // fills the out-parameters when some thread needs help.
  bool poll_for_work(unsigned tid, Key* out_key, std::uint64_t* out_tag,
                     unsigned* out_tid) {
    Record& r = record(tid);
    if (--r.next_check != 0) return false;
    r.next_check = kDelay;
    // Round-robin over the records published so far.  A record appended
    // after this load is simply picked up on a later lap; wait-freedom only
    // needs every *requester* to be polled eventually, and a requester's
    // record exists before its request_help() returns.
    const unsigned n = size();
    const unsigned cand = r.next_tid < n ? r.next_tid : 0;
    r.next_tid = (cand + 1) % n;
    if (cand == tid) return false;
    Record& c = records_[cand];
    const std::uint64_t tag = c.help_tag.load(std::memory_order_seq_cst);
    if (!is_input(tag)) return false;
    const Key key = c.help_key.load(std::memory_order_acquire);
    if (c.help_tag.load(std::memory_order_seq_cst) != tag) return false;
    *out_key = key;
    *out_tag = tag;
    *out_tid = cand;
    return true;
  }

  // Slow_Search's per-iteration completion check (Figure 7, L34-37).
  WfPoll poll_status(unsigned help_tid, std::uint64_t tag) const {
    const std::uint64_t r =
        records_[help_tid].help_tag.load(std::memory_order_acquire);
    if (r == tag) return WfPoll::kContinue;
    if (is_input(r)) return WfPoll::kStale;
    return output_value(r) ? WfPoll::kDoneTrue : WfPoll::kDoneFalse;
  }

  // Publish a result (Figure 7, L41).  At most one publication per tag
  // version can succeed.  Returns the final result for this tag.
  bool publish_result(unsigned help_tid, std::uint64_t tag, bool found) {
    Record& r = records_[help_tid];
    std::uint64_t expected = tag;
    if (r.help_tag.compare_exchange_strong(expected, output_tag(found),
                                           std::memory_order_seq_cst,
                                           std::memory_order_seq_cst)) {
      return found;
    }
    // Someone beat us; the published output is the authoritative answer.
    // (`expected` now holds it; it cannot be a newer input because only the
    // helpee advances the version, and the helpee is waiting on `tag`.)
    return output_value(expected);
  }

  // Grows the array to cover `tid` if needed (idempotent, lock-free) and
  // returns the record.  Chunks are never moved, so returned references
  // stay valid forever.
  Record& record(unsigned tid) {
    if (tid >= size()) grow_to(tid + 1);
    return records_[tid];
  }
  unsigned size() const {
    return count_.load(std::memory_order_acquire);
  }

 private:
  void grow_to(unsigned n) {
    records_.ensure(n - 1);
    unsigned cur = count_.load(std::memory_order_relaxed);
    while (cur < n && !count_.compare_exchange_weak(
                          cur, n, std::memory_order_release,
                          std::memory_order_relaxed)) {
    }
  }

  AtomicChunkedArray<Record> records_;
  std::atomic<unsigned> count_{0};
};

}  // namespace scot
