// Hyaline-1S-specific mechanics: batch formation, distributed reference
// counting, any-thread reclamation, and the birth-era restart signal that
// SCOT structures poll through op_valid().
#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace scot {
namespace {

using test::TestNode;

TEST(Hyaline, BatchSealsAtCapacity) {
  auto cfg = test::small_config(2);
  HyalineDomain smr(cfg);
  EXPECT_EQ(smr.batch_capacity(), 3u);  // max_threads + 1
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  // Below capacity: nodes accumulate in the open batch, nothing freed.
  for (int i = 0; i < 2; ++i) {
    auto* n = h.template alloc<TestNode>(std::uint64_t(i));
    h.retire(n);
  }
  EXPECT_EQ(h.pending_batch_size(), 2u);
  EXPECT_EQ(smr.counters().reclaimed.load(), 0u);
  // Capacity reached: with no active slots the batch frees immediately.
  auto* n = h.template alloc<TestNode>(std::uint64_t{2});
  h.retire(n);
  EXPECT_EQ(h.pending_batch_size(), 0u);
  EXPECT_EQ(smr.counters().reclaimed.load(), 3u);
}

TEST(Hyaline, ActiveSlotHoldsBatchUntilLeave) {
  auto cfg = test::small_config(2);
  HyalineDomain smr(cfg);
  auto reader_h = scoped_handle(smr);
  auto writer_h = scoped_handle(smr);
  auto& reader = reader_h.get();
  auto& writer = writer_h.get();
  reader.begin_op();
  TestNode* nodes[3];
  for (auto*& p : nodes) {
    p = writer.template alloc<TestNode>(std::uint64_t{9});
    writer.retire(p);
  }
  EXPECT_EQ(smr.counters().reclaimed.load(), 0u)
      << "batch must stay alive while the reader's slot is active";
  for (auto* p : nodes) EXPECT_EQ(p->debug_state, kNodeRetired);
  reader.end_op();  // drain the slot: last reference drops here
  EXPECT_EQ(smr.counters().reclaimed.load(), 3u)
      << "leave() performs the reclamation (any-thread property)";
  for (auto* p : nodes) EXPECT_EQ(p->debug_state, kNodeFreed);
}

TEST(Hyaline, YoungNodeTriggersRestartSignal) {
  // The "1S" rule: a thread must not dereference a node born after its
  // published era.  protect() refreshes the reservation and raises the
  // restart flag that data structures poll via op_valid().
  auto cfg = test::small_config(2);
  cfg.era_freq = 1;  // every allocation advances the era
  HyalineDomain smr(cfg);
  auto reader_h = scoped_handle(smr);
  auto writer_h = scoped_handle(smr);
  auto& reader = reader_h.get();
  auto& writer = writer_h.get();

  reader.begin_op();
  const std::uint64_t era_before = reader.reservation_era();
  // Writer allocates "young" nodes, pushing the global era past the
  // reader's reservation.
  auto* young = writer.template alloc<TestNode>(std::uint64_t{1});
  ASSERT_GT(birth_era_of(young), era_before);

  std::atomic<ReclaimNode*> src{young};
  EXPECT_TRUE(reader.op_valid());
  ReclaimNode* got = reader.protect(src, 0);
  EXPECT_EQ(got, young) << "protect still returns the loaded value";
  EXPECT_FALSE(reader.op_valid()) << "young node must raise the restart flag";
  EXPECT_GE(reader.reservation_era(), birth_era_of(young))
      << "the reservation must have been refreshed";
  reader.revalidate_op();
  EXPECT_TRUE(reader.op_valid());
  // After the refresh the same node is old enough.
  (void)reader.protect(src, 0);
  EXPECT_TRUE(reader.op_valid());
  reader.end_op();
  writer.dealloc_unpublished(young);
}

TEST(Hyaline, OldNodeDoesNotTriggerRestart) {
  auto cfg = test::small_config(2);
  cfg.era_freq = 1;
  HyalineDomain smr(cfg);
  auto reader_h = scoped_handle(smr);
  auto writer_h = scoped_handle(smr);
  auto& reader = reader_h.get();
  auto& writer = writer_h.get();
  auto* old_node = writer.template alloc<TestNode>(std::uint64_t{1});
  reader.begin_op();
  std::atomic<ReclaimNode*> src{old_node};
  (void)reader.protect(src, 0);
  EXPECT_TRUE(reader.op_valid());
  reader.end_op();
  writer.dealloc_unpublished(old_node);
}

TEST(Hyaline, EraFilterSkipsPreEntryThreads) {
  // A slot whose era predates every node in a batch is skipped (its thread
  // would have restarted instead of holding references into the batch), so
  // young batches reclaim even while an old reader is stalled.
  auto cfg = test::small_config(2);
  cfg.era_freq = 1;
  HyalineDomain smr(cfg);
  auto stalled_h = scoped_handle(smr);
  auto writer_h = scoped_handle(smr);
  auto& stalled = stalled_h.get();
  auto& writer = writer_h.get();
  stalled.begin_op();  // era E
  // All of these are born after E, so their batches must skip the slot.
  for (int i = 0; i < 12; ++i) {
    auto* n = writer.template alloc<TestNode>(std::uint64_t(i));
    writer.retire(n);
  }
  EXPECT_GE(smr.counters().reclaimed.load(), 9u)
      << "young batches must reclaim despite the stalled old reader";
  stalled.end_op();
}

TEST(Hyaline, CrossThreadReclamationMigratesMemory) {
  auto cfg = test::small_config(2);
  HyalineDomain smr(cfg);
  auto reader_h = scoped_handle(smr);
  auto writer_h = scoped_handle(smr);
  auto& reader = reader_h.get();
  auto& writer = writer_h.get();
  const auto reused_before = smr.pool().total_reused();
  reader.begin_op();
  for (int i = 0; i < 3; ++i) {
    auto* n = writer.template alloc<TestNode>(std::uint64_t(i));
    writer.retire(n);
  }
  reader.end_op();  // reader frees the batch into *its own* shard
  EXPECT_EQ(smr.counters().reclaimed.load(), 3u);
  // The reader's shard now owns the cells.
  auto* n = reader.template alloc<TestNode>(std::uint64_t{0});
  EXPECT_GT(smr.pool().total_reused(), reused_before);
  reader.dealloc_unpublished(n);
}

TEST(Hyaline, ConcurrentEnterLeaveRetireStress) {
  auto cfg = test::small_config(4);
  cfg.era_freq = 2;
  HyalineDomain smr(cfg);
  test::run_threads(4, [&](unsigned tid) {
    auto sh = scoped_handle(smr);
    auto& h = sh.get();
    Xoshiro256 rng(tid);
    for (int i = 0; i < 20000; ++i) {
      h.begin_op();
      auto* n = h.template alloc<TestNode>(std::uint64_t{tid});
      if (rng.next_in(2) == 0) {
        h.retire(n);
      } else {
        h.dealloc_unpublished(n);
      }
      h.end_op();
    }
  });
  const auto retired = smr.counters().retired.load();
  const auto reclaimed = smr.counters().reclaimed.load();
  EXPECT_EQ(smr.pending_nodes(),
            static_cast<std::int64_t>(retired - reclaimed));
  // Open batches hold at most capacity-1 nodes per thread.
  EXPECT_LE(smr.pending_nodes(), 4 * 5);
}

}  // namespace
}  // namespace scot
