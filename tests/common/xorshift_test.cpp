#include "common/xorshift.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <set>

namespace scot {
namespace {

TEST(Xoshiro, DeterministicForEqualSeeds) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, AdjacentSeedsDecorrelate) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Xoshiro, NextInStaysInBounds) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 512ull, 1000000007ull}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.next_in(bound), bound);
    }
  }
}

TEST(Xoshiro, NextInCoversRange) {
  Xoshiro256 rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 4000; ++i) seen.insert(rng.next_in(16));
  EXPECT_EQ(seen.size(), 16u) << "all 16 values should appear in 4000 draws";
}

TEST(Xoshiro, RoughlyUniformBuckets) {
  Xoshiro256 rng(2024);
  std::array<int, 8> buckets{};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.next_in(8)];
  for (int b : buckets) {
    EXPECT_GT(b, kDraws / 8 * 0.9);
    EXPECT_LT(b, kDraws / 8 * 1.1);
  }
}

TEST(Xoshiro, ZeroSeedStillProducesEntropy) {
  Xoshiro256 rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.next());
  EXPECT_GT(seen.size(), 95u);
}

}  // namespace
}  // namespace scot
