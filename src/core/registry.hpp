// Runtime structure registry: the closed set of data structures as values,
// plus the SchemeId × StructureId → factory table behind `scot::AnyMap`.
//
// Like src/smr/registry.hpp this is the single source of truth for structure
// identity: the bench options, the JSON reports and the paper CLI mode
// spellings all resolve through the tables here.  The factory table is a
// genuine *runtime* registry — src/core/any_map.cpp populates the full
// scheme × structure cross product at static-initialisation time, and
// out-of-tree code can register additional cells through
// `AnyMapRegistry::instance().add(...)` (DESIGN.md §6 has the recipe).
//
// This header is deliberately light: it forward-declares the type-erased
// implementation interface instead of including the structure headers, so
// name resolution never pays for template instantiation.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "smr/registry.hpp"

namespace scot {

enum class StructureId {
  kHMList,
  kHList,
  kHListWF,
  kNMTree,
  kHashMap,
  kSkipList,        // Fraser-style optimistic traversal with SCOT
  kSkipListEager,   // Herlihy-Shavit-style eager unlink (baseline)
  kHListNoRecovery, // trait ablation §3.2.1: restart-from-head, no recovery
  kHListSimple,     // trait ablation §3.2: simple (Fig 5 left) Do_Find
  kKvHash,          // string-keyed resizable hash map (src/kv/, DESIGN.md §10)
  kNone,            // SMR-layer microbench cells (no data structure)
};

inline constexpr StructureId kAllStructures[] = {
    StructureId::kHMList,  StructureId::kHList,    StructureId::kHListWF,
    StructureId::kNMTree,  StructureId::kHashMap,  StructureId::kSkipList,
    StructureId::kSkipListEager};

// Trait-ablation variants of the Harris list (bench_ablation_*): registered,
// name-resolvable identities so their JSON cells diff cleanly, but — like
// kNone — deliberately absent from kAllStructures, so no figure grid or
// cross-product test ever iterates them.
inline constexpr StructureId kAblationStructures[] = {
    StructureId::kHListNoRecovery, StructureId::kHListSimple};

// String-keyed structures served through AnyKv/KvStore (src/kv/).  A
// separate table because the uint64-keyed grids above cannot iterate them:
// the op surface (string_view keys, blob values) is different, so they get
// their own cross-product tests and "kv:" bench cells.
inline constexpr StructureId kKvStructures[] = {StructureId::kKvHash};

inline const char* structure_name(StructureId s) noexcept {
  switch (s) {
    case StructureId::kHMList: return "HMList";
    case StructureId::kHList: return "HList";
    case StructureId::kHListWF: return "HListWF";
    case StructureId::kNMTree: return "NMTree";
    case StructureId::kHashMap: return "HashMap";
    case StructureId::kSkipList: return "SkipList";
    case StructureId::kSkipListEager: return "SkipListHS";
    case StructureId::kHListNoRecovery: return "HListNoRec";
    case StructureId::kHListSimple: return "HListSimple";
    case StructureId::kKvHash: return "KvHash";
    case StructureId::kNone: return "none";
  }
  return "?";
}

// Reverse of structure_name(); used when loading JSON reports.  "none" and
// the ablation variants are resolvable (micro-SMR and ablation cells carry
// them) but deliberately absent from kAllStructures, so no grid ever
// iterates them.
inline std::optional<StructureId> structure_from_name(std::string_view name) {
  if (name == structure_name(StructureId::kNone)) return StructureId::kNone;
  for (StructureId s : kAblationStructures) {
    if (name == structure_name(s)) return s;
  }
  for (StructureId s : kKvStructures) {
    if (name == structure_name(s)) return s;
  }
  for (StructureId s : kAllStructures) {
    if (name == structure_name(s)) return s;
  }
  return std::nullopt;
}

// Paper-artifact CLI mode spellings (Appendix A.5).
inline std::optional<StructureId> structure_from_mode(std::string_view mode) {
  if (mode == "listlf") return StructureId::kHList;
  if (mode == "listwf") return StructureId::kHListWF;
  if (mode == "listhm") return StructureId::kHMList;
  if (mode == "tree") return StructureId::kNMTree;
  if (mode == "hash") return StructureId::kHashMap;
  if (mode == "skip") return StructureId::kSkipList;
  if (mode == "skiphs") return StructureId::kSkipListEager;
  return std::nullopt;
}

// --- AnyMap factory registry ----------------------------------------------

struct AnyMapOptions;  // core/any_map.hpp
namespace detail {
class AnyMapImpl;  // core/any_map.hpp
}

// Maps (scheme, structure) to a factory producing the type-erased map
// implementation.  Populated by src/core/any_map.cpp; queried by
// AnyMap::make().  Registration normally happens during static init, but the
// table is mutex-guarded so late (test / out-of-tree) registration is safe.
class AnyMapRegistry {
 public:
  using Factory = std::unique_ptr<detail::AnyMapImpl> (*)(const AnyMapOptions&);

  struct Entry {
    SchemeId scheme;
    StructureId structure;
    Factory factory;
  };

  static AnyMapRegistry& instance() {
    static AnyMapRegistry registry;
    return registry;
  }

  // Last registration for a cell wins, so tests can shadow a factory.
  void add(SchemeId scheme, StructureId structure, Factory factory) {
    std::lock_guard<std::mutex> lock(mu_);
    for (Entry& e : entries_) {
      if (e.scheme == scheme && e.structure == structure) {
        e.factory = factory;
        return;
      }
    }
    entries_.push_back(Entry{scheme, structure, factory});
  }

  Factory find(SchemeId scheme, StructureId structure) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_) {
      if (e.scheme == scheme && e.structure == structure) return e.factory;
    }
    return nullptr;
  }

  std::vector<Entry> entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_;
  }

 private:
  AnyMapRegistry() = default;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

// --- AnyKv factory registry -----------------------------------------------

struct AnyKvOptions;  // kv/any_kv.hpp
namespace detail {
class AnyKvImpl;  // kv/any_kv.hpp
}

// The string-keyed sibling of AnyMapRegistry: maps (scheme, structure) to a
// factory for the type-erased KV shard implementation.  Populated by
// src/kv/any_kv.cpp (scheme cross product × kKvStructures); queried by
// AnyKv::make() and, per shard, by KvStore::make().
class AnyKvRegistry {
 public:
  using Factory = std::unique_ptr<detail::AnyKvImpl> (*)(const AnyKvOptions&);

  struct Entry {
    SchemeId scheme;
    StructureId structure;
    Factory factory;
  };

  static AnyKvRegistry& instance() {
    static AnyKvRegistry registry;
    return registry;
  }

  // Last registration for a cell wins, so tests can shadow a factory.
  void add(SchemeId scheme, StructureId structure, Factory factory) {
    std::lock_guard<std::mutex> lock(mu_);
    for (Entry& e : entries_) {
      if (e.scheme == scheme && e.structure == structure) {
        e.factory = factory;
        return;
      }
    }
    entries_.push_back(Entry{scheme, structure, factory});
  }

  Factory find(SchemeId scheme, StructureId structure) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_) {
      if (e.scheme == scheme && e.structure == structure) return e.factory;
    }
    return nullptr;
  }

  std::vector<Entry> entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_;
  }

 private:
  AnyKvRegistry() = default;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

}  // namespace scot
