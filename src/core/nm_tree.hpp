// The Natarajan-Mittal lock-free external binary search tree (PPoPP 2014)
// with **SCOT** traversal protection (paper §3.3).
//
// Structure recap.  All keys live in leaves; internal nodes carry routing
// keys.  Deletion *flags* the edge from the parent to the victim leaf, then
// *tags* the sibling edge (freezing it), and finally prunes the whole
// chain of tagged edges with a single CAS on the ancestor's child pointer
// (the "successor" edge — the last untagged edge on the path).  Like
// Harris' list, traversals walk optimistically across tagged edges, which
// is fundamentally unsafe under HP/HE/IBR/Hyaline-1S.
//
// SCOT protection roles (paper §3.3; API v2 guard slots in index order):
//   hp.child  = current child being followed   hp.succ = successor (zone
//   hp.leaf   = current leaf candidate                    entrance)
//   hp.parent = parent of the leaf             hp.anc  = ancestor
//   hp.target = delete()'s flagged target
// All dup_from() calls copy toward higher indices (ascending-dup
// discipline, asserted by ProtectionSlot).
//
// The dangerous zone is the run of tagged edges between the successor and
// the parent.  At every step taken through an edge that carries any bit
// (tag — chain interior; or flag — the final hop onto a leaf that may be
// pruned together with its parent), the traversal re-validates that the
// ancestor still points at the successor before dereferencing the new node.
// A chain can only be pruned by the CAS on that ancestor edge, so a
// successful validation proves the just-protected node was still linked.
// On failure the operation restarts; per §3.2.2 the recovery optimization
// does not pay off for trees, so none is attempted.
//
// Sentinels.  R(rank 3) -> { S(rank 2), leaf(rank 3) }, S -> { leaf(rank 1),
// leaf(rank 2) }; real keys (rank 0) sort below every sentinel rank, so all
// user data lives in S's left subtree and R/S are immortal: no deletable
// leaf ever has them as its parent, hence their edges are never flagged or
// tagged and the seek anchors are always live.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/align.hpp"
#include "common/stable_atomic.hpp"
#include "core/marked_ptr.hpp"
#include "smr/handle_registry.hpp"
#include "smr/smr.hpp"

namespace scot {

template <class Key, class Value, SmrDomainV2 Smr,
          class Compare = std::less<Key>>
class NatarajanMittalTree {
 public:
  // Child edges are StableAtomic: nodes are pool-recycled while stale
  // optimistic readers may still protect() through them, so (re)initialising
  // an edge must be an atomic store, not a plain constructor write
  // (DESIGN.md §4).
  struct Node : ReclaimNode {
    Key key;
    Value value;        // meaningful for leaves only
    std::uint8_t rank;  // 0 = real key; 1..3 = sentinel infinities
    StableAtomic<marked_ptr<Node>> left;
    StableAtomic<marked_ptr<Node>> right;

    Node(const Key& k, const Value& v, std::uint8_t r)
        : key(k),
          value(v),
          rank(r),
          left(marked_ptr<Node>{}),
          right(marked_ptr<Node>{}) {}
  };
  using MP = marked_ptr<Node>;
  using Link = StableAtomic<MP>;
  using Handle = typename Smr::Handle;
  using Guard = TraversalGuard<Handle>;
  using NodeSlot = ProtectionSlot<Handle, Node>;

  static constexpr unsigned kSlotsRequired = 6;

  // Slot roles in index (= ascending-dup) order.
  struct Hp {
    NodeSlot child, leaf, parent, succ, anc, target;
    explicit Hp(Guard& g)
        : child(g.template slot<Node>()),
          leaf(g.template slot<Node>()),
          parent(g.template slot<Node>()),
          succ(g.template slot<Node>()),
          anc(g.template slot<Node>()),
          target(g.template slot<Node>()) {}
  };

  explicit NatarajanMittalTree(Smr& smr, Compare cmp = {})
      : smr_(smr), cmp_(cmp) {
    auto sh = scoped_handle(smr_);
    auto& h = sh.get();
    Node* leaf1 = h.template alloc<Node>(Key{}, Value{}, 1);
    Node* leaf2 = h.template alloc<Node>(Key{}, Value{}, 2);
    Node* leaf3 = h.template alloc<Node>(Key{}, Value{}, 3);
    s_ = h.template alloc<Node>(Key{}, Value{}, 2);
    s_->left.store(MP(leaf1), std::memory_order_relaxed);
    s_->right.store(MP(leaf2), std::memory_order_relaxed);
    r_ = h.template alloc<Node>(Key{}, Value{}, 3);
    r_->left.store(MP(s_), std::memory_order_relaxed);
    r_->right.store(MP(leaf3), std::memory_order_release);
  }

  ~NatarajanMittalTree() {
    // Single-threaded teardown; every linked node has exactly one parent,
    // so an explicit-stack walk frees each node once.
    auto sh = scoped_handle(smr_);
    auto& h = sh.get();
    std::vector<Node*> stack{r_};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (Node* l = n->left.load(std::memory_order_relaxed).ptr())
        stack.push_back(l);
      if (Node* r = n->right.load(std::memory_order_relaxed).ptr())
        stack.push_back(r);
      h.dealloc_unpublished(n);
    }
  }

  NatarajanMittalTree(const NatarajanMittalTree&) = delete;
  NatarajanMittalTree& operator=(const NatarajanMittalTree&) = delete;

  bool insert(Handle& h, const Key& key, const Value& value = {}) {
    Guard guard(h);
    Hp hp(guard);
    Node* new_leaf = nullptr;
    Node* new_internal = nullptr;
    for (;;) {
      SeekRecord s;
      seek(guard, hp, key, s);
      const bool match = leaf_matches(s.leaf, key);
      if (match && !s.leaf_edge.flagged()) {
        if (new_leaf != nullptr) {
          h.dealloc_unpublished(new_leaf);
          h.dealloc_unpublished(new_internal);
        }
        return false;  // key already present
      }
      if (s.leaf_edge.bits() != 0) {
        // The edge is frozen by a pending deletion; help finish it, then
        // retry (this also covers match && flagged: the key is logically
        // gone, and once the chain is pruned the insert can proceed).
        cleanup(h, key, s);
        continue;
      }
      if (new_leaf == nullptr) {
        new_leaf = h.template alloc<Node>(key, value, 0);
        new_internal = h.template alloc<Node>(Key{}, Value{}, 0);
      }
      // Route the new internal node: its key is the larger of the two, the
      // smaller goes left.  s.leaf is hazard-protected, so reading its
      // immutable key/rank is safe even if it lost a race meanwhile (the
      // CAS below would then fail).
      if (key_less_than_node(key, s.leaf)) {
        new_internal->key = s.leaf->key;
        new_internal->rank = s.leaf->rank;
        new_internal->left.store(MP(new_leaf), std::memory_order_relaxed);
        new_internal->right.store(MP(s.leaf), std::memory_order_relaxed);
      } else {
        new_internal->key = key;
        new_internal->rank = 0;
        new_internal->left.store(MP(s.leaf), std::memory_order_relaxed);
        new_internal->right.store(MP(new_leaf), std::memory_order_relaxed);
      }
      MP expected = MP(s.leaf);
      if (s.leaf_field->compare_exchange_strong(expected, MP(new_internal),
                                                std::memory_order_seq_cst,
                                                std::memory_order_relaxed)) {
        return true;
      }
      // CAS failed: if the edge now carries deletion bits for the same
      // leaf, help prune before retrying.
      MP now = s.leaf_field->load(std::memory_order_acquire);
      if (now.ptr() == s.leaf && now.bits() != 0) cleanup(h, key, s);
    }
  }

  bool erase(Handle& h, const Key& key) {
    Guard guard(h);
    Hp hp(guard);
    bool injected = false;
    Node* target = nullptr;
    for (;;) {
      SeekRecord s;
      seek(guard, hp, key, s);
      if (!injected) {
        // --- injection phase ---
        if (!leaf_matches(s.leaf, key)) return false;
        if (s.leaf_edge.flagged()) {
          // A concurrent delete owns this key; the flag CAS is delete's
          // linearization point, so the key is already logically gone.
          cleanup(h, key, s);
          return false;
        }
        if (s.leaf_edge.tagged()) {
          // The leaf survives as a sibling of a pending chain removal;
          // help prune, then retry the injection.
          cleanup(h, key, s);
          continue;
        }
        MP expected = MP(s.leaf);
        if (!s.leaf_field->compare_exchange_strong(
                expected, MP(s.leaf).with_flag(), std::memory_order_seq_cst,
                std::memory_order_relaxed)) {
          continue;  // lost a race; re-seek and re-evaluate
        }
        // Flag succeeded: this operation owns the deletion.  Keep the
        // target protected across re-seeks so the address comparison below
        // can never be fooled by recycling.
        injected = true;
        target = s.leaf;
        hp.target.dup_from(hp.leaf);
        if (cleanup(h, key, s)) return true;
      } else {
        // --- cleanup phase ---
        if (s.leaf != target) return true;  // a helper pruned the chain
        if (cleanup(h, key, s)) return true;
      }
    }
  }

  bool contains(Handle& h, const Key& key) {
    Guard guard(h);
    Hp hp(guard);
    SeekRecord s;
    seek(guard, hp, key, s);
    return leaf_matches(s.leaf, key) && !s.leaf_edge.flagged();
  }

  std::optional<Value> get(Handle& h, const Key& key) {
    Guard guard(h);
    Hp hp(guard);
    SeekRecord s;
    seek(guard, hp, key, s);
    if (!leaf_matches(s.leaf, key) || s.leaf_edge.flagged())
      return std::nullopt;
    return s.leaf->value;  // protected by hp.leaf
  }

  // --- single-threaded observers (tests / teardown) ----------------------

  std::size_t size_unsafe() const {
    std::size_t n = 0;
    visit_leaves(r_, false, [&](const Node* leaf, bool flagged) {
      if (leaf->rank == 0 && !flagged) ++n;
    });
    return n;
  }

  // Structural invariant checker used by the tests: external-tree shape,
  // in-order leaf ordering, and flag-implies-leaf placement.
  bool check_structure_unsafe() const {
    bool ok = true;
    const Node* last = nullptr;
    check_node(r_, &ok, &last);
    return ok;
  }

 private:
  struct SeekRecord {
    Node* ancestor;
    Node* successor;
    Node* parent;
    Node* leaf;
    Link* succ_field;  // ancestor's child edge toward successor
    MP succ_expect;    // its expected (clean) value
    Link* leaf_field;  // parent's child edge toward leaf
    MP leaf_edge;      // its value as read (bits included)
  };

  // key < node under the rank ordering (sentinel ranks exceed all keys).
  bool key_less_than_node(const Key& key, const Node* n) const {
    return n->rank != 0 || cmp_(key, n->key);
  }
  bool leaf_matches(const Node* leaf, const Key& key) const {
    return leaf->rank == 0 && !cmp_(leaf->key, key) && !cmp_(key, leaf->key);
  }
  Link* child_field(Node* n, const Key& key) const {
    return key_less_than_node(key, n) ? &n->left : &n->right;
  }
  Link* sibling_field(Node* n, const Key& key) const {
    return key_less_than_node(key, n) ? &n->right : &n->left;
  }

  // SCOT-protected seek (paper §3.3).
  void seek(Guard& g, Hp& hp, const Key& key, SeekRecord& s) {
    while (!try_seek(g, hp, key, s)) ++g.handle().ds_restarts;
  }

  bool try_seek(Guard& g, Hp& hp, const Key& key, SeekRecord& s) {
    g.revalidate();
    // Anchors are immortal (see the sentinel discussion above), so plain
    // publication suffices.
    hp.anc.publish(r_);
    hp.succ.publish(s_);
    hp.parent.publish(s_);
    s.ancestor = r_;
    s.successor = s_;
    s.parent = s_;
    s.succ_field = &r_->left;
    s.succ_expect = MP(s_);
    s.leaf_field = &s_->left;
    s.leaf_edge = hp.leaf.protect(s_->left);
    if (!g.valid()) return false;
    s.leaf = s.leaf_edge.ptr();  // sentinel leaf1 at minimum
    for (;;) {
      // Route one level down.  Dereferencing s.leaf here is safe: it was
      // protected by the previous protect() and, when its incoming edge
      // carried deletion bits, re-validated below before this iteration.
      Link* cf = child_field(s.leaf, key);
      MP child_edge = hp.child.protect(*cf);
      if (!g.valid()) return false;
      Node* child = child_edge.ptr();
      if (child == nullptr) break;  // s.leaf is an actual leaf
      // Advance the seek record (original seek, with SCOT dups).
      if (!s.leaf_edge.tagged()) {
        // Untagged edge into s.leaf: it becomes the new successor and its
        // parent the new ancestor (entrance of any following zone).
        hp.anc.dup_from(hp.parent);
        hp.succ.dup_from(hp.leaf);
        s.ancestor = s.parent;
        s.successor = s.leaf;
        s.succ_field = s.leaf_field;
        s.succ_expect = s.leaf_edge.clean();
      }
      hp.parent.dup_from(hp.leaf);
      hp.leaf.dup_from(hp.child);
      s.parent = s.leaf;
      s.leaf = child;
      s.leaf_field = cf;
      s.leaf_edge = child_edge;
      // SCOT validation: the edge we just took carries a deletion bit
      // (tag: chain interior; flag: final hop to a dying leaf), so the
      // new node may belong to a chain whose pruning races with us.  It
      // is safe exactly as long as the ancestor still points at the
      // successor — the only CAS that can free the chain targets that
      // edge.
      if (s.leaf_edge.bits() != 0 &&
          s.succ_field->load(std::memory_order_seq_cst) != s.succ_expect) {
        return false;
      }
    }
    return true;
  }

  // Prunes the chain of tagged edges hanging below the seek record's
  // successor (original CleanUp + SCOT-owned retirement of the chain).
  // Returns true if this call performed the pruning CAS.
  bool cleanup(Handle& h, const Key& key, SeekRecord& s) {
    Node* parent = s.parent;
    Link* child_f = child_field(parent, key);
    Link* sibling_f = sibling_field(parent, key);
    MP child_val = child_f->load(std::memory_order_seq_cst);
    if (!child_val.flagged()) {
      // The flagged edge is the other one: we are helping a deletion whose
      // victim is the sibling of the node our key routes to.
      sibling_f = child_f;
    }
    // Freeze the sibling edge.  Fields of already-pruned (frozen) parents
    // keep their bits, so this loop terminates; a write to such a field is
    // harmless (the node is unlinked but hazard-protected).
    MP sib = sibling_f->load(std::memory_order_seq_cst);
    while (!sib.tagged()) {
      if (sibling_f->compare_exchange_weak(sib, sib.with_tag(),
                                           std::memory_order_seq_cst,
                                           std::memory_order_relaxed)) {
        sib = sib.with_tag();
        break;
      }
    }
    assert(child_f->load(std::memory_order_relaxed).bits() != 0 ||
           sibling_f->load(std::memory_order_relaxed).bits() != 0);
    // Prune: swing the ancestor's successor edge to the surviving sibling,
    // propagating the sibling's flag (a flagged sibling is itself a dying
    // leaf whose own deletion continues at the ancestor level).
    Node* survivor = sib.ptr();
    MP expected = s.succ_expect.clean();
    MP replacement = sib.flagged() ? MP(survivor).with_flag() : MP(survivor);
    if (s.succ_field->compare_exchange_strong(expected, replacement,
                                              std::memory_order_seq_cst,
                                              std::memory_order_relaxed)) {
      retire_chain(h, s.successor, survivor);
      return true;
    }
    return false;
  }

  // Retires the pruned chain: every internal node from the successor down
  // along tagged edges, plus the flagged leaf hanging off each of them.
  // The surviving sibling (now the ancestor's child) is not touched.
  void retire_chain(Handle& h, Node* from, Node* survivor) {
    Node* n = from;
    for (;;) {
      MP l = n->left.load(std::memory_order_relaxed);
      MP r = n->right.load(std::memory_order_relaxed);
      MP cont, dead;
      if (l.tagged() && !r.tagged()) {
        cont = l;
        dead = r;
      } else if (r.tagged() && !l.tagged()) {
        cont = r;
        dead = l;
      } else {
        // Both edges tagged: two deletions met at this node; the survivor
        // pointer disambiguates the continuation.
        assert(l.tagged() && r.tagged());
        if (l.ptr() == survivor) {
          cont = l;
          dead = r;
        } else {
          cont = r;
          dead = l;
        }
      }
      assert(dead.flagged() && "non-continuation edge must be a dying leaf");
      h.retire(dead.ptr());
      h.retire(n);
      if (cont.ptr() == survivor) return;
      n = cont.ptr();
    }
  }

  template <class F>
  void visit_leaves(const Node* n, bool flagged, F&& f) const {
    const MP l = n->left.load(std::memory_order_acquire);
    if (l.ptr() == nullptr) {
      f(n, flagged);
      return;
    }
    const MP r = n->right.load(std::memory_order_acquire);
    visit_leaves(l.ptr(), l.flagged(), f);
    visit_leaves(r.ptr(), r.flagged(), f);
  }

  // In-order walk checking: external shape (both children or neither), flag
  // only on edges to leaves, and non-decreasing leaf order under the
  // (rank, key) ordering.
  void check_node(const Node* n, bool* ok, const Node** last) const {
    const MP l = n->left.load(std::memory_order_acquire);
    const MP r = n->right.load(std::memory_order_acquire);
    if ((l.ptr() == nullptr) != (r.ptr() == nullptr)) {
      *ok = false;  // not an external tree
      return;
    }
    if (l.ptr() == nullptr) {
      if (*last != nullptr && node_less(n, *last)) *ok = false;
      *last = n;
      return;
    }
    if (l.flagged() &&
        l.ptr()->left.load(std::memory_order_acquire).ptr() != nullptr)
      *ok = false;
    if (r.flagged() &&
        r.ptr()->left.load(std::memory_order_acquire).ptr() != nullptr)
      *ok = false;
    check_node(l.ptr(), ok, last);
    check_node(r.ptr(), ok, last);
  }

  bool node_less(const Node* a, const Node* b) const {
    if (a->rank != b->rank) return a->rank < b->rank;
    return a->rank == 0 && cmp_(a->key, b->key);
  }

  Node* r_ = nullptr;  // root sentinel (rank 3)
  Node* s_ = nullptr;  // second sentinel (rank 2)
  Smr& smr_;
  [[no_unique_address]] Compare cmp_;
};

}  // namespace scot
