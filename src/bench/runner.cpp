#include "bench/runner.hpp"

namespace scot::bench {

CaseResult run_case(const CaseConfig& cfg) {
  switch (cfg.scheme) {
    case SchemeId::kNR: return run_case_nr(cfg);
    case SchemeId::kEBR: return run_case_ebr(cfg);
    case SchemeId::kHP: return run_case_hp(cfg);
    case SchemeId::kHPopt: return run_case_hpopt(cfg);
    case SchemeId::kHE: return run_case_he(cfg);
    case SchemeId::kIBR: return run_case_ibr(cfg);
    case SchemeId::kHLN: return run_case_hyaline(cfg);
  }
  return {};
}

}  // namespace scot::bench
