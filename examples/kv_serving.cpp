// kv_serving: the serving layer in one page — a sharded, resizable,
// string-keyed scot::KvStore (src/kv/, DESIGN.md §10) serving a small
// read-mostly workload from a few threads while the shards grow
// underneath it.
//
//   ./examples/kv_serving            # defaults: IBR, 4 shards
//   ./examples/kv_serving HP 8
//
// Each worker opens one store.session() (joining every shard's SMR domain
// once) and then routes by key hash: top 16 bits pick the shard, the rest
// pick the bucket.  The stores start deliberately tiny so the run crosses
// several incremental-resize rounds — retired bucket chains flow through
// the same per-shard reclamation domains as erased entries, which is the
// point of the subsystem.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "scot.hpp"

int main(int argc, char** argv) {
  using namespace scot;

  SchemeId scheme = SchemeId::kIBR;
  unsigned shards = 4;
  if (argc > 1) {
    const auto s = scheme_from_name(argv[1]);
    if (!s) {
      std::fprintf(stderr, "unknown scheme '%s' (try NR EBR HP HPopt HE IBR "
                   "HLN)\n", argv[1]);
      return 2;
    }
    scheme = *s;
  }
  if (argc > 2) shards = static_cast<unsigned>(std::atoi(argv[2]));
  if (shards == 0) shards = 1;

  KvStoreOptions options;
  options.smr.max_threads = 8;
  options.shards = shards;
  options.initial_buckets_per_shard = 4;  // tiny on purpose: force resizes
  auto store = KvStore::make(scheme, StructureId::kKvHash, options);
  if (!store) {
    std::fprintf(stderr, "no registered kv cell for %s (link scot_kv)\n",
                 scheme_name(scheme));
    return 2;
  }

  constexpr unsigned kThreads = 4;
  constexpr int kUsers = 4000;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto session = store->session();
      std::string value;
      for (int i = static_cast<int>(t); i < kUsers; i += kThreads) {
        const std::string key = "user" + std::to_string(i);
        session.put(key, "profile:" + std::to_string(i));    // load
        session.get(key, &value);                            // read back
        if (i % 10 == 0) session.put(key, value + "!");      // update
        if (i % 7 == 0) session.erase(key);                  // churn
      }
    });
  }
  for (auto& w : workers) w.join();

  std::printf("scheme=%s shards=%u\n", scheme_name(scheme),
              store->shard_count());
  std::printf("entries=%zu buckets=%zu (started at %u x %zu)\n",
              store->size_unsafe(), store->bucket_count(), shards,
              options.initial_buckets_per_shard);
  std::printf("migrated_buckets=%llu pending_migration=%llu "
              "pending_nodes=%lld\n",
              static_cast<unsigned long long>(store->migrated_buckets()),
              static_cast<unsigned long long>(store->pending_migration()),
              static_cast<long long>(store->pending_nodes()));

  auto session = store->session();
  const auto hit = session.get("user1");  // 1 % 7 != 0, still present
  std::printf("get(\"user1\") -> %s\n",
              hit ? hit->c_str() : "(absent)");
  return 0;
}
