// NR: the "no reclamation" baseline (leak memory).
//
// The paper's throughput figures include NR as the practical upper bound for
// performance: retirement is a counter bump and nothing is ever reclaimed.
// Interestingly the paper observes that EBR (and others) can *beat* NR when
// recycling is cheaper than fresh allocation — with this library's pool the
// same effect reproduces, because NR always takes the carve path while the
// reclaiming schemes hit their thread-local free lists.
//
// --- Reference implementation of dynamic handle membership ---------------
//
// NR has no reservations and no limbo lists, so it shows the registry
// plumbing every other domain follows with nothing scheme-specific on top:
//
//  * The domain owns a `HandleRegistry<Handle>` instead of a pre-built
//    `handles_` vector.  Handles are created lazily, the first time a
//    record is appended, and reused across join/leave cycles.
//
//  * `join()` claims a registry record (thread-local cache hit, scavenge,
//    or append), stores the record back-pointer into the handle, and grows
//    the node pool so the record's index has a shard.  The record index
//    plays the role the caller-supplied tid used to play: it names the
//    pool shard and is returned by `Handle::tid()`.
//
//  * `leave(h)` runs the scheme's handoff (nothing here; the reclaiming
//    schemes scan and donate leftovers to an OrphanList) and releases the
//    record for reuse.  The caller must have no operation in flight.
//
//  * `scoped_handle(domain)` is the RAII spelling of the pair; the
//    deprecated `handle(tid)` shim lazily joins once per tid and pins the
//    record for the domain's lifetime, so pre-registry code still works.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/align.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "smr/handle_core.hpp"
#include "smr/handle_registry.hpp"
#include "smr/node_pool.hpp"
#include "smr/reclaimer.hpp"
#include "smr/smr_config.hpp"

namespace scot {

class NoReclaimDomain {
 public:
  static constexpr const char* kName = "NR";
  static constexpr bool kRobust = false;

  class Handle : public HandleCore<NoReclaimDomain, Handle> {
   public:
    using Base = HandleCore<NoReclaimDomain, Handle>;
    using Base::retire;  // typed retire(Protected<T>) — API v2
    Handle(NoReclaimDomain* dom, unsigned tid) : Base(dom, tid) {}

    void begin_op() noexcept {}
    void end_op() noexcept {}

    // `Src` is std::atomic<P> or StableAtomic<P> (pool-recycled link words).
    template <class Src, class P = typename Src::value_type>
    P protect(const Src& src, unsigned /*idx*/) noexcept {
      return src.load(std::memory_order_acquire);
    }
    template <class T>
    void publish(T* /*p*/, unsigned /*idx*/) noexcept {}
    void dup(unsigned /*i*/, unsigned /*j*/) noexcept {}

    static constexpr bool op_valid() noexcept { return true; }
    void revalidate_op() noexcept {}

    void retire(ReclaimNode* n) noexcept {
      n->debug_state = kNodeRetired;
      dom_->counters_.on_retire(dom_->cfg_.track_stats);
      obs::count(stats_, obs::Counter::kRetires);
    }

    std::uint64_t on_alloc_era() noexcept { return 0; }
  };

  explicit NoReclaimDomain(SmrConfig cfg = {})
      : cfg_(cfg),
        pool_(cfg.max_threads)
#ifndef SCOT_DISALLOW_TID_SHIM
        ,
        shim_(cfg.max_threads)
#endif
  {
  }

  // --- dynamic membership --------------------------------------------------
  // Claims a per-thread handle; the returned reference stays valid until
  // the matching leave().  Lock-free (one CAS on the re-join fast path).
  Handle& join() {
    auto* rec =
        registry_.acquire([this](unsigned idx) { return Handle(this, idx); });
    rec->handle.registry_record_ = rec;
    pool_.ensure_shards(rec->index + 1);
    obs::count(rec->handle.stats_, obs::Counter::kJoins);
    obs::trace_instant(obs::TraceKind::kJoin);
    return rec->handle;
  }

  // Returns the handle's record for reuse.  Contract: no operation in
  // flight.  NR has no per-thread reclamation state to hand off; the
  // reclaiming schemes scan and donate leftover retires here.
  void leave(Handle& h) {
    obs::count(h.stats_, obs::Counter::kLeaves);
    obs::trace_instant(obs::TraceKind::kLeave);
    registry_.release(record_of(h));
  }

  unsigned active_handles() const noexcept { return registry_.active(); }
  std::size_t total_handle_records() const noexcept {
    return registry_.total_records();
  }
  const HandleRegistry<Handle>& registry() const noexcept { return registry_; }

#ifndef SCOT_DISALLOW_TID_SHIM
  // DEPRECATED: fixed-capacity tid-indexed access (joins once per tid and
  // pins the record forever).  New code should use scoped_handle(domain).
  Handle& handle(unsigned tid) { return shim_.get(*this, tid); }
#endif

  // --- background reclamation ---------------------------------------------
  // NR never reclaims, so there is nothing for a service thread to do; the
  // uniform accessors keep generic callers (bench runner, tests) scheme-
  // agnostic.  start/stop are accepted and ignored.
  bool background_active() const noexcept { return false; }
  BgReclaimStats background_stats() const noexcept { return {}; }
  void start_background_reclaimer() noexcept {}
  void stop_background_reclaimer() noexcept {}

  const SmrConfig& config() const noexcept { return cfg_; }
  NodePool& pool() noexcept { return pool_; }
  std::int64_t pending_nodes() const noexcept {
    return counters_.pending.load(std::memory_order_relaxed);
  }
  const SmrCounters& counters() const noexcept { return counters_; }

  // Observability (DESIGN.md §8): the per-handle cell list and the
  // aggregated snapshot.
  obs::DomainStats& obs_stats() noexcept { return stats_obs_; }
  obs::StatsSnapshot stats() const {
    obs::StatsSnapshot s = stats_obs_.snapshot();
    s.enabled = SCOT_STATS != 0 && cfg_.track_stats;
    s.pending = pending_nodes();
    s.retired_total = counters_.retired.load(std::memory_order_relaxed);
    s.reclaimed_total = counters_.reclaimed.load(std::memory_order_relaxed);
    return s;
  }

 private:
  friend class Handle;

  using Record = HandleRegistry<Handle>::Record;
  static Record* record_of(Handle& h) noexcept {
    return static_cast<Record*>(h.registry_record_);
  }

  SmrConfig cfg_;
  NodePool pool_;
  SmrCounters counters_;
  // Declared before the registry: handles hold raw cell pointers, so the
  // cell list must be destroyed after the records are.
  obs::DomainStats stats_obs_;
  HandleRegistry<Handle> registry_;
#ifndef SCOT_DISALLOW_TID_SHIM
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  TidHandleShim<Handle> shim_;
#pragma GCC diagnostic pop
#endif
};

}  // namespace scot
