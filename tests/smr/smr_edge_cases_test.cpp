// Edge cases of the reclamation layer that the main suites do not reach:
// clock monotonicity, reservation-interval widening, slot reuse across
// operations, retire ordering, and adversarial protect/scan interleavings.
#include <gtest/gtest.h>

#include <type_traits>
#include <utility>

#include "tests/test_util.hpp"

namespace scot {
namespace {

using test::TestNode;

TEST(EbrEdge, EpochAdvancesOnlyOnRetireTicks) {
  auto cfg = test::small_config(2);
  cfg.era_freq = 4;
  EbrDomain smr(cfg);
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  const std::uint64_t e0 = smr.epoch();
  for (int i = 0; i < 3; ++i) {
    auto* n = h.template alloc<TestNode>(std::uint64_t{0});
    h.retire(n);
  }
  EXPECT_EQ(smr.epoch(), e0) << "below the tick frequency";
  auto* n = h.template alloc<TestNode>(std::uint64_t{0});
  h.retire(n);
  EXPECT_EQ(smr.epoch(), e0 + 1) << "4th retire must tick the epoch";
}

TEST(EbrEdge, MinReservationIgnoresIdleThreads) {
  EbrDomain smr(test::small_config(4));
  auto h = scoped_handle(smr);
  EXPECT_EQ(smr.min_reservation(), EbrDomain::kIdle);
  h->begin_op();
  EXPECT_LT(smr.min_reservation(), EbrDomain::kIdle);
  h->end_op();
  EXPECT_EQ(smr.min_reservation(), EbrDomain::kIdle);
}

TEST(HeEdge, EraClockIsMonotoneUnderConcurrentTicks) {
  auto cfg = test::small_config(4);
  cfg.era_freq = 1;
  HeDomain smr(cfg);
  std::atomic<std::uint64_t> max_seen{0};
  test::run_threads(4, [&](unsigned) {
    auto sh = scoped_handle(smr);
    auto& h = sh.get();
    std::uint64_t last = 0;
    for (int i = 0; i < 5000; ++i) {
      auto* n = h.template alloc<TestNode>(std::uint64_t{0});
      const std::uint64_t era = birth_era_of(n);
      EXPECT_GE(era, last) << "birth eras must be monotone per thread";
      last = era;
      h.retire(n);
    }
    std::uint64_t cur = max_seen.load();
    while (cur < last && !max_seen.compare_exchange_weak(cur, last)) {
    }
  });
  EXPECT_GE(smr.era(), max_seen.load());
}

TEST(HeEdge, SlotReuseAcrossOperationsIsClean) {
  HeDomain smr(test::small_config(2));
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  auto* n = h.template alloc<TestNode>(std::uint64_t{0});
  std::atomic<ReclaimNode*> src{n};
  for (int op = 0; op < 50; ++op) {
    h.begin_op();
    (void)h.protect(src, op % 8u);  // rotate through every slot
    h.end_op();
  }
  // All slots must be back to idle: a scan sees no reservations.
  std::vector<std::uint64_t> eras;
  smr.collect_eras(eras);
  EXPECT_TRUE(eras.empty()) << "end_op must clear every used slot";
  h.dealloc_unpublished(n);
}

TEST(HpEdge, SlotsClearAfterOp) {
  HpDomain smr(test::small_config(2));
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  auto* n = h.template alloc<TestNode>(std::uint64_t{0});
  std::atomic<ReclaimNode*> src{n};
  h.begin_op();
  (void)h.protect(src, 0);
  h.dup(0, 3);
  h.end_op();
  std::vector<ReclaimNode*> hazards;
  smr.collect_hazards(hazards);
  EXPECT_TRUE(hazards.empty());
  h.dealloc_unpublished(n);
}

TEST(HpEdge, ProtectTracksSourceChanges) {
  // The validation loop must re-publish when the source field moves.
  HpDomain smr(test::small_config(2));
  auto& h = smr.handle(0);
  auto* a = h.template alloc<TestNode>(std::uint64_t{1});
  auto* b = h.template alloc<TestNode>(std::uint64_t{2});
  std::atomic<ReclaimNode*> src{a};
  h.begin_op();
  EXPECT_EQ(h.protect(src, 0), a);
  src.store(b);
  EXPECT_EQ(h.protect(src, 1), b);
  // Slot 1 must hold b, not a.
  EXPECT_EQ(smr.slot(0, 1).load(), static_cast<ReclaimNode*>(b));
  h.end_op();
  h.dealloc_unpublished(a);
  h.dealloc_unpublished(b);
}

TEST(IbrEdge, UpperBoundWidensDuringOperation) {
  auto cfg = test::small_config(2);
  cfg.era_freq = 1;
  IbrDomain smr(cfg);
  auto reader_h = scoped_handle(smr);
  auto writer_h = scoped_handle(smr);
  auto& reader = reader_h.get();
  auto& writer = writer_h.get();
  auto* n = writer.template alloc<TestNode>(std::uint64_t{0});
  std::atomic<ReclaimNode*> src{n};
  reader.begin_op();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> iv;
  smr.collect_intervals(iv);
  ASSERT_EQ(iv.size(), 1u);
  const auto before = iv[0];
  EXPECT_EQ(before.first, before.second) << "interval starts degenerate";
  // Advance the era, then protect: upper must chase the clock.
  for (int i = 0; i < 10; ++i)
    writer.dealloc_unpublished(
        writer.template alloc<TestNode>(std::uint64_t{0}));
  (void)reader.protect(src, 0);
  iv.clear();
  smr.collect_intervals(iv);
  ASSERT_GE(iv.size(), 1u);
  EXPECT_EQ(iv[0].first, before.first) << "lower must stay pinned";
  EXPECT_GT(iv[0].second, before.second) << "upper must widen";
  reader.end_op();
  writer.dealloc_unpublished(n);
}

TEST(IbrEdge, DisjointLifetimeReclaimsDespiteActiveReader) {
  auto cfg = test::small_config(2);
  cfg.era_freq = 1;
  cfg.scan_threshold = 4;
  IbrDomain smr(cfg);
  auto reader_h = scoped_handle(smr);
  auto writer_h = scoped_handle(smr);
  auto& reader = reader_h.get();
  auto& writer = writer_h.get();
  reader.begin_op();  // interval [e, e]
  // Nodes born and retired strictly after the reader's interval.
  for (int i = 0; i < 64; ++i) {
    auto* n = writer.template alloc<TestNode>(std::uint64_t{0});
    writer.retire(n);
  }
  EXPECT_GT(smr.counters().reclaimed.load(), 0u)
      << "non-overlapping lifetimes must reclaim";
  reader.end_op();
}

TEST(NrEdge, RetireIsTerminal) {
  NoReclaimDomain smr(test::small_config(1));
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  auto* n = h.template alloc<TestNode>(std::uint64_t{7});
  h.retire(n);
  EXPECT_EQ(n->debug_state, kNodeRetired);
  EXPECT_EQ(smr.pending_nodes(), 1);
  // NR never reuses the cell.
  auto* m = h.template alloc<TestNode>(std::uint64_t{8});
  EXPECT_NE(static_cast<void*>(n), static_cast<void*>(m));
  EXPECT_EQ(n->payload, 7u) << "leaked node stays intact";
  h.dealloc_unpublished(m);
}

// Sink for the interleaving canary below (volatile keeps the read alive).
volatile std::uint64_t g_canary_payload;

TEST(SchemeMatrix, ConcurrentProtectScanInterleaving) {
  // Adversarial interleaving: one thread protects/unprotects a hot pointer
  // in a tight loop while another churns retires through scans.  This is a
  // crash/UAF canary for the publication fences; assertions are weak by
  // design (the schedule is nondeterministic).
  auto run = []<class Smr>(std::type_identity<Smr>) {
    auto cfg = test::small_config(2);
    cfg.scan_threshold = 8;
    cfg.era_freq = 2;
    Smr smr(cfg);
    std::atomic<ReclaimNode*> hot{nullptr};
    std::atomic<bool> stop{false};
    test::run_threads(2, [&](unsigned tid) {
      auto sh = scoped_handle(smr);
      auto& h = sh.get();
      if (tid == 0) {
        Xoshiro256 rng(9);
        for (int i = 0; i < 30000; ++i) {
          auto* n = h.template alloc<TestNode>(std::uint64_t(i));
          hot.store(n, std::memory_order_release);
          // Unpublish before retiring so readers only ever see live-or-
          // retired-but-unreclaimed nodes.
          hot.store(nullptr, std::memory_order_release);
          h.retire(n);
        }
        stop.store(true);
      } else {
        while (!stop.load(std::memory_order_relaxed)) {
          h.begin_op();
          ReclaimNode* p = h.protect(hot, 0);
          if (p != nullptr && h.op_valid()) {
            // Touch the payload: UAF here means the scheme is broken.
            g_canary_payload = static_cast<TestNode*>(p)->payload;
          }
          h.end_op();
        }
      }
    });
    SUCCEED();
  };
  run(std::type_identity<EbrDomain>{});
  run(std::type_identity<HpDomain>{});
  run(std::type_identity<HpOptDomain>{});
  run(std::type_identity<HeDomain>{});
  run(std::type_identity<IbrDomain>{});
  run(std::type_identity<HyalineDomain>{});
}

}  // namespace
}  // namespace scot
