// Paper-artifact-compatible CLI (Appendix A.5 of the paper):
//
//     ./bench_cli <mode> <seconds> <keyrange> <runs> <read%> <ins%> <del%>
//                 <SCHEME> <threads>
//
// e.g.   ./bench_cli listlf 2 512 1 50 25 25 EBR 4
//
// Modes: listlf  — Harris list with SCOT, lock-free traversals
//        listwf  — Harris list with SCOT, wait-free traversals
//        listhm  — Harris-Michael list (baseline)
//        tree    — Natarajan-Mittal tree with SCOT
//        hash    — hash map over SCOT lists
// Schemes: NR EBR HP HPopt HE IBR HLN
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/options.hpp"
#include "bench/runner.hpp"

using namespace scot::bench;

static void usage(const char* argv0, int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: %s <listlf|listwf|listhm|tree|hash> <seconds> <keyrange> "
      "<runs> <read%%> <ins%%> <del%%> <NR|EBR|HP|HPopt|HE|IBR|HLN> "
      "<threads>\n"
      "e.g.:  %s listlf 2 512 1 50 25 25 EBR 4\n",
      argv0, argv0);
  std::exit(code);
}

static void usage(const char* argv0) { usage(argv0, 2); }

int main(int argc, char** argv) {
  if (argc == 1) usage(argv[0], 0);  // bare run: self-document, succeed
  if (argc != 10) usage(argv[0]);
  CaseConfig cfg;

  if (!std::strcmp(argv[1], "listlf")) {
    cfg.structure = StructureId::kHList;
  } else if (!std::strcmp(argv[1], "listwf")) {
    cfg.structure = StructureId::kHListWF;
  } else if (!std::strcmp(argv[1], "listhm")) {
    cfg.structure = StructureId::kHMList;
  } else if (!std::strcmp(argv[1], "tree")) {
    cfg.structure = StructureId::kNMTree;
  } else if (!std::strcmp(argv[1], "hash")) {
    cfg.structure = StructureId::kHashMap;
  } else {
    usage(argv[0]);
  }

  cfg.millis = std::atoi(argv[2]) * 1000;
  cfg.key_range = std::strtoull(argv[3], nullptr, 10);
  cfg.runs = static_cast<unsigned>(std::atoi(argv[4]));
  cfg.read_pct = std::atoi(argv[5]);
  cfg.insert_pct = std::atoi(argv[6]);
  cfg.delete_pct = std::atoi(argv[7]);

  bool found = false;
  for (SchemeId s : kAllSchemes) {
    if (!std::strcmp(argv[8], scheme_name(s))) {
      cfg.scheme = s;
      found = true;
    }
  }
  if (!found) usage(argv[0]);
  cfg.threads = static_cast<unsigned>(std::atoi(argv[9]));
  cfg.sample_memory = true;

  if (cfg.millis <= 0 || cfg.key_range == 0 || cfg.runs == 0 ||
      cfg.threads == 0 ||
      cfg.read_pct + cfg.insert_pct + cfg.delete_pct != 100) {
    usage(argv[0]);
  }

  const CaseResult r = run_case(cfg);
  std::printf("structure=%s scheme=%s threads=%u range=%llu mix=%d/%d/%d\n",
              structure_name(cfg.structure), scheme_name(cfg.scheme),
              cfg.threads, static_cast<unsigned long long>(cfg.key_range),
              cfg.read_pct, cfg.insert_pct, cfg.delete_pct);
  std::printf("ops=%llu seconds=%.3f throughput=%.3f Mops/s\n",
              static_cast<unsigned long long>(r.total_ops), r.seconds,
              r.mops);
  std::printf("avg_unreclaimed=%.0f peak_unreclaimed=%lld restarts=%llu "
              "recoveries=%llu\n",
              r.avg_pending, static_cast<long long>(r.peak_pending),
              static_cast<unsigned long long>(r.restarts),
              static_cast<unsigned long long>(r.recoveries));
  return 0;
}
