// Per-domain observability counters (DESIGN.md §8).
//
// Every reclamation handle owns one cache-line-padded counter cell,
// registered in the domain's `DomainStats` list the same way handle records
// register in `HandleRegistry`: a lock-free push onto an intrusive list whose
// cells are never unlinked while the domain lives, so aggregation walks the
// list with plain relaxed loads and no deferred reclamation of the cells
// themselves.  Cells are created once per registry record and survive
// claim/release reuse — counts are cumulative domain telemetry, exactly like
// the `ds_restarts` fields they sit next to.
//
// Memory-ordering contract (DESIGN.md §8):
//  * every counter is a relaxed atomic with a single-writer discipline —
//    the owning thread bumps it with a load+store pair, which compiles to an
//    ordinary increment (no lock prefix, no fence);
//  * readers aggregate on read with relaxed loads.  The aggregate is exact
//    in quiescence and approximate while writers run; no reader decision in
//    the library depends on it, so no stronger ordering is needed;
//  * nothing here touches the protect()/begin_op() fast paths — counters
//    sit on retire/scan/join/leave only, and with `SCOT_STATS=0` the
//    helpers compile to empty inlines, leaving zero stats stores in the
//    binary (the bench overhead guard checks this).
//
// Runtime gating rides the existing `SmrConfig::track_stats` knob: when a
// domain is built with track_stats=false, `make_cell` hands out nullptr and
// every helper no-ops on the null cell — the throughput benches keep their
// zero-overhead configuration without a rebuild.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/align.hpp"
#include "common/timing.hpp"
#include "obs/histogram.hpp"

#ifndef SCOT_STATS
#define SCOT_STATS 1
#endif

namespace scot::obs {

enum class Counter : unsigned {
  kJoins = 0,         // domain join()s (session starts)
  kLeaves,            // domain leave()s
  kRetires,           // retire() calls
  kScans,             // reclamation attempts (limbo scans / batch seals)
  kNodesReclaimed,    // nodes actually freed by scans
  kHeavyBarriers,     // process-wide heavy barriers issued (asym path)
  kEraAdvances,       // global era/epoch clock ticks by this handle
  kOrphanDonations,   // leave() handoffs into the orphan mailbox
  kOrphanAdoptions,   // retire()-side adoptions out of the mailbox
  kBgRounds,          // background-reclaimer rounds (service thread only)
  kBgBatchesAdopted,  // donated limbo/batch chains the reclaimer consumed
  kBgAdaptations,     // adaptive threshold changes (DESIGN.md §9)
  kCount_
};
inline constexpr unsigned kCounterCount =
    static_cast<unsigned>(Counter::kCount_);

inline constexpr const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kJoins: return "joins";
    case Counter::kLeaves: return "leaves";
    case Counter::kRetires: return "retires";
    case Counter::kScans: return "scans";
    case Counter::kNodesReclaimed: return "nodes_reclaimed";
    case Counter::kHeavyBarriers: return "heavy_barriers";
    case Counter::kEraAdvances: return "era_advances";
    case Counter::kOrphanDonations: return "orphan_donations";
    case Counter::kOrphanAdoptions: return "orphan_adoptions";
    case Counter::kBgRounds: return "bg_rounds";
    case Counter::kBgBatchesAdopted: return "bg_batches_adopted";
    case Counter::kBgAdaptations: return "bg_adaptations";
    case Counter::kCount_: break;
  }
  return "?";
}

// One per handle record, padded so two threads' cells never share a line.
struct alignas(kFalseSharingRange) StatsCell {
  std::atomic<std::uint64_t> counts[kCounterCount] = {};
  // High-water mark of the owner's limbo list / unsealed batch (max-
  // aggregated across cells, unlike the sum-aggregated counters above).
  std::atomic<std::uint64_t> limbo_peak{0};
  // Per-scan wall latency (includes the heavy barrier).
  LatencyHistogram scan_ns;
  std::atomic<StatsCell*> next{nullptr};
};

// Aggregated view of a domain's cells plus the SmrCounters gauges.  Always
// defined (zeroed when stats are compiled out or runtime-disabled) so caller
// code needs no conditional compilation.
struct StatsSnapshot {
  bool enabled = false;
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t retires = 0;
  std::uint64_t scans = 0;
  std::uint64_t nodes_reclaimed = 0;
  std::uint64_t heavy_barriers = 0;
  std::uint64_t era_advances = 0;
  std::uint64_t orphan_donations = 0;
  std::uint64_t orphan_adoptions = 0;
  std::uint64_t bg_rounds = 0;
  std::uint64_t bg_batches_adopted = 0;
  std::uint64_t bg_adaptations = 0;
  std::uint64_t limbo_peak = 0;     // max across cells
  std::int64_t pending = 0;         // domain-wide gauge (SmrCounters)
  std::uint64_t retired_total = 0;  // SmrCounters::retired
  std::uint64_t reclaimed_total = 0;
  std::uint64_t scan_count = 0;
  double scan_p50_ns = 0;
  double scan_p99_ns = 0;
  double scan_p999_ns = 0;

  // Folds another domain's snapshot into this one — the per-shard
  // aggregation behind KvStore::stats().  Counters and gauges sum; peaks
  // take the max; the scan percentiles also take the max, which is a
  // deliberately conservative cross-shard tail (exact cross-domain
  // percentiles would need the raw reservoirs, which the cells do not
  // keep).
  void merge_from(const StatsSnapshot& o) noexcept {
    enabled = enabled || o.enabled;
    joins += o.joins;
    leaves += o.leaves;
    retires += o.retires;
    scans += o.scans;
    nodes_reclaimed += o.nodes_reclaimed;
    heavy_barriers += o.heavy_barriers;
    era_advances += o.era_advances;
    orphan_donations += o.orphan_donations;
    orphan_adoptions += o.orphan_adoptions;
    bg_rounds += o.bg_rounds;
    bg_batches_adopted += o.bg_batches_adopted;
    bg_adaptations += o.bg_adaptations;
    limbo_peak = limbo_peak > o.limbo_peak ? limbo_peak : o.limbo_peak;
    pending += o.pending;
    retired_total += o.retired_total;
    reclaimed_total += o.reclaimed_total;
    scan_count += o.scan_count;
    scan_p50_ns = scan_p50_ns > o.scan_p50_ns ? scan_p50_ns : o.scan_p50_ns;
    scan_p99_ns = scan_p99_ns > o.scan_p99_ns ? scan_p99_ns : o.scan_p99_ns;
    scan_p999_ns =
        scan_p999_ns > o.scan_p999_ns ? scan_p999_ns : o.scan_p999_ns;
  }

  std::uint64_t counter(Counter c) const noexcept {
    switch (c) {
      case Counter::kJoins: return joins;
      case Counter::kLeaves: return leaves;
      case Counter::kRetires: return retires;
      case Counter::kScans: return scans;
      case Counter::kNodesReclaimed: return nodes_reclaimed;
      case Counter::kHeavyBarriers: return heavy_barriers;
      case Counter::kEraAdvances: return era_advances;
      case Counter::kOrphanDonations: return orphan_donations;
      case Counter::kOrphanAdoptions: return orphan_adoptions;
      case Counter::kBgRounds: return bg_rounds;
      case Counter::kBgBatchesAdopted: return bg_batches_adopted;
      case Counter::kBgAdaptations: return bg_adaptations;
      case Counter::kCount_: break;
    }
    return 0;
  }

  // Human-readable multi-line dump (one "key: value" row per field).
  std::string to_string() const {
    std::string out;
    if (!enabled) return "stats: disabled\n";
    for (unsigned i = 0; i < kCounterCount; ++i) {
      const Counter c = static_cast<Counter>(i);
      out += counter_name(c);
      out += ": " + std::to_string(counter(c)) + "\n";
    }
    out += "limbo_peak: " + std::to_string(limbo_peak) + "\n";
    out += "pending: " + std::to_string(pending) + "\n";
    out += "retired_total: " + std::to_string(retired_total) + "\n";
    out += "reclaimed_total: " + std::to_string(reclaimed_total) + "\n";
    out += "scan_count: " + std::to_string(scan_count) + "\n";
    out += "scan_p50_ns: " + std::to_string(scan_p50_ns) + "\n";
    out += "scan_p99_ns: " + std::to_string(scan_p99_ns) + "\n";
    out += "scan_p999_ns: " + std::to_string(scan_p999_ns) + "\n";
    return out;
  }
};

// The per-domain cell list.  make_cell() is called from handle construction
// (any thread may be appending a registry record); snapshot() from any
// thread.  Cells live until the DomainStats dies — domains declare it before
// their HandleRegistry so cells outlive every handle that points at one.
class DomainStats {
 public:
  DomainStats() = default;
  DomainStats(const DomainStats&) = delete;
  DomainStats& operator=(const DomainStats&) = delete;

  ~DomainStats() {
    StatsCell* c = head_.load(std::memory_order_acquire);
    while (c != nullptr) {
      StatsCell* next = c->next.load(std::memory_order_relaxed);
      delete c;
      c = next;
    }
  }

  // Returns a fresh padded cell (lock-free push), or nullptr when stats are
  // compiled out or runtime-disabled — the helpers below no-op on null.
  StatsCell* make_cell(bool runtime_enabled) {
#if SCOT_STATS
    if (!runtime_enabled) return nullptr;
    auto* c = new StatsCell;
    StatsCell* h = head_.load(std::memory_order_relaxed);
    do {
      c->next.store(h, std::memory_order_relaxed);
    } while (!head_.compare_exchange_weak(h, c, std::memory_order_release,
                                          std::memory_order_relaxed));
    return c;
#else
    (void)runtime_enabled;
    return nullptr;
#endif
  }

  // Aggregate-on-read: sums (and max-merges) every cell.  Fills only the
  // cell-derived fields; the owning domain adds its SmrCounters gauges.
  StatsSnapshot snapshot() const {
    StatsSnapshot s;
    LatencyHistogram scans;
    for (const StatsCell* c = head_.load(std::memory_order_acquire);
         c != nullptr; c = c->next.load(std::memory_order_acquire)) {
      s.joins += load(c, Counter::kJoins);
      s.leaves += load(c, Counter::kLeaves);
      s.retires += load(c, Counter::kRetires);
      s.scans += load(c, Counter::kScans);
      s.nodes_reclaimed += load(c, Counter::kNodesReclaimed);
      s.heavy_barriers += load(c, Counter::kHeavyBarriers);
      s.era_advances += load(c, Counter::kEraAdvances);
      s.orphan_donations += load(c, Counter::kOrphanDonations);
      s.orphan_adoptions += load(c, Counter::kOrphanAdoptions);
      s.bg_rounds += load(c, Counter::kBgRounds);
      s.bg_batches_adopted += load(c, Counter::kBgBatchesAdopted);
      s.bg_adaptations += load(c, Counter::kBgAdaptations);
      const std::uint64_t peak =
          c->limbo_peak.load(std::memory_order_relaxed);
      if (peak > s.limbo_peak) s.limbo_peak = peak;
      scans.merge(c->scan_ns);
    }
    s.scan_count = scans.count();
    s.scan_p50_ns = scans.percentile(50.0);
    s.scan_p99_ns = scans.percentile(99.0);
    s.scan_p999_ns = scans.percentile(99.9);
    return s;
  }

 private:
  static std::uint64_t load(const StatsCell* c, Counter k) noexcept {
    return c->counts[static_cast<unsigned>(k)].load(
        std::memory_order_relaxed);
  }

  std::atomic<StatsCell*> head_{nullptr};
};

// --- call-site helpers (all no-ops on a null cell / SCOT_STATS=0) ---------

inline void count(StatsCell* c, Counter k, std::uint64_t add = 1) noexcept {
#if SCOT_STATS
  if (c != nullptr) {
    auto& a = c->counts[static_cast<unsigned>(k)];
    a.store(a.load(std::memory_order_relaxed) + add,
            std::memory_order_relaxed);
  }
#else
  (void)c;
  (void)k;
  (void)add;
#endif
}

inline void peak(StatsCell* c, std::uint64_t v) noexcept {
#if SCOT_STATS
  if (c != nullptr && v > c->limbo_peak.load(std::memory_order_relaxed))
    c->limbo_peak.store(v, std::memory_order_relaxed);
#else
  (void)c;
  (void)v;
#endif
}

// Scan-latency bracket: scan_begin() reads the clock only when the cell is
// live (0 otherwise), scan_end() records the elapsed time and the scan
// counters in one step.
inline std::uint64_t scan_begin(const StatsCell* c) noexcept {
#if SCOT_STATS
  if (c != nullptr) return now_ns();
#else
  (void)c;
#endif
  return 0;
}

inline void scan_end(StatsCell* c, std::uint64_t t0,
                     std::uint64_t freed) noexcept {
#if SCOT_STATS
  if (c != nullptr) {
    count(c, Counter::kScans);
    if (freed > 0) count(c, Counter::kNodesReclaimed, freed);
    c->scan_ns.record(now_ns() - t0);
  }
#else
  (void)c;
  (void)t0;
  (void)freed;
#endif
}

}  // namespace scot::obs
