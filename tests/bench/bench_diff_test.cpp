// Threshold logic of the bench regression gate (src/bench/report/diff.hpp):
// what counts as a regression, what is noise, and how missing cells are
// reported.  The bench_diff binary is a thin shell over diff_reports().
#include <gtest/gtest.h>

#include <string>

#include "bench/report/diff.hpp"
#include "bench/report/report.hpp"

namespace scot::bench {
namespace {

CaseConfig cfg_for(SchemeId scheme, unsigned threads) {
  CaseConfig cfg;
  cfg.scheme = scheme;
  cfg.threads = threads;
  return cfg;
}

CaseResult result_mops(double mops) {
  CaseResult r;
  r.mops = mops;
  return r;
}

BenchReport report_with(
    std::initializer_list<std::pair<unsigned, double>> cells) {
  BenchReport report;  // metadata irrelevant to the diff
  for (const auto& [threads, mops] : cells) {
    report.add("fig8", "grid", cfg_for(SchemeId::kEBR, threads),
               result_mops(mops));
  }
  return report;
}

TEST(BenchDiff, FlagsDropsBeyondThresholdOnly) {
  const BenchReport base = report_with({{1, 10.0}, {2, 10.0}, {4, 10.0}});
  const BenchReport cand = report_with({{1, 9.6}, {2, 9.4}, {4, 12.0}});
  const DiffReport d = diff_reports(base, cand, DiffOptions{5.0});
  ASSERT_EQ(d.deltas.size(), 3u);
  EXPECT_FALSE(d.deltas[0].regression) << "-4% is within the 5% threshold";
  EXPECT_TRUE(d.deltas[1].regression) << "-6% is beyond the 5% threshold";
  EXPECT_FALSE(d.deltas[2].regression) << "improvements never regress";
  EXPECT_EQ(d.regressions, 1);
  EXPECT_NEAR(d.deltas[0].delta_pct, -4.0, 1e-9);
  EXPECT_NEAR(d.deltas[2].delta_pct, 20.0, 1e-9);
}

TEST(BenchDiff, ExactThresholdIsNotARegression) {
  const BenchReport base = report_with({{1, 10.0}});
  const BenchReport cand = report_with({{1, 9.5}});
  EXPECT_EQ(diff_reports(base, cand, DiffOptions{5.0}).regressions, 0);
}

TEST(BenchDiff, ZeroThresholdFlagsAnyDrop) {
  const BenchReport base = report_with({{1, 10.0}});
  const BenchReport cand = report_with({{1, 9.999}});
  EXPECT_EQ(diff_reports(base, cand, DiffOptions{0.0}).regressions, 1);
  EXPECT_EQ(diff_reports(base, base, DiffOptions{0.0}).regressions, 0);
}

TEST(BenchDiff, ZeroBaselineNeverRegresses) {
  // A zero-throughput baseline cell is a broken measurement; flagging the
  // candidate for it would make the gate unfixable.
  const BenchReport base = report_with({{1, 0.0}});
  const BenchReport cand = report_with({{1, 0.0}});
  const DiffReport d = diff_reports(base, cand, DiffOptions{5.0});
  ASSERT_EQ(d.deltas.size(), 1u);
  EXPECT_FALSE(d.deltas[0].regression);
}

TEST(BenchDiff, ReportsMissingCellsBothWays) {
  const BenchReport base = report_with({{1, 10.0}, {2, 10.0}});
  const BenchReport cand = report_with({{2, 10.0}, {4, 10.0}});
  const DiffReport d = diff_reports(base, cand, DiffOptions{5.0});
  ASSERT_EQ(d.deltas.size(), 1u);
  ASSERT_EQ(d.only_baseline.size(), 1u);
  ASSERT_EQ(d.only_candidate.size(), 1u);
  EXPECT_NE(d.only_baseline[0].find("t1"), std::string::npos);
  EXPECT_NE(d.only_candidate[0].find("t4"), std::string::npos);
  EXPECT_EQ(d.regressions, 0);
}

TEST(BenchDiff, MatchingIgnoresSeedDurationRuns) {
  BenchReport base, cand;
  CaseConfig a = cfg_for(SchemeId::kHP, 2);
  a.seed = 42;
  a.millis = 300;
  a.runs = 5;
  base.add("fig8", "grid", a, result_mops(10.0));
  CaseConfig b = a;
  b.seed = 7;     // a smoke run with a different seed, shorter duration,
  b.millis = 30;  // and fewer runs must still match the baseline cell
  b.runs = 1;
  cand.add("fig8", "grid", b, result_mops(2.0));
  const DiffReport d = diff_reports(base, cand, DiffOptions{5.0});
  ASSERT_EQ(d.deltas.size(), 1u);
  EXPECT_TRUE(d.deltas[0].regression);
}

TEST(BenchDiff, FlagsHardwareThreadMismatch) {
  ReportMeta base_meta, cand_meta;
  base_meta.hardware_threads = 1;   // the committed 1-core container baseline
  cand_meta.hardware_threads = 16;  // a multi-core CI runner
  BenchReport base(base_meta), cand(cand_meta);
  base.add("fig8", "grid", cfg_for(SchemeId::kEBR, 1), result_mops(10.0));
  cand.add("fig8", "grid", cfg_for(SchemeId::kEBR, 1), result_mops(10.0));
  const DiffReport d = diff_reports(base, cand, DiffOptions{5.0});
  EXPECT_TRUE(d.hw_mismatch);
  EXPECT_EQ(d.baseline_hw_threads, 1u);
  EXPECT_EQ(d.candidate_hw_threads, 16u);
  EXPECT_EQ(d.regressions, 0) << "hw mismatch is not a throughput regression";
}

TEST(BenchDiff, HardwareThreadMatchOrUnknownIsClean) {
  ReportMeta meta;
  meta.hardware_threads = 4;
  BenchReport a(meta), b(meta);
  a.add("fig8", "grid", cfg_for(SchemeId::kEBR, 1), result_mops(10.0));
  b.add("fig8", "grid", cfg_for(SchemeId::kEBR, 1), result_mops(10.0));
  EXPECT_FALSE(diff_reports(a, b, DiffOptions{5.0}).hw_mismatch);

  // A report that predates the meta field (hardware_threads == 0) cannot be
  // declared mismatched: absence of evidence only warrants a pass-through.
  ReportMeta unknown;
  unknown.hardware_threads = 0;
  BenchReport old(unknown);
  old.add("fig8", "grid", cfg_for(SchemeId::kEBR, 1), result_mops(10.0));
  EXPECT_FALSE(diff_reports(old, b, DiffOptions{5.0}).hw_mismatch);
  EXPECT_FALSE(diff_reports(b, old, DiffOptions{5.0}).hw_mismatch);
}

TEST(BenchDiff, DistinguishesDistributions) {
  BenchReport base, cand;
  CaseConfig uniform = cfg_for(SchemeId::kEBR, 1);
  CaseConfig zipf = uniform;
  zipf.key_dist = KeyDist::kZipfian;
  base.add("fig8", "grid", uniform, result_mops(10.0));
  cand.add("fig8", "grid", zipf, result_mops(1.0));
  const DiffReport d = diff_reports(base, cand, DiffOptions{5.0});
  EXPECT_TRUE(d.deltas.empty())
      << "a zipfian run must not be compared against a uniform baseline";
  EXPECT_EQ(d.only_baseline.size(), 1u);
  EXPECT_EQ(d.only_candidate.size(), 1u);
}

}  // namespace
}  // namespace scot::bench
