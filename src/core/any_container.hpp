// scot::AnyContainer — the type-erased facade over the scheme × container
// cross product (queues, stacks, deques), plus the per-concept wrappers
// scot::AnyQueue / scot::AnyStack / scot::AnyDeque.
//
// Mirror of scot::AnyMap (core/any_map.hpp) for the queue/stack/deque
// concept: the scheme and the structure are runtime values resolved through
// AnyContainerRegistry, virtual dispatch sits at operation granularity, and
// the fully typed operation — protect() fast path included — runs inside.
//
// The erased op surface is the *union* of the three shapes: push/pop at
// either end of a uint64 payload.  Each structure maps its own ops onto the
// ends it supports and reports `false` / nullopt for the ends it does not
// (MSQueue: push_back + pop_front; TreiberStack: push_front + pop_front;
// Deque: all four).  The per-concept wrappers then narrow the surface back
// to the familiar names (enqueue/dequeue, push/pop, push_left/...), with
// make() checking the requested StructureId against its ContainerKind so a
// stack cannot be opened as a queue.
//
// Threading contract: identical to AnyMap — prefer one `Session` per worker
// thread (dynamic join/leave, no thread cap); the tid-indexed surface is the
// deprecated fixed-capacity fallback.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "core/registry.hpp"
#include "obs/stats.hpp"
#include "smr/registry.hpp"
#include "smr/smr_config.hpp"

namespace scot {

struct AnyContainerOptions {
  SmrConfig smr;  // domain configuration (max_threads, ...)
};

namespace detail {

// The abstract implementation the registry factories produce.  One concrete
// TypedAnyContainer<Smr, DS> per registered cell lives in
// src/core/any_container.cpp.
class AnyContainerImpl {
 public:
  virtual ~AnyContainerImpl() = default;
  // Union surface; unsupported ends return false / nullopt.
  virtual bool push_front(unsigned tid, std::uint64_t value) = 0;
  virtual bool push_back(unsigned tid, std::uint64_t value) = 0;
  virtual std::optional<std::uint64_t> pop_front(unsigned tid) = 0;
  virtual std::optional<std::uint64_t> pop_back(unsigned tid) = 0;
  // Session surface (opaque joined handle; see AnyMapImpl).
  virtual void* join_handle() = 0;
  virtual void leave_handle(void* h) = 0;
  virtual bool push_front_with(void* h, std::uint64_t value) = 0;
  virtual bool push_back_with(void* h, std::uint64_t value) = 0;
  virtual std::optional<std::uint64_t> pop_front_with(void* h) = 0;
  virtual std::optional<std::uint64_t> pop_back_with(void* h) = 0;
  virtual std::size_t size_unsafe() const = 0;
  virtual std::int64_t pending_nodes() const = 0;
  virtual std::uint64_t restarts() const = 0;
  virtual std::uint64_t recoveries() const = 0;
  virtual unsigned active_handles() const = 0;
  virtual std::size_t total_handle_records() const = 0;
  virtual obs::StatsSnapshot stats() const = 0;
};

}  // namespace detail

class AnyContainer {
 public:
  using Value = std::uint64_t;

  // Builds the (scheme, structure) cell through the runtime registry.
  // Returns nullopt for unregistered cells (anything whose ContainerKind is
  // not kQueue/kStack/kDeque).  Defined in src/core/any_container.cpp, the
  // only TU that pays for the cross product's template instantiations.
  static std::optional<AnyContainer> make(
      SchemeId scheme, StructureId structure,
      const AnyContainerOptions& options = {});

  AnyContainer(AnyContainer&&) = default;
  AnyContainer& operator=(AnyContainer&&) = default;

  // One thread's membership in the container's reclamation domain; see
  // AnyMap::Session for the contract (move-only, one per thread).
  class Session {
   public:
    Session() = default;
    Session(Session&& o) noexcept
        : impl_(std::exchange(o.impl_, nullptr)), h_(o.h_) {}
    Session& operator=(Session&& o) noexcept {
      if (this != &o) {
        reset();
        impl_ = std::exchange(o.impl_, nullptr);
        h_ = o.h_;
      }
      return *this;
    }
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;
    ~Session() { reset(); }

    bool push_front(Value value) { return impl_->push_front_with(h_, value); }
    bool push_back(Value value) { return impl_->push_back_with(h_, value); }
    std::optional<Value> pop_front() { return impl_->pop_front_with(h_); }
    std::optional<Value> pop_back() { return impl_->pop_back_with(h_); }

    explicit operator bool() const noexcept { return impl_ != nullptr; }

    // Leaves the domain early (idempotent).
    void reset() noexcept {
      if (impl_ != nullptr) {
        impl_->leave_handle(h_);
        impl_ = nullptr;
      }
    }

   private:
    friend class AnyContainer;
    explicit Session(detail::AnyContainerImpl* impl)
        : impl_(impl), h_(impl->join_handle()) {}

    detail::AnyContainerImpl* impl_ = nullptr;
    void* h_ = nullptr;  // the domain's Handle, type-erased
  };

  // Opens a session for the calling thread.  The container must outlive it.
  Session session() { return Session(impl_.get()); }

  // --- operations (deprecated fixed-capacity tid surface) ------------------
  bool push_front(unsigned tid, Value value) {
    return impl_->push_front(tid, value);
  }
  bool push_back(unsigned tid, Value value) {
    return impl_->push_back(tid, value);
  }
  std::optional<Value> pop_front(unsigned tid) { return impl_->pop_front(tid); }
  std::optional<Value> pop_back(unsigned tid) { return impl_->pop_back(tid); }

  // --- observers (same meanings as AnyMap's) -------------------------------
  std::size_t size_unsafe() const { return impl_->size_unsafe(); }
  std::int64_t pending_nodes() const { return impl_->pending_nodes(); }
  std::uint64_t restarts() const { return impl_->restarts(); }
  std::uint64_t recoveries() const { return impl_->recoveries(); }
  unsigned active_handles() const { return impl_->active_handles(); }
  std::size_t total_handle_records() const {
    return impl_->total_handle_records();
  }
  obs::StatsSnapshot stats() const { return impl_->stats(); }

  SchemeId scheme() const { return scheme_; }
  StructureId structure() const { return structure_; }
  ContainerKind kind() const { return container_kind(structure_); }
  const char* scheme_name() const { return scot::scheme_name(scheme_); }
  const char* structure_name() const {
    return scot::structure_name(structure_);
  }
  unsigned max_threads() const { return max_threads_; }

 private:
  AnyContainer(SchemeId scheme, StructureId structure, unsigned max_threads,
               std::unique_ptr<detail::AnyContainerImpl> impl)
      : scheme_(scheme),
        structure_(structure),
        max_threads_(max_threads),
        impl_(std::move(impl)) {}

  SchemeId scheme_;
  StructureId structure_;
  unsigned max_threads_;
  std::unique_ptr<detail::AnyContainerImpl> impl_;
};

// --- per-concept wrappers ---------------------------------------------------
// Thin views that narrow AnyContainer's union surface back to each concept's
// vocabulary.  make() validates the StructureId's ContainerKind, so the type
// of the facade in hand always tells you the ordering discipline you got.

class AnyQueue {
 public:
  using Value = AnyContainer::Value;

  static std::optional<AnyQueue> make(SchemeId scheme,
                                      StructureId structure = StructureId::kMSQueue,
                                      const AnyContainerOptions& options = {}) {
    if (container_kind(structure) != ContainerKind::kQueue) return std::nullopt;
    auto c = AnyContainer::make(scheme, structure, options);
    if (!c) return std::nullopt;
    return AnyQueue(std::move(*c));
  }

  class Session {
   public:
    Session() = default;
    bool enqueue(Value v) { return s_.push_back(v); }
    std::optional<Value> dequeue() { return s_.pop_front(); }
    explicit operator bool() const noexcept { return bool(s_); }
    void reset() noexcept { s_.reset(); }

   private:
    friend class AnyQueue;
    explicit Session(AnyContainer::Session s) : s_(std::move(s)) {}
    AnyContainer::Session s_;
  };

  Session session() { return Session(c_.session()); }

  bool enqueue(unsigned tid, Value v) { return c_.push_back(tid, v); }
  std::optional<Value> dequeue(unsigned tid) { return c_.pop_front(tid); }

  AnyContainer& container() { return c_; }
  const AnyContainer& container() const { return c_; }
  std::size_t size_unsafe() const { return c_.size_unsafe(); }
  std::uint64_t restarts() const { return c_.restarts(); }
  std::uint64_t recoveries() const { return c_.recoveries(); }

 private:
  explicit AnyQueue(AnyContainer c) : c_(std::move(c)) {}
  AnyContainer c_;
};

class AnyStack {
 public:
  using Value = AnyContainer::Value;

  static std::optional<AnyStack> make(
      SchemeId scheme, StructureId structure = StructureId::kTreiberStack,
      const AnyContainerOptions& options = {}) {
    if (container_kind(structure) != ContainerKind::kStack) return std::nullopt;
    auto c = AnyContainer::make(scheme, structure, options);
    if (!c) return std::nullopt;
    return AnyStack(std::move(*c));
  }

  class Session {
   public:
    Session() = default;
    bool push(Value v) { return s_.push_front(v); }
    std::optional<Value> pop() { return s_.pop_front(); }
    explicit operator bool() const noexcept { return bool(s_); }
    void reset() noexcept { s_.reset(); }

   private:
    friend class AnyStack;
    explicit Session(AnyContainer::Session s) : s_(std::move(s)) {}
    AnyContainer::Session s_;
  };

  Session session() { return Session(c_.session()); }

  bool push(unsigned tid, Value v) { return c_.push_front(tid, v); }
  std::optional<Value> pop(unsigned tid) { return c_.pop_front(tid); }

  AnyContainer& container() { return c_; }
  const AnyContainer& container() const { return c_; }
  std::size_t size_unsafe() const { return c_.size_unsafe(); }
  std::uint64_t restarts() const { return c_.restarts(); }
  std::uint64_t recoveries() const { return c_.recoveries(); }

 private:
  explicit AnyStack(AnyContainer c) : c_(std::move(c)) {}
  AnyContainer c_;
};

class AnyDeque {
 public:
  using Value = AnyContainer::Value;

  static std::optional<AnyDeque> make(
      SchemeId scheme, StructureId structure = StructureId::kDeque,
      const AnyContainerOptions& options = {}) {
    if (container_kind(structure) != ContainerKind::kDeque) return std::nullopt;
    auto c = AnyContainer::make(scheme, structure, options);
    if (!c) return std::nullopt;
    return AnyDeque(std::move(*c));
  }

  class Session {
   public:
    Session() = default;
    bool push_left(Value v) { return s_.push_front(v); }
    bool push_right(Value v) { return s_.push_back(v); }
    std::optional<Value> pop_left() { return s_.pop_front(); }
    std::optional<Value> pop_right() { return s_.pop_back(); }
    explicit operator bool() const noexcept { return bool(s_); }
    void reset() noexcept { s_.reset(); }

   private:
    friend class AnyDeque;
    explicit Session(AnyContainer::Session s) : s_(std::move(s)) {}
    AnyContainer::Session s_;
  };

  Session session() { return Session(c_.session()); }

  bool push_left(unsigned tid, Value v) { return c_.push_front(tid, v); }
  bool push_right(unsigned tid, Value v) { return c_.push_back(tid, v); }
  std::optional<Value> pop_left(unsigned tid) { return c_.pop_front(tid); }
  std::optional<Value> pop_right(unsigned tid) { return c_.pop_back(tid); }

  AnyContainer& container() { return c_; }
  const AnyContainer& container() const { return c_; }
  std::size_t size_unsafe() const { return c_.size_unsafe(); }
  std::uint64_t restarts() const { return c_.restarts(); }
  std::uint64_t recoveries() const { return c_.recoveries(); }

 private:
  explicit AnyDeque(AnyContainer c) : c_(std::move(c)) {}
  AnyContainer c_;
};

}  // namespace scot
