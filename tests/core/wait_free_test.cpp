// Wait-free traversal protocol tests (paper §3.4, Figure 7): the help
// registry's tag algebra (Lemma 5 uniqueness), the round-robin helper scan
// (Lemma 4), and end-to-end wait-free Search on the SCOT list.
#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace scot {
namespace {

using Key = std::uint64_t;
using Val = std::uint64_t;
using Registry = WfHelpRegistry<Key>;

TEST(WfRegistry, TagEncoding) {
  EXPECT_TRUE(Registry::is_input(Registry::input_tag(0)));
  EXPECT_TRUE(Registry::is_input(Registry::input_tag(12345)));
  EXPECT_FALSE(Registry::is_input(Registry::output_tag(true)));
  EXPECT_FALSE(Registry::is_input(Registry::output_tag(false)));
  EXPECT_TRUE(Registry::output_value(Registry::output_tag(true)));
  EXPECT_FALSE(Registry::output_value(Registry::output_tag(false)));
  EXPECT_NE(Registry::input_tag(1), Registry::input_tag(2))
      << "versions must produce distinct tags";
}

TEST(WfRegistry, RequestThenPollStatus) {
  Registry reg(2);
  const std::uint64_t tag = reg.request_help(0, 42);
  EXPECT_EQ(reg.poll_status(0, tag), WfPoll::kContinue);
  // Publishing flips the status to done for everyone polling this tag.
  EXPECT_TRUE(reg.publish_result(0, tag, true));
  EXPECT_EQ(reg.poll_status(0, tag), WfPoll::kDoneTrue);
}

TEST(WfRegistry, PublishIsUniquePerTag) {
  // Lemma 5: at most one output per tag version; late publishers observe
  // the winner's result.
  Registry reg(2);
  const std::uint64_t tag = reg.request_help(0, 7);
  EXPECT_FALSE(reg.publish_result(0, tag, false));  // winner publishes false
  EXPECT_FALSE(reg.publish_result(0, tag, true))
      << "loser must adopt the already-published result, not its own";
  EXPECT_EQ(reg.poll_status(0, tag), WfPoll::kDoneFalse);
}

TEST(WfRegistry, StaleHelperSeesNewerInputAsStale) {
  Registry reg(2);
  const std::uint64_t tag1 = reg.request_help(0, 7);
  ASSERT_TRUE(reg.publish_result(0, tag1, true));
  const std::uint64_t tag2 = reg.request_help(0, 8);  // new cycle
  EXPECT_NE(tag1, tag2);
  EXPECT_EQ(reg.poll_status(0, tag1), WfPoll::kStale)
      << "a helper holding the old tag must abandon, not publish";
  EXPECT_EQ(reg.poll_status(0, tag2), WfPoll::kContinue);
}

TEST(WfRegistry, StalePublishCannotClobberNewCycle) {
  Registry reg(2);
  const std::uint64_t tag1 = reg.request_help(0, 7);
  ASSERT_TRUE(reg.publish_result(0, tag1, true));
  const std::uint64_t tag2 = reg.request_help(0, 8);
  // A very late helper from cycle 1 tries to publish: CAS must fail and the
  // new cycle's input tag must survive.
  (void)reg.publish_result(0, tag1, false);
  EXPECT_EQ(reg.poll_status(0, tag2), WfPoll::kContinue)
      << "cycle 2 must still be awaiting its result";
}

TEST(WfRegistry, PollForWorkRotatesAndHonorsDelay) {
  Registry reg(3);
  const std::uint64_t tag = reg.request_help(1, 99);
  Key key = 0;
  std::uint64_t got_tag = 0;
  unsigned tid = 0;
  int found = 0;
  // kDelay amortization: at most one hit per kDelay polls; the round-robin
  // cursor must still find thread 1's request within a few cycles.
  for (int i = 0; i < Registry::kDelay * 6; ++i) {
    if (reg.poll_for_work(0, &key, &got_tag, &tid)) {
      ++found;
      EXPECT_EQ(tid, 1u);
      EXPECT_EQ(key, 99u);
      EXPECT_EQ(got_tag, tag);
    }
  }
  EXPECT_GE(found, 1) << "helper never discovered the pending request";
  EXPECT_LE(found, 6);
}

TEST(WfRegistry, PollForWorkSkipsSelfAndIdle) {
  Registry reg(2);
  Key key = 0;
  std::uint64_t tag = 0;
  unsigned tid = 0;
  for (int i = 0; i < Registry::kDelay * 4; ++i) {
    EXPECT_FALSE(reg.poll_for_work(0, &key, &tag, &tid))
        << "no one requested help";
  }
}

// --- end-to-end: wait-free Search on the SCOT list ------------------------

template <class Smr>
class WaitFreeListTest : public ::testing::Test {};

TYPED_TEST_SUITE(WaitFreeListTest, test::AllSchemes);

// Traits that force the slow path almost immediately, so the helping
// machinery is exercised even on short tests.
struct EagerHelpTraits : HarrisListTraits {
  static constexpr bool kWaitFree = true;
  static constexpr int kFastPathRestarts = 1;
};

TYPED_TEST(WaitFreeListTest, SemanticsMatchLockFreeVariant) {
  TypeParam smr(test::small_config());
  HarrisList<Key, Val, TypeParam, HarrisListWaitFreeTraits> list(smr);
  auto& h = smr.handle(0);
  for (Key k = 0; k < 50; ++k) ASSERT_TRUE(list.insert(h, k, k));
  for (Key k = 0; k < 50; ++k) EXPECT_TRUE(list.contains(h, k));
  for (Key k = 0; k < 50; k += 2) ASSERT_TRUE(list.erase(h, k));
  for (Key k = 0; k < 50; ++k) EXPECT_EQ(list.contains(h, k), k % 2 == 1);
}

TYPED_TEST(WaitFreeListTest, SearchStaysCorrectUnderPruningChurn) {
  TypeParam smr(test::small_config(4));
  HarrisList<Key, Val, TypeParam, EagerHelpTraits> list(smr);
  // Stable keys readers assert on; volatile keys the writers churn.
  for (Key k = 0; k < 128; k += 2)
    ASSERT_TRUE(list.insert(smr.handle(0), k, k));
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  test::run_threads(4, [&](unsigned tid) {
    auto& h = smr.handle(tid);
    Xoshiro256 rng(tid + 17);
    if (tid < 2) {  // writers: churn odd keys, keep even keys untouched
      for (int i = 0; i < 30000; ++i) {
        const Key k = rng.next_in(64) * 2 + 1;
        if (rng.next_in(2)) {
          list.insert(h, k, k);
        } else {
          list.erase(h, k);
        }
      }
      stop.store(true);
    } else {  // readers: wait-free searches on stable keys
      while (!stop.load(std::memory_order_relaxed)) {
        const Key k = rng.next_in(64) * 2;
        if (!list.contains(h, k)) errors.fetch_add(1);
        if (list.contains(h, 1001)) errors.fetch_add(1);  // never inserted
      }
    }
  });
  EXPECT_EQ(errors.load(), 0);
}

TYPED_TEST(WaitFreeListTest, HelpersResolveARequestedSearch) {
  // Drive the protocol pieces by hand: a "stuck" searcher posts a request;
  // a writer's update loop (which calls Help_Threads internally) must
  // eventually publish the answer even though the requester never traverses.
  TypeParam smr(test::small_config(2));
  HarrisList<Key, Val, TypeParam, EagerHelpTraits> list(smr);
  auto& requester = smr.handle(0);
  auto& writer = smr.handle(1);
  ASSERT_TRUE(list.insert(writer, 77, 1));
  // Reach inside: post the help request exactly like the slow path does.
  auto& reg = list.debug_wf_registry();
  const std::uint64_t tag = reg.request_help(requester.tid(), 77);
  // Writer churns; its insert/erase calls poll for help every kDelay ops.
  for (int i = 0; i < 64 * Registry::kDelay &&
                  reg.poll_status(0, tag) == WfPoll::kContinue;
       ++i) {
    list.insert(writer, 1000 + (i % 8), 0);
    list.erase(writer, 1000 + (i % 8));
  }
  EXPECT_EQ(reg.poll_status(0, tag), WfPoll::kDoneTrue)
      << "updaters must have helped and published 'found'";
}

}  // namespace
}  // namespace scot
