// The one translation unit that instantiates the scheme × container cross
// product (7 schemes × {MSQueue, TreiberStack, Deque}) and registers it with
// AnyContainerRegistry.  Mirror of src/core/any_map.cpp for the
// queue/stack/deque concept — adding a scheme or container structure is one
// registration line here plus the enum/name/kind rows in core/registry.hpp
// (DESIGN.md §11 has the multi-concept recipe).
#include "core/any_container.hpp"

#include <vector>

#include "core/deque.hpp"
#include "core/ms_queue.hpp"
#include "core/treiber_stack.hpp"
#include "smr/smr.hpp"

namespace scot {
namespace {

using V = AnyContainer::Value;

// TypedAnyContainer maps the erased union surface (push/pop, either end)
// onto whichever ops the concrete structure exposes, detected structurally:
// queue = push_back/pop_front via enqueue/dequeue, stack = push_front/
// pop_front via push/pop, deque = all four.  Unsupported ends report
// false / nullopt instead of asserting so the facade stays total — the
// per-concept wrappers (AnyQueue/AnyStack/AnyDeque) keep callers off them.
template <class Smr, class DS>
class TypedAnyContainer final : public detail::AnyContainerImpl {
  using Handle = typename Smr::Handle;

 public:
  explicit TypedAnyContainer(const AnyContainerOptions& options)
      : smr_(options.smr),
        ds_(std::make_unique<DS>(smr_)),
        handles_(options.smr.max_threads) {}

  // --- deprecated tid surface ---------------------------------------------
  bool push_front(unsigned tid, V value) override {
    return do_push_front(handle(tid), value);
  }
  bool push_back(unsigned tid, V value) override {
    return do_push_back(handle(tid), value);
  }
  std::optional<V> pop_front(unsigned tid) override {
    return do_pop_front(handle(tid));
  }
  std::optional<V> pop_back(unsigned tid) override {
    return do_pop_back(handle(tid));
  }

  // --- session surface ----------------------------------------------------
  void* join_handle() override { return &smr_.join(); }
  void leave_handle(void* h) override { smr_.leave(*static_cast<Handle*>(h)); }
  bool push_front_with(void* h, V value) override {
    return do_push_front(*static_cast<Handle*>(h), value);
  }
  bool push_back_with(void* h, V value) override {
    return do_push_back(*static_cast<Handle*>(h), value);
  }
  std::optional<V> pop_front_with(void* h) override {
    return do_pop_front(*static_cast<Handle*>(h));
  }
  std::optional<V> pop_back_with(void* h) override {
    return do_pop_back(*static_cast<Handle*>(h));
  }

  std::size_t size_unsafe() const override { return ds_->size_unsafe(); }
  std::int64_t pending_nodes() const override { return smr_.pending_nodes(); }
  std::uint64_t restarts() const override {
    std::uint64_t n = 0;
    for (const auto* r = smr_.registry().head(); r != nullptr;
         r = r->next_record())
      n += r->handle.ds_restarts;
    return n;
  }
  std::uint64_t recoveries() const override {
    std::uint64_t n = 0;
    for (const auto* r = smr_.registry().head(); r != nullptr;
         r = r->next_record())
      n += r->handle.ds_recoveries;
    return n;
  }
  unsigned active_handles() const override { return smr_.active_handles(); }
  std::size_t total_handle_records() const override {
    return smr_.total_handle_records();
  }
  obs::StatsSnapshot stats() const override { return smr_.stats(); }

 private:
  // front = the stack top / queue head / deque left end.
  bool do_push_front(Handle& h, V value) {
    if constexpr (requires(DS& d) { d.push_left(h, value); }) {
      ds_->push_left(h, value);
      return true;
    } else if constexpr (requires(DS& d) { d.push(h, value); }) {
      ds_->push(h, value);
      return true;
    } else {
      (void)h;
      (void)value;
      return false;  // queues only grow at the back
    }
  }
  bool do_push_back(Handle& h, V value) {
    if constexpr (requires(DS& d) { d.push_right(h, value); }) {
      ds_->push_right(h, value);
      return true;
    } else if constexpr (requires(DS& d) { d.enqueue(h, value); }) {
      ds_->enqueue(h, value);
      return true;
    } else {
      (void)h;
      (void)value;
      return false;  // stacks only grow at the top
    }
  }
  std::optional<V> do_pop_front(Handle& h) {
    if constexpr (requires(DS& d) { d.pop_left(h); }) {
      return ds_->pop_left(h);
    } else if constexpr (requires(DS& d) { d.pop(h); }) {
      return ds_->pop(h);
    } else if constexpr (requires(DS& d) { d.dequeue(h); }) {
      return ds_->dequeue(h);
    } else {
      (void)h;
      return std::nullopt;
    }
  }
  std::optional<V> do_pop_back(Handle& h) {
    if constexpr (requires(DS& d) { d.pop_right(h); }) {
      return ds_->pop_right(h);
    } else {
      (void)h;
      return std::nullopt;  // queues and stacks only shrink at the front
    }
  }

  Handle& handle(unsigned tid) {
    auto& slot = handles_.at(tid);
    Handle* h = slot.load(std::memory_order_acquire);
    if (h == nullptr) {
#ifndef SCOT_DISALLOW_TID_SHIM
      h = &smr_.handle(tid);  // shim: joins + pins once, mutex on this path
      slot.store(h, std::memory_order_release);
#else
      // Shim compiled out: join directly; the CAS tolerates two threads
      // racing the same tid (see TypedAnyMap::handle).
      h = &smr_.join();
      Handle* expected = nullptr;
      if (!slot.compare_exchange_strong(expected, h,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        smr_.leave(*h);
        h = expected;
      }
#endif
    }
    return *h;
  }

  // Declaration order is destruction order in reverse: the structure's
  // teardown deallocates through the domain, so the domain must outlive it.
  mutable Smr smr_;
  std::unique_ptr<DS> ds_;
  std::vector<std::atomic<Handle*>> handles_;
};

template <class Smr, class DS>
std::unique_ptr<detail::AnyContainerImpl> make_cell(
    const AnyContainerOptions& options) {
  return std::make_unique<TypedAnyContainer<Smr, DS>>(options);
}

template <class Smr>
void register_scheme(SchemeId id) {
  auto& reg = AnyContainerRegistry::instance();
  reg.add(id, StructureId::kMSQueue, &make_cell<Smr, MSQueue<V, Smr>>);
  reg.add(id, StructureId::kTreiberStack,
          &make_cell<Smr, TreiberStack<V, Smr>>);
  reg.add(id, StructureId::kDeque, &make_cell<Smr, Deque<V, Smr>>);
}

const bool kRegistered = [] {
  register_scheme<NoReclaimDomain>(SchemeId::kNR);
  register_scheme<EbrDomain>(SchemeId::kEBR);
  register_scheme<HpDomain>(SchemeId::kHP);
  register_scheme<HpOptDomain>(SchemeId::kHPopt);
  register_scheme<HeDomain>(SchemeId::kHE);
  register_scheme<IbrDomain>(SchemeId::kIBR);
  register_scheme<HyalineDomain>(SchemeId::kHLN);
  return true;
}();

}  // namespace

std::optional<AnyContainer> AnyContainer::make(
    SchemeId scheme, StructureId structure,
    const AnyContainerOptions& options) {
  // ODR-use the registrar so linking make() always pulls the registrations.
  (void)kRegistered;
  const AnyContainerRegistry::Factory factory =
      AnyContainerRegistry::instance().find(scheme, structure);
  if (factory == nullptr) return std::nullopt;
  return AnyContainer(scheme, structure, options.smr.max_threads,
                      factory(options));
}

}  // namespace scot
