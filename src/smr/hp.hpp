// HP: hazard pointers (Michael 2004), in the two variants the paper
// evaluates:
//
//  * `HpDomain`    — the original scheme: every limbo-list scan re-reads the
//                    global hazard array once per retired node.
//  * `HpOptDomain` — "HPopt": captures one local snapshot of all hazard slots
//                    before scanning the limbo list and binary-searches it
//                    (the optimization the paper borrows from Hyaline [26]).
//                    The paper reports a substantial difference in some
//                    tests; bench_micro_smr and the figure benches expose it.
//
// protect(src, idx) implements Figure 1 of the paper: publish the pointer
// (with logical-deletion bits cleared) in slot `idx`, then re-read `src`
// until it is stable.  dup(i, j) copies slot i to slot j; SCOT requires all
// dup calls to copy toward *higher* indices because scans read slots in
// ascending order (see DESIGN.md §4).
//
// Membership is dynamic (see nr.hpp): the hazard slots live inside the
// Handle (one cache-line-isolated block per registry record), scans walk
// the live registry, and leave() clears the slots, scans, and donates the
// leftover limbo to the domain's orphan list.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

#include "common/align.hpp"
#include "common/asymfence.hpp"
#include "common/chunked_list.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "smr/handle_core.hpp"
#include "smr/handle_registry.hpp"
#include "smr/node_pool.hpp"
#include "smr/reclaimer.hpp"
#include "smr/smr_config.hpp"

namespace scot {

template <bool kSnapshotScan>
class HazardPointerDomain {
 public:
  static constexpr const char* kName = kSnapshotScan ? "HPopt" : "HP";
  static constexpr bool kRobust = true;

  class Handle : public HandleCore<HazardPointerDomain, Handle> {
   public:
    using Base = HandleCore<HazardPointerDomain, Handle>;
    Handle(HazardPointerDomain* dom, unsigned tid)
        : Base(dom, tid),
          slots_(new std::atomic<ReclaimNode*>[dom->cfg_.slots_per_thread]) {
      for (unsigned i = 0; i < dom->cfg_.slots_per_thread; ++i)
        slots_[i].store(nullptr, std::memory_order_relaxed);
    }

   protected:
    // HazardPointerDomain is a template, so the base is dependent and its
    // members need explicit re-introduction.
    using Base::dom_;
    using Base::tid_;

   public:
    using Base::stats_;  // public in the base (obs cell; reclaimer reads it)
    using Base::retire;  // typed retire(Protected<T>) — API v2

    void begin_op() noexcept {}

    // Clears every slot this operation touched (release: the nodes remain
    // valid until the store is visible; nothing in this thread reads them
    // afterwards).
    void end_op() noexcept {
      while (used_mask_ != 0) {
        const unsigned idx =
            static_cast<unsigned>(__builtin_ctz(used_mask_));
        used_mask_ &= used_mask_ - 1;
        slots_[idx].store(nullptr, std::memory_order_release);
      }
    }

    // `Src` is std::atomic<P> or StableAtomic<P> (pool-recycled link words).
    template <class Src, class P = typename Src::value_type>
    P protect(const Src& src, unsigned idx) noexcept {
      P cur = src.load(std::memory_order_acquire);
      const asymfence::Path fences = dom_->fence_path_;
      if (fences == asymfence::Path::kClassic) {
        for (;;) {
          // seq_cst publish followed by a seq_cst re-read gives the
          // StoreLoad ordering the HP safety argument requires: if the
          // re-read still sees `cur`, the publication preceded any
          // subsequent unlink of the link we loaded from, so a retirement
          // scan must observe the slot.
          slots_[idx].store(smr_raw(cur), std::memory_order_seq_cst);
          P again = src.load(std::memory_order_seq_cst);
          if (again == cur) break;
          cur = again;
        }
      } else {
        for (;;) {
          // Asymmetric fast path: the StoreLoad edge above is restored by
          // the heavy barrier every scan issues before reading the slots
          // (DESIGN.md §5).  On the fallback path light_barrier() is a real
          // seq_cst fence, making the pair equivalent to the classic code.
          slots_[idx].store(smr_raw(cur), std::memory_order_release);
          asymfence::light_barrier(fences);
          P again = src.load(std::memory_order_acquire);
          if (again == cur) break;
          cur = again;
        }
      }
      used_mask_ |= 1u << idx;
      return cur;
    }

    // Non-validating publication, for immortal anchors (sentinel nodes that
    // are never retired).  Do NOT use for reclaimable nodes.
    template <class T>
    void publish(T* p, unsigned idx) noexcept {
      if (dom_->fence_path_ == asymfence::Path::kClassic) {
        slots_[idx].store(smr_raw(p), std::memory_order_seq_cst);
      } else {
        slots_[idx].store(smr_raw(p), std::memory_order_release);
        asymfence::light_barrier(dom_->fence_path_);
      }
      used_mask_ |= 1u << idx;
    }

    void dup(unsigned i, unsigned j) noexcept {
      assert(i < j && "SCOT requires ascending-index dup (paper §3.2)");
      slots_[j].store(slots_[i].load(std::memory_order_relaxed),
                      std::memory_order_release);
      used_mask_ |= 1u << j;
    }

    static constexpr bool op_valid() noexcept { return true; }
    void revalidate_op() noexcept {}

    void retire(ReclaimNode* n) {
      n->debug_state = kNodeRetired;
      limbo_.push(n);
      if (!dom_->bg_.is_active() && adopt_all_mailboxes() > 0) {
        obs::count(stats_, obs::Counter::kOrphanAdoptions);
        obs::trace_instant(obs::TraceKind::kAdopt);
      }
      dom_->counters_.on_retire(dom_->cfg_.track_stats);
      obs::count(stats_, obs::Counter::kRetires);
      obs::peak(stats_, limbo_.count);
      if (limbo_.count >= dom_->bg_.effective_scan_threshold()) {
        if (dom_->bg_.is_active()) {
          donate_limbo(limbo_, dom_->bg_.mailbox);
          dom_->bg_.thread.ring();
        } else {
          scan();
        }
      }
    }

    std::uint64_t on_alloc_era() noexcept { return 0; }

    void scan() {
      obs::TraceSpan span(obs::TraceKind::kScan);
      const std::uint64_t stats_t0 = obs::scan_begin(stats_);
      // One heavy barrier covers the whole scan batch: every node in the
      // limbo list was unlinked (and retired) before this point, so a
      // reader publication the barrier does not surface belongs to a
      // validating re-read that is ordered after the unlink and retries.
      // The registry head is read after the barrier, so the same argument
      // covers records of late-joining threads (DESIGN.md §7).
      if (dom_->fence_path_ != asymfence::Path::kClassic) {
        asymfence::heavy_barrier(dom_->fence_path_);
        obs::count(stats_, obs::Counter::kHeavyBarriers);
      }
      std::uint64_t freed = 0;
      if constexpr (kSnapshotScan) {
        snapshot_.clear();
        dom_->collect_hazards(snapshot_);
        std::sort(snapshot_.begin(), snapshot_.end());
        ReclaimNode* n = limbo_.take();
        while (n != nullptr) {
          ReclaimNode* next = n->smr_next;
          if (std::binary_search(snapshot_.begin(), snapshot_.end(), n)) {
            limbo_.push(n);
          } else {
            dom_->pool().free(tid_, n, n->alloc_size);
            ++freed;
          }
          n = next;
        }
      } else {
        ReclaimNode* n = limbo_.take();
        while (n != nullptr) {
          ReclaimNode* next = n->smr_next;
          if (dom_->is_hazard(n)) {
            limbo_.push(n);
          } else {
            dom_->pool().free(tid_, n, n->alloc_size);
            ++freed;
          }
          n = next;
        }
      }
      dom_->counters_.on_free(freed, dom_->cfg_.track_stats);
      obs::scan_end(stats_, stats_t0, freed);
    }

    unsigned limbo_size() const noexcept { return limbo_.count; }

    // --- background-reclaimer hooks (service thread only; DESIGN.md §9) ---
    unsigned bg_collect() { return adopt_all_mailboxes(); }
    bool bg_reclaim() {
      if (limbo_.count == 0) return false;
      scan();
      return true;
    }

   private:
    friend class HazardPointerDomain;

    unsigned adopt_all_mailboxes() {
      unsigned adopted = 0;
      if (!dom_->orphans_.empty())
        adopted += adopt_orphans(dom_->orphans_, limbo_);
      if (!dom_->bg_.mailbox.empty())
        adopted += adopt_orphans(dom_->bg_.mailbox, limbo_);
      return adopted;
    }

    std::atomic<ReclaimNode*>& slot_ref(unsigned idx) noexcept {
      assert(idx < dom_->cfg_.slots_per_thread);
      return slots_[idx];
    }

    // Per-thread hazard slots (the record's alignment isolates them from
    // other threads' lines); sized by cfg.slots_per_thread at handle
    // construction, reused across join/leave cycles.
    std::unique_ptr<std::atomic<ReclaimNode*>[]> slots_;
    LimboList limbo_;
    std::uint32_t used_mask_ = 0;
    // HPopt scratch, reused across scans; grows without bound instead of
    // being pre-reserved for max_threads * slots_per_thread.
    ChunkedList<ReclaimNode*> snapshot_;
  };

  explicit HazardPointerDomain(SmrConfig cfg = {})
      : cfg_(cfg),
        pool_(cfg.max_threads),
        fence_path_(asymfence::resolve(cfg.asymmetric_fences))
#ifndef SCOT_DISALLOW_TID_SHIM
        ,
        shim_(cfg.max_threads)
#endif
  {
    assert(cfg_.slots_per_thread <= 32);
    bg_.scan_threshold.store(cfg_.scan_threshold, std::memory_order_relaxed);
    bg_.era_freq.store(cfg_.era_freq, std::memory_order_relaxed);
    if (cfg_.background_reclaim) start_background_reclaimer();
  }

  ~HazardPointerDomain() {
    stop_background_reclaimer();
    drain_all();
  }

  // --- dynamic membership (see nr.hpp for the reference walkthrough) ------
  Handle& join() {
    auto* rec =
        registry_.acquire([this](unsigned idx) { return Handle(this, idx); });
    rec->handle.registry_record_ = rec;
    pool_.ensure_shards(rec->index + 1);
    obs::count(rec->handle.stats_, obs::Counter::kJoins);
    obs::trace_instant(obs::TraceKind::kJoin);
    return rec->handle;
  }

  // Contract: no operation in flight.  Clears the hazard slots, runs a
  // final scan, and donates what remains to the orphan list.
  void leave(Handle& h) {
    h.end_op();
    if (h.limbo_.count > 0) {
      if (bg_.is_active()) {
        donate_limbo(h.limbo_, bg_.mailbox);
        bg_.thread.ring();
        obs::count(h.stats_, obs::Counter::kOrphanDonations);
      } else {
        h.scan();
        if (donate_limbo(h.limbo_, orphans_) > 0)
          obs::count(h.stats_, obs::Counter::kOrphanDonations);
      }
    }
    obs::count(h.stats_, obs::Counter::kLeaves);
    obs::trace_instant(obs::TraceKind::kLeave);
    registry_.release(record_of(h));
  }

  unsigned active_handles() const noexcept { return registry_.active(); }
  std::size_t total_handle_records() const noexcept {
    return registry_.total_records();
  }
  const HandleRegistry<Handle>& registry() const noexcept { return registry_; }

#ifndef SCOT_DISALLOW_TID_SHIM
  // DEPRECATED: fixed-capacity tid-indexed access (joins once per tid and
  // pins the record forever).  New code should use scoped_handle(domain).
  Handle& handle(unsigned tid) { return shim_.get(*this, tid); }
#endif

  // --- background reclamation (smr/reclaimer.hpp, DESIGN.md §9) -----------
  ReclaimControl& reclaim_control() noexcept { return bg_; }
  bool background_active() const noexcept { return bg_.is_active(); }
  BgReclaimStats background_stats() const noexcept { return bg_stats_of(bg_); }
  bool counts_heavy_barrier_per_reclaim() const noexcept {
    return fence_path_ != asymfence::Path::kClassic;
  }

  void start_background_reclaimer() {
    if (bg_.thread.running()) return;
    if (!reclaimer_)
      reclaimer_ =
          std::make_unique<DomainReclaimer<HazardPointerDomain>>(*this);
    bg_.active.store(true, std::memory_order_release);
    bg_.thread.start(cfg_.reclaim_interval_us,
                     [this] { reclaimer_->round(); });
  }

  void stop_background_reclaimer() {
    bg_.active.store(false, std::memory_order_release);
    bg_.thread.stop();
    if (reclaimer_) {
      reclaimer_->detach();
      reclaimer_.reset();
    }
  }

  const SmrConfig& config() const noexcept { return cfg_; }
  NodePool& pool() noexcept { return pool_; }
  std::int64_t pending_nodes() const noexcept {
    return counters_.pending.load(std::memory_order_relaxed);
  }
  const SmrCounters& counters() const noexcept { return counters_; }
  asymfence::Path fence_path() const noexcept { return fence_path_; }

  // Observability (DESIGN.md §8): the per-handle cell list and the
  // aggregated snapshot.
  obs::DomainStats& obs_stats() noexcept { return stats_obs_; }
  obs::StatsSnapshot stats() const {
    obs::StatsSnapshot s = stats_obs_.snapshot();
    s.enabled = SCOT_STATS != 0 && cfg_.track_stats;
    s.pending = pending_nodes();
    s.retired_total = counters_.retired.load(std::memory_order_relaxed);
    s.reclaimed_total = counters_.reclaimed.load(std::memory_order_relaxed);
    return s;
  }

#ifndef SCOT_DISALLOW_TID_SHIM
  // Test/introspection accessor for a tid-indexed slot (routes through the
  // deprecated shim, joining the tid if needed).
  std::atomic<ReclaimNode*>& slot(unsigned tid, unsigned idx) {
    return handle(tid).slot_ref(idx);
  }
#endif

  bool is_hazard(const ReclaimNode* n) const noexcept {
    for (const auto* r = registry_.head(); r != nullptr;
         r = r->next_record()) {
      for (unsigned i = 0; i < cfg_.slots_per_thread; ++i) {
        if (r->handle.slots_[i].load(std::memory_order_acquire) == n)
          return true;
      }
    }
    return false;
  }

  // Ascending slot order within each record; paired with ascending-index
  // dup this guarantees a protected node is seen in at least one slot
  // (paper §3.2).  Walks the live registry — records of departed threads
  // hold cleared slots and cost one load each.  `Out` is any push_back-able
  // container (ChunkedList in scans, std::vector in tests).
  template <class Out>
  void collect_hazards(Out& out) const {
    for (const auto* r = registry_.head(); r != nullptr;
         r = r->next_record()) {
      for (unsigned i = 0; i < cfg_.slots_per_thread; ++i) {
        ReclaimNode* v = r->handle.slots_[i].load(std::memory_order_acquire);
        if (v != nullptr) out.push_back(v);
      }
    }
  }

 private:
  friend class Handle;

  using Record = typename HandleRegistry<Handle>::Record;
  static Record* record_of(Handle& h) noexcept {
    return static_cast<Record*>(h.registry_record_);
  }

  void drain_all() {
    std::uint64_t freed = 0;
    for (auto* r = registry_.head(); r != nullptr; r = r->next_record()) {
      ReclaimNode* n = r->handle.limbo_.take();
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        pool_.free(r->index, n, n->alloc_size);
        ++freed;
        n = next;
      }
    }
    ReclaimNode* chains[] = {orphans_.take_all(), bg_.mailbox.take_all()};
    for (ReclaimNode* n : chains) {
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        pool_.free(0, n, n->alloc_size);
        ++freed;
        n = next;
      }
    }
    counters_.on_free(freed, cfg_.track_stats);
  }

  SmrConfig cfg_;
  NodePool pool_;
  SmrCounters counters_;
  asymfence::Path fence_path_;
  // Declared before the registry: handles hold raw cell pointers, so the
  // cell list must be destroyed after the records are.
  obs::DomainStats stats_obs_;
  HandleRegistry<Handle> registry_;
  OrphanList orphans_;
  ReclaimControl bg_;
  std::unique_ptr<DomainReclaimer<HazardPointerDomain>> reclaimer_;
#ifndef SCOT_DISALLOW_TID_SHIM
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  TidHandleShim<Handle> shim_;
#pragma GCC diagnostic pop
#endif
};

using HpDomain = HazardPointerDomain<false>;
using HpOptDomain = HazardPointerDomain<true>;

}  // namespace scot
