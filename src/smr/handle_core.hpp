// CRTP base shared by the per-thread handles of all reclamation schemes.
//
// A Handle is the per-thread facade of a reclamation domain: all allocation,
// protection and retirement flows through it.  Handles are *not* thread-safe;
// handle `tid` must only ever be used by one thread at a time (the benchmark
// harness and tests enforce this).
#pragma once

#include <cassert>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "obs/stats.hpp"
#include "smr/guard.hpp"
#include "smr/handle_registry.hpp"
#include "smr/node_pool.hpp"
#include "smr/reclaim_node.hpp"

namespace scot {

// Intrusive singly-linked list of retired nodes awaiting reclamation.  The
// tail pointer (the oldest node — push prepends) makes whole-chain donation
// to a RetireMailbox O(1), which the background-reclaim hot path relies on:
// with the reclaimer active every threshold-ful of retires donates the full
// chain instead of scanning (smr/reclaimer.hpp, DESIGN.md §9).
struct LimboList {
  ReclaimNode* head = nullptr;
  ReclaimNode* tail = nullptr;
  unsigned count = 0;

  void push(ReclaimNode* n) noexcept {
    n->smr_next = head;
    if (head == nullptr) tail = n;
    head = n;
    ++count;
  }

  ReclaimNode* take() noexcept {
    ReclaimNode* h = head;
    head = nullptr;
    tail = nullptr;
    count = 0;
    return h;
  }
};

// Donates a limbo list's whole chain to a retire mailbox — the domain's
// orphan mailbox on leave(), or the background reclaimer's mailbox on the
// donate-instead-of-scan hot path — and resets the list.  O(1): one CAS
// push of the [head .. tail] chain.  Returns the number of nodes donated
// (0 = no donation happened).
inline unsigned donate_limbo(LimboList& limbo,
                             RetireMailbox& mailbox) noexcept {
  const unsigned donated = limbo.count;
  if (donated == 0) return 0;
  mailbox.donate(limbo.head, limbo.tail);
  limbo.take();
  return donated;
}

// Adopts every orphaned retire into `limbo` (the limbo-list schemes' side of
// the handoff; Hyaline splices into its batch instead).  Returns the number
// of nodes adopted (0 = the mailbox was raced empty).
inline unsigned adopt_orphans(OrphanList& orphans, LimboList& limbo) noexcept {
  ReclaimNode* n = orphans.take_all();
  unsigned adopted = 0;
  while (n != nullptr) {
    ReclaimNode* next = n->smr_next;
    limbo.push(n);
    ++adopted;
    n = next;
  }
  return adopted;
}

// Derived must provide:
//   Domain*  dom_;            (set by constructor)
//   unsigned tid_;
//   std::uint64_t on_alloc_era();   // birth era to stamp (0 for non-era schemes)
template <class Domain, class Derived>
class HandleCore {
 public:
  HandleCore(Domain* dom, unsigned tid)
      : stats_(dom->obs_stats().make_cell(dom->config().track_stats)),
        dom_(dom),
        tid_(tid) {}

  HandleCore(const HandleCore&) = delete;
  HandleCore& operator=(const HandleCore&) = delete;

  unsigned tid() const noexcept { return tid_; }
  Domain& domain() noexcept { return *dom_; }

  // Allocates and constructs a node.  T must derive from ReclaimNode and be
  // trivially destructible: reclamation is type-erased and never runs
  // destructors (all pooled node types in this library are PODs plus
  // atomics).
  template <class T, class... Args>
  T* alloc(Args&&... args) {
    static_assert(std::is_base_of_v<ReclaimNode, T>);
    static_assert(std::is_trivially_destructible_v<T>,
                  "pooled nodes must be trivially destructible");
    void* mem = dom_->pool().alloc(tid_, sizeof(T));
    // Stamp the birth era before the node can become reachable.  The header
    // is outside the object, so placement-new below does not disturb it.
    header_of(mem)->birth_era.store(derived()->on_alloc_era(),
                                    std::memory_order_release);
    T* n = new (mem) T(std::forward<Args>(args)...);
    n->alloc_size = sizeof(T);
    n->debug_state = kNodeLive;
    return n;
  }

  // alloc() with `extra` trailing bytes for inline variable-length payloads
  // (string keys, value blobs).  The payload lives inside the pooled cell
  // right after T, so it is freed with the node and needs no destructor —
  // which keeps the trivially-destructible contract intact.  The caller
  // copies the bytes in after construction; the publishing CAS (release on
  // every scheme's traversal protocol) orders those writes before any
  // reader can reach the node.
  template <class T, class... Args>
  T* alloc_extra(std::size_t extra, Args&&... args) {
    static_assert(std::is_base_of_v<ReclaimNode, T>);
    static_assert(std::is_trivially_destructible_v<T>,
                  "pooled nodes must be trivially destructible");
    const std::size_t bytes = sizeof(T) + extra;
    assert(bytes <= NodePool::max_node_bytes());
    void* mem = dom_->pool().alloc(tid_, bytes);
    header_of(mem)->birth_era.store(derived()->on_alloc_era(),
                                    std::memory_order_release);
    T* n = new (mem) T(std::forward<Args>(args)...);
    n->alloc_size = static_cast<std::uint32_t>(bytes);
    n->debug_state = kNodeLive;
    return n;
  }

  // Frees a node that was never published into a shared structure (e.g. the
  // loser of an insertion CAS).  Bypasses retirement entirely.
  template <class T>
  void dealloc_unpublished(T* n) {
    assert(n->debug_state == kNodeLive);
    dom_->pool().free(tid_, n, n->alloc_size);
  }

  // API v2 typed retirement: accepts the protected view a traversal already
  // holds.  The derived scheme's retire(ReclaimNode*) stays the
  // implementation; derived classes re-expose this overload with
  // `using Base::retire;`.
  template <class T>
  void retire(Protected<T> p) {
    static_assert(std::is_base_of_v<ReclaimNode, T>);
    assert(p.get() != nullptr && "cannot retire an empty Protected");
    derived()->retire(static_cast<ReclaimNode*>(p.get()));
  }

  // --- data-structure statistics (Table 2 of the paper) -------------------
  // Incremented by the data structures, summed by the harness.  Plain fields:
  // each handle is single-threaded.  Deliberately NOT reset on record reuse:
  // they are cumulative domain telemetry, exactly as they were when handles
  // lived for the whole domain lifetime.
  std::uint64_t ds_restarts = 0;    // full traversal restarts
  std::uint64_t ds_recoveries = 0;  // §3.2.1 recovery-optimization escapes

  // Back-pointer to this handle's HandleRegistry record, set by the
  // domain's join().  Opaque here (the record type depends on the concrete
  // Handle); domains cast it back in leave().
  void* registry_record_ = nullptr;

  // Observability cell: one padded counter block per registry record,
  // cumulative across claim/release reuse like the ds_* fields above.
  // nullptr when stats are compiled out (SCOT_STATS=0) or the domain was
  // built with track_stats=false — every obs:: helper no-ops on null.
  obs::StatsCell* stats_ = nullptr;

 protected:
  Derived* derived() noexcept { return static_cast<Derived*>(this); }

  Domain* dom_;
  unsigned tid_;
};

}  // namespace scot
