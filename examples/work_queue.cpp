// work_queue: the container concepts through the type-erased facades —
// an MS queue as a producer/consumer work channel, with the stack and the
// deque driven through the same registry to show that one guard discipline
// serves all three shapes (DESIGN.md §11).
//
//   ./examples/work_queue            # default scheme: HLN
//   ./examples/work_queue HPopt
//
// Schemes: NR EBR HP HPopt HE IBR HLN (scot::scheme_from_name).
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "scot.hpp"

int main(int argc, char** argv) {
  using namespace scot;

  SchemeId scheme = SchemeId::kHLN;
  if (argc > 1) {
    const auto s = scheme_from_name(argv[1]);
    if (!s) {
      std::fprintf(stderr, "unknown scheme '%s' (try NR EBR HP HPopt HE IBR "
                   "HLN)\n", argv[1]);
      return 2;
    }
    scheme = *s;
  }

  constexpr unsigned kProducers = 2, kConsumers = 2;
  constexpr std::uint64_t kJobs = 50000;  // per producer
  AnyContainerOptions options;
  options.smr.max_threads = kProducers + kConsumers;

  // --- the queue as a work channel ------------------------------------------
  auto queue = AnyQueue::make(scheme, StructureId::kMSQueue, options);
  if (!queue) {
    std::fprintf(stderr, "no registered cell for %s/MSQueue\n",
                 scheme_name(scheme));
    return 1;
  }
  std::printf("work channel: %s over %s\n", queue->container().structure_name(),
              queue->container().scheme_name());

  std::atomic<unsigned> producers_left{kProducers};
  std::atomic<std::uint64_t> consumed{0}, checksum{0};
  std::vector<std::thread> workers;
  for (unsigned p = 0; p < kProducers; ++p) {
    workers.emplace_back([&, p] {
      auto session = queue->session();  // joins the domain; leaves at exit
      for (std::uint64_t i = 0; i < kJobs; ++i)
        session.enqueue((static_cast<std::uint64_t>(p) << 32) | i);
      producers_left.fetch_sub(1, std::memory_order_release);
    });
  }
  for (unsigned c = 0; c < kConsumers; ++c) {
    workers.emplace_back([&] {
      auto session = queue->session();
      for (;;) {
        if (const auto job = session.dequeue()) {
          consumed.fetch_add(1, std::memory_order_relaxed);
          checksum.fetch_add(*job & 0xffffffffu, std::memory_order_relaxed);
        } else if (producers_left.load(std::memory_order_acquire) == 0) {
          // One more look: the last producer's jobs were linked before the
          // counter hit zero.
          const auto last = session.dequeue();
          if (!last) break;
          consumed.fetch_add(1, std::memory_order_relaxed);
          checksum.fetch_add(*last & 0xffffffffu, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  const std::uint64_t expect_sum =
      kProducers * (kJobs * (kJobs - 1) / 2);  // sum of sequence numbers
  std::printf("  consumed %llu/%llu jobs, checksum %s\n",
              static_cast<unsigned long long>(consumed.load()),
              static_cast<unsigned long long>(kProducers * kJobs),
              checksum.load() == expect_sum ? "ok" : "MISMATCH");
  std::printf("  restarts %llu, recoveries (help-swing-tail) %llu\n",
              static_cast<unsigned long long>(queue->restarts()),
              static_cast<unsigned long long>(queue->recoveries()));

  // --- same registry, other shapes ------------------------------------------
  // A stack for undo-style LIFO scratch work...
  auto stack = AnyStack::make(scheme, StructureId::kTreiberStack, options);
  {
    auto session = stack->session();
    for (std::uint64_t i = 0; i < 4; ++i) session.push(i);
    std::printf("stack pops (LIFO): ");
    while (const auto v = session.pop())
      std::printf("%llu ", static_cast<unsigned long long>(*v));
    std::printf("— recoveries %llu (always 0 by construction)\n",
                static_cast<unsigned long long>(stack->recoveries()));
  }

  // ...and the deque as a double-ended buffer: feed one end, steal from both.
  auto deque = AnyDeque::make(scheme, StructureId::kDeque, options);
  {
    auto session = deque->session();
    for (std::uint64_t i = 0; i < 6; ++i) session.push_right(i);
    const auto l0 = *session.pop_left(), l1 = *session.pop_left();
    const auto r0 = *session.pop_right(), r1 = *session.pop_right();
    std::printf("deque: pop_left %llu %llu, pop_right %llu %llu\n",
                static_cast<unsigned long long>(l0),
                static_cast<unsigned long long>(l1),
                static_cast<unsigned long long>(r0),
                static_cast<unsigned long long>(r1));
  }
  return 0;
}
