// Dangerous-zone behaviour of the SCOT Harris list, driven deterministically
// through the debug_mark_only() hook: traversals must skip logically deleted
// chains (optimistic traversal), updates must prune whole chains with one
// CAS, and the recovery optimization must engage instead of full restarts
// when the last safe node stays live.
#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace scot {
namespace {

using Key = std::uint64_t;
using Val = std::uint64_t;

template <class Smr>
class ScotZoneTest : public ::testing::Test {};

TYPED_TEST_SUITE(ScotZoneTest, test::AllSchemes);

template <class List, class Smr>
void fill(List& list, Smr& smr, Key n) {
  auto& h = smr.handle(0);
  for (Key k = 0; k < n; ++k) ASSERT_TRUE(list.insert(h, k, k));
}

TYPED_TEST(ScotZoneTest, SearchSkipsMarkedChainWithoutUnlinking) {
  TypeParam smr(test::small_config());
  HarrisList<Key, Val, TypeParam> list(smr);
  auto& h = smr.handle(0);
  fill(list, smr, 8);
  // Build the chain 2 -> 3 -> 4 (all logically deleted, still linked).
  for (Key k : {2, 3, 4}) ASSERT_TRUE(list.debug_mark_only(h, k));
  EXPECT_EQ(list.physical_size_unsafe(), 8u) << "chain must stay linked";
  EXPECT_EQ(list.size_unsafe(), 5u) << "marked nodes are logically gone";

  // Optimistic traversal: search crosses the zone and does NOT unlink.
  EXPECT_FALSE(list.contains(h, 3));
  EXPECT_TRUE(list.contains(h, 5));
  EXPECT_TRUE(list.contains(h, 7));
  EXPECT_EQ(list.physical_size_unsafe(), 8u)
      << "search-only traversals must never write (read-only optimism)";
}

TYPED_TEST(ScotZoneTest, UpdateTraversalPrunesWholeChainWithOneCas) {
  TypeParam smr(test::small_config());
  HarrisList<Key, Val, TypeParam> list(smr);
  auto& h = smr.handle(0);
  fill(list, smr, 8);
  for (Key k : {2, 3, 4}) ASSERT_TRUE(list.debug_mark_only(h, k));
  const std::int64_t pending_before = smr.pending_nodes();

  // An update that settles right after the chain (first live key >= 4 is 5)
  // must prune the whole chain with its single finishing CAS.  Re-inserting
  // 4 is legal: the marked 4 is logically absent.
  EXPECT_TRUE(list.insert(h, 4, 44));
  EXPECT_EQ(list.physical_size_unsafe(), 6u) << "2,3,4 pruned; new 4 added";
  EXPECT_EQ(smr.pending_nodes(), pending_before + 3)
      << "the whole chain must be retired by the pruning traversal";
  EXPECT_FALSE(list.contains(h, 2));
  EXPECT_FALSE(list.contains(h, 3));
  EXPECT_EQ(list.get(h, 4).value_or(0), 44u) << "new incarnation visible";
  EXPECT_TRUE(list.contains(h, 5));
}

TYPED_TEST(ScotZoneTest, ChainAtHeadIsTraversedAndPruned) {
  // The zone can start at the very first node (prev == &head anchor); this
  // exercises the simple-traversal fix-up documented in do_find.
  TypeParam smr(test::small_config());
  HarrisList<Key, Val, TypeParam, HarrisListSimpleTraits> list(smr);
  auto& h = smr.handle(0);
  fill(list, smr, 6);
  for (Key k : {0, 1, 2}) ASSERT_TRUE(list.debug_mark_only(h, k));
  EXPECT_FALSE(list.contains(h, 0));
  EXPECT_TRUE(list.contains(h, 3));
  EXPECT_TRUE(list.erase(h, 3));  // update traversal prunes the head chain
  EXPECT_EQ(list.physical_size_unsafe(), 2u);
}

TYPED_TEST(ScotZoneTest, ChainAtTailBeforeSentinel) {
  TypeParam smr(test::small_config());
  HarrisList<Key, Val, TypeParam> list(smr);
  auto& h = smr.handle(0);
  fill(list, smr, 6);
  for (Key k : {4, 5}) ASSERT_TRUE(list.debug_mark_only(h, k));
  EXPECT_FALSE(list.contains(h, 5));
  EXPECT_TRUE(list.contains(h, 3));
  // Insert beyond every live key: settles on the tail sentinel, pruning the
  // trailing chain on the way.
  EXPECT_TRUE(list.insert(h, 50, 0));
  EXPECT_EQ(list.physical_size_unsafe(), 5u);
  EXPECT_EQ(list.size_unsafe(), 5u);
}

TYPED_TEST(ScotZoneTest, EntireListMarked) {
  TypeParam smr(test::small_config());
  HarrisList<Key, Val, TypeParam> list(smr);
  auto& h = smr.handle(0);
  fill(list, smr, 10);
  for (Key k = 0; k < 10; ++k) ASSERT_TRUE(list.debug_mark_only(h, k));
  EXPECT_EQ(list.size_unsafe(), 0u);
  for (Key k = 0; k < 10; ++k) EXPECT_FALSE(list.contains(h, k));
  EXPECT_TRUE(list.insert(h, 3, 33));  // prunes through the zone
  EXPECT_TRUE(list.contains(h, 3));
  EXPECT_EQ(list.get(h, 3).value_or(0), 33u);
}

TYPED_TEST(ScotZoneTest, AdjacentChainsSeparatedByLiveNode) {
  TypeParam smr(test::small_config());
  HarrisList<Key, Val, TypeParam> list(smr);
  auto& h = smr.handle(0);
  fill(list, smr, 10);
  for (Key k : {1, 2}) ASSERT_TRUE(list.debug_mark_only(h, k));
  for (Key k : {4, 5}) ASSERT_TRUE(list.debug_mark_only(h, k));
  // Both zones crossed read-only:
  EXPECT_TRUE(list.contains(h, 3));
  EXPECT_TRUE(list.contains(h, 6));
  EXPECT_FALSE(list.contains(h, 4));
  // An update settling at 6 prunes only the *adjacent* chain {4,5} (Harris
  // semantics: earlier chains are skipped, not cleaned).
  EXPECT_TRUE(list.erase(h, 6));
  EXPECT_EQ(list.physical_size_unsafe(), 7u) << "only 4,5,6 removed";
}

TYPED_TEST(ScotZoneTest, ConcurrentZoneTraversalVsPruning) {
  // Readers repeatedly cross a marked chain while writers prune and rebuild
  // it; under robust schemes this is exactly the Figure 2 race that SCOT
  // makes safe.
  TypeParam smr(test::small_config(4));
  HarrisList<Key, Val, TypeParam> list(smr);
  fill(list, smr, 64);
  std::atomic<bool> stop{false};
  test::run_threads(4, [&](unsigned tid) {
    auto& h = smr.handle(tid);
    if (tid == 0) {
      Xoshiro256 rng(1);
      for (int i = 0; i < 20000; ++i) {
        // Mark a little run, then prune it via an update traversal.
        const Key base = rng.next_in(60);
        for (Key k = base; k < base + 3; ++k) list.debug_mark_only(h, k);
        list.insert(h, base + 3, 0);  // prunes the adjacent chain
        for (Key k = base; k < base + 4; ++k) list.insert(h, k, k);
      }
      stop.store(true);
    } else {
      Xoshiro256 rng(tid);
      while (!stop.load(std::memory_order_relaxed)) {
        list.contains(h, rng.next_in(64));
      }
    }
  });
  // Coherence drain.
  auto& h = smr.handle(0);
  for (Key k = 0; k < 64; ++k) {
    { const bool was_present = list.contains(h, k); const bool erased = list.erase(h, k); EXPECT_EQ(was_present, erased) << "key " << k; }
  }
}

TYPED_TEST(ScotZoneTest, RecoveryOptimizationEngagesUnderContention) {
  // With recovery enabled, validation failures on a live last-safe-node turn
  // into zone escapes (ds_recoveries) instead of full restarts.  We assert
  // the plumbing works: under pruning contention the recovery counter can
  // only be nonzero when the trait is on.
  TypeParam smr(test::small_config(4));
  HarrisList<Key, Val, TypeParam, HarrisListNoRecoveryTraits> list(smr);
  fill(list, smr, 32);
  test::run_threads(4, [&](unsigned tid) {
    auto& h = smr.handle(tid);
    Xoshiro256 rng(tid + 5);
    for (int i = 0; i < 20000; ++i) {
      const Key k = rng.next_in(32);
      if (rng.next_in(2)) {
        list.debug_mark_only(h, k);
      } else {
        list.insert(h, k, k);
      }
      list.contains(h, rng.next_in(32));
    }
  });
  std::uint64_t recoveries = 0;
  for (unsigned t = 0; t < 4; ++t) recoveries += smr.handle(t).ds_recoveries;
  EXPECT_EQ(recoveries, 0u) << "recovery must never fire when disabled";
}

}  // namespace
}  // namespace scot
