// bench_kv: YCSB-shaped serving workloads over the scot::KvStore subsystem
// (src/kv/, DESIGN.md §10) — string keys, inline value blobs, sharded
// resizable hash maps, every SMR scheme.
//
// Grid: workload preset (YCSB A/B/C; --preset narrows to one) × shard
// count ({1, 8}; --shards narrows to one) × scheme, rows = thread counts.
// Unlike the figure binaries this one does not go through run_case(): the
// measured loop speaks the string-keyed KvStore session surface directly,
// but reuses the harness calibration (detail::smr_config_for), the zipfian
// generator, the latency histograms, and median_of_runs, and records
// schema-compatible scot-bench cells (bench tag "kv"; cell keys carry the
// |vs/|kl/|sh suffixes so integer-keyed baselines diff clean).
//
// Serving shape defaults: zipfian key choice (YCSB's default; --dist
// uniform overrides), 16-byte keys ("user" + zero-padded id; --key-len),
// 128-byte values (--value-size).  Prefill covers the FULL key range —
// YCSB runs against a loaded store, and a 50% prefill would turn half of
// ycsb-a's updates into inserts and resize the shards mid-measurement.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/runner_impl.hpp"
#include "fig_common.hpp"
#include "kv/kv_store.hpp"

namespace scot::bench {
namespace {

struct KvPreset {
  const char* name;
  WorkloadMix mix;
};

constexpr KvPreset kKvPresets[] = {
    {"ycsb-a", {50, 50, 0}},
    {"ycsb-b", {95, 5, 0}},
    {"ycsb-c", {100, 0, 0}},
};

// Fixed-width key: "user" + zero-padded decimal id, `len` bytes total.
// Width is what makes --key-len a real knob: every key compare walks the
// shared prefix before the digits diverge.
void make_key(std::string& out, std::uint64_t id, std::size_t len) {
  char digits[24];
  const int n = std::snprintf(digits, sizeof(digits), "%llu",
                              static_cast<unsigned long long>(id));
  out.assign("user");
  const std::size_t body = len > 4 ? len - 4 : 1;
  if (static_cast<std::size_t>(n) < body)
    out.append(body - static_cast<std::size_t>(n), '0');
  out.append(digits, static_cast<std::size_t>(n));
}

// One measured run over a fresh KvStore: the string-keyed sibling of
// detail::run_one_map, same phases (prefill → timed mix → telemetry fold).
CaseResult run_one_kv(const CaseConfig& cfg, std::uint64_t run_seed) {
  KvStoreOptions options;
  options.smr = detail::smr_config_for(cfg);
  options.shards = cfg.kv_shards == 0 ? 1 : cfg.kv_shards;
  // Start shards one doubling below their loaded size so every run
  // exercises (and then retires) at least one incremental-resize round.
  const std::uint64_t per_shard =
      std::max<std::uint64_t>(1, cfg.key_range / options.shards);
  std::size_t buckets = 16;
  while (buckets < per_shard / 8) buckets *= 2;
  options.initial_buckets_per_shard = buckets;
  auto store = KvStore::make(cfg.scheme, StructureId::kKvHash, options);
  if (!store) {
    std::fprintf(stderr,
                 "bench_kv: no registered AnyKv cell for %s/KvHash — "
                 "check src/kv/any_kv.cpp registrations\n",
                 scheme_name(cfg.scheme));
    std::exit(2);
  }

  const std::string value(cfg.value_size == 0 ? 128 : cfg.value_size, 'v');
  const std::size_t key_len = cfg.key_len == 0 ? 16 : cfg.key_len;

  // --- prefill: the full key range, split across the workers ---
  {
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < cfg.threads; ++t) {
      ts.emplace_back([&, t] {
        if (cfg.pin_threads) pin_this_thread(t);
        auto session = store->session();
        std::string key;
        for (std::uint64_t k = t; k < cfg.key_range; k += cfg.threads) {
          make_key(key, k, key_len);
          session.put(key, value);
        }
      });
    }
    for (auto& th : ts) th.join();
  }

  std::optional<Zipf> zipf;
  if (cfg.key_dist == KeyDist::kZipfian)
    zipf.emplace(cfg.key_range, cfg.zipf_theta);

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> ops(cfg.threads, 0);
  std::vector<std::uint64_t> reads(cfg.threads, 0);
  std::vector<std::uint64_t> writes(cfg.threads, 0);
  std::vector<std::uint64_t> removes(cfg.threads, 0);
  std::vector<obs::LatencyHistogram> latency(cfg.threads);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      if (cfg.pin_threads) pin_this_thread(t);
      auto session = store->session();
      Xoshiro256 rng(run_seed * 0x9e3779b9 + 1000003ULL * t);
      obs::LatencyHistogram& hist = latency[t];
      const unsigned lat_every = cfg.latency_sample_every;
      std::string key, out;
      while (!go.load(std::memory_order_acquire)) cpu_relax();
      std::uint64_t local = 0, nread = 0, nwrite = 0, ndel = 0;
      const std::uint64_t budget = cfg.op_budget;
      for (;;) {
        if (budget != 0) {
          if (local >= budget) break;
        } else if (stop.load(std::memory_order_relaxed)) {
          break;
        }
        const std::uint64_t k =
            zipf ? detail::scramble(zipf->next(rng) + 1) % cfg.key_range
                 : rng.next_in(cfg.key_range);
        make_key(key, k, key_len);
        const auto roll = static_cast<int>(rng.next_in(100));
        const bool timed_op = lat_every != 0 && local % lat_every == 0;
        const std::uint64_t op_t0 = timed_op ? now_ns() : 0;
        if (roll < cfg.read_pct) {
          session.get(key, &out);
          ++nread;
        } else if (roll < cfg.read_pct + cfg.insert_pct) {
          session.put(key, value);  // YCSB write: update-or-insert
          ++nwrite;
        } else {
          session.erase(key);
          ++ndel;
        }
        if (timed_op) hist.record(now_ns() - op_t0);
        ++local;
      }
      ops[t] = local;
      reads[t] = nread;
      writes[t] = nwrite;
      removes[t] = ndel;
    });
  }

  std::atomic<bool> sampler_stop{false};
  double pending_sum = 0;
  std::uint64_t pending_samples = 0;
  std::int64_t pending_peak = 0;
  std::thread sampler;
  if (cfg.sample_memory) {
    sampler = std::thread([&] {
      while (!sampler_stop.load(std::memory_order_relaxed)) {
        const std::int64_t p = store->pending_nodes();
        pending_sum += static_cast<double>(p);
        ++pending_samples;
        pending_peak = std::max(pending_peak, p);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  const std::uint64_t t0 = now_ns();
  go.store(true, std::memory_order_release);
  if (cfg.op_budget == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg.millis));
    stop.store(true, std::memory_order_relaxed);
  }
  for (auto& w : workers) w.join();
  const std::uint64_t t1 = now_ns();
  if (cfg.sample_memory) {
    sampler_stop.store(true, std::memory_order_relaxed);
    sampler.join();
  }

  CaseResult r;
  r.seconds = ns_to_sec(t1 - t0);
  for (const auto o : ops) r.total_ops += o;
  for (const auto o : reads) r.reads += o;
  for (const auto o : writes) r.inserts += o;
  for (const auto o : removes) r.removes += o;
  r.mops = static_cast<double>(r.total_ops) / r.seconds / 1e6;
  if (r.total_ops > 0)
    r.ns_per_op = r.seconds * 1e9 / static_cast<double>(r.total_ops);
  if (pending_samples > 0)
    r.avg_pending = pending_sum / static_cast<double>(pending_samples);
  r.peak_pending = pending_peak;
  r.restarts = store->restarts();
  r.recoveries = store->recoveries();
  obs::LatencyHistogram merged;
  for (const auto& h : latency) merged.merge(h);
  if (merged.count() > 0) {
    r.p50_ns = static_cast<double>(merged.percentile(50.0));
    r.p99_ns = static_cast<double>(merged.percentile(99.0));
    r.p999_ns = static_cast<double>(merged.percentile(99.9));
  }
  return r;
}

void run_kv_grid(const KvPreset& preset, unsigned shards, int def_ms) {
  const auto threads = env_threads();
  const int ms = env_ms(def_ms);
  const unsigned runs = env_runs();

  CaseConfig proto;
  proto.structure = StructureId::kKvHash;
  proto.key_range = 4096;
  proto.millis = ms;
  proto.runs = runs;
  proto.read_pct = preset.mix.read_pct;
  proto.insert_pct = preset.mix.insert_pct;
  proto.delete_pct = preset.mix.delete_pct;
  proto.key_dist = KeyDist::kZipfian;  // YCSB default; --dist overrides
  apply_session_flags(proto);
  // apply_session_flags honours --preset, but the preset already chose
  // this grid — restore the grid's own mix so labels and cells agree.
  proto.read_pct = preset.mix.read_pct;
  proto.insert_pct = preset.mix.insert_pct;
  proto.delete_pct = preset.mix.delete_pct;
  proto.kv_shards = shards;
  if (proto.value_size == 0) proto.value_size = 128;
  if (proto.key_len == 0) proto.key_len = 16;

  const std::string title = std::string("kv: ") + preset.name + ", " +
                            std::to_string(shards) +
                            (shards == 1 ? " shard" : " shards");
  std::printf("== %s ==\n", title.c_str());
  std::printf("   mix=%d/%d/%d range=%llu key=%zuB value=%zuB ms=%d runs=%u",
              proto.read_pct, proto.insert_pct, proto.delete_pct,
              static_cast<unsigned long long>(proto.key_range),
              proto.key_len, proto.value_size, ms, runs);
  if (proto.key_dist == KeyDist::kZipfian)
    std::printf(" dist=zipfian(%.2f)", proto.zipf_theta);
  if (proto.background_reclaim) std::printf(" bg-reclaim");
  std::printf("\n");

  std::vector<std::string> header{"threads"};
  for (SchemeId s : kAllSchemes) header.push_back(scheme_name(s));
  Table t(std::move(header));
  for (unsigned th : threads) {
    std::vector<std::string> row{std::to_string(th)};
    for (SchemeId s : kAllSchemes) {
      CaseConfig cfg = proto;
      cfg.scheme = s;
      cfg.threads = th;
      const CaseResult r = detail::median_of_runs(
          cfg, [&](std::uint64_t seed) { return run_one_kv(cfg, seed); });
      fig_record(title, cfg, r);
      row.push_back(format_double(r.mops, 2));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("   (Mops/s; higher is better)\n\n");
}

}  // namespace
}  // namespace scot::bench

int main(int argc, char** argv) {
  using namespace scot::bench;
  // --dist is a YCSB-default override here, so remember whether the user
  // spelled it before fig_init consumes the flag vector.
  bool dist_given = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--dist") == 0) dist_given = true;
  fig_init(argc, argv, "kv");
  if (!dist_given) fig_session().flags.dist = KeyDist::kZipfian;

  const BenchFlags& flags = fig_session().flags;
  std::vector<KvPreset> presets;
  for (const KvPreset& p : kKvPresets) {
    if (flags.preset && (flags.preset->read_pct != p.mix.read_pct ||
                         flags.preset->insert_pct != p.mix.insert_pct ||
                         flags.preset->delete_pct != p.mix.delete_pct))
      continue;
    presets.push_back(p);
  }
  if (presets.empty()) {
    // --preset named a non-YCSB mix (e.g. "mixed"): run it as a custom
    // serving grid rather than rejecting a documented flag.
    presets.push_back(KvPreset{"custom", *flags.preset});
  }
  const std::vector<unsigned> shard_counts =
      flags.kv_shards != 0 ? std::vector<unsigned>{flags.kv_shards}
                           : std::vector<unsigned>{1, 8};

  for (const KvPreset& p : presets)
    for (unsigned shards : shard_counts) run_kv_grid(p, shards, 200);
  return fig_finish();
}
