// Protection-semantics tests: protect() returns coherent snapshots, blocks
// reclamation of the protected node, dup() transfers protection, and end_op
// releases it.  Scheme-specific behaviours are gated on kRobust.
#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace scot {
namespace {

using test::TestNode;

template <class Smr>
class SmrProtectionTest : public ::testing::Test {};

TYPED_TEST_SUITE(SmrProtectionTest, test::AllSchemes);

TYPED_TEST(SmrProtectionTest, ProtectReturnsCurrentValue) {
  TypeParam smr(test::small_config());
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  auto* n = h.template alloc<TestNode>(std::uint64_t{5});
  std::atomic<ReclaimNode*> src{n};
  h.begin_op();
  EXPECT_EQ(h.protect(src, 0), n);
  h.end_op();
  h.dealloc_unpublished(n);
}

TYPED_TEST(SmrProtectionTest, ProtectHandlesNullSource) {
  TypeParam smr(test::small_config());
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  std::atomic<ReclaimNode*> src{nullptr};
  h.begin_op();
  EXPECT_EQ(h.protect(src, 0), nullptr);
  EXPECT_TRUE(h.op_valid());
  h.end_op();
}

TYPED_TEST(SmrProtectionTest, ProtectWorksOnMarkedPointers) {
  TypeParam smr(test::small_config());
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  auto* n = h.template alloc<TestNode>(std::uint64_t{5});
  using MP = marked_ptr<TestNode>;
  std::atomic<MP> src{MP(n).with_mark()};
  h.begin_op();
  MP got = h.protect(src, 0);
  EXPECT_EQ(got.ptr(), n);
  EXPECT_TRUE(got.marked()) << "protect must return the raw marked value";
  h.end_op();
  h.dealloc_unpublished(n);
}

TYPED_TEST(SmrProtectionTest, ProtectedNodeSurvivesRetireChurn) {
  // The core SMR guarantee: while an operation holds a protection on a node
  // (robust schemes) or is inside its critical section (EBR), the node's
  // memory must survive arbitrary retire/scan churn by other threads.
  TypeParam smr(test::small_config(2));
  if constexpr (std::is_same_v<TypeParam, NoReclaimDomain>) {
    GTEST_SKIP() << "NR never reclaims; nothing to verify";
  } else {
    auto reader_h = scoped_handle(smr);
    auto writer_h = scoped_handle(smr);
    auto& reader = reader_h.get();
    auto& writer = writer_h.get();
    auto* victim = writer.template alloc<TestNode>(std::uint64_t{42});
    std::atomic<ReclaimNode*> src{victim};

    reader.begin_op();
    ReclaimNode* got = reader.protect(src, 0);
    ASSERT_EQ(got, victim);

    writer.retire(victim);
    test::churn_retire(writer, 3000);  // force many scans

    // The victim must not have been recycled: its payload and lifecycle
    // breadcrumb are intact (a freed cell would be kNodeFreed or reused).
    EXPECT_EQ(victim->debug_state, kNodeRetired);
    EXPECT_EQ(static_cast<TestNode*>(got)->payload, 42u);
    reader.end_op();
  }
}

TYPED_TEST(SmrProtectionTest, ReleasedNodeIsEventuallyReclaimed) {
  TypeParam smr(test::small_config(2));
  if constexpr (std::is_same_v<TypeParam, NoReclaimDomain>) {
    GTEST_SKIP() << "NR never reclaims";
  } else {
    auto reader_h = scoped_handle(smr);
    auto writer_h = scoped_handle(smr);
    auto& reader = reader_h.get();
    auto& writer = writer_h.get();
    auto* victim = writer.template alloc<TestNode>(std::uint64_t{42});
    std::atomic<ReclaimNode*> src{victim};

    reader.begin_op();
    (void)reader.protect(src, 0);
    writer.retire(victim);
    reader.end_op();  // release

    // Force one reclamation pass without any further allocation, so the
    // victim's cell cannot be recycled before we inspect it.
    if constexpr (requires { writer.scan(); }) {
      writer.scan();
    } else {
      // Hyaline has no scan; fill the open batch to exactly capacity so the
      // seal (and with no active slots, the free) happens on the last
      // retire, after all allocations.
      auto* f1 = writer.template alloc<TestNode>(std::uint64_t{0});
      auto* f2 = writer.template alloc<TestNode>(std::uint64_t{0});
      writer.retire(f1);
      writer.retire(f2);
    }
    EXPECT_EQ(victim->debug_state, kNodeFreed)
        << "after protection release the node must be reclaimable";
  }
}

TYPED_TEST(SmrProtectionTest, DupTransfersProtectionUpward) {
  // Protect in slot 0, dup to slot 3, then overwrite slot 0: the node must
  // stay protected through slot 3 (ascending-dup discipline, paper §3.2).
  TypeParam smr(test::small_config(2));
  if constexpr (!TypeParam::kRobust) {
    GTEST_SKIP() << "dup is only meaningful for slot/era-based schemes";
  } else {
    auto reader_h = scoped_handle(smr);
    auto writer_h = scoped_handle(smr);
    auto& reader = reader_h.get();
    auto& writer = writer_h.get();
    auto* victim = writer.template alloc<TestNode>(std::uint64_t{7});
    auto* other = writer.template alloc<TestNode>(std::uint64_t{8});
    std::atomic<ReclaimNode*> src{victim};
    std::atomic<ReclaimNode*> src2{other};

    reader.begin_op();
    (void)reader.protect(src, 0);
    reader.dup(0, 3);
    (void)reader.protect(src2, 0);  // overwrite slot 0

    writer.retire(victim);
    test::churn_retire(writer, 3000);
    EXPECT_EQ(victim->debug_state, kNodeRetired)
        << "dup'd protection in slot 3 must keep the victim alive";
    reader.end_op();

    writer.retire(other);
  }
}

TYPED_TEST(SmrProtectionTest, MultipleIndependentSlots) {
  TypeParam smr(test::small_config(2));
  if constexpr (std::is_same_v<TypeParam, NoReclaimDomain>) {
    GTEST_SKIP();
  } else {
    auto reader_h = scoped_handle(smr);
    auto writer_h = scoped_handle(smr);
    auto& reader = reader_h.get();
    auto& writer = writer_h.get();
    TestNode* nodes[4];
    std::vector<std::atomic<ReclaimNode*>> srcs(4);
    reader.begin_op();
    for (int i = 0; i < 4; ++i) {
      nodes[i] = writer.template alloc<TestNode>(std::uint64_t(i));
      srcs[i].store(nodes[i]);
      (void)reader.protect(srcs[i], static_cast<unsigned>(i));
    }
    for (auto* n : nodes) writer.retire(n);
    test::churn_retire(writer, 3000);
    for (auto* n : nodes) {
      EXPECT_EQ(n->debug_state, kNodeRetired);
    }
    reader.end_op();
  }
}

TYPED_TEST(SmrProtectionTest, OpValidDefaultsTrue) {
  TypeParam smr(test::small_config());
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  h.begin_op();
  EXPECT_TRUE(h.op_valid());
  h.revalidate_op();
  EXPECT_TRUE(h.op_valid());
  h.end_op();
}

}  // namespace
}  // namespace scot
