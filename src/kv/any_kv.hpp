// scot::AnyKv — the string-keyed sibling of scot::AnyMap: a type-erased
// facade over the scheme × kv-structure cross product, driven by
// AnyKvRegistry (core/registry.hpp).  One AnyKv is one KvStore shard; the
// sharded facade lives in kv/kv_store.hpp.
//
// Unlike AnyMap there is no deprecated tid surface here: the kv layer
// post-dates the dynamic handle registry, so sessions are the only way in.
// Each worker thread opens `kv.session()` (joins the shard domain's handle
// registry) and operates through it with string_view keys and values; the
// value bytes are copied into pooled blob cells on put and copied out on
// get.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "core/registry.hpp"
#include "obs/stats.hpp"
#include "smr/registry.hpp"
#include "smr/smr_config.hpp"

namespace scot {

struct AnyKvOptions {
  SmrConfig smr;  // the shard domain's configuration (inherited per shard)
  std::size_t initial_buckets = 16;
  std::size_t max_buckets = std::size_t{1} << 20;
  unsigned max_load_factor = 4;
};

namespace detail {

// The abstract shard implementation the registry factories produce.  One
// concrete TypedAnyKv<Smr> per registered cell lives in src/kv/any_kv.cpp.
class AnyKvImpl {
 public:
  virtual ~AnyKvImpl() = default;
  virtual void* join_handle() = 0;
  virtual void leave_handle(void* h) = 0;
  // true = inserted a new key, false = updated an existing one.  Keys or
  // values beyond the pooled-cell ceiling (put_ok() == false) are rejected
  // as a no-op returning false; callers that care probe put_ok() first.
  virtual bool put_with(void* h, std::string_view key,
                        std::string_view value) = 0;
  virtual bool erase_with(void* h, std::string_view key) = 0;
  virtual bool contains_with(void* h, std::string_view key) = 0;
  virtual bool get_with(void* h, std::string_view key, std::string* out) = 0;
  virtual bool put_ok(std::string_view key, std::string_view value) const = 0;
  virtual std::size_t size_unsafe() = 0;
  virtual std::int64_t pending_nodes() const = 0;
  virtual std::uint64_t restarts() const = 0;
  virtual std::uint64_t recoveries() const = 0;
  virtual unsigned active_handles() const = 0;
  virtual obs::StatsSnapshot stats() const = 0;
  // Resize observability (kv_store_test and bench_kv assert on these).
  virtual std::size_t bucket_count() const = 0;
  virtual std::uint64_t migrated_buckets() const = 0;
  virtual std::uint64_t pending_migration() const = 0;
};

}  // namespace detail

class AnyKv {
 public:
  // Builds the (scheme, structure) shard cell through the runtime registry.
  // Returns nullopt for unregistered cells.  Defined in src/kv/any_kv.cpp,
  // the only TU that pays for the scheme cross product.
  static std::optional<AnyKv> make(SchemeId scheme, StructureId structure,
                                   const AnyKvOptions& options = {});

  AnyKv(AnyKv&&) = default;
  AnyKv& operator=(AnyKv&&) = default;

  // One thread's membership in the shard's reclamation domain.  Move-only;
  // one per thread, do not share.
  class Session {
   public:
    Session() = default;
    Session(Session&& o) noexcept
        : impl_(std::exchange(o.impl_, nullptr)), h_(o.h_) {}
    Session& operator=(Session&& o) noexcept {
      if (this != &o) {
        reset();
        impl_ = std::exchange(o.impl_, nullptr);
        h_ = o.h_;
      }
      return *this;
    }
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;
    ~Session() { reset(); }

    // Upsert; returns true when the key was newly inserted (false for an
    // update — or for an oversize pair, see AnyKv::put_ok).
    bool put(std::string_view key, std::string_view value) {
      return impl_->put_with(h_, key, value);
    }
    bool erase(std::string_view key) { return impl_->erase_with(h_, key); }
    bool contains(std::string_view key) {
      return impl_->contains_with(h_, key);
    }
    bool get(std::string_view key, std::string* out) {
      return impl_->get_with(h_, key, out);
    }
    std::optional<std::string> get(std::string_view key) {
      std::string out;
      if (!impl_->get_with(h_, key, &out)) return std::nullopt;
      return out;
    }

    explicit operator bool() const noexcept { return impl_ != nullptr; }

    // Leaves the domain early (idempotent).
    void reset() noexcept {
      if (impl_ != nullptr) {
        impl_->leave_handle(h_);
        impl_ = nullptr;
      }
    }

   private:
    friend class AnyKv;
    friend class KvStore;
    explicit Session(detail::AnyKvImpl* impl)
        : impl_(impl), h_(impl->join_handle()) {}

    detail::AnyKvImpl* impl_ = nullptr;
    void* h_ = nullptr;  // the domain's Handle, type-erased
  };

  // Opens a session for the calling thread.  The AnyKv must outlive it.
  Session session() { return Session(impl_.get()); }

  // True when key and value fit the pooled-cell ceiling (~4KB each).
  bool put_ok(std::string_view key, std::string_view value) const {
    return impl_->put_ok(key, value);
  }

  // --- observers -----------------------------------------------------------
  // Quiesces in-flight bucket migrations, then iterates (tests only).
  std::size_t size_unsafe() { return impl_->size_unsafe(); }
  std::int64_t pending_nodes() const { return impl_->pending_nodes(); }
  std::uint64_t restarts() const { return impl_->restarts(); }
  std::uint64_t recoveries() const { return impl_->recoveries(); }
  unsigned active_handles() const { return impl_->active_handles(); }
  obs::StatsSnapshot stats() const { return impl_->stats(); }
  std::size_t bucket_count() const { return impl_->bucket_count(); }
  std::uint64_t migrated_buckets() const { return impl_->migrated_buckets(); }
  std::uint64_t pending_migration() const {
    return impl_->pending_migration();
  }

  SchemeId scheme() const { return scheme_; }
  StructureId structure() const { return structure_; }
  const char* scheme_name() const { return scot::scheme_name(scheme_); }
  const char* structure_name() const {
    return scot::structure_name(structure_);
  }

 private:
  friend class KvStore;
  AnyKv(SchemeId scheme, StructureId structure,
        std::unique_ptr<detail::AnyKvImpl> impl)
      : scheme_(scheme), structure_(structure), impl_(std::move(impl)) {}

  SchemeId scheme_;
  StructureId structure_;
  std::unique_ptr<detail::AnyKvImpl> impl_;
};

}  // namespace scot
