// Minimal aligned-table printer for the figure/table benchmark binaries.
// Output mirrors the series the paper plots: one row per thread count, one
// column per SMR scheme.
#pragma once

#include <string>
#include <vector>

namespace scot::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  // Renders as a GitHub-style markdown table.
  std::string str() const;
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::string format_double(double v, int precision = 2);
std::string format_si(double v);  // 1234567 -> "1.23M"

}  // namespace scot::bench
