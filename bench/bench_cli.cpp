// Paper-artifact-compatible CLI (Appendix A.5 of the paper):
//
//     ./bench_cli <mode> <seconds> <keyrange> <runs> <read%> <ins%> <del%>
//                 <SCHEME> <threads> [--flags]
//
// e.g.   ./bench_cli listlf 2 512 1 50 25 25 EBR 4 --seed 7 --json out.json
//
// Modes: listlf  — Harris list with SCOT, lock-free traversals
//        listwf  — Harris list with SCOT, wait-free traversals
//        listhm  — Harris-Michael list (baseline)
//        tree    — Natarajan-Mittal tree with SCOT
//        hash    — hash map over SCOT lists
//        skip    — skip list, Fraser-style traversal with SCOT
//        skiphs  — skip list, Herlihy-Shavit eager unlink (baseline)
// Schemes: NR EBR HP HPopt HE IBR HLN
//
// Optional flags (see kFlagUsage): --seed for reproducible key streams,
// --json for the scot-bench telemetry sink, --dist/--theta for Zipfian
// keys, --preset to override the positional mix, --pin for thread
// affinity, --ops for a fixed per-thread operation budget instead of a
// timed run.  Unknown or malformed flags are an error (exit 2), never
// silently ignored.
//
// Parsing lives in src/bench/options.hpp (parse_cli) so it is
// unit-testable; this file only reports the result.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/options.hpp"
#include "bench/report/report.hpp"
#include "bench/runner.hpp"

using namespace scot::bench;

static void usage(const char* argv0, int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: %s %s\n"
               "       %s\n"
               "e.g.:  %s listlf 2 512 1 50 25 25 EBR 4 --json out.json\n",
               argv0, kCliUsage, kFlagUsage, argv0);
  std::exit(code);
}

int main(int argc, char** argv) {
  if (argc == 1) usage(argv[0], 0);  // bare run: self-document, succeed

  std::string error;
  BenchFlags flags;
  const auto cfg = parse_cli(argc, argv, &error, &flags);
  if (!cfg) {
    if (flags.help) usage(argv[0], 0);
    std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    usage(argv[0], 2);
  }

  const CaseResult r = run_case(*cfg);
  std::printf("structure=%s scheme=%s threads=%u range=%llu mix=%d/%d/%d "
              "dist=%s seed=%llu\n",
              structure_name(cfg->structure), scheme_name(cfg->scheme),
              cfg->threads, static_cast<unsigned long long>(cfg->key_range),
              cfg->read_pct, cfg->insert_pct, cfg->delete_pct,
              key_dist_name(cfg->key_dist),
              static_cast<unsigned long long>(cfg->seed));
  std::printf("ops=%llu seconds=%.3f throughput=%.3f Mops/s\n",
              static_cast<unsigned long long>(r.total_ops), r.seconds,
              r.mops);
  std::printf("avg_unreclaimed=%.0f peak_unreclaimed=%lld restarts=%llu "
              "recoveries=%llu\n",
              r.avg_pending, static_cast<long long>(r.peak_pending),
              static_cast<unsigned long long>(r.restarts),
              static_cast<unsigned long long>(r.recoveries));

  if (!flags.json_path.empty()) {
    BenchReport report;
    report.add("cli",
               std::string(structure_name(cfg->structure)) + " under " +
                   scheme_name(cfg->scheme),
               *cfg, r);
    if (!report.write_file(flags.json_path, &error)) {
      std::fprintf(stderr, "%s: failed to write %s: %s\n", argv[0],
                   flags.json_path.c_str(), error.c_str());
      return 1;
    }
    std::printf("wrote 1 cell to %s\n", flags.json_path.c_str());
  }
  return 0;
}
