// Figure 8: linked-list throughput, 50% read / 50% write, key ranges 512
// and 10,000; Harris-Michael baseline vs. Harris+SCOT (wait-free traversal
// variant, as evaluated in the paper).  Expected shape: HList >= HMList at
// every scheme, with the gap largest at the small key range; EBR ~ upper
// bound; HPopt above HP.
#include "bench/fig_common.hpp"

int main(int argc, char** argv) {
  using namespace scot::bench;
  fig_init(argc, argv, "fig8");
  std::printf("SCOT reproduction — Figure 8 (list throughput, 50r/25i/25d)\n\n");
  run_grid({"Fig 8a: Harris-Michael list, range 512", StructureId::kHMList,
            512},
           300);
  run_grid({"Fig 8a: Harris list (SCOT, wait-free search), range 512",
            StructureId::kHListWF, 512},
           300);
  run_grid({"Fig 8b: Harris-Michael list, range 10,000", StructureId::kHMList,
            10000},
           300);
  run_grid({"Fig 8b: Harris list (SCOT, wait-free search), range 10,000",
            StructureId::kHListWF, 10000},
           300);
  return fig_finish();
}
