// HE: hazard eras (Ramalhete & Correia, SPAA 2017), with the reservation-
// snapshot scan optimization the paper applies to it (Section 5: "we
// implemented a similar optimization for HE and IBR").
//
// HE keeps the hazard-pointer programming model (indexed protection slots,
// dup) but publishes *eras* instead of pointers: protect(idx) records the
// global era at which the load was performed.  A retired node is reclaimable
// once no published era intersects its [birth, retire] lifetime.  Compared to
// HP this replaces the per-node publication fence with (amortized) one fence
// per era change.
//
// Membership is dynamic (see nr.hpp): the era slots live inside the Handle,
// scans walk the live registry, and leave() clears the slots, scans, and
// donates the leftover limbo to the domain's orphan list.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

#include "common/align.hpp"
#include "common/asymfence.hpp"
#include "common/chunked_list.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "smr/handle_core.hpp"
#include "smr/handle_registry.hpp"
#include "smr/node_pool.hpp"
#include "smr/reclaimer.hpp"
#include "smr/smr_config.hpp"

namespace scot {

class HeDomain {
 public:
  static constexpr const char* kName = "HE";
  static constexpr bool kRobust = true;
  static constexpr std::uint64_t kIdleEra = 0;  // eras start at 1

  class Handle : public HandleCore<HeDomain, Handle> {
   public:
    using Base = HandleCore<HeDomain, Handle>;
    using Base::retire;  // typed retire(Protected<T>) — API v2
    Handle(HeDomain* dom, unsigned tid)
        : Base(dom, tid),
          slots_(new std::atomic<std::uint64_t>[dom->cfg_.slots_per_thread]) {
      for (unsigned i = 0; i < dom->cfg_.slots_per_thread; ++i)
        slots_[i].store(kIdleEra, std::memory_order_relaxed);
    }

    // HE has no eager activation store: an operation becomes visible to
    // reclaimers at its *first slot publish* (end_op cleared every slot, so
    // the first protect() of the next operation always publishes).  That
    // store already runs the asymmetric discipline below — release +
    // compiler barrier, with the scan-side heavy barrier restoring the
    // StoreLoad edge (DESIGN.md §5, activation case) — so begin_op stays
    // free under both disciplines.
    void begin_op() noexcept {}

    void end_op() noexcept {
      while (used_mask_ != 0) {
        const unsigned idx =
            static_cast<unsigned>(__builtin_ctz(used_mask_));
        used_mask_ &= used_mask_ - 1;
        slots_[idx].store(kIdleEra, std::memory_order_release);
      }
    }

    // HE get_protected: loop until the global era observed after the load
    // equals the era published in the slot.  When the era is already
    // published (the common case within one era period) this is a plain
    // load — the fence amortization that makes HE faster than HP.  Only the
    // era-change publication carries a fence, and that is the store the
    // asymmetric discipline relaxes: the loop's re-read of src/clock must
    // be ordered after the slot store, and scans restore that edge with a
    // heavy barrier before collect_eras() (DESIGN.md §5).
    // `Src` is std::atomic<P> or StableAtomic<P>.
    template <class Src, class P = typename Src::value_type>
    P protect(const Src& src, unsigned idx) noexcept {
      std::uint64_t prev = slots_[idx].load(std::memory_order_relaxed);
      const asymfence::Path fences = dom_->fence_path_;
      for (;;) {
        P v = src.load(std::memory_order_acquire);
        const std::uint64_t e = dom_->clock_.load(std::memory_order_seq_cst);
        if (e == prev) {
          used_mask_ |= 1u << idx;
          return v;
        }
        if (fences == asymfence::Path::kClassic) {
          slots_[idx].store(e, std::memory_order_seq_cst);
        } else {
          slots_[idx].store(e, std::memory_order_release);
          asymfence::light_barrier(fences);
        }
        prev = e;
      }
    }

    template <class T>
    void publish(T* /*p*/, unsigned idx) noexcept {
      // Publishing the current era protects everything alive at it,
      // including the immortal anchor this is used for.
      const std::uint64_t e = dom_->clock_.load(std::memory_order_acquire);
      if (dom_->fence_path_ == asymfence::Path::kClassic) {
        slots_[idx].store(e, std::memory_order_seq_cst);
      } else {
        slots_[idx].store(e, std::memory_order_release);
        asymfence::light_barrier(dom_->fence_path_);
      }
      used_mask_ |= 1u << idx;
    }

    void dup(unsigned i, unsigned j) noexcept {
      assert(i < j && "SCOT requires ascending-index dup (paper §3.2)");
      slots_[j].store(slots_[i].load(std::memory_order_relaxed),
                      std::memory_order_release);
      used_mask_ |= 1u << j;
    }

    static constexpr bool op_valid() noexcept { return true; }
    void revalidate_op() noexcept {}

    void retire(ReclaimNode* n) {
      n->debug_state = kNodeRetired;
      n->retire_era = dom_->clock_.load(std::memory_order_acquire);
      limbo_.push(n);
      if (!dom_->bg_.is_active() && adopt_all_mailboxes() > 0) {
        obs::count(stats_, obs::Counter::kOrphanAdoptions);
        obs::trace_instant(obs::TraceKind::kAdopt);
      }
      dom_->counters_.on_retire(dom_->cfg_.track_stats);
      obs::count(stats_, obs::Counter::kRetires);
      obs::peak(stats_, limbo_.count);
      era_tick();
      if (limbo_.count >= dom_->bg_.effective_scan_threshold()) {
        if (dom_->bg_.is_active()) {
          donate_limbo(limbo_, dom_->bg_.mailbox);
          dom_->bg_.thread.ring();
        } else {
          scan();
        }
      }
    }

    std::uint64_t on_alloc_era() noexcept {
      era_tick();
      return dom_->clock_.load(std::memory_order_acquire);
    }

    void scan() {
      obs::TraceSpan span(obs::TraceKind::kScan);
      const std::uint64_t stats_t0 = obs::scan_begin(stats_);
      // Surface in-flight era publications before reading the slots; a
      // publication the barrier does not surface belongs to a reader whose
      // validating re-read is ordered after every unlink in this batch.
      // The registry head is read after the barrier, so the same argument
      // covers records of late-joining threads (DESIGN.md §7).
      if (dom_->fence_path_ != asymfence::Path::kClassic) {
        asymfence::heavy_barrier(dom_->fence_path_);
        obs::count(stats_, obs::Counter::kHeavyBarriers);
      }
      // Reservation snapshot (sorted) — one pass over the live registry
      // per scan instead of one per retired node.
      snapshot_.clear();
      dom_->collect_eras(snapshot_);
      std::sort(snapshot_.begin(), snapshot_.end());
      std::uint64_t freed = 0;
      ReclaimNode* n = limbo_.take();
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        if (lifetime_reserved(birth_era_of(n), n->retire_era)) {
          limbo_.push(n);
        } else {
          dom_->pool().free(tid_, n, n->alloc_size);
          ++freed;
        }
        n = next;
      }
      dom_->counters_.on_free(freed, dom_->cfg_.track_stats);
      obs::scan_end(stats_, stats_t0, freed);
    }

    unsigned limbo_size() const noexcept { return limbo_.count; }

    // --- background-reclaimer hooks (service thread only; DESIGN.md §9) ---
    unsigned bg_collect() { return adopt_all_mailboxes(); }
    bool bg_reclaim() {
      if (limbo_.count == 0) return false;
      scan();
      return true;
    }

   private:
    friend class HeDomain;

    unsigned adopt_all_mailboxes() {
      unsigned adopted = 0;
      if (!dom_->orphans_.empty())
        adopted += adopt_orphans(dom_->orphans_, limbo_);
      if (!dom_->bg_.mailbox.empty())
        adopted += adopt_orphans(dom_->bg_.mailbox, limbo_);
      return adopted;
    }

    // True if some published era lies within [birth, retire].
    bool lifetime_reserved(std::uint64_t birth,
                           std::uint64_t retire) noexcept {
      auto it = std::lower_bound(snapshot_.begin(), snapshot_.end(), birth);
      return it != snapshot_.end() && *it <= retire;
    }

    void era_tick() noexcept {
      if (++tick_ >= dom_->bg_.effective_era_freq()) {
        tick_ = 0;
        dom_->clock_.fetch_add(1, std::memory_order_acq_rel);
        obs::count(stats_, obs::Counter::kEraAdvances);
      }
    }

    std::atomic<std::uint64_t>& slot_ref(unsigned idx) noexcept {
      assert(idx < dom_->cfg_.slots_per_thread);
      return slots_[idx];
    }

    // Per-thread era slots; sized by cfg.slots_per_thread at handle
    // construction, reused across join/leave cycles.
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
    LimboList limbo_;
    std::uint32_t used_mask_ = 0;
    unsigned tick_ = 0;
    // Scan scratch, reused across scans; grows without bound instead of
    // being pre-reserved for max_threads * slots_per_thread.
    ChunkedList<std::uint64_t> snapshot_;
  };

  explicit HeDomain(SmrConfig cfg = {})
      : cfg_(cfg),
        pool_(cfg.max_threads),
        fence_path_(asymfence::resolve(cfg.asymmetric_fences))
#ifndef SCOT_DISALLOW_TID_SHIM
        ,
        shim_(cfg.max_threads)
#endif
  {
    assert(cfg_.slots_per_thread <= 32);
    bg_.scan_threshold.store(cfg_.scan_threshold, std::memory_order_relaxed);
    bg_.era_freq.store(cfg_.era_freq, std::memory_order_relaxed);
    if (cfg_.background_reclaim) start_background_reclaimer();
  }

  ~HeDomain() {
    stop_background_reclaimer();
    drain_all();
  }

  // --- dynamic membership (see nr.hpp for the reference walkthrough) ------
  Handle& join() {
    auto* rec =
        registry_.acquire([this](unsigned idx) { return Handle(this, idx); });
    rec->handle.registry_record_ = rec;
    pool_.ensure_shards(rec->index + 1);
    obs::count(rec->handle.stats_, obs::Counter::kJoins);
    obs::trace_instant(obs::TraceKind::kJoin);
    return rec->handle;
  }

  // Contract: no operation in flight.  Clears the era slots, runs a final
  // scan, and donates what remains to the orphan list.
  void leave(Handle& h) {
    h.end_op();
    if (h.limbo_.count > 0) {
      if (bg_.is_active()) {
        donate_limbo(h.limbo_, bg_.mailbox);
        bg_.thread.ring();
        obs::count(h.stats_, obs::Counter::kOrphanDonations);
      } else {
        h.scan();
        if (donate_limbo(h.limbo_, orphans_) > 0)
          obs::count(h.stats_, obs::Counter::kOrphanDonations);
      }
    }
    obs::count(h.stats_, obs::Counter::kLeaves);
    obs::trace_instant(obs::TraceKind::kLeave);
    registry_.release(record_of(h));
  }

  unsigned active_handles() const noexcept { return registry_.active(); }
  std::size_t total_handle_records() const noexcept {
    return registry_.total_records();
  }
  const HandleRegistry<Handle>& registry() const noexcept { return registry_; }

#ifndef SCOT_DISALLOW_TID_SHIM
  // DEPRECATED: fixed-capacity tid-indexed access (joins once per tid and
  // pins the record forever).  New code should use scoped_handle(domain).
  Handle& handle(unsigned tid) { return shim_.get(*this, tid); }
#endif

  // --- background reclamation (smr/reclaimer.hpp, DESIGN.md §9) -----------
  ReclaimControl& reclaim_control() noexcept { return bg_; }
  bool background_active() const noexcept { return bg_.is_active(); }
  BgReclaimStats background_stats() const noexcept { return bg_stats_of(bg_); }
  bool counts_heavy_barrier_per_reclaim() const noexcept {
    return fence_path_ != asymfence::Path::kClassic;
  }

  void start_background_reclaimer() {
    if (bg_.thread.running()) return;
    if (!reclaimer_)
      reclaimer_ = std::make_unique<DomainReclaimer<HeDomain>>(*this);
    bg_.active.store(true, std::memory_order_release);
    bg_.thread.start(cfg_.reclaim_interval_us,
                     [this] { reclaimer_->round(); });
  }

  void stop_background_reclaimer() {
    bg_.active.store(false, std::memory_order_release);
    bg_.thread.stop();
    if (reclaimer_) {
      reclaimer_->detach();
      reclaimer_.reset();
    }
  }

  const SmrConfig& config() const noexcept { return cfg_; }
  NodePool& pool() noexcept { return pool_; }
  std::int64_t pending_nodes() const noexcept {
    return counters_.pending.load(std::memory_order_relaxed);
  }
  const SmrCounters& counters() const noexcept { return counters_; }
  std::uint64_t era() const noexcept {
    return clock_.load(std::memory_order_acquire);
  }
  asymfence::Path fence_path() const noexcept { return fence_path_; }

  // Observability (DESIGN.md §8): the per-handle cell list and the
  // aggregated snapshot.
  obs::DomainStats& obs_stats() noexcept { return stats_obs_; }
  obs::StatsSnapshot stats() const {
    obs::StatsSnapshot s = stats_obs_.snapshot();
    s.enabled = SCOT_STATS != 0 && cfg_.track_stats;
    s.pending = pending_nodes();
    s.retired_total = counters_.retired.load(std::memory_order_relaxed);
    s.reclaimed_total = counters_.reclaimed.load(std::memory_order_relaxed);
    return s;
  }

#ifndef SCOT_DISALLOW_TID_SHIM
  // Test/introspection accessor for a tid-indexed slot (routes through the
  // deprecated shim, joining the tid if needed).
  std::atomic<std::uint64_t>& slot(unsigned tid, unsigned idx) {
    return handle(tid).slot_ref(idx);
  }
#endif

  // Walks the live registry; records of departed threads hold idle slots.
  // `Out` is any push_back-able container (ChunkedList in scans,
  // std::vector in tests).
  template <class Out>
  void collect_eras(Out& out) const {
    for (const auto* r = registry_.head(); r != nullptr;
         r = r->next_record()) {
      for (unsigned i = 0; i < cfg_.slots_per_thread; ++i) {
        const std::uint64_t e =
            r->handle.slots_[i].load(std::memory_order_acquire);
        if (e != kIdleEra) out.push_back(e);
      }
    }
  }

 private:
  friend class Handle;

  using Record = HandleRegistry<Handle>::Record;
  static Record* record_of(Handle& h) noexcept {
    return static_cast<Record*>(h.registry_record_);
  }

  void drain_all() {
    std::uint64_t freed = 0;
    for (auto* r = registry_.head(); r != nullptr; r = r->next_record()) {
      ReclaimNode* n = r->handle.limbo_.take();
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        pool_.free(r->index, n, n->alloc_size);
        ++freed;
        n = next;
      }
    }
    ReclaimNode* chains[] = {orphans_.take_all(), bg_.mailbox.take_all()};
    for (ReclaimNode* n : chains) {
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        pool_.free(0, n, n->alloc_size);
        ++freed;
        n = next;
      }
    }
    counters_.on_free(freed, cfg_.track_stats);
  }

  SmrConfig cfg_;
  NodePool pool_;
  SmrCounters counters_;
  std::atomic<std::uint64_t> clock_{1};
  asymfence::Path fence_path_;
  // Declared before the registry: handles hold raw cell pointers, so the
  // cell list must be destroyed after the records are.
  obs::DomainStats stats_obs_;
  HandleRegistry<Handle> registry_;
  OrphanList orphans_;
  ReclaimControl bg_;
  std::unique_ptr<DomainReclaimer<HeDomain>> reclaimer_;
#ifndef SCOT_DISALLOW_TID_SHIM
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  TidHandleShim<Handle> shim_;
#pragma GCC diagnostic pop
#endif
};

}  // namespace scot
