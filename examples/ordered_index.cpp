// ordered_index: the Natarajan-Mittal tree as the live-order index of a toy
// matching engine.
//
// Writers admit new orders (random 64-bit ids) and cancel old ones, keeping
// a sliding window of live orders per writer; readers do point lookups of
// recently admitted ids.  Random ids keep the external BST balanced in
// expectation (the tree does not rebalance — monotone keys would degenerate
// it), and the admit/cancel churn exercises exactly the tagged-edge pruning
// that SCOT makes safe under robust reclamation.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/xorshift.hpp"
#include "scot.hpp"

using namespace scot;

int main() {
  SmrConfig cfg;
  cfg.max_threads = 4;
  IbrDomain smr(cfg);  // IBR: robust and dup-free, a good tree default
  NatarajanMittalTree<std::uint64_t, std::uint64_t, IbrDomain> index(smr);

  constexpr std::size_t kWindow = 20000;  // live orders per writer
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> admitted{0}, cancelled{0}, reads{0}, hits{0};

  // Recent ids are shared with readers through a small ring per writer.
  struct alignas(64) Ring {
    std::atomic<std::uint64_t> slot[256];
  };
  std::vector<Ring> rings(2);

  std::vector<std::thread> threads;
  // Two writers: admit a fresh order, cancel the one that falls out of the
  // window.
  for (unsigned t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      auto sh = scoped_handle(smr);
      auto& h = sh.get();
      Xoshiro256 rng(0xF00D + t);
      std::vector<std::uint64_t> window;
      window.reserve(kWindow);
      std::size_t cursor = 0;
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t id = rng.next();
        if (index.insert(h, id, /*qty=*/id % 1000)) {
          admitted.fetch_add(1, std::memory_order_relaxed);
          rings[t].slot[n % 256].store(id, std::memory_order_release);
          ++n;
          if (window.size() < kWindow) {
            window.push_back(id);
          } else {
            const std::uint64_t old = window[cursor];
            window[cursor] = id;
            cursor = (cursor + 1) % kWindow;
            if (index.erase(h, old))
              cancelled.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  // Two readers: point lookups of recently admitted ids (should mostly hit)
  // and of random ids (should miss).
  for (unsigned t = 2; t < 4; ++t) {
    threads.emplace_back([&, t] {
      auto sh = scoped_handle(smr);
      auto& h = sh.get();
      Xoshiro256 rng(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t recent =
            rings[t - 2].slot[rng.next_in(256)].load(std::memory_order_acquire);
        reads.fetch_add(1, std::memory_order_relaxed);
        if (recent != 0 && index.contains(h, recent))
          hits.fetch_add(1, std::memory_order_relaxed);
        if (index.contains(h, rng.next() | 1)) {
          // A random 64-bit id colliding with a live order is astronomically
          // unlikely; count it as a hit anyway for honest accounting.
          hits.fetch_add(1, std::memory_order_relaxed);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::seconds(2));
  stop.store(true);
  for (auto& th : threads) th.join();

  std::printf("live-order index over NMTree + IBR (2s run)\n");
  std::printf("  admitted         : %llu\n",
              static_cast<unsigned long long>(admitted.load()));
  std::printf("  cancelled        : %llu\n",
              static_cast<unsigned long long>(cancelled.load()));
  std::printf("  reads            : %llu (%.1f%% hits)\n",
              static_cast<unsigned long long>(reads.load()),
              reads.load() ? 100.0 * static_cast<double>(hits.load()) /
                                 static_cast<double>(reads.load())
                           : 0.0);
  std::printf("  live orders      : %zu\n", index.size_unsafe());
  std::printf("  unreclaimed      : %lld (bounded by IBR)\n",
              static_cast<long long>(smr.pending_nodes()));
  const bool ok = index.check_structure_unsafe();
  std::printf("  structure check  : %s\n", ok ? "ok" : "CORRUPT");
  return ok ? 0 : 1;
}
