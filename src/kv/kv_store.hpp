// scot::KvStore — the serving-layer facade: N independent AnyKv shards,
// each a (scheme × structure) registry cell with its own SMR domain, its
// own NodePool, and its own incremental-resize state (DESIGN.md §10).
//
// Routing.  Keys hash once (kv_hash); the TOP 16 bits pick the shard and
// the LOW bits pick the bucket inside the shard, so shard choice and
// bucket choice never correlate even for adversarial key sets.  Shards are
// fully independent: there is no cross-shard synchronisation on any
// operation path, and a resize round in one shard never touches another.
//
// SmrConfig inheritance.  KvStoreOptions.smr is handed verbatim to every
// shard's domain, so one knob configures the whole store: with
// background_reclaim on, each shard runs its own reclaimer thread (scan
// cost amortizes per shard); batch_capacity and scan_threshold apply
// per shard likewise.
//
// Threading.  Mirrors AnyMap/AnyKv: each worker opens store.session(),
// which joins *every* shard's handle registry once (N cheap lock-free
// joins), then routes each operation to the owning shard's session with
// zero further membership work.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/registry.hpp"
#include "kv/any_kv.hpp"
#include "kv/kv_hash_map.hpp"  // kv_hash
#include "obs/stats.hpp"
#include "smr/smr_config.hpp"

namespace scot {

struct KvStoreOptions {
  SmrConfig smr;  // inherited verbatim by every shard's domain
  unsigned shards = 8;
  std::size_t initial_buckets_per_shard = 16;
  std::size_t max_buckets_per_shard = std::size_t{1} << 20;
  unsigned max_load_factor = 4;
};

class KvStore {
 public:
  // Builds `shards` registry cells of (scheme, structure).  Returns nullopt
  // for unregistered cells.  Defined in src/kv/any_kv.cpp next to the
  // factory table.
  static std::optional<KvStore> make(SchemeId scheme, StructureId structure,
                                     const KvStoreOptions& options = {});

  KvStore(KvStore&&) = default;
  KvStore& operator=(KvStore&&) = default;

  class Session {
   public:
    Session() = default;
    Session(Session&&) = default;
    Session& operator=(Session&&) = default;

    bool put(std::string_view key, std::string_view value) {
      return shard(kv_hash(key)).put(key, value);
    }
    bool erase(std::string_view key) {
      return shard(kv_hash(key)).erase(key);
    }
    bool contains(std::string_view key) {
      return shard(kv_hash(key)).contains(key);
    }
    bool get(std::string_view key, std::string* out) {
      return shard(kv_hash(key)).get(key, out);
    }
    std::optional<std::string> get(std::string_view key) {
      std::string out;
      if (!get(key, &out)) return std::nullopt;
      return out;
    }

    explicit operator bool() const noexcept { return !sessions_.empty(); }
    void reset() noexcept { sessions_.clear(); }

   private:
    friend class KvStore;
    explicit Session(std::vector<AnyKv>& shards) {
      sessions_.reserve(shards.size());
      for (AnyKv& s : shards) sessions_.push_back(s.session());
    }
    AnyKv::Session& shard(std::uint64_t hash) {
      return sessions_[static_cast<std::size_t>(hash >> 48) %
                       sessions_.size()];
    }

    std::vector<AnyKv::Session> sessions_;
  };

  // Opens one session per shard for the calling thread.  The store must
  // outlive it.
  Session session() { return Session(shards_); }

  bool put_ok(std::string_view key, std::string_view value) const {
    return shards_.front().put_ok(key, value);
  }

  // --- observers (aggregated over shards) ---------------------------------
  std::size_t size_unsafe() {
    std::size_t n = 0;
    for (AnyKv& s : shards_) n += s.size_unsafe();
    return n;
  }
  std::int64_t pending_nodes() const {
    std::int64_t n = 0;
    for (const AnyKv& s : shards_) n += s.pending_nodes();
    return n;
  }
  std::uint64_t restarts() const {
    std::uint64_t n = 0;
    for (const AnyKv& s : shards_) n += s.restarts();
    return n;
  }
  std::uint64_t recoveries() const {
    std::uint64_t n = 0;
    for (const AnyKv& s : shards_) n += s.recoveries();
    return n;
  }
  std::size_t bucket_count() const {
    std::size_t n = 0;
    for (const AnyKv& s : shards_) n += s.bucket_count();
    return n;
  }
  std::uint64_t migrated_buckets() const {
    std::uint64_t n = 0;
    for (const AnyKv& s : shards_) n += s.migrated_buckets();
    return n;
  }
  std::uint64_t pending_migration() const {
    std::uint64_t n = 0;
    for (const AnyKv& s : shards_) n += s.pending_migration();
    return n;
  }
  // One snapshot folded over every shard domain (StatsSnapshot::merge_from:
  // counters sum, peaks/percentiles max).
  obs::StatsSnapshot stats() const {
    obs::StatsSnapshot agg;
    for (const AnyKv& s : shards_) agg.merge_from(s.stats());
    return agg;
  }

  unsigned shard_count() const { return static_cast<unsigned>(shards_.size()); }
  AnyKv& shard(unsigned i) { return shards_[i]; }
  SchemeId scheme() const { return shards_.front().scheme(); }
  StructureId structure() const { return shards_.front().structure(); }
  const char* scheme_name() const { return shards_.front().scheme_name(); }
  const char* structure_name() const {
    return shards_.front().structure_name();
  }

 private:
  explicit KvStore(std::vector<AnyKv> shards) : shards_(std::move(shards)) {}

  std::vector<AnyKv> shards_;
};

}  // namespace scot
