// Figure 9: Natarajan-Mittal tree throughput, 50% read / 50% write, key
// ranges 128 and 100,000.  Expected shape: all schemes close to NR at the
// tiny range; EBR on top at the large range with Hyaline-1S and IBR close
// behind.
#include "bench/fig_common.hpp"

int main(int argc, char** argv) {
  using namespace scot::bench;
  fig_init(argc, argv, "fig9");
  std::printf("SCOT reproduction — Figure 9 (NMTree throughput, 50r/25i/25d)\n\n");
  run_grid({"Fig 9a: NMTree, range 128", StructureId::kNMTree, 128}, 300);
  run_grid({"Fig 9b: NMTree, range 100,000", StructureId::kNMTree, 100000},
           400);
  return fig_finish();
}
