// The one translation unit that instantiates the full scheme × structure
// cross product and registers it with the runtime registry.  Everything
// else in the tree resolves cells through AnyMapRegistry at runtime —
// adding a scheme or structure is one registration line here plus an enum
// value + name row in the matching registry header (DESIGN.md §6).
#include "core/any_map.hpp"

#include <vector>

#include "core/core.hpp"

namespace scot {
namespace {

using K = AnyMap::Key;
using V = AnyMap::Value;

// Keep the registry's robustness column honest against the domain types.
static_assert(!NoReclaimDomain::kRobust == !scheme_info(SchemeId::kNR).robust);
static_assert(!EbrDomain::kRobust == !scheme_info(SchemeId::kEBR).robust);
static_assert(HpDomain::kRobust == scheme_info(SchemeId::kHP).robust);
static_assert(HpOptDomain::kRobust == scheme_info(SchemeId::kHPopt).robust);
static_assert(HeDomain::kRobust == scheme_info(SchemeId::kHE).robust);
static_assert(IbrDomain::kRobust == scheme_info(SchemeId::kIBR).robust);
static_assert(HyalineDomain::kRobust == scheme_info(SchemeId::kHLN).robust);

template <class Smr, class DS>
class TypedAnyMap final : public detail::AnyMapImpl {
  using Handle = typename Smr::Handle;

 public:
  explicit TypedAnyMap(const AnyMapOptions& options)
      : smr_(options.smr),
        ds_(make_ds(smr_, options)),
        handles_(options.smr.max_threads) {}

  // --- deprecated tid surface ---------------------------------------------
  // The per-operation path must not pay the shim's mutex on every call, so
  // resolved handle pointers are cached per tid: one acquire load on the
  // hot path, the join happens on first touch only.  (The v1 typed loop
  // hoisted the handle reference out of the hot loop; this is the
  // type-erased equivalent under lazy membership.)
  bool insert(unsigned tid, K key, V value) override {
    return ds_->insert(handle(tid), key, value);
  }
  bool erase(unsigned tid, K key) override {
    return ds_->erase(handle(tid), key);
  }
  bool contains(unsigned tid, K key) override {
    return ds_->contains(handle(tid), key);
  }
  std::optional<V> get(unsigned tid, K key) override {
    return ds_->get(handle(tid), key);
  }

  // --- session surface ----------------------------------------------------
  void* join_handle() override { return &smr_.join(); }
  void leave_handle(void* h) override { smr_.leave(*static_cast<Handle*>(h)); }
  bool insert_with(void* h, K key, V value) override {
    return ds_->insert(*static_cast<Handle*>(h), key, value);
  }
  bool erase_with(void* h, K key) override {
    return ds_->erase(*static_cast<Handle*>(h), key);
  }
  bool contains_with(void* h, K key) override {
    return ds_->contains(*static_cast<Handle*>(h), key);
  }
  std::optional<V> get_with(void* h, K key) override {
    return ds_->get(*static_cast<Handle*>(h), key);
  }

  std::size_t size_unsafe() const override { return ds_->size_unsafe(); }
  std::int64_t pending_nodes() const override { return smr_.pending_nodes(); }
  // Table 2 telemetry: walk every registry record ever created — the
  // ds_* counters are cumulative across claim/release reuse, so departed
  // sessions' restarts are not lost.
  std::uint64_t restarts() const override {
    std::uint64_t n = 0;
    for (const auto* r = smr_.registry().head(); r != nullptr;
         r = r->next_record())
      n += r->handle.ds_restarts;
    return n;
  }
  std::uint64_t recoveries() const override {
    std::uint64_t n = 0;
    for (const auto* r = smr_.registry().head(); r != nullptr;
         r = r->next_record())
      n += r->handle.ds_recoveries;
    return n;
  }
  unsigned active_handles() const override { return smr_.active_handles(); }
  std::size_t total_handle_records() const override {
    return smr_.total_handle_records();
  }
  obs::StatsSnapshot stats() const override { return smr_.stats(); }

 private:
  static std::unique_ptr<DS> make_ds(Smr& smr, const AnyMapOptions& options) {
    if constexpr (requires { DS(smr, std::size_t{1}); }) {
      return std::make_unique<DS>(
          smr, options.hash_buckets != 0 ? options.hash_buckets : 64);
    } else {
      return std::make_unique<DS>(smr);
    }
  }

  Handle& handle(unsigned tid) {
    auto& slot = handles_.at(tid);
    Handle* h = slot.load(std::memory_order_acquire);
    if (h == nullptr) {
#ifndef SCOT_DISALLOW_TID_SHIM
      h = &smr_.handle(tid);  // shim: joins + pins once, mutex on this path
      slot.store(h, std::memory_order_release);
#else
      // Shim compiled out: join directly.  Same pin-forever semantics (the
      // slot caches the handle for the map's lifetime), without routing
      // through the deprecated tid-indexed surface.  The CAS covers the
      // (contract-violating, but cheap to tolerate) case of two threads
      // racing the same tid: the loser releases its fresh handle and uses
      // the winner's.
      h = &smr_.join();
      Handle* expected = nullptr;
      if (!slot.compare_exchange_strong(expected, h,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        smr_.leave(*h);
        h = expected;
      }
#endif
    }
    return *h;
  }

  // Declaration order is destruction order in reverse: the structure's
  // teardown deallocates through the domain, so the domain must outlive it.
  mutable Smr smr_;
  std::unique_ptr<DS> ds_;
  std::vector<std::atomic<Handle*>> handles_;
};

template <class Smr, class DS>
std::unique_ptr<detail::AnyMapImpl> make_cell(const AnyMapOptions& options) {
  return std::make_unique<TypedAnyMap<Smr, DS>>(options);
}

template <class Smr>
void register_scheme(SchemeId id) {
  auto& reg = AnyMapRegistry::instance();
  reg.add(id, StructureId::kHMList, &make_cell<Smr, HarrisMichaelList<K, V, Smr>>);
  reg.add(id, StructureId::kHList, &make_cell<Smr, HarrisList<K, V, Smr>>);
  reg.add(id, StructureId::kHListWF,
          &make_cell<Smr, HarrisList<K, V, Smr, HarrisListWaitFreeTraits>>);
  reg.add(id, StructureId::kNMTree,
          &make_cell<Smr, NatarajanMittalTree<K, V, Smr>>);
  reg.add(id, StructureId::kHashMap, &make_cell<Smr, HashMap<K, V, Smr>>);
  reg.add(id, StructureId::kSkipList, &make_cell<Smr, SkipList<K, V, Smr>>);
  reg.add(id, StructureId::kSkipListEager,
          &make_cell<Smr, SkipList<K, V, Smr, SkipListEagerTraits>>);
  // Trait-ablation variants (bench_ablation_recovery / bench_ablation_unroll)
  // — registered like any other cell so the ablation binaries route through
  // run_case() and their JSON cells carry a real structure identity.
  reg.add(id, StructureId::kHListNoRecovery,
          &make_cell<Smr, HarrisList<K, V, Smr, HarrisListNoRecoveryTraits>>);
  reg.add(id, StructureId::kHListSimple,
          &make_cell<Smr, HarrisList<K, V, Smr, HarrisListSimpleTraits>>);
}

const bool kRegistered = [] {
  register_scheme<NoReclaimDomain>(SchemeId::kNR);
  register_scheme<EbrDomain>(SchemeId::kEBR);
  register_scheme<HpDomain>(SchemeId::kHP);
  register_scheme<HpOptDomain>(SchemeId::kHPopt);
  register_scheme<HeDomain>(SchemeId::kHE);
  register_scheme<IbrDomain>(SchemeId::kIBR);
  register_scheme<HyalineDomain>(SchemeId::kHLN);
  return true;
}();

}  // namespace

std::optional<AnyMap> AnyMap::make(SchemeId scheme, StructureId structure,
                                   const AnyMapOptions& options) {
  // ODR-use the registrar so linking make() always pulls the registrations.
  (void)kRegistered;
  const AnyMapRegistry::Factory factory =
      AnyMapRegistry::instance().find(scheme, structure);
  if (factory == nullptr) return std::nullopt;
  return AnyMap(scheme, structure, options.smr.max_threads, factory(options));
}

}  // namespace scot
