// SCOT — single public entry point (API v2).
//
// One include gives the whole library surface:
//
//   * the reclamation schemes and the SmrDomainV2 contract (smr/smr.hpp),
//   * the typed guard-centric protection API — TraversalGuard,
//     ProtectionSlot, Protected<T> (smr/guard.hpp),
//   * the SCOT data structures (core/core.hpp),
//   * scheme/structure identity as runtime values (smr/registry.hpp,
//     core/registry.hpp),
//   * the type-erased scot::AnyMap facade with runtime scheme and
//     structure selection (core/any_map.hpp; link the `scot_any` library).
//
// Typed quick start:
//
//   scot::SmrConfig cfg;   cfg.max_threads = 4;
//   scot::HpDomain smr(cfg);
//   scot::HarrisList<uint64_t, uint64_t, scot::HpDomain> list(smr);
//   list.insert(smr.handle(0), 7, 700);
//
// Runtime-selected quick start:
//
//   auto map = scot::AnyMap::make(scot::SchemeId::kHLN,
//                                 scot::StructureId::kSkipList);
//   map->insert(/*tid=*/0, 7, 700);
//
// See DESIGN.md §6 for guard lifetimes, Protected<T> invariants, and the
// registry extension recipe.
#pragma once

#include "core/any_map.hpp"
#include "core/core.hpp"
#include "core/registry.hpp"
#include "smr/guard.hpp"
#include "smr/registry.hpp"
#include "smr/smr.hpp"
