#include "bench/runner.hpp"
#include "bench/runner_impl.hpp"

namespace scot::bench {

CaseResult run_case_hpopt(const CaseConfig& cfg) {
  return detail::run_with_scheme<HpOptDomain>(cfg);
}

}  // namespace scot::bench
