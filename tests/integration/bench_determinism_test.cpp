// Reproducibility contract of the bench harness: with --seed fixed and an
// op budget (op_budget != 0, runs == 1), two runs of the same cell execute
// bit-identical per-thread key/op streams, so the op counts — total and
// per-type — must match exactly.  This is what makes a committed
// BENCH_baseline.json comparable across machines and what the --seed CLI
// flag promises.
#include <gtest/gtest.h>

#include "bench/options.hpp"
#include "bench/runner.hpp"
#include "tests/test_util.hpp"

namespace scot::bench {
namespace {

CaseConfig budget_case(std::uint64_t seed) {
  CaseConfig cfg;
  cfg.structure = StructureId::kHList;
  cfg.scheme = SchemeId::kEBR;
  cfg.threads = 2;
  cfg.key_range = 128;
  cfg.seed = seed;
  cfg.op_budget =
      static_cast<std::uint64_t>(scot::test::scaled_iters(50000));
  return cfg;
}

TEST(BenchDeterminism, SameSeedSameOpCounts) {
  const CaseConfig cfg = budget_case(1234);
  const CaseResult a = run_case(cfg);
  const CaseResult b = run_case(cfg);

  EXPECT_EQ(a.total_ops, cfg.op_budget * cfg.threads);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.inserts, b.inserts);
  EXPECT_EQ(a.removes, b.removes);
  EXPECT_EQ(a.reads + a.inserts + a.removes, a.total_ops);
  EXPECT_GT(a.reads, 0u);
  EXPECT_GT(a.inserts, 0u);
  EXPECT_GT(a.removes, 0u);
}

TEST(BenchDeterminism, DifferentSeedDifferentMix) {
  // Verified stable: with these two fixed seeds the attempted-op triples
  // differ (they are drawn from different Xoshiro streams), which is
  // exactly what distinguishes a real --seed plumb-through from a
  // hardcoded constant.
  const CaseResult a = run_case(budget_case(1234));
  const CaseResult b = run_case(budget_case(4321));
  EXPECT_EQ(a.total_ops, b.total_ops) << "budget fixes the total";
  EXPECT_TRUE(a.reads != b.reads || a.inserts != b.inserts ||
              a.removes != b.removes)
      << "op mix should depend on the seed";
}

TEST(BenchDeterminism, ZipfianBudgetRunsAreReproducible) {
  CaseConfig cfg = budget_case(77);
  cfg.key_dist = KeyDist::kZipfian;
  cfg.zipf_theta = 0.9;
  const CaseResult a = run_case(cfg);
  const CaseResult b = run_case(cfg);
  EXPECT_EQ(a.total_ops, cfg.op_budget * cfg.threads);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.inserts, b.inserts);
  EXPECT_EQ(a.removes, b.removes);
}

TEST(BenchDeterminism, PinnedBudgetRunCompletes) {
  // Affinity is best-effort (pin_this_thread may fail on restricted
  // runners); the contract is that pinning never changes op accounting.
  CaseConfig cfg = budget_case(5);
  cfg.pin_threads = true;
  const CaseResult r = run_case(cfg);
  EXPECT_EQ(r.total_ops, cfg.op_budget * cfg.threads);
  EXPECT_EQ(r.reads + r.inserts + r.removes, r.total_ops);
}

TEST(BenchDeterminism, TimedRunsStillReportOpMix) {
  CaseConfig cfg = budget_case(9);
  cfg.op_budget = 0;  // timed mode
  cfg.millis = 40;
  const CaseResult r = run_case(cfg);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_EQ(r.reads + r.inserts + r.removes, r.total_ops);
}

}  // namespace
}  // namespace scot::bench
