// Bounded exponential backoff for CAS retry loops.  Used sparingly: the
// paper's data structures rely on helping rather than backoff, but the
// benchmark prefill and a few test utilities use it to avoid livelock on
// heavily oversubscribed runs (the 2-core / 8-thread configurations).
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace scot {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

class Backoff {
 public:
  void spin() noexcept {
    for (std::uint32_t i = 0; i < limit_; ++i) cpu_relax();
    if (limit_ < kMax) limit_ <<= 1;
  }

  void reset() noexcept { limit_ = kMin; }

 private:
  static constexpr std::uint32_t kMin = 4;
  static constexpr std::uint32_t kMax = 1024;
  std::uint32_t limit_ = kMin;
};

}  // namespace scot
