// Paper-artifact-compatible CLI (Appendix A.5 of the paper):
//
//     ./bench_cli <mode> <seconds> <keyrange> <runs> <read%> <ins%> <del%>
//                 <SCHEME> <threads>
//
// e.g.   ./bench_cli listlf 2 512 1 50 25 25 EBR 4
//
// Modes: listlf  — Harris list with SCOT, lock-free traversals
//        listwf  — Harris list with SCOT, wait-free traversals
//        listhm  — Harris-Michael list (baseline)
//        tree    — Natarajan-Mittal tree with SCOT
//        hash    — hash map over SCOT lists
//        skip    — skip list, Fraser-style traversal with SCOT
//        skiphs  — skip list, Herlihy-Shavit eager unlink (baseline)
// Schemes: NR EBR HP HPopt HE IBR HLN
//
// Parsing lives in src/bench/options.hpp (parse_cli) so it is unit-testable;
// this file only reports the result.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/options.hpp"
#include "bench/runner.hpp"

using namespace scot::bench;

static void usage(const char* argv0, int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: %s %s\n"
               "e.g.:  %s listlf 2 512 1 50 25 25 EBR 4\n",
               argv0, kCliUsage, argv0);
  std::exit(code);
}

int main(int argc, char** argv) {
  if (argc == 1) usage(argv[0], 0);  // bare run: self-document, succeed

  std::string error;
  const auto cfg = parse_cli(argc, argv, &error);
  if (!cfg) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    usage(argv[0], 2);
  }

  const CaseResult r = run_case(*cfg);
  std::printf("structure=%s scheme=%s threads=%u range=%llu mix=%d/%d/%d\n",
              structure_name(cfg->structure), scheme_name(cfg->scheme),
              cfg->threads, static_cast<unsigned long long>(cfg->key_range),
              cfg->read_pct, cfg->insert_pct, cfg->delete_pct);
  std::printf("ops=%llu seconds=%.3f throughput=%.3f Mops/s\n",
              static_cast<unsigned long long>(r.total_ops), r.seconds,
              r.mops);
  std::printf("avg_unreclaimed=%.0f peak_unreclaimed=%lld restarts=%llu "
              "recoveries=%llu\n",
              r.avg_pending, static_cast<long long>(r.peak_pending),
              static_cast<unsigned long long>(r.restarts),
              static_cast<unsigned long long>(r.recoveries));
  return 0;
}
