// Lock-free hash map: a fixed array of SCOT Harris lists.
//
// The paper (§2.3, §6.2) treats hash maps as "simply arrays of Harris' or
// Harris-Michael lists"; this adapter provides exactly that, giving the
// examples a realistic key-value workload on top of the SCOT list.  The
// bucket count is fixed at construction, faithful to the paper's setup.
// For a growable table use the serving layer's KvHashMap
// (src/kv/kv_hash_map.hpp): lock-free incremental resize — CAS-installed
// directory doubling with cooperative per-bucket migration, old buckets
// retired through the same SMR domain — per the contract in DESIGN.md §10.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/harris_list.hpp"
#include "smr/smr.hpp"

namespace scot {

template <class Key, class Value, SmrDomainV2 Smr,
          class Traits = HarrisListTraits, class Hash = std::hash<Key>,
          class Compare = std::less<Key>>
class HashMap {
 public:
  using List = HarrisList<Key, Value, Smr, Traits, Compare>;
  using Handle = typename Smr::Handle;

  HashMap(Smr& smr, std::size_t buckets, Hash hash = {}, Compare cmp = {})
      : hash_(hash) {
    buckets_.reserve(buckets);
    for (std::size_t i = 0; i < buckets; ++i)
      buckets_.push_back(std::make_unique<List>(smr, cmp));
  }

  bool insert(Handle& h, const Key& key, const Value& value = {}) {
    return bucket(key).insert(h, key, value);
  }
  bool erase(Handle& h, const Key& key) { return bucket(key).erase(h, key); }
  bool contains(Handle& h, const Key& key) {
    return bucket(key).contains(h, key);
  }
  std::optional<Value> get(Handle& h, const Key& key) {
    return bucket(key).get(h, key);
  }

  std::size_t bucket_count() const { return buckets_.size(); }

  std::size_t size_unsafe() const {
    std::size_t n = 0;
    for (const auto& b : buckets_) n += b->size_unsafe();
    return n;
  }

 private:
  List& bucket(const Key& key) {
    // Fibonacci scrambling: std::hash for integers is the identity, which
    // would put arithmetic key sequences into sequential buckets.
    const std::uint64_t x = static_cast<std::uint64_t>(hash_(key));
    const std::uint64_t mixed = (x * 0x9e3779b97f4a7c15ULL) >> 17;
    return *buckets_[mixed % buckets_.size()];
  }

  std::vector<std::unique_ptr<List>> buckets_;
  [[no_unique_address]] Hash hash_;
};

}  // namespace scot
