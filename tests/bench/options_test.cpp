// Unit tests for the bench-harness option layer (src/bench/options.hpp):
// CaseConfig defaults, scheme/structure name resolution, and strict
// rejection of malformed paper-CLI argument vectors.  bench_cli.cpp is a
// thin shell around parse_cli(), so this is the direct coverage the CLI
// previously only got by running the binary.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "bench/options.hpp"

namespace scot::bench {
namespace {

// Builds argc/argv the way main() sees them: argv[0] is the program name.
std::optional<CaseConfig> parse(std::vector<const char*> args,
                                std::string* error = nullptr) {
  args.insert(args.begin(), "bench_cli");
  return parse_cli(static_cast<int>(args.size()), args.data(), error);
}

const std::vector<const char*> kGoodArgs = {"listlf", "2",  "512", "1", "50",
                                            "25",     "25", "EBR", "4"};

TEST(Options, CaseConfigDefaultsMatchPaperHeadline) {
  const CaseConfig cfg;
  EXPECT_EQ(cfg.structure, StructureId::kHList);
  EXPECT_EQ(cfg.scheme, SchemeId::kEBR);
  EXPECT_EQ(cfg.threads, 1u);
  EXPECT_EQ(cfg.key_range, 512u);
  EXPECT_EQ(cfg.read_pct, 50);
  EXPECT_EQ(cfg.insert_pct, 25);
  EXPECT_EQ(cfg.delete_pct, 25);
  EXPECT_EQ(cfg.millis, 300);
  EXPECT_FALSE(cfg.sample_memory);
  EXPECT_EQ(cfg.runs, 1u);
  EXPECT_EQ(cfg.hash_buckets, 0u);
}

TEST(Options, SchemeNamesRoundTrip) {
  for (SchemeId s : kAllSchemes) {
    const auto back = scheme_from_name(scheme_name(s));
    ASSERT_TRUE(back.has_value()) << scheme_name(s);
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(scheme_from_name("QSBR").has_value());
  EXPECT_FALSE(scheme_from_name("ebr").has_value()) << "names are case-exact";
  EXPECT_FALSE(scheme_from_name("").has_value());
}

TEST(Options, StructureModesResolve) {
  EXPECT_EQ(structure_from_mode("listlf"), StructureId::kHList);
  EXPECT_EQ(structure_from_mode("listwf"), StructureId::kHListWF);
  EXPECT_EQ(structure_from_mode("listhm"), StructureId::kHMList);
  EXPECT_EQ(structure_from_mode("tree"), StructureId::kNMTree);
  EXPECT_EQ(structure_from_mode("hash"), StructureId::kHashMap);
  EXPECT_EQ(structure_from_mode("skip"), StructureId::kSkipList);
  EXPECT_EQ(structure_from_mode("skiphs"), StructureId::kSkipListEager);
  EXPECT_EQ(structure_from_mode("queue"), StructureId::kMSQueue);
  EXPECT_EQ(structure_from_mode("stack"), StructureId::kTreiberStack);
  EXPECT_EQ(structure_from_mode("deque"), StructureId::kDeque);
  EXPECT_FALSE(structure_from_mode("ring").has_value());
  EXPECT_FALSE(structure_from_mode("").has_value());
}

TEST(Options, ContainerKindPartitionsTheStructureIds) {
  using scot::ContainerKind;
  using scot::container_kind;
  // Every map-grid structure is map-kind; the other concepts each own
  // their table; kNone stands alone.  The bench runner and the facade
  // make() checks dispatch on exactly this partition.
  for (StructureId s : kAllStructures)
    EXPECT_EQ(container_kind(s), ContainerKind::kMap) << structure_name(s);
  for (StructureId s : scot::kAblationStructures)
    EXPECT_EQ(container_kind(s), ContainerKind::kMap) << structure_name(s);
  for (StructureId s : scot::kKvStructures)
    EXPECT_EQ(container_kind(s), ContainerKind::kKv) << structure_name(s);
  EXPECT_EQ(container_kind(StructureId::kMSQueue), ContainerKind::kQueue);
  EXPECT_EQ(container_kind(StructureId::kTreiberStack), ContainerKind::kStack);
  EXPECT_EQ(container_kind(StructureId::kDeque), ContainerKind::kDeque);
  EXPECT_EQ(container_kind(StructureId::kNone), ContainerKind::kNone);
  EXPECT_STREQ(scot::container_kind_name(ContainerKind::kQueue), "queue");
  EXPECT_STREQ(scot::container_kind_name(ContainerKind::kStack), "stack");
  EXPECT_STREQ(scot::container_kind_name(ContainerKind::kDeque), "deque");
}

TEST(Options, ContainerStructuresResolveButStayOutOfMapGrids) {
  for (StructureId c : scot::kContainerStructures) {
    const auto back = structure_from_name(structure_name(c));
    ASSERT_TRUE(back.has_value()) << structure_name(c);
    EXPECT_EQ(*back, c);
    for (StructureId s : kAllStructures) EXPECT_NE(s, c);
  }
}

TEST(Options, NameTablesAreTheRuntimeRegistries) {
  // Since API v2 the bench layer re-exports identity from the library's
  // runtime registries (src/smr/registry.hpp, src/core/registry.hpp): the
  // types are literally the same, and every CLI name resolves through the
  // registry tables — no second copy to drift.
  static_assert(std::is_same_v<SchemeId, scot::SchemeId>);
  static_assert(std::is_same_v<StructureId, scot::StructureId>);
  for (SchemeId s : kAllSchemes) {
    EXPECT_STREQ(scheme_name(s), scot::scheme_info(s).name);
    EXPECT_EQ(scot::scheme_from_name(scheme_name(s)), s);
  }
  for (StructureId d : kAllStructures) {
    EXPECT_STREQ(structure_name(d), scot::structure_name(d));
    EXPECT_EQ(scot::structure_from_name(structure_name(d)), d);
  }
  // The registry's robustness column mirrors Domain::kRobust (statically
  // asserted against the domain types in src/core/any_map.cpp); spot-check
  // the two families here.
  EXPECT_FALSE(scot::scheme_info(SchemeId::kEBR).robust);
  EXPECT_TRUE(scot::scheme_info(SchemeId::kHP).robust);
}

TEST(Options, StructureNamesAreDistinct) {
  const StructureId all[] = {
      StructureId::kHMList,  StructureId::kHList,    StructureId::kHListWF,
      StructureId::kNMTree,  StructureId::kHashMap,  StructureId::kSkipList,
      StructureId::kSkipListEager};
  for (StructureId a : all) {
    for (StructureId b : all) {
      if (a != b) {
        EXPECT_STRNE(structure_name(a), structure_name(b));
      }
    }
  }
}

TEST(Options, ParseCliAcceptsThePaperExample) {
  std::string error;
  const auto cfg = parse(kGoodArgs, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->structure, StructureId::kHList);
  EXPECT_EQ(cfg->scheme, SchemeId::kEBR);
  EXPECT_EQ(cfg->millis, 2000);
  EXPECT_EQ(cfg->key_range, 512u);
  EXPECT_EQ(cfg->runs, 1u);
  EXPECT_EQ(cfg->read_pct, 50);
  EXPECT_EQ(cfg->insert_pct, 25);
  EXPECT_EQ(cfg->delete_pct, 25);
  EXPECT_EQ(cfg->threads, 4u);
  EXPECT_TRUE(cfg->sample_memory) << "the CLI always samples memory";
}

TEST(Options, ParseCliAcceptsEverySchemeAndMode) {
  for (SchemeId s : kAllSchemes) {
    for (const char* mode :
         {"listlf", "listwf", "listhm", "tree", "hash", "skip", "skiphs"}) {
      auto args = kGoodArgs;
      args[0] = mode;
      args[7] = scheme_name(s);
      EXPECT_TRUE(parse(args).has_value())
          << mode << " under " << scheme_name(s);
    }
  }
}

TEST(Options, ParseCliRejectsWrongArity) {
  std::string error;
  EXPECT_FALSE(parse({}, &error).has_value());
  EXPECT_FALSE(parse({"listlf"}, &error).has_value());
  auto extra = kGoodArgs;
  extra.push_back("surplus");
  EXPECT_FALSE(parse(extra, &error).has_value());
  EXPECT_NE(error.find("9 arguments"), std::string::npos) << error;
}

TEST(Options, ParseCliRejectsUnknownModeAndScheme) {
  auto bad_mode = kGoodArgs;
  bad_mode[0] = "ring";
  std::string error;
  EXPECT_FALSE(parse(bad_mode, &error).has_value());
  EXPECT_NE(error.find("unknown mode"), std::string::npos) << error;

  auto bad_scheme = kGoodArgs;
  bad_scheme[7] = "RCU";
  EXPECT_FALSE(parse(bad_scheme, &error).has_value());
  EXPECT_NE(error.find("unknown scheme"), std::string::npos) << error;
}

TEST(Options, ParseCliRejectsMalformedNumbers) {
  // One malformed numeric field at a time; index into kGoodArgs.
  const struct { int index; const char* value; } cases[] = {
      {1, "abc"},   // seconds not a number
      {1, "2x"},    // trailing garbage
      {1, "0"},     // zero duration
      {1, "-1"},    // negative duration
      {2, "1.5"},   // fractional keyrange
      {2, "0"},     // zero keyrange
      {2, ""},      // empty keyrange
      {3, "0"},     // zero runs
      {4, "101"},   // read% out of range
      {4, "-5"},    // negative read%
      {8, "0"},     // zero threads
      {8, ""},      // empty threads
      // Values that pass "positive" but would wrap the narrowing casts or
      // blow up per-thread state allocation.
      {1, "3000000"},     // seconds*1000 would overflow int millis
      {3, "4294967296"},  // runs > UINT_MAX would truncate to 0
      {8, "4097"},        // threads above the 4096 sanity cap
      {8, "4294967295"},  // UINT_MAX threads: representable memory bomb
  };
  for (const auto& c : cases) {
    auto args = kGoodArgs;
    args[static_cast<std::size_t>(c.index)] = c.value;
    std::string error;
    EXPECT_FALSE(parse(args, &error).has_value())
        << "index " << c.index << " value '" << c.value << "' parsed OK";
    EXPECT_FALSE(error.empty());
  }
}

TEST(Options, ParseCliRejectsMixNotSummingTo100) {
  auto args = kGoodArgs;
  args[4] = "50";
  args[5] = "30";
  args[6] = "30";
  std::string error;
  EXPECT_FALSE(parse(args, &error).has_value());
  EXPECT_NE(error.find("sum to 100"), std::string::npos) << error;

  args[4] = "90";
  args[5] = "5";
  args[6] = "5";
  EXPECT_TRUE(parse(args).has_value());
}

// --- container modes (queue/stack/deque) ----------------------------------

TEST(Options, ParseCliAcceptsContainerModesWithPushPopMix) {
  for (const char* mode : {"queue", "stack", "deque"}) {
    auto args = kGoodArgs;
    args[0] = mode;
    args[4] = "0";   // no read op
    args[5] = "50";  // push share
    args[6] = "50";  // pop share
    std::string error;
    const auto cfg = parse(args, &error);
    ASSERT_TRUE(cfg.has_value()) << mode << ": " << error;
    EXPECT_EQ(cfg->read_pct, 0);
    EXPECT_EQ(cfg->insert_pct, 50);
    EXPECT_EQ(cfg->delete_pct, 50);
    EXPECT_FALSE(cfg->split_workload) << "mixed is the default";
  }
}

TEST(Options, ParseCliRejectsReadsForContainerModes) {
  for (const char* mode : {"queue", "stack", "deque"}) {
    auto args = kGoodArgs;  // 50/25/25 — reads in a readless concept
    args[0] = mode;
    std::string error;
    EXPECT_FALSE(parse(args, &error).has_value()) << mode;
    EXPECT_NE(error.find("<read%> must be 0"), std::string::npos) << error;
  }
  // The check runs after preset application, so a read-bearing preset on a
  // container mode fails loudly too.
  std::vector<const char*> preset_args = {"queue", "2",  "512", "1", "0",
                                          "50",    "50", "EBR", "4",
                                          "--preset", "mixed"};
  std::string error;
  EXPECT_FALSE(parse(preset_args, &error).has_value());
  EXPECT_NE(error.find("<read%> must be 0"), std::string::npos) << error;
}

TEST(Options, SplitFlagPlumbsIntoContainerConfig) {
  std::vector<const char*> args = {"queue", "2",  "512", "1", "0",
                                   "50",    "50", "EBR", "4", "--split"};
  const auto cfg = parse(args);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_TRUE(cfg->split_workload);
}

TEST(Options, SplitFlagIsRejectedForMapModes) {
  auto args = kGoodArgs;
  args.push_back("--split");
  std::string error;
  EXPECT_FALSE(parse(args, &error).has_value());
  EXPECT_NE(error.find("--split"), std::string::npos) << error;
}

// --- optional flag layer (--seed/--json/--dist/...) -----------------------

TEST(Options, UnknownFlagsAreRejectedNotIgnored) {
  auto args = kGoodArgs;
  args.push_back("--frobnicate");
  std::string error;
  EXPECT_FALSE(parse(args, &error).has_value());
  EXPECT_NE(error.find("unknown flag '--frobnicate'"), std::string::npos)
      << error;
}

TEST(Options, SeedFlagPlumbsIntoConfig) {
  auto args = kGoodArgs;
  args.push_back("--seed");
  args.push_back("12345");
  const auto cfg = parse(args);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->seed, 12345u);
  EXPECT_EQ(parse(kGoodArgs)->seed, 42u) << "default seed is fixed";
}

TEST(Options, MalformedFlagValuesAreRejected) {
  const struct {
    const char* flag;
    const char* value;  // nullptr = flag given without a value
  } cases[] = {
      {"--seed", "abc"},    {"--seed", "-1"},      {"--seed", nullptr},
      {"--json", nullptr},  {"--dist", "normal"},  {"--dist", nullptr},
      {"--theta", "0"},     {"--theta", "1"},      {"--theta", "1.5"},
      {"--theta", "x"},     {"--preset", "spicy"}, {"--preset", nullptr},
      {"--ops", "0"},       {"--ops", "-5"},       {"--ops", "1x"},
      {"--value-size", "0"},     {"--value-size", "4097"},
      {"--value-size", nullptr}, {"--value-size", "2x"},
      {"--key-len", "0"},        {"--key-len", "1025"},
      {"--key-len", nullptr},    {"--shards", "0"},
      {"--shards", "65537"},     {"--shards", nullptr},
      // A following flag is not a value: --json must not swallow --pin.
      {"--json", "--pin"},  {"--seed", "--pin"},
  };
  for (const auto& c : cases) {
    auto args = kGoodArgs;
    args.push_back(c.flag);
    if (c.value != nullptr) args.push_back(c.value);
    std::string error;
    EXPECT_FALSE(parse(args, &error).has_value())
        << c.flag << " " << (c.value ? c.value : "<none>");
    EXPECT_FALSE(error.empty());
  }
}

TEST(Options, FlagsMayAppearAnywhere) {
  std::vector<const char*> args = {"--seed", "9", "listlf", "2",  "512",
                                   "1",      "50", "25",     "25", "EBR",
                                   "--pin",  "4"};
  const auto cfg = parse(args);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->seed, 9u);
  EXPECT_TRUE(cfg->pin_threads);
  EXPECT_EQ(cfg->threads, 4u);
}

TEST(Options, DistAndThetaConfigureZipfian) {
  auto args = kGoodArgs;
  for (const char* extra : {"--dist", "zipfian", "--theta", "0.8"})
    args.push_back(extra);
  const auto cfg = parse(args);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->key_dist, KeyDist::kZipfian);
  EXPECT_DOUBLE_EQ(cfg->zipf_theta, 0.8);
  EXPECT_EQ(parse(kGoodArgs)->key_dist, KeyDist::kUniform);
}

TEST(Options, PresetOverridesPositionalMix) {
  auto args = kGoodArgs;
  args.push_back("--preset");
  args.push_back("read-mostly");
  const auto cfg = parse(args);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->read_pct, 90);
  EXPECT_EQ(cfg->insert_pct, 5);
  EXPECT_EQ(cfg->delete_pct, 5);
}

TEST(Options, OpsFlagSetsBudget) {
  auto args = kGoodArgs;
  args.push_back("--ops");
  args.push_back("100000");
  const auto cfg = parse(args);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->op_budget, 100000u);
  EXPECT_EQ(parse(kGoodArgs)->op_budget, 0u) << "default is a timed run";
}

TEST(Options, NoAsymFlagDisablesAsymmetricFences) {
  EXPECT_TRUE(parse(kGoodArgs)->asymmetric_fences) << "default is on";
  auto args = kGoodArgs;
  args.push_back("--no-asym");
  const auto cfg = parse(args);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_FALSE(cfg->asymmetric_fences);
  // --asym re-arms (last flag wins is NOT the contract; both set the same
  // field, the explicit spelling merely exists for A/B scripting).
  auto args2 = kGoodArgs;
  args2.push_back("--asym");
  ASSERT_TRUE(parse(args2).has_value());
  EXPECT_TRUE(parse(args2)->asymmetric_fences);
}

TEST(Options, MicroStructureNoneResolvesButIsNotIterable) {
  EXPECT_EQ(structure_from_name("none"), StructureId::kNone);
  for (StructureId s : kAllStructures) {
    EXPECT_NE(s, StructureId::kNone) << "grids must never iterate 'none'";
  }
  EXPECT_FALSE(structure_from_mode("none").has_value())
      << "'none' is not a paper-CLI mode";
}

TEST(Options, AblationStructuresResolveButStayOutOfGrids) {
  // The trait-ablation identities (bench_ablation_*) must round-trip
  // through the name table — their JSON cells are loaded strictly by
  // bench_diff — but never appear in the figure grids or the AnyMap
  // cross-product tests.
  EXPECT_EQ(structure_from_name("HListNoRec"),
            StructureId::kHListNoRecovery);
  EXPECT_EQ(structure_from_name("HListSimple"), StructureId::kHListSimple);
  for (StructureId a : scot::kAblationStructures) {
    const auto back = structure_from_name(structure_name(a));
    ASSERT_TRUE(back.has_value()) << structure_name(a);
    EXPECT_EQ(*back, a);
    for (StructureId s : kAllStructures) EXPECT_NE(s, a);
    EXPECT_FALSE(structure_from_mode(structure_name(a)).has_value())
        << "ablation variants are not paper-CLI modes";
  }
}

TEST(Options, JsonPathSurfacesThroughBenchFlags) {
  auto args = kGoodArgs;
  args.push_back("--json");
  args.push_back("out.json");
  args.insert(args.begin(), "bench_cli");
  std::string error;
  BenchFlags flags;
  const auto cfg = parse_cli(static_cast<int>(args.size()), args.data(),
                             &error, &flags);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(flags.json_path, "out.json");
}

TEST(Options, HelpFlagSurfacesEvenThoughParseFails) {
  std::vector<const char*> args = {"bench_cli", "--help"};
  std::string error;
  BenchFlags flags;
  EXPECT_FALSE(parse_cli(static_cast<int>(args.size()), args.data(), &error,
                         &flags)
                   .has_value());
  EXPECT_TRUE(flags.help);
}

TEST(Options, PresetNamesResolve) {
  ASSERT_TRUE(preset_from_name("mixed").has_value());
  EXPECT_EQ(preset_from_name("mixed")->read_pct, 50);
  ASSERT_TRUE(preset_from_name("write-heavy").has_value());
  EXPECT_EQ(preset_from_name("write-heavy")->read_pct, 10);
  EXPECT_FALSE(preset_from_name("MIXED").has_value()) << "case-exact";
  EXPECT_FALSE(preset_from_name("").has_value());
}

TEST(Options, YcsbPresetsResolveWithNoDeletes) {
  const struct {
    const char* name;
    int read, write;
  } cases[] = {{"ycsb-a", 50, 50}, {"ycsb-b", 95, 5}, {"ycsb-c", 100, 0}};
  for (const auto& c : cases) {
    const auto p = preset_from_name(c.name);
    ASSERT_TRUE(p.has_value()) << c.name;
    EXPECT_EQ(p->read_pct, c.read) << c.name;
    EXPECT_EQ(p->insert_pct, c.write) << c.name;
    EXPECT_EQ(p->delete_pct, 0) << c.name;
    EXPECT_EQ(p->read_pct + p->insert_pct + p->delete_pct, 100) << c.name;
  }
  EXPECT_FALSE(preset_from_name("ycsb-d").has_value());
  // And through the CLI: a YCSB preset overrides the positional mix the
  // same way the classic presets do.
  auto args = kGoodArgs;
  args.push_back("--preset");
  args.push_back("ycsb-b");
  const auto cfg = parse(args);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->read_pct, 95);
  EXPECT_EQ(cfg->insert_pct, 5);
  EXPECT_EQ(cfg->delete_pct, 0);
}

TEST(Options, KvShapeFlagsPlumbIntoConfig) {
  EXPECT_EQ(parse(kGoodArgs)->value_size, 0u) << "0 = not a kv case";
  EXPECT_EQ(parse(kGoodArgs)->key_len, 0u);
  EXPECT_EQ(parse(kGoodArgs)->kv_shards, 0u);
  auto args = kGoodArgs;
  for (const char* extra :
       {"--value-size", "1024", "--key-len", "24", "--shards", "8"})
    args.push_back(extra);
  const auto cfg = parse(args);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->value_size, 1024u);
  EXPECT_EQ(cfg->key_len, 24u);
  EXPECT_EQ(cfg->kv_shards, 8u);
  // Boundary values are accepted (the serving layer's pooled-cell ceiling
  // and the 16-bit shard router).
  auto args2 = kGoodArgs;
  for (const char* extra :
       {"--value-size", "4096", "--key-len", "1024", "--shards", "65536"})
    args2.push_back(extra);
  ASSERT_TRUE(parse(args2).has_value());
}

TEST(Options, KeyDistNamesRoundTrip) {
  EXPECT_EQ(key_dist_from_name("uniform"), KeyDist::kUniform);
  EXPECT_EQ(key_dist_from_name("zipfian"), KeyDist::kZipfian);
  EXPECT_EQ(key_dist_from_name("zipf"), KeyDist::kZipfian) << "shorthand";
  EXPECT_FALSE(key_dist_from_name("gaussian").has_value());
  EXPECT_EQ(key_dist_from_name(key_dist_name(KeyDist::kUniform)),
            KeyDist::kUniform);
  EXPECT_EQ(key_dist_from_name(key_dist_name(KeyDist::kZipfian)),
            KeyDist::kZipfian);
}

TEST(Options, StructureNamesRoundTrip) {
  for (StructureId s : kAllStructures) {
    const auto back = structure_from_name(structure_name(s));
    ASSERT_TRUE(back.has_value()) << structure_name(s);
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(structure_from_name("BTree").has_value());
}

TEST(Options, ParseDoubleIsStrict) {
  double v = -1;
  EXPECT_TRUE(parse_double("0.5", v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_TRUE(parse_double("-2.25", v));
  EXPECT_DOUBLE_EQ(v, -2.25);
  EXPECT_TRUE(parse_double(".5", v));
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double(" 0.5", v));
  EXPECT_FALSE(parse_double("0.5 ", v));
  EXPECT_FALSE(parse_double("0.5x", v));
  EXPECT_FALSE(parse_double("inf", v));
  EXPECT_FALSE(parse_double("nan", v));
  EXPECT_FALSE(parse_double("0x.8p0", v)) << "C99 hex floats";
  EXPECT_FALSE(parse_double("0X1p3", v));
}

TEST(Options, ParseDecimalIsStrict) {
  long long v = -1;
  EXPECT_TRUE(parse_decimal("42", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_decimal("-7", v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(parse_decimal("", v));
  EXPECT_FALSE(parse_decimal(" 42", v));
  EXPECT_FALSE(parse_decimal("42 ", v));
  EXPECT_FALSE(parse_decimal("0x10", v));
  EXPECT_FALSE(parse_decimal("99999999999999999999999999", v)) << "overflow";
}

}  // namespace
}  // namespace scot::bench
