// SCOT — single public entry point (API v2).
//
// One include gives the whole library surface:
//
//   * the reclamation schemes and the SmrDomainV2 contract (smr/smr.hpp),
//   * the typed guard-centric protection API — TraversalGuard,
//     ProtectionSlot, Protected<T> (smr/guard.hpp),
//   * the SCOT data structures (core/core.hpp),
//   * scheme/structure identity as runtime values (smr/registry.hpp,
//     core/registry.hpp),
//   * the type-erased scot::AnyMap facade with runtime scheme and
//     structure selection (core/any_map.hpp; link the `scot_any` library),
//   * the container concepts — scot::AnyQueue / AnyStack / AnyDeque over
//     MSQueue, TreiberStack, and the Michael deque
//     (core/any_container.hpp; link the `scot_any` library),
//   * the string-keyed serving layer — scot::AnyKv shards and the sharded
//     scot::KvStore (kv/; link the `scot_kv` library).
//
// Typed quick start (per-thread membership is dynamic: scoped_handle()
// joins the domain's handle registry and leaves at scope exit):
//
//   scot::SmrConfig cfg;   cfg.max_threads = 4;
//   scot::HpDomain smr(cfg);
//   scot::HarrisList<uint64_t, uint64_t, scot::HpDomain> list(smr);
//   auto h = scot::scoped_handle(smr);
//   list.insert(*h, 7, 700);
//
// Runtime-selected quick start (Session = scoped_handle through the
// type-erased facade):
//
//   auto map = scot::AnyMap::make(scot::SchemeId::kHLN,
//                                 scot::StructureId::kSkipList);
//   auto s = map->session();
//   s.insert(7, 700);
//
// See DESIGN.md §6 for guard lifetimes, Protected<T> invariants, and the
// registry extension recipe.
#pragma once

#include "core/any_container.hpp"
#include "core/any_map.hpp"
#include "core/core.hpp"
#include "core/registry.hpp"
#include "kv/any_kv.hpp"
#include "kv/kv_store.hpp"
#include "smr/guard.hpp"
#include "smr/registry.hpp"
#include "smr/smr.hpp"
