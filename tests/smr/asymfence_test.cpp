// Asymmetric-fence path resolution and the membarrier-unavailable fallback:
// the knob selects the classic path exactly, the forced fallback engages
// automatically, and the reclaimer side still quiesces readers on every
// path.  Covers the slot schemes (HP/HPopt protect publication) and the
// era schemes (EBR/IBR/Hyaline begin_op activation, HE first-slot publish;
// Hyaline's "scan" is the retire-batch handoff plus the end_op drain).
#include <gtest/gtest.h>

#include "common/asymfence.hpp"
#include "tests/test_util.hpp"

namespace scot {
namespace {

using test::TestNode;

// Restores the test hook on scope exit so a failing assertion cannot leak
// the forced fallback into later tests.
struct ForcedFallback {
  explicit ForcedFallback(bool on = true) {
    asymfence::force_fallback_for_testing(on);
  }
  ~ForcedFallback() { asymfence::force_fallback_for_testing(false); }
};

template <class Smr>
class AsymFenceTest : public ::testing::Test {};

// Every scheme with a reader-side publication the asymmetric discipline
// relaxes: protect-side (HP/HPopt/HE) and activation-side (EBR/IBR/HLN).
using FenceBearingSchemes =
    ::testing::Types<HpDomain, HpOptDomain, HeDomain, IbrDomain, EbrDomain,
                     HyalineDomain>;
TYPED_TEST_SUITE(AsymFenceTest, FenceBearingSchemes);

// Hyaline has no scan(): its reclaimer side is the retire-batch handoff,
// and a parked batch is freed when the last reservation holding it drains
// (the reader's end_op).  The other schemes expose an explicit scan.
template <class Handle>
void reclaim_after_release(Handle& writer) {
  if constexpr (requires { writer.scan(); }) writer.scan();
}

TYPED_TEST(AsymFenceTest, KnobOffResolvesClassic) {
  SmrConfig cfg = test::small_config();
  cfg.asymmetric_fences = false;
  TypeParam smr(cfg);
  EXPECT_EQ(smr.fence_path(), asymfence::Path::kClassic);
}

TYPED_TEST(AsymFenceTest, KnobOnResolvesAsymmetricPath) {
  SmrConfig cfg = test::small_config();
  cfg.asymmetric_fences = true;
  TypeParam smr(cfg);
  EXPECT_NE(smr.fence_path(), asymfence::Path::kClassic);
}

TYPED_TEST(AsymFenceTest, FallbackEngagesWhenMembarrierUnavailable) {
  ForcedFallback forced;
  SmrConfig cfg = test::small_config();
  cfg.asymmetric_fences = true;
  TypeParam smr(cfg);
  EXPECT_EQ(smr.fence_path(), asymfence::Path::kFenceFallback);
  EXPECT_STREQ(asymfence::runtime_path_name(), "fence-fallback");
}

// The core quiescence guarantee on the fallback path: a protected node
// survives scan churn, and releasing the protection makes it reclaimable.
TYPED_TEST(AsymFenceTest, FallbackScansStillQuiesceReaders) {
  ForcedFallback forced;
  SmrConfig cfg = test::small_config(2);
  cfg.asymmetric_fences = true;
  TypeParam smr(cfg);
  ASSERT_EQ(smr.fence_path(), asymfence::Path::kFenceFallback);

  auto reader_h = scoped_handle(smr);
  auto writer_h = scoped_handle(smr);
  auto& reader = reader_h.get();
  auto& writer = writer_h.get();
  auto* victim = writer.template alloc<TestNode>(std::uint64_t{42});
  std::atomic<ReclaimNode*> src{victim};

  reader.begin_op();
  ReclaimNode* got = reader.protect(src, 0);
  ASSERT_EQ(got, victim);
  writer.retire(victim);
  test::churn_retire(writer, 3000);  // force many scans (heavy barriers)
  EXPECT_EQ(victim->debug_state, kNodeRetired)
      << "fallback scans must still observe the reservation";
  EXPECT_EQ(static_cast<TestNode*>(got)->payload, 42u);
  reader.end_op();

  reclaim_after_release(writer);
  EXPECT_EQ(victim->debug_state, kNodeFreed)
      << "after release the fallback reclaimer must reclaim the node";
}

// Same guarantee on whichever asymmetric path the host resolves (the
// membarrier fast path on Linux, the fallback elsewhere) and on classic.
TYPED_TEST(AsymFenceTest, ProtectionHoldsOnEveryPath) {
  for (const bool asym : {true, false}) {
    SmrConfig cfg = test::small_config(2);
    cfg.asymmetric_fences = asym;
    TypeParam smr(cfg);

    auto reader_h = scoped_handle(smr);
    auto writer_h = scoped_handle(smr);
    auto& reader = reader_h.get();
    auto& writer = writer_h.get();
    auto* victim = writer.template alloc<TestNode>(std::uint64_t{7});
    std::atomic<ReclaimNode*> src{victim};

    reader.begin_op();
    ASSERT_EQ(reader.protect(src, 0), victim);
    writer.retire(victim);
    test::churn_retire(writer, 2000);
    EXPECT_EQ(victim->debug_state, kNodeRetired)
        << (asym ? "asymmetric" : "classic") << " path lost a protection";
    reader.end_op();
  }
}

TEST(AsymFencePathNames, AreStable) {
  EXPECT_STREQ(asymfence::path_name(asymfence::Path::kClassic), "classic");
  EXPECT_STREQ(asymfence::path_name(asymfence::Path::kMembarrier),
               "membarrier");
  EXPECT_STREQ(asymfence::path_name(asymfence::Path::kFenceFallback),
               "fence-fallback");
}

TEST(AsymFenceBarriers, FallbackBarriersAreCallable) {
  // Smoke both barrier flavours on the fallback path (no registration
  // required) — they must be plain fences, not syscalls that can fail.
  asymfence::light_barrier(asymfence::Path::kFenceFallback);
  asymfence::heavy_barrier(asymfence::Path::kFenceFallback);
}

}  // namespace
}  // namespace scot
