// Dynamic handle membership for reclamation domains.
//
// Every domain used to pre-build a fixed `handles_` vector sized by
// `SmrConfig::max_threads` and hand out slots by caller-supplied tid — the
// fixed-population assumption a real server (thread pools, worker churn)
// cannot live with.  This header replaces it with an RCU-style registry:
//
//  * `HandleRegistry<Handle>` — a lock-free singly-linked list of permanent
//    handle *records*.  `acquire()` claims a free record (or appends a new
//    one); `release()` returns it for reuse.  Records are never unlinked or
//    freed while the registry lives, so scanners may traverse the list with
//    plain acquire loads and no deferred reclamation of the records
//    themselves (the same trick libreclaim's ctx_list uses).
//
//  * Generation-tagged occupancy.  Each record carries one state word
//    `(generation << 1) | active`: even = free, odd = claimed.  A claim is a
//    CAS from a *specific* even value to its odd successor, so a thread
//    acting on a stale observation of "free" loses the CAS instead of
//    double-claiming a record whose ownership has since changed hands — the
//    ABA that a plain active bit would admit (DESIGN.md §7).
//
//  * A thread-local cached-record fast path: a thread that re-joins the same
//    registry it last left re-claims its old record with a single CAS — no
//    list walk — which keeps `scoped_handle()` cheap enough for
//    short-lived pool workers.  The cache is keyed by a globally unique
//    registry id so it can never alias a record of a dead (or different)
//    registry.
//
//  * `ScopedHandle` / `scoped_handle(domain)` — the RAII join/leave spelling
//    that replaces raw `domain.handle(tid)`.
//
//  * `TidHandleShim` — the deprecated fixed-capacity, tid-indexed surface,
//    kept so pre-registry code and tests compile unchanged.
//
//  * `OrphanList` — the domain-side mailbox a departing thread donates its
//    unreclaimed retires to; any later retirer adopts them (Hyaline-style
//    handoff generalized to every scheme).
//
// Memory-ordering contract (the late-joiner argument, DESIGN.md §7):
// `append` publishes a new record with a seq_cst CAS on the list head, and
// every reclamation scan reads the head with a seq_cst load *after* its
// heavy barrier (asymmetric path) or as part of its seq_cst scan sequence
// (classic path).  A record the walk does not see therefore belongs to a
// thread whose first reservation publication is not yet visible to the scan
// either — exactly the case the per-scheme fence argument (DESIGN.md §5)
// already proves safe.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <utility>
#include <vector>

#include "common/align.hpp"
#include "smr/reclaim_node.hpp"

namespace scot {

namespace detail {
// Globally unique, never reused: a stale thread-local cache entry keyed by a
// dead registry's id can never match a live registry.
inline std::uint64_t next_registry_id() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

#ifndef SCOT_DISALLOW_TID_SHIM
// Process-wide (not per shim instantiation), so the deprecation note below
// prints at most once no matter how many schemes touch their shims.
inline std::atomic<bool>& shim_warned() noexcept {
  static std::atomic<bool> warned{false};
  return warned;
}
#endif
}  // namespace detail

template <class Handle>
class HandleRegistry {
 public:
  // A permanent membership record.  `handle` is constructed exactly once
  // (when the record is appended) and reused across claim/release cycles;
  // schemes guarantee their handles are left in a reusable state by
  // `leave()` (reservations idle, limbo donated).
  struct alignas(kFalseSharingRange) Record {
    template <class Make>
    Record(unsigned idx, Make&& make)
        : state(1),  // born claimed (generation 0, active)
          index(idx),
          handle(make(idx)) {}

    Record* next_record() const noexcept {
      return next.load(std::memory_order_acquire);
    }
    bool active() const noexcept {
      return (state.load(std::memory_order_acquire) & 1) != 0;
    }
    std::uint64_t generation() const noexcept {
      return state.load(std::memory_order_acquire) >> 1;
    }

    std::atomic<std::uint64_t> state;
    std::atomic<Record*> next{nullptr};
    const unsigned index;
    Handle handle;
  };

  HandleRegistry() = default;
  HandleRegistry(const HandleRegistry&) = delete;
  HandleRegistry& operator=(const HandleRegistry&) = delete;

  ~HandleRegistry() {
    Record* r = head_.load(std::memory_order_acquire);
    while (r != nullptr) {
      Record* next = r->next.load(std::memory_order_acquire);
      delete r;
      r = next;
    }
  }

  // Claims a record: thread-local cache hit, else scavenge the list for a
  // free record, else append a fresh one.  `make(index)` constructs the
  // Handle for a fresh record (must return a prvalue Handle).
  // Lock-free; the returned record is exclusively owned until release().
  template <class Make>
  Record* acquire(Make&& make) {
    TlsCache& tls = tls_cache();
    if (tls.registry_id == id_) {
      auto* r = static_cast<Record*>(tls.record);
      if (try_claim(*r)) return r;
    }
    for (Record* r = head_.load(std::memory_order_acquire); r != nullptr;
         r = r->next.load(std::memory_order_acquire)) {
      if (try_claim(*r)) {
        tls = {id_, r};
        return r;
      }
    }
    return append(std::forward<Make>(make));
  }

  // Returns a claimed record for reuse.  The release store bumps the
  // generation (odd -> next even), so any claim attempt based on the old
  // generation fails.
  void release(Record* r) noexcept {
    const std::uint64_t s = r->state.load(std::memory_order_relaxed);
    assert((s & 1) != 0 && "release of a record that is not claimed");
    tls_cache() = {id_, r};
    active_.fetch_sub(1, std::memory_order_relaxed);
    r->state.store(s + 1, std::memory_order_release);
  }

  // Scan-side entry point.  seq_cst by design: paired with the seq_cst
  // append CAS this guarantees a scan running under classic fences sees the
  // record of any thread whose reservation publications it can see (the
  // late-joiner argument above).  On the asymmetric path, call this AFTER
  // the heavy barrier.
  Record* head() const noexcept {
    return head_.load(std::memory_order_seq_cst);
  }

  // High-water record count.  Incremented BEFORE the list push, so a reader
  // that loads head() first and total_records() second always observes
  // count >= chain length (Hyaline's batch sizing relies on this).
  std::size_t total_records() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

  // Currently claimed records (gauge; exact only in quiescence).
  unsigned active() const noexcept {
    return active_.load(std::memory_order_acquire);
  }

 private:
  struct TlsCache {
    std::uint64_t registry_id = 0;
    void* record = nullptr;
  };
  static TlsCache& tls_cache() noexcept {
    static thread_local TlsCache cache;
    return cache;
  }

  bool try_claim(Record& r) noexcept {
    std::uint64_t s = r.state.load(std::memory_order_relaxed);
    if ((s & 1) != 0) return false;
    if (!r.state.compare_exchange_strong(s, s + 1, std::memory_order_acquire,
                                         std::memory_order_relaxed))
      return false;
    active_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  template <class Make>
  Record* append(Make&& make) {
    const unsigned idx =
        static_cast<unsigned>(count_.fetch_add(1, std::memory_order_acq_rel));
    auto* r = new Record(idx, std::forward<Make>(make));
    active_.fetch_add(1, std::memory_order_relaxed);
    Record* h = head_.load(std::memory_order_relaxed);
    do {
      r->next.store(h, std::memory_order_relaxed);
    } while (!head_.compare_exchange_weak(h, r, std::memory_order_seq_cst,
                                          std::memory_order_relaxed));
    tls_cache() = {id_, r};
    return r;
  }

  const std::uint64_t id_ = detail::next_registry_id();
  std::atomic<Record*> head_{nullptr};
  std::atomic<std::size_t> count_{0};
  std::atomic<unsigned> active_{0};
};

// RAII membership: joins on construction, leaves on destruction.  This is
// the intended per-thread spelling:
//
//   auto h = scot::scoped_handle(domain);
//   h->begin_op(); ... h->retire(n); ... h->end_op();
//
// The handle must not be used after the ScopedHandle is destroyed, and no
// operation may be in flight at destruction time.
template <class Domain>
class ScopedHandle {
 public:
  using Handle = typename Domain::Handle;

  explicit ScopedHandle(Domain& d) : dom_(&d), h_(&d.join()) {}
  ~ScopedHandle() { reset(); }

  ScopedHandle(ScopedHandle&& o) noexcept : dom_(o.dom_), h_(o.h_) {
    o.h_ = nullptr;
  }
  ScopedHandle& operator=(ScopedHandle&& o) noexcept {
    if (this != &o) {
      reset();
      dom_ = o.dom_;
      h_ = o.h_;
      o.h_ = nullptr;
    }
    return *this;
  }
  ScopedHandle(const ScopedHandle&) = delete;
  ScopedHandle& operator=(const ScopedHandle&) = delete;

  Handle& operator*() const noexcept { return *h_; }
  Handle* operator->() const noexcept { return h_; }
  Handle& get() const noexcept { return *h_; }

  // Leaves early (idempotent).
  void reset() noexcept {
    if (h_ != nullptr) {
      dom_->leave(*h_);
      h_ = nullptr;
    }
  }

 private:
  Domain* dom_;
  Handle* h_;
};

template <class Domain>
[[nodiscard]] ScopedHandle<Domain> scoped_handle(Domain& d) {
  return ScopedHandle<Domain>(d);
}

// DEPRECATED tid-indexed access, kept so pre-registry code and tests keep
// compiling: `handle(tid)` lazily joins once per tid and pins the record for
// the domain's lifetime.  This resurrects the fixed-capacity surface —
// `tid` must be < max_threads — and takes a mutex on first touch; new code
// should use scoped_handle() instead.
//
// The [[deprecated]] marking is at the type level so any *new* direct use
// fails loudly under -Werror; the domains suppress the warning around their
// own shim members (the compatibility surface itself).  Configuring with
// -DSCOT_DISALLOW_TID_SHIM=ON compiles the shim (and every domain's
// handle(tid) accessor) out entirely.
#ifndef SCOT_DISALLOW_TID_SHIM
template <class Handle>
class [[deprecated(
    "tid-indexed handles pin registry records forever; use "
    "scot::scoped_handle(domain) or AnyMap::session()")]] TidHandleShim {
 public:
  explicit TidHandleShim(unsigned max_threads) {
    slots_.reserve(max_threads);  // deprecated fixed-capacity surface
    slots_.resize(max_threads, nullptr);
  }

  // Thread-safe (concurrent first touches of distinct tids race on the
  // mutex, not the vector).  Preserves the historical out-of-range throw.
  template <class Domain>
  Handle& get(Domain& d, unsigned tid) {
    warn_once();
    std::lock_guard<std::mutex> lock(mu_);
    Handle*& h = slots_.at(tid);
    if (h == nullptr) h = &d.join();
    return *h;
  }

 private:
  // One process-wide note instead of per-call noise: the shim exists for
  // legacy callers and migration is a mechanical scoped_handle swap, so a
  // single pointer at the replacement is all the nagging that is useful.
  static void warn_once() noexcept {
    if (!detail::shim_warned().exchange(true, std::memory_order_relaxed)) {
      std::fputs(
          "scot: note: domain.handle(tid) is deprecated; use "
          "scot::scoped_handle(domain) or AnyMap::session() instead\n",
          stderr);
    }
  }

  std::mutex mu_;
  std::vector<Handle*> slots_;
};
#endif  // SCOT_DISALLOW_TID_SHIM

// MPSC mailbox of retired-node chains, the handoff primitive for both
// custody transfers in the library:
//
//  * orphan custody — leave() donates the departing thread's leftover chain;
//    the next retire() on any live handle adopts the lot;
//  * background reclamation (smr/reclaimer.hpp, DESIGN.md §9) — mutators
//    donate their full limbo/batch chains so the domain's service thread
//    reclaims them off the operation path.
//
// donate() is one CAS push of a whole chain (linked through smr_next);
// take_all() transfers everything to exactly one consumer.  The release/
// acquire pair carries the node contents: a consumer that observes a chain
// observes every write the donor made to its nodes before donating.  Nodes
// parked here are still accounted in the domain's pending gauge — donation
// moves custody, not statistics.
class RetireMailbox {
 public:
  RetireMailbox() = default;
  RetireMailbox(const RetireMailbox&) = delete;
  RetireMailbox& operator=(const RetireMailbox&) = delete;

  bool empty() const noexcept {
    return head_.load(std::memory_order_relaxed) == nullptr;
  }

  // Donates the chain [first .. last] (linked via smr_next, last's next
  // ignored).  Lock-free.
  void donate(ReclaimNode* first, ReclaimNode* last) noexcept {
    assert(first != nullptr && last != nullptr);
    ReclaimNode* h = head_.load(std::memory_order_relaxed);
    do {
      last->smr_next = h;
    } while (!head_.compare_exchange_weak(h, first, std::memory_order_release,
                                          std::memory_order_relaxed));
    donations_.fetch_add(1, std::memory_order_relaxed);
  }

  // Adopts everything donated so far; returns the chain head (nullptr if
  // none).  The caller owns the chain exclusively.
  ReclaimNode* take_all() noexcept {
    return head_.exchange(nullptr, std::memory_order_acquire);
  }

  // Cumulative donate() count (telemetry: the reclaimer's batches-adopted
  // stat; approximate while donors run).
  std::uint64_t donations() const noexcept {
    return donations_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<ReclaimNode*> head_{nullptr};
  std::atomic<std::uint64_t> donations_{0};
};

// Historical name: the orphan mailbox was the first RetireMailbox use; the
// background reclaimer generalized it.
using OrphanList = RetireMailbox;

}  // namespace scot
