// Sequential semantics and structural invariants of the SCOT
// Natarajan-Mittal tree, typed over all SMR schemes.
#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "tests/test_util.hpp"

namespace scot {
namespace {

using Key = std::uint64_t;
using Val = std::uint64_t;

template <class Smr>
class TreeSemanticsTest : public ::testing::Test {};

TYPED_TEST_SUITE(TreeSemanticsTest, test::AllSchemes);

TYPED_TEST(TreeSemanticsTest, EmptyTreeBehaviour) {
  TypeParam smr(test::small_config());
  NatarajanMittalTree<Key, Val, TypeParam> tree(smr);
  auto& h = smr.handle(0);
  EXPECT_FALSE(tree.contains(h, 0));
  EXPECT_FALSE(tree.erase(h, 0));
  EXPECT_FALSE(tree.get(h, 5).has_value());
  EXPECT_EQ(tree.size_unsafe(), 0u);
  EXPECT_TRUE(tree.check_structure_unsafe());
}

TYPED_TEST(TreeSemanticsTest, InsertFindEraseSingle) {
  TypeParam smr(test::small_config());
  NatarajanMittalTree<Key, Val, TypeParam> tree(smr);
  auto& h = smr.handle(0);
  EXPECT_TRUE(tree.insert(h, 10, 100));
  EXPECT_TRUE(tree.contains(h, 10));
  EXPECT_EQ(tree.get(h, 10).value_or(0), 100u);
  EXPECT_FALSE(tree.insert(h, 10, 200)) << "duplicate";
  EXPECT_EQ(tree.get(h, 10).value_or(0), 100u) << "duplicate keeps old value";
  EXPECT_TRUE(tree.erase(h, 10));
  EXPECT_FALSE(tree.erase(h, 10));
  EXPECT_FALSE(tree.contains(h, 10));
  EXPECT_EQ(tree.size_unsafe(), 0u);
  EXPECT_TRUE(tree.check_structure_unsafe());
}

TYPED_TEST(TreeSemanticsTest, ManyKeysAscending) {
  TypeParam smr(test::small_config());
  NatarajanMittalTree<Key, Val, TypeParam> tree(smr);
  auto& h = smr.handle(0);
  for (Key k = 0; k < 300; ++k) ASSERT_TRUE(tree.insert(h, k, k * 2));
  EXPECT_EQ(tree.size_unsafe(), 300u);
  EXPECT_TRUE(tree.check_structure_unsafe());
  for (Key k = 0; k < 300; ++k) {
    ASSERT_TRUE(tree.contains(h, k)) << k;
    ASSERT_EQ(tree.get(h, k).value_or(~0ull), k * 2);
  }
  EXPECT_FALSE(tree.contains(h, 300));
}

TYPED_TEST(TreeSemanticsTest, ManyKeysDescendingThenEraseAll) {
  TypeParam smr(test::small_config());
  NatarajanMittalTree<Key, Val, TypeParam> tree(smr);
  auto& h = smr.handle(0);
  for (Key k = 300; k-- > 0;) ASSERT_TRUE(tree.insert(h, k, k));
  for (Key k = 0; k < 300; ++k) ASSERT_TRUE(tree.erase(h, k)) << k;
  EXPECT_EQ(tree.size_unsafe(), 0u);
  EXPECT_TRUE(tree.check_structure_unsafe());
  // Tree is reusable after full drain.
  EXPECT_TRUE(tree.insert(h, 42, 0));
  EXPECT_TRUE(tree.contains(h, 42));
}

TYPED_TEST(TreeSemanticsTest, RandomInsertEraseMirrorsReferenceSet) {
  TypeParam smr(test::small_config());
  NatarajanMittalTree<Key, Val, TypeParam> tree(smr);
  auto& h = smr.handle(0);
  std::set<Key> ref;
  Xoshiro256 rng(2026);
  for (int i = 0; i < 20000; ++i) {
    const Key k = rng.next_in(200);
    if (rng.next_in(2)) {
      EXPECT_EQ(tree.insert(h, k, k), ref.insert(k).second) << "step " << i;
    } else {
      EXPECT_EQ(tree.erase(h, k), ref.erase(k) == 1) << "step " << i;
    }
  }
  EXPECT_EQ(tree.size_unsafe(), ref.size());
  for (Key k = 0; k < 200; ++k) {
    EXPECT_EQ(tree.contains(h, k), ref.count(k) == 1) << k;
  }
  EXPECT_TRUE(tree.check_structure_unsafe());
}

TYPED_TEST(TreeSemanticsTest, BoundaryKeys) {
  TypeParam smr(test::small_config());
  NatarajanMittalTree<Key, Val, TypeParam> tree(smr);
  auto& h = smr.handle(0);
  const Key hi = std::numeric_limits<Key>::max();
  EXPECT_TRUE(tree.insert(h, 0, 1));
  EXPECT_TRUE(tree.insert(h, hi, 2));
  EXPECT_TRUE(tree.contains(h, 0));
  EXPECT_TRUE(tree.contains(h, hi))
      << "max key must not collide with the sentinel infinities";
  EXPECT_TRUE(tree.erase(h, hi));
  EXPECT_TRUE(tree.contains(h, 0));
  EXPECT_TRUE(tree.erase(h, 0));
}

TYPED_TEST(TreeSemanticsTest, EraseLeftAndRightChildren) {
  // Deleting a leaf removes its parent and promotes the sibling: exercise
  // both sibling orientations explicitly.
  TypeParam smr(test::small_config());
  NatarajanMittalTree<Key, Val, TypeParam> tree(smr);
  auto& h = smr.handle(0);
  ASSERT_TRUE(tree.insert(h, 50, 0));
  ASSERT_TRUE(tree.insert(h, 25, 0));  // left of 50
  ASSERT_TRUE(tree.insert(h, 75, 0));  // right of 50
  EXPECT_TRUE(tree.erase(h, 25));      // promotes right sibling upward
  EXPECT_TRUE(tree.contains(h, 50));
  EXPECT_TRUE(tree.contains(h, 75));
  EXPECT_TRUE(tree.check_structure_unsafe());
  EXPECT_TRUE(tree.erase(h, 75));  // promotes left sibling upward
  EXPECT_TRUE(tree.contains(h, 50));
  EXPECT_EQ(tree.size_unsafe(), 1u);
  EXPECT_TRUE(tree.check_structure_unsafe());
}

TYPED_TEST(TreeSemanticsTest, DeletionsRetireParentAndLeaf) {
  TypeParam smr(test::small_config());
  NatarajanMittalTree<Key, Val, TypeParam> tree(smr);
  auto& h = smr.handle(0);
  ASSERT_TRUE(tree.insert(h, 1, 0));
  ASSERT_TRUE(tree.insert(h, 2, 0));
  const std::int64_t before = smr.pending_nodes();
  ASSERT_TRUE(tree.erase(h, 1));
  EXPECT_EQ(smr.pending_nodes(), before + 2)
      << "a delete must retire exactly the leaf and its parent";
}

TYPED_TEST(TreeSemanticsTest, CustomComparator) {
  TypeParam smr(test::small_config());
  NatarajanMittalTree<Key, Val, TypeParam, std::greater<Key>> tree(smr);
  auto& h = smr.handle(0);
  for (Key k : {5ull, 1ull, 9ull, 3ull}) ASSERT_TRUE(tree.insert(h, k, k));
  EXPECT_FALSE(tree.insert(h, 9, 0));
  EXPECT_TRUE(tree.erase(h, 3));
  EXPECT_TRUE(tree.contains(h, 5));
  EXPECT_TRUE(tree.contains(h, 1));
  EXPECT_EQ(tree.size_unsafe(), 3u);
}

}  // namespace
}  // namespace scot
