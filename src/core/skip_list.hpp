// Lock-free skip list with SCOT traversals — the remaining rows of the
// paper's Table 1.
//
// Two variants via Traits:
//  * kEagerUnlink = false (default): Fraser-style **optimistic traversal**
//    (paper: "Fraser's Skip List — Fast, incompatible with HP* without
//    SCOT").  Searches cross chains of logically deleted nodes per level;
//    update traversals prune the chain adjacent to their settle position
//    with a single CAS per level.  SCOT's dangerous-zone validation (last
//    safe node still points at the first unsafe node, checked after every
//    in-zone protection) makes this safe under HP/HE/IBR/Hyaline-1S.
//  * kEagerUnlink = true: Herlihy-Shavit-style **eager unlink** (paper:
//    "moderately fast, already HP-compatible"): every encountered marked
//    node is unlinked immediately, restarting on CAS failure — including by
//    searches.
//
// Structure: a tower node owns `height` forward links, each carrying the
// level's mark bit (marking proceeds from the top level down; the level-0
// mark is the deletion's linearization point).  Level lists are Harris
// lists sharing the nodes.  Physical unlinking never retires: a node can be
// linked at several levels at once, so only its deleting *owner* retires
// it, after a full traversal pass confirms it is unlinked from every level
// (absence from the adjacent chain at each level implies absence from the
// level, because all intermediate nodes with smaller keys are marked).
//
// Protection roles per level (API v2 guard slots, ascending-dup
// discipline as in the list): hp.next, hp.curr, hp.prev (last safe),
// hp.unsafe (first unsafe), plus hp.own — held by insert() on its *own*
// node across the upper-level linking phase.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>

#include "common/align.hpp"
#include "common/asymfence.hpp"
#include "common/stable_atomic.hpp"
#include "common/xorshift.hpp"
#include "core/marked_ptr.hpp"
#include "smr/handle_registry.hpp"
#include "smr/smr.hpp"

namespace scot {

struct SkipListTraits {
  static constexpr bool kEagerUnlink = false;  // SCOT optimistic traversal
  static constexpr unsigned kMaxHeight = 12;
};

struct SkipListEagerTraits : SkipListTraits {
  static constexpr bool kEagerUnlink = true;  // Herlihy-Shavit discipline
};

template <class Key, class Value, SmrDomainV2 Smr,
          class Traits = SkipListTraits, class Compare = std::less<Key>>
class SkipList {
 public:
  static constexpr unsigned kMaxHeight = Traits::kMaxHeight;

  // Tower links are StableAtomic: nodes are pool-recycled while stale
  // optimistic readers may still protect() through them, so (re)initialising
  // a link must be an atomic store, not a plain constructor write
  // (DESIGN.md §4).
  struct Node : ReclaimNode {
    Key key;
    Value value;
    std::uint8_t rank;  // 0 = real key, 1 = +infinity tail sentinel
    std::uint8_t height;
    StableAtomic<marked_ptr<Node>> next[kMaxHeight];

    Node(const Key& k, const Value& v, std::uint8_t r, std::uint8_t hgt)
        : key(k), value(v), rank(r), height(hgt) {
      for (auto& n : next)
        n.store(marked_ptr<Node>{}, std::memory_order_relaxed);
    }
  };
  using MP = marked_ptr<Node>;
  using Link = StableAtomic<MP>;
  using Handle = typename Smr::Handle;
  using Guard = TraversalGuard<Handle>;
  using NodeSlot = ProtectionSlot<Handle, Node>;

  static constexpr unsigned kSlotsRequired = 5;

  // Slot roles in index (= ascending-dup) order.  `own` is published by
  // insert() on its own node across the upper-level linking phase: a racing
  // deletion may retire the node while a level splice is still in flight,
  // and the splice (or the untangling that follows it) dereferences it.
  struct Hp {
    NodeSlot next, curr, prev, unsafe, own;
    explicit Hp(Guard& g)
        : next(g.template slot<Node>()),
          curr(g.template slot<Node>()),
          prev(g.template slot<Node>()),
          unsafe(g.template slot<Node>()),
          own(g.template slot<Node>()) {}
  };

  explicit SkipList(Smr& smr, Compare cmp = {}) : smr_(smr), cmp_(cmp) {
    auto h = scoped_handle(smr_);
    Node* tail = h->template alloc<Node>(
        Key{}, Value{}, std::uint8_t{1}, static_cast<std::uint8_t>(kMaxHeight));
    for (unsigned l = 0; l < kMaxHeight; ++l)
      head_[l].store(MP(tail), std::memory_order_relaxed);
    // Publication fence for the relaxed head stores above; routed through
    // the TSan-aware helper because TSan does not instrument raw
    // atomic_thread_fence (and GCC warns about it under -fsanitize=thread).
    asymfence::release_fence();
  }

  ~SkipList() {
    auto sh = scoped_handle(smr_);
    auto& h = sh.get();
    Node* n = head_[0].load(std::memory_order_relaxed).ptr();
    while (n != nullptr) {
      Node* next = n->next[0].load(std::memory_order_relaxed).ptr();
      h.dealloc_unpublished(n);
      n = next;
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  bool insert(Handle& h, const Key& key, const Value& value = {}) {
    Guard guard(h);
    Hp hp(guard);
    const std::uint8_t height = random_height();
    Node* node = nullptr;
    // --- link level 0 (the insertion's linearization point) ---
    for (;;) {
      Position pos;
      if (!find(guard, hp, key, /*update=*/true, /*stop_level=*/0, nullptr,
                &pos))
        continue;
      if (pos.found) {
        if (node != nullptr) h.dealloc_unpublished(node);
        return false;
      }
      if (node == nullptr) {
        node = h.template alloc<Node>(key, value, std::uint8_t{0}, height);
        protect_own(hp, node);
        if (!guard.valid()) {
          // Hyaline refreshed its reservation to cover the fresh node; the
          // traversal state is stale, but nothing was published yet.
          guard.revalidate();
          continue;
        }
      }
      node->next[0].store(MP(pos.curr), std::memory_order_relaxed);
      MP expected(pos.curr);
      if (pos.prev_field->compare_exchange_strong(expected, MP(node),
                                                  std::memory_order_seq_cst,
                                                  std::memory_order_relaxed)) {
        break;
      }
    }
    // --- link levels 1..height-1 ---
    // The hp.own protection published above stays in place for this whole
    // phase: a concurrent erase() may mark, prune, *and retire* the node at
    // any moment, and we still dereference it below.
    for (unsigned l = 1; l < height; ++l) {
      for (;;) {
        MP cur = node->next[l].load(std::memory_order_acquire);
        if (cur.marked()) return true;  // deleted before this level was set
        Position pos;
        if (!find(guard, hp, key, /*update=*/true, l, nullptr, &pos)) continue;
        if (pos.curr == node) break;  // already linked at this level
        // Point the node's level-l link at the successor, then splice.
        if (!node->next[l].compare_exchange_strong(
                cur, MP(pos.curr), std::memory_order_seq_cst,
                std::memory_order_relaxed)) {
          continue;  // re-evaluate (possibly marked now)
        }
        MP expected(pos.curr);
        if (pos.prev_field->compare_exchange_strong(expected, MP(node),
                                                    std::memory_order_seq_cst,
                                                    std::memory_order_relaxed)) {
          // The deletion may have marked level l between our next[l] CAS
          // and this splice — in which case its confirmation pass may have
          // missed the node entirely and already retired it.  Untangle the
          // node from every level before dropping our protection, so the
          // list can never hold a link to reclaimable memory.
          if (node->next[l].load(std::memory_order_seq_cst).marked()) {
            untangle(guard, hp, key, node);
            return true;
          }
          break;
        }
      }
    }
    return true;
  }

  bool erase(Handle& h, const Key& key) {
    Guard guard(h);
    Hp hp(guard);
    for (;;) {
      Position pos;
      if (!find(guard, hp, key, /*update=*/true, 0, nullptr, &pos)) continue;
      if (!pos.found) return false;
      Node* node = pos.curr;  // protected by hp.curr until we own or give up
      // Mark from the top level down; level 0 decides the winner.
      for (unsigned l = node->height; l-- > 1;) {
        MP m = node->next[l].load(std::memory_order_acquire);
        while (!m.marked()) {
          if (node->next[l].compare_exchange_weak(m, m.with_mark(),
                                                  std::memory_order_seq_cst,
                                                  std::memory_order_acquire)) {
            break;
          }
        }
      }
      MP m = node->next[0].load(std::memory_order_acquire);
      for (;;) {
        if (m.marked()) break;  // another deleter won
        if (node->next[0].compare_exchange_weak(m, m.with_mark(),
                                                std::memory_order_seq_cst,
                                                std::memory_order_acquire)) {
          // We own the deletion: unlink from every level, then retire.
          // (Only the owner ever retires a node, so cross-level pruning by
          // other traversals cannot double-free.)
          untangle(guard, hp, key, node);
          h.retire(node);
          return true;
        }
      }
      // Lost the level-0 race: help clean up, report absent.
      Position unused;
      (void)find(guard, hp, key, /*update=*/true, 0, nullptr, &unused);
      return false;
    }
  }

  bool contains(Handle& h, const Key& key) {
    Guard guard(h);
    Hp hp(guard);
    Position pos;
    while (!find(guard, hp, key, /*update=*/false, 0, nullptr, &pos)) {
    }
    return pos.found;
  }

  std::optional<Value> get(Handle& h, const Key& key) {
    Guard guard(h);
    Hp hp(guard);
    Position pos;
    while (!find(guard, hp, key, /*update=*/false, 0, nullptr, &pos)) {
    }
    if (!pos.found) return std::nullopt;
    return pos.curr->value;  // protected by hp.curr
  }

  // Single-threaded observers for tests.
  std::size_t size_unsafe() const {
    std::size_t n = 0;
    const Node* c = head_[0].load(std::memory_order_acquire).ptr();
    while (c != nullptr) {
      if (c->rank == 0 && !c->next[0].load(std::memory_order_acquire).marked())
        ++n;
      c = c->next[0].load(std::memory_order_acquire).ptr();
    }
    return n;
  }

  // Every level must be a sorted sublist of level 0 (ignoring marks).
  bool check_structure_unsafe() const {
    for (unsigned l = 0; l < kMaxHeight; ++l) {
      const Node* c = head_[l].load(std::memory_order_acquire).ptr();
      const Node* prev = nullptr;
      while (c != nullptr) {
        if (prev != nullptr && c->rank == 0 && prev->rank == 0 &&
            !cmp_(prev->key, c->key)) {
          return false;  // out of order at this level
        }
        if (l >= c->height && c->rank == 0) return false;  // over-linked
        prev = c;
        c = c->next[l].load(std::memory_order_acquire).ptr();
      }
      if (prev == nullptr || prev->rank != 1) return false;  // lost the tail
    }
    return true;
  }

 private:
  struct Position {
    Link* prev_field;
    Node* curr;
    MP next;
    bool found;
    bool saw_watch;
  };

  bool key_less(const Node* n, const Key& key) const {
    return n->rank == 0 && cmp_(n->key, key);
  }
  bool key_equal(const Node* n, const Key& key) const {
    return n->rank == 0 && !cmp_(n->key, key) && !cmp_(key, n->key);
  }

  // One traversal from the top level down to `stop_level`.  Returns false
  // when the traversal must restart (the caller loops); on success fills
  // `out` with the settle position at `stop_level`.  `watch` reports
  // whether a specific node was still physically linked on the path.
  bool find(Guard& g, Hp& hp, const Key& key, bool update,
            unsigned stop_level, const Node* watch, Position* out) {
    g.revalidate();
    bool saw_watch = false;
    unsigned level = kMaxHeight - 1;
    Node* prev_node = nullptr;  // nullptr = head tower (immortal)
    Link* prev_field = &head_[level];
    MP prev_next{};
    bool in_zone = false;

    MP cm = hp.curr.protect(*prev_field);
    if (!g.valid() || cm.marked()) return fail(g);
    Node* curr = cm.ptr();

    for (;;) {
      MP next = hp.next.protect(curr->next[level]);
      if (!g.valid()) return fail(g);
      if (curr == watch) saw_watch = true;

      if (next.marked()) {
        if constexpr (Traits::kEagerUnlink) {
          // Herlihy-Shavit: unlink immediately, restart on failure —
          // searches included.
          MP expected(curr);
          if (!prev_field->compare_exchange_strong(
                  expected, next.clean(), std::memory_order_seq_cst,
                  std::memory_order_relaxed)) {
            return fail(g);
          }
          curr = next.ptr();
          hp.curr.dup_from(hp.next);
          continue;
        } else {
          // SCOT dangerous zone for this level.
          if (!in_zone) {
            in_zone = true;
            hp.unsafe.dup_from(hp.curr);
            prev_next = MP(curr);
          }
          curr = next.ptr();
          assert(curr != nullptr);  // the tail tower is never marked
          hp.curr.dup_from(hp.next);
          if (prev_field->load(std::memory_order_seq_cst) != prev_next)
            return fail(g);
          continue;
        }
      }

      if (key_less(curr, key)) {
        prev_field = &curr->next[level];
        prev_node = curr;
        hp.prev.dup_from(hp.curr);
        in_zone = false;
        prev_next = MP{};
        curr = next.ptr();
        assert(curr != nullptr);
        hp.curr.dup_from(hp.next);
        continue;
      }

      // Settled at this level: prune the adjacent chain (update mode).
      if constexpr (!Traits::kEagerUnlink) {
        if (update && in_zone && prev_next != MP(curr)) {
          MP expected = prev_next;
          if (!prev_field->compare_exchange_strong(
                  expected, MP(curr), std::memory_order_seq_cst,
                  std::memory_order_relaxed)) {
            return fail(g);
          }
          // Deliberately no retire: nodes span levels; owners retire.
        }
      }
      if (level == stop_level) {
        out->prev_field = prev_field;
        out->curr = curr;
        out->next = next;
        out->found = key_equal(curr, key);
        out->saw_watch = saw_watch;
        return true;
      }
      // Descend along the last safe node (or the head tower).
      --level;
      prev_field = prev_node ? &prev_node->next[level] : &head_[level];
      in_zone = false;
      prev_next = MP{};
      cm = hp.curr.protect(*prev_field);
      if (!g.valid()) return fail(g);
      if (cm.marked()) return fail(g);  // prev got deleted mid-descent
      curr = cm.ptr();
    }
  }

  bool fail(Guard& g) {
    ++g.handle().ds_restarts;
    return false;
  }

  // Publishes protection for a node this thread just allocated.  The local
  // atomic makes the generic protect() applicable: HP/HE publish a slot;
  // Hyaline-1S refreshes its reservation if the node is younger than it
  // (raising the restart flag the caller must honour before reusing any
  // previously read pointers).
  void protect_own(Hp& hp, Node* node) {
    std::atomic<MP> own{MP(node)};
    (void)hp.own.protect(own);
  }

  // Traverses (pruning) until `node` is no longer physically linked at any
  // level.  Callers must hold a protection on `node` or own its retirement.
  void untangle(Guard& g, Hp& hp, const Key& key, const Node* node) {
    for (;;) {
      Position pos;
      if (!find(g, hp, key, /*update=*/true, 0, node, &pos)) continue;
      if (!pos.saw_watch) return;
    }
  }

  std::uint8_t random_height() {
    thread_local Xoshiro256 rng(
        0x5eed ^ reinterpret_cast<std::uintptr_t>(&rng));
    std::uint8_t height = 1;
    while (height < kMaxHeight && (rng.next() & 1) != 0) ++height;
    return height;
  }

  alignas(kCacheLine) Link head_[kMaxHeight];
  Smr& smr_;
  [[no_unique_address]] Compare cmp_;
};

}  // namespace scot
