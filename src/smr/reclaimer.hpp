// Background reclaimer: per-domain service thread + adaptive thresholds
// (DESIGN.md §9).
//
// With `SmrConfig::background_reclaim` on, a domain runs one standing
// service thread and the mutator-side reclamation duties invert:
//
//  * retire() stays "append to the private limbo list", but on reaching the
//    effective scan threshold the mutator donates the WHOLE chain to the
//    domain's `ReclaimControl::mailbox` (one CAS — the RetireMailbox
//    machinery the orphan handoff already proved out) and rings the
//    reclaimer's doorbell.  No scan, no reservation snapshot, and — the
//    point of the exercise — no process-wide heavy barrier on any mutator.
//
//  * The service thread runs rounds: adopt every donated chain (plus any
//    orphans), then run the scheme's ONE existing scan/seal entry point,
//    which issues exactly one `asymfence::heavy_barrier()` for the whole
//    adopted backlog.  The IPI the PR 5 asymmetric-fence discipline pays per
//    scanning mutator is thereby amortized across every thread's batches.
//    Inline and background reclamation share the same scan()/seal_batch()
//    implementation — the reclaimer is just another registered handle, so
//    snapshot scratch, pool shard and stats cell all come for free.
//
//  * The service thread also owns adaptive control: when the domain is
//    configured with a `memory_target`, each round compares the pending-node
//    gauge against it and halves the effective scan_threshold/era_freq while
//    over target (floors apply), relaxing back toward the configured values
//    once pending drops below half the target.  Mutators read the effective
//    values with relaxed loads — staleness costs one round of lag, nothing
//    more.
//
// Lifecycle (first standing service thread in the codebase):
//  * start: the constructing (or calling) thread joins the reclaimer's
//    handle into the domain registry, publishes `active`, then launches the
//    thread.  start/stop are NOT thread-safe against each other — one
//    controller at a time, same contract as domain construction/destruction.
//  * stop: clear `active` (mutators revert to inline scanning and also
//    re-adopt anything still parked in the mailbox), join the thread, run
//    one final synchronous collect+reclaim, then leave() the handle — which
//    donates whatever is still reservation-protected to the orphan mailbox.
//    Custody is preserved at every step; nothing leaks (ASan-verified in
//    tests/smr/reclaimer_test.cpp).
//  * The domain destructor calls stop before drain_all(), and drain_all
//    also empties the background mailbox — so shutdown mid-donation is
//    safe.
//  * fork() note: like any thread-owning object, the reclaimer does not
//    survive fork(); a child process must not touch a domain whose parent
//    had background reclamation running.  (No fork handlers are installed —
//    the library has no other process-global state to re-arm.)
//
// The doorbell (`ReclaimerThreadBase::ring`) is deliberately lock-free on
// the mutator side: set an atomic flag and notify only if the service
// thread is observed sleeping.  A lost wakeup is bounded by
// `reclaim_interval_us` — the thread polls at that period regardless.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "obs/stats.hpp"
#include "smr/handle_registry.hpp"
#include "smr/smr_config.hpp"

namespace scot {

// The standing thread, shorn of everything domain-specific so the blocking
// machinery lives in one TU (reclaimer.cpp) instead of every scheme header.
// Embedded by value in ReclaimControl — it must outlive any mutator that
// might still ring() it, so it shares the domain's lifetime, not the
// reclaimer session's.
class ReclaimerThreadBase {
 public:
  ReclaimerThreadBase();
  ~ReclaimerThreadBase();
  ReclaimerThreadBase(const ReclaimerThreadBase&) = delete;
  ReclaimerThreadBase& operator=(const ReclaimerThreadBase&) = delete;

  // Launches the service thread; `round` runs once per wakeup.  Must not be
  // called while running() (one controller at a time).
  void start(unsigned interval_us, std::function<void()> round);

  // Stops and joins the thread (idempotent; no-op when not running).  The
  // round callback is released before returning.
  void stop();

  // Mutator-side doorbell: request a round soon.  Lock-free and safe from
  // any thread at any time, including when the thread is not running (the
  // flag is simply consumed by the next start).
  void ring() noexcept;

  bool running() const noexcept;

 private:
  struct Impl;  // mutex/condvar live behind the TU boundary
  Impl* impl_;
  std::atomic<bool> work_{false};
  std::atomic<bool> sleeping_{false};
  std::atomic<bool> running_{false};
};

// Per-domain shared state for the background path, embedded by value in
// every scheme domain.  Mutators touch only `mailbox`, the three effective
// knobs and the doorbell; the telemetry block is single-writer (the service
// thread) / racy-read (background_stats()).
struct ReclaimControl {
  RetireMailbox mailbox;

  // Effective thresholds (initialized from SmrConfig by the domain ctor;
  // retuned by the adaptive controller).  Relaxed loads on the retire path.
  std::atomic<unsigned> scan_threshold{0};
  std::atomic<unsigned> era_freq{0};

  // True while the service thread is accepting donations.  Checked with a
  // relaxed load at every retire threshold crossing; a stale `true` after
  // stop only parks the chain in the mailbox, where the now-inline mutators
  // (and the domain destructor) re-adopt it.
  std::atomic<bool> active{false};

  ReclaimerThreadBase thread;

  // Telemetry (service-thread-written; see BgReclaimStats).
  std::atomic<std::uint64_t> rounds{0};
  std::atomic<std::uint64_t> scans{0};
  std::atomic<std::uint64_t> heavy_barriers{0};
  std::atomic<std::uint64_t> nodes_adopted{0};
  std::atomic<std::uint64_t> adaptations{0};

  bool is_active() const noexcept {
    return active.load(std::memory_order_relaxed);
  }
  unsigned effective_scan_threshold() const noexcept {
    return scan_threshold.load(std::memory_order_relaxed);
  }
  unsigned effective_era_freq() const noexcept {
    return era_freq.load(std::memory_order_relaxed);
  }
};

// Snapshot of a domain's background-reclaim telemetry, readable whether or
// not the reclaimer is (still) running.  `heavy_barriers` is the round-side
// attribution count the zero-mutator-barrier acceptance test keys on: with
// background reclaim on it must equal the domain-wide obs heavy_barriers
// aggregate.
struct BgReclaimStats {
  bool active = false;
  unsigned effective_scan_threshold = 0;
  unsigned effective_era_freq = 0;
  std::uint64_t rounds = 0;
  std::uint64_t scans = 0;
  std::uint64_t heavy_barriers = 0;
  std::uint64_t batches_donated = 0;  // mailbox donate() count (mutator side)
  std::uint64_t nodes_adopted = 0;
  std::uint64_t adaptations = 0;
};

inline BgReclaimStats bg_stats_of(const ReclaimControl& c) noexcept {
  BgReclaimStats s;
  s.active = c.active.load(std::memory_order_relaxed);
  s.effective_scan_threshold = c.effective_scan_threshold();
  s.effective_era_freq = c.effective_era_freq();
  s.rounds = c.rounds.load(std::memory_order_relaxed);
  s.scans = c.scans.load(std::memory_order_relaxed);
  s.heavy_barriers = c.heavy_barriers.load(std::memory_order_relaxed);
  s.batches_donated = c.mailbox.donations();
  s.nodes_adopted = c.nodes_adopted.load(std::memory_order_relaxed);
  s.adaptations = c.adaptations.load(std::memory_order_relaxed);
  return s;
}

// The domain-typed half of the service: owns the reclaimer's registered
// handle and the round/adapt logic.  Domain must provide:
//   reclaim_control()          -> ReclaimControl&
//   join() / leave(Handle&)    -> registry membership
//   config(), pending_nodes()
//   counts_heavy_barrier_per_reclaim() -> bool (fence path != classic)
// and its Handle must provide the two background hooks:
//   bg_collect()  -> unsigned  adopt mailbox + orphans into own limbo/batch
//   bg_reclaim()  -> bool      run the shared scan/seal entry point if there
//                              is anything to reclaim; true if it ran
template <class Domain>
class DomainReclaimer {
 public:
  explicit DomainReclaimer(Domain& d)
      : dom_(d),
        h_(&d.join()),
        base_scan_threshold_(
            d.reclaim_control().effective_scan_threshold()),
        base_era_freq_(d.reclaim_control().effective_era_freq()) {}

  ~DomainReclaimer() {
    if (h_ != nullptr) detach();
  }
  DomainReclaimer(const DomainReclaimer&) = delete;
  DomainReclaimer& operator=(const DomainReclaimer&) = delete;

  // One service round: adopt the backlog, reclaim it behind a single heavy
  // barrier, retune the thresholds.  Runs on the service thread only.
  void round() {
    ReclaimControl& c = dom_.reclaim_control();
    const std::uint64_t donations_before = c.mailbox.donations();
    const unsigned adopted = h_->bg_collect();
    const bool reclaimed = h_->bg_reclaim();

    bump(c.rounds, 1);
    obs::count(h_->stats_, obs::Counter::kBgRounds);
    if (adopted > 0) {
      bump(c.nodes_adopted, adopted);
      const std::uint64_t batches =
          c.mailbox.donations() - donations_before + adopted_chains_carry_;
      adopted_chains_carry_ = 0;
      obs::count(h_->stats_, obs::Counter::kBgBatchesAdopted,
                 batches > 0 ? batches : 1);
    } else {
      // Donations that raced past the take are counted with the round that
      // actually consumes them.
      adopted_chains_carry_ += c.mailbox.donations() - donations_before;
    }
    if (reclaimed) {
      bump(c.scans, 1);
      if (dom_.counts_heavy_barrier_per_reclaim()) bump(c.heavy_barriers, 1);
      // After freeing, push the recycled nodes back where mutators can
      // reach them — otherwise every free strands in this thread's shard.
      dom_.pool().donate_free_lists(h_->tid());
    }
    adapt(c);
  }

  // Post-join cleanup on the controller thread: consume what the final
  // in-thread round may have missed, then hand the handle (and any nodes a
  // live reservation still protects) back to the domain.
  void detach() {
    h_->bg_collect();
    h_->bg_reclaim();
    dom_.pool().donate_free_lists(h_->tid());
    dom_.leave(*h_);
    h_ = nullptr;
  }

 private:
  static void bump(std::atomic<std::uint64_t>& a, std::uint64_t n) noexcept {
    a.store(a.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);
  }

  // Feedback control against the pending-node gauge.  Halving pressure
  // (smaller scan batches, faster era advance) while over target converges
  // in O(log threshold) rounds; the floors keep the system out of
  // scan-per-retire thrash.  Hysteresis: relax only below target/2.
  void adapt(ReclaimControl& c) {
    const std::uint64_t target = dom_.config().memory_target;
    if (target == 0) return;
    constexpr unsigned kMinThreshold = 8;
    constexpr unsigned kMinEraFreq = 4;
    const auto pending =
        static_cast<std::uint64_t>(std::max<std::int64_t>(
            0, dom_.pending_nodes()));
    bool changed = false;
    unsigned st = c.scan_threshold.load(std::memory_order_relaxed);
    unsigned ef = c.era_freq.load(std::memory_order_relaxed);
    if (pending > target) {
      if (st > kMinThreshold) {
        c.scan_threshold.store(std::max(kMinThreshold, st / 2),
                               std::memory_order_relaxed);
        changed = true;
      }
      if (ef > kMinEraFreq) {
        c.era_freq.store(std::max(kMinEraFreq, ef / 2),
                         std::memory_order_relaxed);
        changed = true;
      }
    } else if (pending < target / 2) {
      if (st < base_scan_threshold_) {
        c.scan_threshold.store(std::min(base_scan_threshold_, st * 2),
                               std::memory_order_relaxed);
        changed = true;
      }
      if (ef < base_era_freq_) {
        c.era_freq.store(std::min(base_era_freq_, ef * 2),
                         std::memory_order_relaxed);
        changed = true;
      }
    }
    if (changed) {
      bump(c.adaptations, 1);
      obs::count(h_->stats_, obs::Counter::kBgAdaptations);
    }
  }

  Domain& dom_;
  typename Domain::Handle* h_;
  const unsigned base_scan_threshold_;
  const unsigned base_era_freq_;
  std::uint64_t adopted_chains_carry_ = 0;
};

}  // namespace scot
