// Type-stable node pool backing every reclamation domain.
//
// Purpose (see DESIGN.md §4):
//  1. *Type stability.*  Memory handed out for nodes is never returned to the
//     operating system while the domain lives, and the 16-byte allocation
//     header (birth era) survives free/reuse.  Hyaline-1S relies on this to
//     read the birth era of a node that may have been concurrently reclaimed.
//  2. *Scalability.*  The paper benchmarks with mimalloc because glibc malloc
//     serializes multi-threaded churn; a per-thread free-list pool reproduces
//     the same thread-local recycling behaviour without external
//     dependencies.
//
// Concurrency contract: shard `tid` is only ever touched by the thread that
// owns handle `tid`.  Cross-thread frees (Hyaline batches reclaimed by
// whichever thread drops the last reference) go to the *freeing* thread's
// shard — memory migrates between shards exactly like mimalloc pages do.
//
// The *depot* closes the recycling loop the background reclaimer would
// otherwise break: with a service thread doing all the freeing, every
// recycled node lands in the reclaimer's shard while the mutators carve
// fresh blocks forever.  The reclaimer donates its shard's whole free-list
// chains after each round (donate_free_lists), and a mutator whose local
// list runs dry takes one whole chain before falling back to carving — one
// mutex acquisition per ~scan_threshold allocations, never per node.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

#include "common/align.hpp"
#include "common/chunked_list.hpp"
#include "smr/reclaim_node.hpp"

namespace scot {

class NodePool {
 public:
  static constexpr std::size_t kGranularity = 32;
  // Size classes cover every pooled node up to ~4KB cells so the kv layer's
  // inline value blobs (64B–4KB serving payloads) come from the same
  // per-thread shards as the small structure nodes.  Class 0 is still 32
  // bytes; the free-list array per shard grows to ~1KB, which is noise next
  // to the 256KB blocks.
  static constexpr std::size_t kNumClasses = 136;  // up to 4352-byte cells
  static constexpr std::size_t kBlockBytes = 256 * 1024;

  // `shards` is only the initial population; ensure_shards() grows the
  // directory on demand when late threads join the domain's registry.
  explicit NodePool(unsigned shards) { ensure_shards(shards == 0 ? 1 : shards); }

  // Makes shard indices [0, n) usable.  Thread-safe and lock-free (chunk
  // install is a CAS race; the count is a monotonic CAS-max); existing
  // shards never move, so references held by running threads stay valid.
  void ensure_shards(unsigned n) {
    if (n == 0) return;
    shards_.ensure(n - 1);
    unsigned cur = shard_count_.load(std::memory_order_relaxed);
    while (cur < n && !shard_count_.compare_exchange_weak(
                          cur, n, std::memory_order_release,
                          std::memory_order_relaxed)) {
    }
  }

  // High-water shard count (for statistics walks).
  unsigned shard_count() const noexcept {
    return shard_count_.load(std::memory_order_acquire);
  }

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  // Returns a pointer to `size` usable bytes preceded by an AllocHeader.
  // The caller must store the birth era into the header before publishing
  // the node.  `size` must fit the largest size class.
  void* alloc(unsigned tid, std::size_t size) {
    Shard& s = shard(tid);
    const std::size_t cls = class_of(size);
    if (ReclaimNode* n = s.free_lists[cls]) {
      s.free_lists[cls] = n->smr_next;
      assert(n->debug_state == kNodeFreed);
      ++s.reused;
      return n;
    }
    // Local list dry: adopt one whole donated chain before carving.  The
    // gauge check keeps the no-depot case (background reclaim off) free of
    // any lock traffic.
    if (depot_chains_.load(std::memory_order_relaxed) > 0) {
      if (ReclaimNode* n = depot_take(cls)) {
        s.free_lists[cls] = n->smr_next;
        assert(n->debug_state == kNodeFreed);
        ++s.reused;
        return n;
      }
    }
    return carve(s, cls);
  }

  // Returns a node to the freeing thread's shard.  The allocation header is
  // deliberately left intact (type-stability contract).
  void free(unsigned tid, void* node, std::size_t size) {
    Shard& s = shard(tid);
    const std::size_t cls = class_of(size);
    auto* n = static_cast<ReclaimNode*>(node);
    n->debug_state = kNodeFreed;
    n->smr_next = s.free_lists[cls];
    s.free_lists[cls] = n;
    ++s.freed;
  }

  // Moves every free-list chain of shard `tid` into the depot.  Must be
  // called by the shard's owner (the background reclaimer, on its own shard,
  // after a reclamation round) — the shard lists are single-owner, only the
  // depot itself is shared.  One lock covers all size classes.
  void donate_free_lists(unsigned tid) {
    Shard& s = shard(tid);
    ReclaimNode* chains[kNumClasses];
    unsigned n = 0;
    for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
      if (s.free_lists[cls] != nullptr) ++n;
      chains[cls] = s.free_lists[cls];
      s.free_lists[cls] = nullptr;
    }
    if (n == 0) return;
    {
      std::lock_guard<std::mutex> lock(depot_mu_);
      for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
        if (chains[cls] != nullptr) depot_[cls].push_back(chains[cls]);
      }
    }
    depot_chains_.fetch_add(n, std::memory_order_relaxed);
  }

  // Depot gauge (tests / introspection).
  std::uint64_t depot_chain_count() const noexcept {
    return depot_chains_.load(std::memory_order_relaxed);
  }

  // --- statistics (tests / introspection; racy snapshots by design) -------
  std::uint64_t total_block_bytes() const {
    std::uint64_t sum = 0;
    for (unsigned i = 0, n = shard_count(); i < n; ++i)
      sum += shards_[i]->block_bytes;
    return sum;
  }
  std::uint64_t total_reused() const {
    std::uint64_t sum = 0;
    for (unsigned i = 0, n = shard_count(); i < n; ++i)
      sum += shards_[i]->reused;
    return sum;
  }
  std::uint64_t total_carved() const {
    std::uint64_t sum = 0;
    for (unsigned i = 0, n = shard_count(); i < n; ++i)
      sum += shards_[i]->carved;
    return sum;
  }

  static constexpr std::size_t max_node_bytes() {
    return kNumClasses * kGranularity - sizeof(AllocHeader);
  }

 private:
  struct Shard {
    ReclaimNode* free_lists[kNumClasses] = {};
    std::vector<std::unique_ptr<std::byte[]>> blocks;
    std::byte* bump = nullptr;
    std::size_t bump_left = 0;
    std::uint64_t block_bytes = 0;
    std::uint64_t carved = 0;
    std::uint64_t reused = 0;
    std::uint64_t freed = 0;
  };

  Shard& shard(unsigned tid) {
    assert(tid < shard_count());
    return *shards_[tid];
  }

  static constexpr std::size_t class_of(std::size_t size) {
    const std::size_t total = size + sizeof(AllocHeader);
    const std::size_t cls = (total + kGranularity - 1) / kGranularity - 1;
    assert(cls < kNumClasses);
    return cls;
  }

  void* carve(Shard& s, std::size_t cls) {
    const std::size_t cell = (cls + 1) * kGranularity;
    if (s.bump_left < cell) {
      s.blocks.push_back(std::make_unique<std::byte[]>(kBlockBytes));
      s.bump = s.blocks.back().get();
      // Cells stay 16-byte aligned: operator new[] returns max-aligned
      // memory and cell sizes are multiples of 32.
      s.bump_left = kBlockBytes;
      s.block_bytes += kBlockBytes;
    }
    std::byte* cellp = s.bump;
    s.bump += cell;
    s.bump_left -= cell;
    ++s.carved;
    auto* hdr = new (cellp) AllocHeader{};
    hdr->birth_era.store(0, std::memory_order_relaxed);
    return cellp + sizeof(AllocHeader);
  }

  // Pops one chain of class `cls` from the depot (nullptr if none).  The
  // chains gauge is decremented inside the lock so it can transiently read
  // high, never low — alloc's lock-free pre-check stays conservative.
  ReclaimNode* depot_take(std::size_t cls) {
    std::lock_guard<std::mutex> lock(depot_mu_);
    auto& chains = depot_[cls];
    if (chains.empty()) return nullptr;
    ReclaimNode* head = chains.back();
    chains.pop_back();
    depot_chains_.fetch_sub(1, std::memory_order_relaxed);
    return head;
  }

  // Lazily materialized, lock-free shard directory: chunks are installed by
  // CAS and never freed while the pool lives, so Shard references obtained
  // by running threads stay valid across concurrent growth.
  AtomicChunkedArray<Padded<Shard>> shards_;
  std::atomic<unsigned> shard_count_{0};
  std::mutex depot_mu_;
  std::vector<ReclaimNode*> depot_[kNumClasses];
  std::atomic<std::uint64_t> depot_chains_{0};
};

}  // namespace scot
