// Shared configuration knobs and statistics for all reclamation domains.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string_view>

namespace scot {

namespace smr_config_detail {

// Default for SmrConfig::asymmetric_fences: on, unless SCOT_ASYM is set to a
// false-y value ("", "0", "false", "off", "no").  The env knob exists so CI
// can run the whole test matrix against both fence disciplines without
// touching any test code (the bench harness uses the --no-asym flag
// instead).
inline bool asym_fences_default() noexcept {
  static const bool v = [] {
    const char* e = std::getenv("SCOT_ASYM");
    if (e == nullptr) return true;
    const std::string_view s(e);
    return !(s.empty() || s == "0" || s == "false" || s == "off" ||
             s == "no");
  }();
  return v;
}

// Default for SmrConfig::background_reclaim: off, unless SCOT_BG is set to a
// truth-y value.  Mirrors SCOT_ASYM (inverted polarity: the reclaimer is
// opt-in) so CI can run the whole test matrix with a service thread per
// domain without touching any test code.
inline bool bg_reclaim_default() noexcept {
  static const bool v = [] {
    const char* e = std::getenv("SCOT_BG");
    if (e == nullptr) return false;
    const std::string_view s(e);
    return !(s.empty() || s == "0" || s == "false" || s == "off" ||
             s == "no");
  }();
  return v;
}

}  // namespace smr_config_detail

struct SmrConfig {
  // Capacity: number of handles (threads) the domain serves.  Handle ids are
  // dense in [0, max_threads).
  unsigned max_threads = 8;

  // Limbo-list scan frequency: reclamation is attempted once per
  // `scan_threshold` retire() calls per thread.  The paper calibrates this
  // to 128 for every scheme (Section 5).
  unsigned scan_threshold = 128;

  // Global era/epoch advance frequency: the clock ticks once per `era_freq`
  // allocations (and retirements) per thread.  The paper uses 12x the thread
  // count; the benchmark harness sets that, the default suits tests.
  unsigned era_freq = 128;

  // Number of protection indices per thread for slot-based schemes (HP, HE).
  // The SCOT list needs 4, the SCOT tree needs 5.
  unsigned slots_per_thread = 8;

  // Hyaline batch capacity; 0 = auto (max_threads + 1, the minimum that
  // guarantees a distinct member node per reservation slot).
  unsigned batch_capacity = 0;

  // Maintain the domain-wide pending-node gauge (+1 retire / -1 free).  The
  // memory-overhead benchmarks sample it; throughput benchmarks may turn it
  // off.  Reads are exact when quiescent, approximate otherwise.
  bool track_stats = true;

  // Asymmetric-fence fast path, covering both reader-side publications:
  // protection (HP/HPopt protect(), HE/IBR era publication) and operation
  // activation (EBR/IBR/Hyaline begin_op; HE activates at its first slot
  // publish).  Readers publish with a release store plus a compiler
  // barrier, and the reclaimer side — limbo scans and Hyaline's
  // retire-batch handoff — issues one process-wide heavy barrier before
  // reading the reservations instead (src/common/asymfence.hpp, DESIGN.md
  // §5).  Off = the original per-call seq_cst publication.  Falls back
  // automatically to per-slot seq_cst fences when sys_membarrier is
  // unavailable.  Default honours the SCOT_ASYM env knob.
  bool asymmetric_fences = smr_config_detail::asym_fences_default();

  // Background reclaimer (smr/reclaimer.hpp, DESIGN.md §9).  When on, the
  // domain runs one service thread: mutators hand full retire batches over a
  // lock-free mailbox instead of scanning inline, and the service thread
  // amortizes the one heavy barrier per reclamation round across every
  // donated batch.  Default honours the SCOT_BG env knob (off unless set).
  bool background_reclaim = smr_config_detail::bg_reclaim_default();

  // Reclaimer round period in microseconds: the service thread wakes at
  // least this often even when no mutator rings its doorbell (a donation
  // signal can be missed by at most one period — DESIGN.md §9).
  unsigned reclaim_interval_us = 100;

  // Adaptive-control target for the pending-node gauge, in nodes (0 = no
  // adaptation).  While pending exceeds the target the reclaimer halves the
  // effective scan_threshold/era_freq (floors apply); once pending drops
  // below half the target they relax back toward the configured values.
  std::uint64_t memory_target = 0;
};

// Domain-wide counters.  `pending` drives Figures 10-12 (average number of
// retired-but-not-yet-reclaimed objects).
struct SmrCounters {
  std::atomic<std::int64_t> pending{0};
  std::atomic<std::uint64_t> retired{0};
  std::atomic<std::uint64_t> reclaimed{0};

  void on_retire(bool track) noexcept {
    if (track) {
      pending.fetch_add(1, std::memory_order_relaxed);
      retired.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void on_free(std::uint64_t n, bool track) noexcept {
    if (track && n > 0) {
      pending.fetch_sub(static_cast<std::int64_t>(n),
                        std::memory_order_relaxed);
      reclaimed.fetch_add(n, std::memory_order_relaxed);
    }
  }
};

}  // namespace scot
