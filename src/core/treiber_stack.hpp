// The Treiber lock-free LIFO stack (IBM TR RJ5118, 1986), written against
// the guard API v2.
//
// The stack is the degenerate case of the paper's discipline: one anchor
// (top_), zero-length traversals, so "restart" and "recover" coincide — a
// failed pop CAS re-reads the anchor, which *is* the whole traversal
// (DESIGN.md §11).  There is no recovery escape to count; ds_recoveries
// stays 0 by construction and the bench tables report it as such.
//
// push() needs no protection at all: it never dereferences a shared node
// (the top is only CAS-compared), so it skips the guard entirely and pays
// zero fences beyond the linking CAS.  pop() protects the top through one
// slot — protect() internally re-reads until the published value is stable,
// so the subsequent `top->next` read is on a node that cannot have been
// reclaimed — and the pop CAS is ABA-safe for the same reason: the expected
// node is protected, hence cannot have been recycled by the pool.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>

#include "common/align.hpp"
#include "common/stable_atomic.hpp"
#include "core/marked_ptr.hpp"
#include "smr/handle_registry.hpp"
#include "smr/reclaim_node.hpp"
#include "smr/smr.hpp"

namespace scot {

template <class T, SmrDomainV2 Smr>
class TreiberStack {
 public:
  struct Node : ReclaimNode {
    T value;
    StableAtomic<marked_ptr<Node>> next;
    explicit Node(const T& v = {}) : value(v), next(marked_ptr<Node>{}) {}
  };

  using MP = marked_ptr<Node>;
  using Link = StableAtomic<MP>;
  using Handle = typename Smr::Handle;
  using Guard = TraversalGuard<Handle>;

  static constexpr unsigned kSlotsRequired = 1;

  explicit TreiberStack(Smr& smr) : smr_(smr) {}

  ~TreiberStack() {
    auto sh = scoped_handle(smr_);
    auto& h = sh.get();
    Node* n = top_.load(std::memory_order_relaxed).ptr();
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed).ptr();
      h.dealloc_unpublished(n);
      n = next;
    }
  }

  TreiberStack(const TreiberStack&) = delete;
  TreiberStack& operator=(const TreiberStack&) = delete;

  void push(Handle& h, const T& value) {
    Node* n = h.template alloc<Node>(value);
    MP top = top_.load(std::memory_order_acquire);
    for (;;) {
      n->next.store(top, std::memory_order_relaxed);
      // Release on success publishes n->value and n->next to poppers.
      if (top_.compare_exchange_weak(top, MP(n), std::memory_order_release,
                                     std::memory_order_acquire)) {
        return;
      }
      // Contended-CAS retry, not a traversal restart: nothing was
      // protected or validated, so ds_restarts deliberately stays quiet.
    }
  }

  std::optional<T> pop(Handle& h) {
    Guard guard(h);
    auto slot = guard.template slot<Node>();
    for (;;) {
      Protected<Node> t = slot.protect(top_);
      if (!guard.valid()) {
        restart(guard);
        continue;
      }
      if (t.get() == nullptr) return std::nullopt;  // empty
      // Safe: t is protected, and a popped node is never re-pushed (push
      // always allocates), so t->next is immutable while t is linked.
      const MP next = t->next.load(std::memory_order_acquire);
      MP expected(t.get());
      if (top_.compare_exchange_strong(expected, next.clean(),
                                       std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
        T value = t->value;
        h.retire(t.get());
        return value;
      }
      restart(guard);  // anchor moved; the re-read is the whole traversal
    }
  }

  // Single-threaded size (tests / teardown only).
  std::size_t size_unsafe() const {
    std::size_t n = 0;
    const Node* c = top_.load(std::memory_order_acquire).ptr();
    while (c != nullptr) {
      ++n;
      c = c->next.load(std::memory_order_acquire).ptr();
    }
    return n;
  }

 private:
  void restart(Guard& g) {
    ++g.handle().ds_restarts;
    g.revalidate();
  }

  alignas(kCacheLine) Link top_{MP{}};
  Smr& smr_;
};

}  // namespace scot
