// Benchmark-harness configuration shared by every figure/table binary.
//
// Scheme/structure identity — the enums, the name tables, and the reverse
// lookups — lives in the library's runtime registries (src/smr/registry.hpp
// and src/core/registry.hpp) since API v2; this header re-exports them into
// scot::bench so every pre-v2 spelling keeps compiling.  The registries are
// the single source of truth: options_test asserts the CLI resolves
// through them.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/registry.hpp"
#include "smr/registry.hpp"
#include "smr/smr_config.hpp"

namespace scot::bench {

using scot::SchemeId;
using scot::StructureId;
using scot::kAllSchemes;
using scot::kAllStructures;
using scot::scheme_from_name;
using scot::scheme_name;
using scot::structure_from_mode;
using scot::structure_from_name;
using scot::structure_name;

// Key-access distribution of the measured phase.  Prefill always inserts
// uniformly (structure *contents* cover the range either way); the
// distribution shapes which keys the workers touch.
enum class KeyDist { kUniform, kZipfian };

inline const char* key_dist_name(KeyDist d) {
  switch (d) {
    case KeyDist::kUniform: return "uniform";
    case KeyDist::kZipfian: return "zipfian";
  }
  return "?";
}

inline std::optional<KeyDist> key_dist_from_name(std::string_view name) {
  if (name == "uniform") return KeyDist::kUniform;
  if (name == "zipfian" || name == "zipf") return KeyDist::kZipfian;
  return std::nullopt;
}

// Named read/insert/delete mixes for the common scenarios; "mixed" is the
// paper's headline workload.
struct WorkloadMix {
  int read_pct;
  int insert_pct;
  int delete_pct;
};

inline std::optional<WorkloadMix> preset_from_name(std::string_view name) {
  if (name == "mixed") return WorkloadMix{50, 25, 25};
  if (name == "read-mostly") return WorkloadMix{90, 5, 5};
  if (name == "write-heavy") return WorkloadMix{10, 45, 45};
  // YCSB-shaped serving mixes (bench_kv).  The middle component is the
  // write share: the kv harness issues it as put() (update-or-insert), the
  // integer-keyed binaries as insert.  YCSB A/B/C have no deletes.
  if (name == "ycsb-a") return WorkloadMix{50, 50, 0};
  if (name == "ycsb-b") return WorkloadMix{95, 5, 0};
  if (name == "ycsb-c") return WorkloadMix{100, 0, 0};
  return std::nullopt;
}

struct CaseConfig {
  StructureId structure = StructureId::kHList;
  SchemeId scheme = SchemeId::kEBR;
  unsigned threads = 1;
  std::uint64_t key_range = 512;
  int read_pct = 50;    // remainder split between insert and delete
  int insert_pct = 25;
  int delete_pct = 25;
  int millis = 300;
  bool sample_memory = false;
  unsigned runs = 1;  // median-of-runs (the paper uses 5)
  std::uint64_t seed = 42;
  std::size_t hash_buckets = 0;  // HashMap only; 0 = key_range / 8
  KeyDist key_dist = KeyDist::kUniform;
  double zipf_theta = 0.99;      // skew when key_dist == kZipfian; 0 < θ < 1
  bool pin_threads = false;      // pin worker t to CPU t % hw_concurrency
  std::uint64_t op_budget = 0;   // per-thread op count; 0 = timed (millis).
                                 // With a budget and a fixed seed, a run is
                                 // bit-reproducible (see bench_determinism_test).
  bool asymmetric_fences = true; // SmrConfig::asymmetric_fences for the run's
                                 // domain; --no-asym turns it off for A/B
                                 // comparison against the classic seq_cst
                                 // protect path.
  unsigned latency_sample_every = 16;  // per-op latency sampling stride: time
                                       // every Nth op into a log-bucketed
                                       // histogram (obs/histogram.hpp) and
                                       // report p50/p99/p999.  0 disables
                                       // sampling (percentiles report as 0).
  // Background reclamation (DESIGN.md §9): hand retire batches to a
  // per-domain service thread instead of scanning inline.  Defaults to the
  // SCOT_BG environment opt-in so existing invocations are unchanged;
  // --bg/--no-bg override per run.
  bool background_reclaim = smr_config_detail::bg_reclaim_default();
  unsigned reclaim_interval_us = 100;   // --reclaim-interval-us <n>
  std::uint64_t memory_target = 0;      // --memory-target <nodes>; 0 = off
  // Serving-layer (bench_kv) shape.  0 means "not a kv case": the fields
  // stay out of cell keys and JSON diffs for the integer-keyed binaries,
  // so pre-v4 baselines keep diffing clean.
  std::size_t value_size = 0;   // --value-size <bytes>: kv value payload
  std::size_t key_len = 0;      // --key-len <bytes>: kv key width (padded)
  unsigned kv_shards = 0;       // --shards <n>: KvStore shard count
  // Container (queue/stack/deque) cases only: --split pins each worker to
  // one role — even workers push, odd workers pop — instead of the
  // per-op insert/delete roll.  Ignored (and absent from cell keys) for
  // map/kv cases, so pre-v5 baselines keep diffing clean.
  bool split_workload = false;
};

struct CaseResult {
  double mops = 0;  // million operations per second (median run)
  std::uint64_t total_ops = 0;
  double seconds = 0;
  double ns_per_op = 0;      // derived: seconds / total_ops (0 if no ops)
  double cycles_per_op = 0;  // micro-SMR cells only (TSC); 0 elsewhere
  double avg_pending = 0;  // mean not-yet-reclaimed nodes over samples
  std::int64_t peak_pending = 0;
  std::uint64_t restarts = 0;
  std::uint64_t recoveries = 0;
  // Attempted-operation mix of the (median) run; deterministic for a fixed
  // seed when op_budget != 0 and runs == 1.
  std::uint64_t reads = 0;
  std::uint64_t inserts = 0;
  std::uint64_t removes = 0;
  // Sampled per-operation latency percentiles (schema v2; 0 when sampling
  // is off).  Bucket midpoints of the merged worker histograms, so values
  // carry the ≤6.25% relative bucket error documented in obs/histogram.hpp.
  double p50_ns = 0;
  double p99_ns = 0;
  double p999_ns = 0;
};

// --- paper-artifact CLI (Appendix A.5) ------------------------------------
//
//     <mode> <seconds> <keyrange> <runs> <read%> <ins%> <del%> <SCHEME>
//     <threads>
//
// Modes: listlf listwf listhm tree hash skip skiphs (maps) and queue stack
// deque (containers).  Parsing is strict: every numeric field must be a
// whole decimal number, the workload mix must sum to 100, and
// seconds/keyrange/runs/threads must be positive.  Container modes have no
// read operation, so <read%> must be 0 for them — <ins%> is the push share
// and <del%> the pop share ("50 50" is the balanced mix); <keyrange>
// doubles as the prefill size (keyrange/2 elements, like the maps).

inline constexpr const char* kCliUsage =
    "<listlf|listwf|listhm|tree|hash|skip|skiphs|queue|stack|deque> "
    "<seconds> <keyrange> "
    "<runs> <read%> <ins%> <del%> <NR|EBR|HP|HPopt|HE|IBR|HLN> <threads>";

// Whole-string decimal parse; rejects "", " 42", "4x", "1.5", overflow.
inline bool parse_decimal(std::string_view sv, long long& out) {
  if (sv.empty()) return false;
  if (sv.front() != '-' && (sv.front() < '0' || sv.front() > '9'))
    return false;  // strtoll would silently skip leading whitespace
  const std::string s(sv);
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  out = v;
  return true;
}

// Whole-string floating-point parse; rejects "", "1x", "0x1p3"-style
// surprises the same way parse_decimal does.
inline bool parse_double(std::string_view sv, double& out) {
  if (sv.empty()) return false;
  if (sv.front() != '-' && sv.front() != '.' &&
      (sv.front() < '0' || sv.front() > '9'))
    return false;  // strtod would skip leading whitespace / accept "inf"
  if (sv.find('x') != std::string_view::npos ||
      sv.find('X') != std::string_view::npos)
    return false;  // ... or accept C99 hex floats like "0x.8p0"
  const std::string s(sv);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  out = v;
  return true;
}

// --- optional flags shared by bench_cli and the figure binaries -----------
//
// Every bench binary accepts these in addition to (bench_cli) or instead of
// (figure/table binaries) positional arguments.  Unknown "--" tokens are a
// hard error: a misspelled flag must never be silently ignored.

struct BenchFlags {
  std::uint64_t seed = 42;             // --seed <n>
  std::string json_path;               // --json <path>; empty = no sink
  KeyDist dist = KeyDist::kUniform;    // --dist uniform|zipfian
  double zipf_theta = 0.99;            // --theta <0<θ<1>
  std::optional<WorkloadMix> preset;   // --preset mixed|read-mostly|write-heavy
  bool pin = false;                    // --pin: worker-thread CPU affinity
  std::uint64_t op_budget = 0;         // --ops <per-thread count>; 0 = timed
  bool asym = true;                    // --no-asym: classic seq_cst protect
  bool bg = smr_config_detail::bg_reclaim_default();
                                       // --bg/--no-bg: background reclaimer
  unsigned reclaim_interval_us = 100;  // --reclaim-interval-us <n>
  std::uint64_t memory_target = 0;     // --memory-target <nodes>; 0 = off
  std::size_t value_size = 0;          // --value-size <bytes>; 0 = binary's
                                       // default (kv binaries only)
  std::size_t key_len = 0;             // --key-len <bytes>; 0 = default
  unsigned kv_shards = 0;              // --shards <n>; 0 = binary's grid
  bool split = false;                  // --split: producer/consumer roles
                                       // (container binaries only)
  bool help = false;                   // --help seen; caller prints usage
};

inline constexpr const char* kFlagUsage =
    "[--seed <n>] [--json <path>] [--dist uniform|zipfian] [--theta <0..1>] "
    "[--preset mixed|read-mostly|write-heavy|ycsb-a|ycsb-b|ycsb-c] [--pin] "
    "[--ops <n>] [--no-asym|--asym] [--bg|--no-bg] "
    "[--reclaim-interval-us <n>] [--memory-target <nodes>] "
    "[--value-size <bytes>] [--key-len <bytes>] [--shards <n>] [--split] "
    "[--help]";

// Removes the recognised --flags (and their values) from `args`, leaving
// positional arguments in place.  Returns false with a one-line `error` on
// an unknown flag, a missing value, or a malformed value.
inline bool extract_bench_flags(std::vector<std::string>& args,
                                BenchFlags& out, std::string* error) {
  const auto fail = [error](std::string msg) {
    if (error) *error = std::move(msg);
    return false;
  };
  std::vector<std::string> rest;
  rest.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) != 0) {  // positionals may start with '-' ("-1")
      rest.push_back(a);
      continue;
    }
    // A following "--token" is the next flag, not this flag's value — treat
    // it as a missing value rather than silently swallowing that flag.
    const auto next_value = [&]() -> const std::string* {
      if (i + 1 >= args.size() || args[i + 1].rfind("--", 0) == 0)
        return nullptr;
      return &args[++i];
    };
    if (a == "--help") {
      out.help = true;
    } else if (a == "--pin") {
      out.pin = true;
    } else if (a == "--no-asym") {
      out.asym = false;
    } else if (a == "--asym") {  // explicit opt-in, for A/B scripting
      out.asym = true;
    } else if (a == "--bg") {
      out.bg = true;
    } else if (a == "--no-bg") {  // explicit opt-out, for A/B scripting
      out.bg = false;
    } else if (a == "--split") {
      out.split = true;
    } else if (a == "--reclaim-interval-us") {
      const std::string* v = next_value();
      long long n = 0;
      if (!v || !parse_decimal(*v, n) || n <= 0 ||
          n > std::numeric_limits<unsigned>::max())
        return fail("--reclaim-interval-us needs a positive interval");
      out.reclaim_interval_us = static_cast<unsigned>(n);
    } else if (a == "--memory-target") {
      const std::string* v = next_value();
      long long n = 0;
      if (!v || !parse_decimal(*v, n) || n <= 0)
        return fail("--memory-target needs a positive node count");
      out.memory_target = static_cast<std::uint64_t>(n);
    } else if (a == "--seed") {
      const std::string* v = next_value();
      long long n = 0;
      if (!v || !parse_decimal(*v, n) || n < 0)
        return fail("--seed needs a non-negative integer");
      out.seed = static_cast<std::uint64_t>(n);
    } else if (a == "--json") {
      const std::string* v = next_value();
      if (!v || v->empty()) return fail("--json needs a file path");
      out.json_path = *v;
    } else if (a == "--dist") {
      const std::string* v = next_value();
      std::optional<KeyDist> d;
      if (!v || !(d = key_dist_from_name(*v)))
        return fail("--dist needs 'uniform' or 'zipfian'");
      out.dist = *d;
    } else if (a == "--theta") {
      const std::string* v = next_value();
      double th = 0;
      if (!v || !parse_double(*v, th) || !(th > 0.0 && th < 1.0))
        return fail("--theta needs a value in (0, 1)");
      out.zipf_theta = th;
    } else if (a == "--preset") {
      const std::string* v = next_value();
      std::optional<WorkloadMix> p;
      if (!v || !(p = preset_from_name(*v)))
        return fail("--preset needs mixed, read-mostly, or write-heavy");
      out.preset = p;
    } else if (a == "--ops") {
      const std::string* v = next_value();
      long long n = 0;
      if (!v || !parse_decimal(*v, n) || n <= 0)
        return fail("--ops needs a positive per-thread operation count");
      out.op_budget = static_cast<std::uint64_t>(n);
    } else if (a == "--value-size") {
      // Upper bound is the serving layer's pooled-cell ceiling (values are
      // inline blob nodes; see src/kv/kv_hash_map.hpp max_value_bytes()).
      const std::string* v = next_value();
      long long n = 0;
      if (!v || !parse_decimal(*v, n) || n <= 0 || n > 4096)
        return fail("--value-size needs bytes in [1, 4096]");
      out.value_size = static_cast<std::size_t>(n);
    } else if (a == "--key-len") {
      const std::string* v = next_value();
      long long n = 0;
      if (!v || !parse_decimal(*v, n) || n <= 0 || n > 1024)
        return fail("--key-len needs bytes in [1, 1024]");
      out.key_len = static_cast<std::size_t>(n);
    } else if (a == "--shards") {
      // The router uses the hash's top 16 bits, so more than 65536 shards
      // can never be addressed.
      const std::string* v = next_value();
      long long n = 0;
      if (!v || !parse_decimal(*v, n) || n <= 0 || n > 65536)
        return fail("--shards needs a shard count in [1, 65536]");
      out.kv_shards = static_cast<unsigned>(n);
    } else {
      return fail("unknown flag '" + a + "'");
    }
  }
  args = std::move(rest);
  return true;
}

// Parses the paper CLI — positional `argv[1..9]` plus the optional --flags
// above, in any position — into a CaseConfig (argv[0] is the program name,
// as in main()).  Returns nullopt on malformed input; `error`, when given,
// receives a one-line reason.  `flags_out`, when given, receives the flag
// values even on failure (so callers can honour --help).  A --preset flag
// overrides the positional workload mix.
inline std::optional<CaseConfig> parse_cli(int argc, const char* const* argv,
                                           std::string* error = nullptr,
                                           BenchFlags* flags_out = nullptr) {
  const auto fail = [error](std::string msg) -> std::optional<CaseConfig> {
    if (error) *error = std::move(msg);
    return std::nullopt;
  };
  std::vector<std::string> args(argv + 1, argv + argc);
  BenchFlags flags;
  std::string flag_error;
  const bool flags_ok = extract_bench_flags(args, flags, &flag_error);
  if (flags_out) *flags_out = flags;
  if (!flags_ok) return fail(std::move(flag_error));
  if (flags.help) return fail("--help requested");
  if (args.size() != 9)
    return fail("expected exactly 9 arguments (plus optional --flags)");

  CaseConfig cfg;
  const auto structure = structure_from_mode(args[0]);
  if (!structure) return fail("unknown mode '" + args[0] + "'");
  cfg.structure = *structure;

  // Upper bounds guard the narrowing casts below: cfg.millis is an int and
  // cfg.runs/cfg.threads are unsigned, so "positive" alone is not enough.
  // Threads get a much tighter cap: every domain allocates per-thread state
  // arrays sized by max_threads, so a huge-but-representable count is a
  // memory bomb rather than merely slow.
  constexpr long long kMaxSeconds = std::numeric_limits<int>::max() / 1000;
  constexpr long long kMaxUnsigned = std::numeric_limits<unsigned>::max();
  constexpr long long kMaxThreads = 4096;

  long long seconds, range, runs, read, ins, del, threads;
  if (!parse_decimal(args[1], seconds) || seconds <= 0 ||
      seconds > kMaxSeconds)
    return fail("bad <seconds> '" + args[1] + "'");
  if (!parse_decimal(args[2], range) || range <= 0)
    return fail("bad <keyrange> '" + args[2] + "'");
  if (!parse_decimal(args[3], runs) || runs <= 0 || runs > kMaxUnsigned)
    return fail("bad <runs> '" + args[3] + "'");
  if (!parse_decimal(args[4], read) || read < 0 || read > 100)
    return fail("bad <read%> '" + args[4] + "'");
  if (!parse_decimal(args[5], ins) || ins < 0 || ins > 100)
    return fail("bad <ins%> '" + args[5] + "'");
  if (!parse_decimal(args[6], del) || del < 0 || del > 100)
    return fail("bad <del%> '" + args[6] + "'");
  if (read + ins + del != 100)
    return fail("workload mix <read%>+<ins%>+<del%> must sum to 100");

  const auto scheme = scheme_from_name(args[7]);
  if (!scheme) return fail("unknown scheme '" + args[7] + "'");
  cfg.scheme = *scheme;

  if (!parse_decimal(args[8], threads) || threads <= 0 ||
      threads > kMaxThreads)
    return fail("bad <threads> '" + args[8] + "'");

  cfg.millis = static_cast<int>(seconds * 1000);
  cfg.key_range = static_cast<std::uint64_t>(range);
  cfg.runs = static_cast<unsigned>(runs);
  cfg.read_pct = static_cast<int>(read);
  cfg.insert_pct = static_cast<int>(ins);
  cfg.delete_pct = static_cast<int>(del);
  cfg.threads = static_cast<unsigned>(threads);
  cfg.sample_memory = true;

  cfg.seed = flags.seed;
  cfg.key_dist = flags.dist;
  cfg.zipf_theta = flags.zipf_theta;
  cfg.pin_threads = flags.pin;
  cfg.op_budget = flags.op_budget;
  cfg.asymmetric_fences = flags.asym;
  cfg.background_reclaim = flags.bg;
  cfg.reclaim_interval_us = flags.reclaim_interval_us;
  cfg.memory_target = flags.memory_target;
  cfg.value_size = flags.value_size;
  cfg.key_len = flags.key_len;
  cfg.kv_shards = flags.kv_shards;
  cfg.split_workload = flags.split;
  if (flags.preset) {
    cfg.read_pct = flags.preset->read_pct;
    cfg.insert_pct = flags.preset->insert_pct;
    cfg.delete_pct = flags.preset->delete_pct;
  }
  // Container concepts have no read op; validate after the preset so
  // "queue ... --preset mixed" fails loudly instead of silently dropping
  // half the workload.  --split replaces the roll entirely, so it is only
  // meaningful for container modes.
  const ContainerKind kind = container_kind(cfg.structure);
  const bool is_container = kind == ContainerKind::kQueue ||
                            kind == ContainerKind::kStack ||
                            kind == ContainerKind::kDeque;
  if (is_container && cfg.read_pct != 0)
    return fail(std::string("<read%> must be 0 for container mode '") +
                container_kind_name(kind) +
                "' (<ins%> is the push share, <del%> the pop share)");
  if (!is_container && cfg.split_workload)
    return fail("--split only applies to queue/stack/deque modes");
  return cfg;
}

// --- environment knobs so the figure binaries scale to the host -----------
// SCOT_BENCH_MS        per-cell duration in milliseconds (default `def_ms`)
// SCOT_BENCH_THREADS   comma list of thread counts (default "1,2,4,8")
// SCOT_BENCH_RUNS      runs per cell, median reported (default 1)

inline int env_ms(int def_ms) {
  if (const char* e = std::getenv("SCOT_BENCH_MS")) return std::atoi(e);
  return def_ms;
}

inline unsigned env_runs() {
  if (const char* e = std::getenv("SCOT_BENCH_RUNS")) {
    const int v = std::atoi(e);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 1;
}

inline std::vector<unsigned> env_threads() {
  std::vector<unsigned> out;
  std::string spec = "1,2,4,8";
  if (const char* e = std::getenv("SCOT_BENCH_THREADS")) spec = e;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) {
      const long v = std::strtol(tok.c_str(), nullptr, 10);
      if (v > 0) out.push_back(static_cast<unsigned>(v));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) out = {1, 2, 4, 8};
  return out;
}

}  // namespace scot::bench
