#include "smr/node_pool.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "tests/test_util.hpp"

namespace scot {
namespace {

TEST(NodePool, AllocatesDistinctAlignedCells) {
  NodePool pool(1);
  std::set<void*> seen;
  for (int i = 0; i < 1000; ++i) {
    void* p = pool.alloc(0, 48);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate allocation";
  }
}

TEST(NodePool, FreeThenAllocReusesMemory) {
  NodePool pool(1);
  void* p = pool.alloc(0, 48);
  static_cast<ReclaimNode*>(p)->alloc_size = 48;
  pool.free(0, p, 48);
  void* q = pool.alloc(0, 48);
  EXPECT_EQ(p, q) << "same-size free-list should serve LIFO";
  EXPECT_EQ(pool.total_reused(), 1u);
}

TEST(NodePool, DifferentSizeClassesDoNotMix) {
  NodePool pool(1);
  void* small = pool.alloc(0, 24);
  pool.free(0, small, 24);
  void* big = pool.alloc(0, 200);
  EXPECT_NE(small, big) << "a 200-byte request must not reuse a 24-byte cell";
}

TEST(NodePool, BirthEraSurvivesFreeAndReuseIsMonotone) {
  // The Hyaline-1S soundness contract (DESIGN.md §4): the 16-byte header is
  // preserved across free, and a reused cell gets a newer era *before* the
  // node is published.
  NodePool pool(1);
  void* p = pool.alloc(0, 48);
  header_of(p)->birth_era.store(41, std::memory_order_release);
  pool.free(0, p, 48);
  EXPECT_EQ(header_of(p)->birth_era.load(std::memory_order_acquire), 41u)
      << "free() must not clobber the allocation header";
  void* q = pool.alloc(0, 48);
  ASSERT_EQ(p, q);
  EXPECT_EQ(header_of(q)->birth_era.load(std::memory_order_acquire), 41u)
      << "alloc() itself must not reset the header; the handle stamps it";
}

TEST(NodePool, FreelistLinkDoesNotOverlapHeader) {
  // The free-list link reuses ReclaimNode::smr_next, which lives inside the
  // node, not in the preceding header.
  NodePool pool(1);
  void* a = pool.alloc(0, 48);
  header_of(a)->birth_era.store(7, std::memory_order_release);
  void* b = pool.alloc(0, 48);
  header_of(b)->birth_era.store(8, std::memory_order_release);
  pool.free(0, a, 48);
  pool.free(0, b, 48);  // b links to a through smr_next
  EXPECT_EQ(header_of(a)->birth_era.load(std::memory_order_acquire), 7u);
  EXPECT_EQ(header_of(b)->birth_era.load(std::memory_order_acquire), 8u);
}

TEST(NodePool, ShardsAreIndependent) {
  NodePool pool(2);
  void* a = pool.alloc(0, 48);
  pool.free(0, a, 48);
  // Shard 1 must not see shard 0's free list.
  void* b = pool.alloc(1, 48);
  EXPECT_NE(a, b);
  // But shard 0 still reuses its own.
  EXPECT_EQ(pool.alloc(0, 48), a);
}

TEST(NodePool, CrossShardMigration) {
  // Hyaline frees through the reclaiming thread's shard: memory allocated by
  // shard 0 may be freed into shard 1 and reused there.
  NodePool pool(2);
  void* a = pool.alloc(0, 48);
  pool.free(1, a, 48);
  EXPECT_EQ(pool.alloc(1, 48), a);
}

TEST(NodePool, CarveStatsAdvance) {
  NodePool pool(1);
  const auto before = pool.total_carved();
  (void)pool.alloc(0, 48);
  EXPECT_EQ(pool.total_carved(), before + 1);
  EXPECT_GE(pool.total_block_bytes(), NodePool::kBlockBytes);
}

TEST(NodePool, MaxNodeBytesFitsLargestClass) {
  NodePool pool(1);
  void* p = pool.alloc(0, NodePool::max_node_bytes());
  EXPECT_NE(p, nullptr);
}

TEST(NodePool, DebugStateTracksLifecycle) {
  NodePool pool(1);
  auto* n = static_cast<ReclaimNode*>(pool.alloc(0, 48));
  n->debug_state = kNodeLive;
  n->alloc_size = 48;
  pool.free(0, n, 48);
  EXPECT_EQ(n->debug_state, kNodeFreed);
}

TEST(NodePool, ManyBlocksWhenExhausted) {
  NodePool pool(1);
  // 256 KiB blocks of 64-byte cells -> force at least two blocks.
  const int n = static_cast<int>(NodePool::kBlockBytes / 64) + 10;
  for (int i = 0; i < n; ++i) (void)pool.alloc(0, 48);
  EXPECT_GE(pool.total_block_bytes(), 2 * NodePool::kBlockBytes);
}

}  // namespace
}  // namespace scot
