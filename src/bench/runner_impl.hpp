// Per-concept measured loops (one driver per ContainerKind).
//
// Protocol (paper §5): prefill the structure to 50% of the key range, then
// run `threads` workers for `millis` ms applying the workload mix; report
// throughput, and (optionally) sample the domain-wide count of
// retired-but-unreclaimed nodes every few milliseconds.
//
// Driver contract.  Each driver is written against the *session surface* of
// its concept's type-erased facade — per-thread sessions joining the
// domain's dynamic handle registry, plus the pending/restarts/recoveries
// telemetry — and nothing else, so any value with that surface benchmarks
// identically (typed instantiations in ablation tests use the same loops):
//   run_one_map        scot::AnyMap-shaped   read/insert/delete mix over a
//                                            key range (uniform or Zipfian)
//   run_one_container  scot::AnyContainer-   push/pop mix (<ins%>/<del%>;
//   (run_one_queue/    shaped                reads are meaningless) or, with
//    _stack/_deque)                          split_workload, even workers
//                                            push and odd workers pop; deque
//                                            ends are picked per-op by an
//                                            RNG bit
// All drivers share the harness machinery: go/stop barrier, per-worker RNG
// streams seeded from (run_seed, t), stride-sampled latency histograms, the
// 2 ms pending-nodes sampler, and median_of_runs.  Every binary reaches a
// driver through the registry-driven run_case() in bench/runner.cpp, which
// dispatches on container_kind(cfg.structure).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "bench/options.hpp"
#include "common/affinity.hpp"
#include "common/backoff.hpp"
#include "common/timing.hpp"
#include "common/xorshift.hpp"
#include "common/zipf.hpp"
#include "core/core.hpp"
#include "obs/histogram.hpp"

namespace scot::bench {

namespace detail {

// SplitMix64 finalizer, used to decorrelate Zipfian ranks from key order:
// without it the hot keys would cluster at the front of the ordered
// structures and shorten exactly the traversals the benchmark measures.
inline std::uint64_t scramble(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// The domain configuration every harness run uses (paper calibration).
inline SmrConfig smr_config_for(const CaseConfig& cfg) {
  SmrConfig scfg;
  scfg.max_threads = cfg.threads;
  scfg.scan_threshold = 128;        // paper calibration
  scfg.era_freq = 12 * cfg.threads; // paper calibration
  // Hyaline's reclaim cadence is the batch handoff, not a limbo scan; the
  // library's auto capacity (max_threads + 1, the paper's 1S minimum)
  // would hand off — and, under asymmetric fences, issue a heavy barrier —
  // every handful of retires, ~25x more often than the other schemes'
  // scan_threshold.  Align it with the same per-128-retires calibration
  // (never below the structural minimum the batch/slot accounting needs).
  scfg.batch_capacity = std::max(cfg.threads + 1u,
                                 static_cast<unsigned>(scfg.scan_threshold));
  scfg.track_stats = cfg.sample_memory;
  scfg.asymmetric_fences = cfg.asymmetric_fences;
  scfg.background_reclaim = cfg.background_reclaim;
  scfg.reclaim_interval_us = cfg.reclaim_interval_us;
  scfg.memory_target = cfg.memory_target;
  return scfg;
}

// Harness bucket heuristic for HashMap cells: one shared definition so the
// typed-ablation path and the registry path benchmark the same structure.
inline std::size_t bucket_count_for(const CaseConfig& cfg) {
  return cfg.hash_buckets != 0
             ? cfg.hash_buckets
             : std::max<std::size_t>(1, cfg.key_range / 8);
}

// One measured run over a map-like value (see the header comment).
template <class MapLike>
CaseResult run_one_map(MapLike& map, const CaseConfig& cfg,
                       std::uint64_t run_seed) {
  // --- parallel prefill: unique keys, 50% of the range ---
  // Prefill always draws uniformly: the key *distribution* shapes which
  // keys the measured phase touches, not what the structure contains.
  const std::uint64_t target = cfg.key_range / 2;
  {
    std::atomic<std::uint64_t> inserted{0};
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < cfg.threads; ++t) {
      ts.emplace_back([&, t] {
        if (cfg.pin_threads) pin_this_thread(t);
        auto session = map.session();  // joins the domain for this worker
        Xoshiro256 rng(run_seed * 0x51ed2701 + t);
        while (inserted.load(std::memory_order_relaxed) < target) {
          const std::uint64_t k = rng.next_in(cfg.key_range);
          if (session.insert(k, k)) {
            inserted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : ts) t.join();
  }

  // --- measured phase ---
  // Zipfian state is shared read-only by the workers; each worker keeps its
  // own RNG, so one draw per op stays deterministic per (seed, thread).
  std::optional<Zipf> zipf;
  if (cfg.key_dist == KeyDist::kZipfian)
    zipf.emplace(cfg.key_range, cfg.zipf_theta);

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> ops(cfg.threads, 0);
  std::vector<std::uint64_t> reads(cfg.threads, 0);
  std::vector<std::uint64_t> inserts(cfg.threads, 0);
  std::vector<std::uint64_t> removes(cfg.threads, 0);
  // One latency histogram per worker (single-writer during the run), merged
  // after join — no synchronisation on the measured path beyond two clock
  // reads per sampled op.
  std::vector<obs::LatencyHistogram> latency(cfg.threads);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      if (cfg.pin_threads) pin_this_thread(t);
      // Session per worker: the handle is resolved once at join, so the
      // measured loop pays no tid lookup at all (it used to pay a cached
      // pointer-table index per op).
      auto session = map.session();
      Xoshiro256 rng(run_seed * 0x9e3779b9 + 1000003ULL * t);
      obs::LatencyHistogram& hist = latency[t];
      const unsigned lat_every = cfg.latency_sample_every;
      while (!go.load(std::memory_order_acquire)) cpu_relax();
      std::uint64_t local = 0, nread = 0, nins = 0, ndel = 0;
      const std::uint64_t budget = cfg.op_budget;
      for (;;) {
        if (budget != 0) {
          if (local >= budget) break;
        } else if (stop.load(std::memory_order_relaxed)) {
          break;
        }
        // rank+1: the SplitMix64 finalizer has a fixed point at 0, which
        // would pin the hottest rank to key 0 at the head of the list.
        const std::uint64_t k =
            zipf ? scramble(zipf->next(rng) + 1) % cfg.key_range
                 : rng.next_in(cfg.key_range);
        const auto roll = static_cast<int>(rng.next_in(100));
        const bool timed_op = lat_every != 0 && local % lat_every == 0;
        const std::uint64_t op_t0 = timed_op ? now_ns() : 0;
        if (roll < cfg.read_pct) {
          session.contains(k);
          ++nread;
        } else if (roll < cfg.read_pct + cfg.insert_pct) {
          session.insert(k, k);
          ++nins;
        } else {
          session.erase(k);
          ++ndel;
        }
        if (timed_op) hist.record(now_ns() - op_t0);
        ++local;
      }
      ops[t] = local;
      reads[t] = nread;
      inserts[t] = nins;
      removes[t] = ndel;
    });
  }

  // Memory-overhead sampler (Figures 10-12): average/peak of the pending
  // gauge, sampled every 2 ms.
  std::atomic<bool> sampler_stop{false};
  double pending_sum = 0;
  std::uint64_t pending_samples = 0;
  std::int64_t pending_peak = 0;
  std::thread sampler;
  if (cfg.sample_memory) {
    sampler = std::thread([&] {
      while (!sampler_stop.load(std::memory_order_relaxed)) {
        const std::int64_t p = map.pending_nodes();
        pending_sum += static_cast<double>(p);
        ++pending_samples;
        pending_peak = std::max(pending_peak, p);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  const std::uint64_t t0 = now_ns();
  go.store(true, std::memory_order_release);
  if (cfg.op_budget == 0) {  // timed run; a budget run stops by itself
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg.millis));
    stop.store(true, std::memory_order_relaxed);
  }
  for (auto& w : workers) w.join();
  const std::uint64_t t1 = now_ns();
  if (cfg.sample_memory) {
    sampler_stop.store(true, std::memory_order_relaxed);
    sampler.join();
  }

  CaseResult r;
  r.seconds = ns_to_sec(t1 - t0);
  for (const auto o : ops) r.total_ops += o;
  for (const auto o : reads) r.reads += o;
  for (const auto o : inserts) r.inserts += o;
  for (const auto o : removes) r.removes += o;
  r.mops = static_cast<double>(r.total_ops) / r.seconds / 1e6;
  if (r.total_ops > 0)
    r.ns_per_op = r.seconds * 1e9 / static_cast<double>(r.total_ops);
  if (pending_samples > 0)
    r.avg_pending = pending_sum / static_cast<double>(pending_samples);
  r.peak_pending = pending_peak;
  r.restarts = map.restarts();
  r.recoveries = map.recoveries();
  obs::LatencyHistogram merged;
  for (const auto& h : latency) merged.merge(h);
  if (merged.count() > 0) {
    r.p50_ns = static_cast<double>(merged.percentile(50.0));
    r.p99_ns = static_cast<double>(merged.percentile(99.0));
    r.p999_ns = static_cast<double>(merged.percentile(99.9));
  }
  return r;
}

// One measured run over a container-like value (scot::AnyContainer's
// session surface; see the header comment).  `kind` picks the ends: queues
// push at the back and pop at the front, stacks do both at the front,
// deques pick the end per op with an RNG bit.  cfg.insert_pct is the push
// share and cfg.delete_pct the pop share; with cfg.split_workload, even
// workers are pure producers and odd workers pure consumers (a lone worker
// falls back to the mixed roll so the case still terminates with ops > 0).
template <class ContainerLike>
CaseResult run_one_container(ContainerLike& c, ContainerKind kind,
                             const CaseConfig& cfg, std::uint64_t run_seed) {
  // --- parallel prefill: key_range/2 elements, like the maps ---
  const std::uint64_t target = cfg.key_range / 2;
  {
    std::atomic<std::uint64_t> pushed{0};
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < cfg.threads; ++t) {
      ts.emplace_back([&, t] {
        if (cfg.pin_threads) pin_this_thread(t);
        auto session = c.session();
        Xoshiro256 rng(run_seed * 0x51ed2701 + t);
        while (pushed.fetch_add(1, std::memory_order_relaxed) < target) {
          const std::uint64_t v = rng.next();
          if (kind == ContainerKind::kStack) {
            session.push_front(v);
          } else {
            session.push_back(v);
          }
        }
      });
    }
    for (auto& t : ts) t.join();
  }

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> ops(cfg.threads, 0);
  std::vector<std::uint64_t> pushes(cfg.threads, 0);
  std::vector<std::uint64_t> pops(cfg.threads, 0);
  std::vector<obs::LatencyHistogram> latency(cfg.threads);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      if (cfg.pin_threads) pin_this_thread(t);
      auto session = c.session();
      Xoshiro256 rng(run_seed * 0x9e3779b9 + 1000003ULL * t);
      obs::LatencyHistogram& hist = latency[t];
      const unsigned lat_every = cfg.latency_sample_every;
      const bool split = cfg.split_workload && cfg.threads > 1;
      const bool producer = t % 2 == 0;
      while (!go.load(std::memory_order_acquire)) cpu_relax();
      std::uint64_t local = 0, npush = 0, npop = 0;
      const std::uint64_t budget = cfg.op_budget;
      for (;;) {
        if (budget != 0) {
          if (local >= budget) break;
        } else if (stop.load(std::memory_order_relaxed)) {
          break;
        }
        const std::uint64_t draw = rng.next();
        const bool push =
            split ? producer
                  : static_cast<int>(draw % 100) < cfg.insert_pct;
        // For deques the low bit above decides the *mix*; use a different
        // bit for the end so the two choices stay uncorrelated.
        const bool back = (draw >> 32) & 1;
        const bool timed_op = lat_every != 0 && local % lat_every == 0;
        const std::uint64_t op_t0 = timed_op ? now_ns() : 0;
        if (push) {
          const std::uint64_t v = draw ^ (local << 1);
          switch (kind) {
            case ContainerKind::kQueue: session.push_back(v); break;
            case ContainerKind::kStack: session.push_front(v); break;
            default:
              if (back) {
                session.push_back(v);
              } else {
                session.push_front(v);
              }
              break;
          }
          ++npush;
        } else {
          if (kind == ContainerKind::kDeque && back) {
            session.pop_back();
          } else {
            session.pop_front();
          }
          ++npop;
        }
        if (timed_op) hist.record(now_ns() - op_t0);
        ++local;
      }
      ops[t] = local;
      pushes[t] = npush;
      pops[t] = npop;
    });
  }

  // Memory-overhead sampler, same cadence as the map driver.
  std::atomic<bool> sampler_stop{false};
  double pending_sum = 0;
  std::uint64_t pending_samples = 0;
  std::int64_t pending_peak = 0;
  std::thread sampler;
  if (cfg.sample_memory) {
    sampler = std::thread([&] {
      while (!sampler_stop.load(std::memory_order_relaxed)) {
        const std::int64_t p = c.pending_nodes();
        pending_sum += static_cast<double>(p);
        ++pending_samples;
        pending_peak = std::max(pending_peak, p);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  const std::uint64_t t0 = now_ns();
  go.store(true, std::memory_order_release);
  if (cfg.op_budget == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg.millis));
    stop.store(true, std::memory_order_relaxed);
  }
  for (auto& w : workers) w.join();
  const std::uint64_t t1 = now_ns();
  if (cfg.sample_memory) {
    sampler_stop.store(true, std::memory_order_relaxed);
    sampler.join();
  }

  CaseResult r;
  r.seconds = ns_to_sec(t1 - t0);
  for (const auto o : ops) r.total_ops += o;
  for (const auto o : pushes) r.inserts += o;  // pushes report as inserts
  for (const auto o : pops) r.removes += o;    // pops as removes; no reads
  r.mops = static_cast<double>(r.total_ops) / r.seconds / 1e6;
  if (r.total_ops > 0)
    r.ns_per_op = r.seconds * 1e9 / static_cast<double>(r.total_ops);
  if (pending_samples > 0)
    r.avg_pending = pending_sum / static_cast<double>(pending_samples);
  r.peak_pending = pending_peak;
  r.restarts = c.restarts();
  r.recoveries = c.recoveries();
  obs::LatencyHistogram merged;
  for (const auto& h : latency) merged.merge(h);
  if (merged.count() > 0) {
    r.p50_ns = static_cast<double>(merged.percentile(50.0));
    r.p99_ns = static_cast<double>(merged.percentile(99.0));
    r.p999_ns = static_cast<double>(merged.percentile(99.9));
  }
  return r;
}

// Named per-concept entry points (the driver contract names from the header
// comment); each fixes the end discipline for its kind.
template <class ContainerLike>
CaseResult run_one_queue(ContainerLike& c, const CaseConfig& cfg,
                         std::uint64_t run_seed) {
  return run_one_container(c, ContainerKind::kQueue, cfg, run_seed);
}
template <class ContainerLike>
CaseResult run_one_stack(ContainerLike& c, const CaseConfig& cfg,
                         std::uint64_t run_seed) {
  return run_one_container(c, ContainerKind::kStack, cfg, run_seed);
}
template <class ContainerLike>
CaseResult run_one_deque(ContainerLike& c, const CaseConfig& cfg,
                         std::uint64_t run_seed) {
  return run_one_container(c, ContainerKind::kDeque, cfg, run_seed);
}

// Median of cfg.runs fresh runs.
template <class Runner>
CaseResult median_of_runs(const CaseConfig& cfg, Runner&& one_run) {
  std::vector<CaseResult> results;
  results.reserve(cfg.runs);
  for (unsigned i = 0; i < cfg.runs; ++i)
    results.push_back(one_run(cfg.seed + i));
  std::sort(results.begin(), results.end(),
            [](const CaseResult& a, const CaseResult& b) {
              return a.mops < b.mops;
            });
  return results[results.size() / 2];  // median run
}

}  // namespace detail

}  // namespace scot::bench
