#include "bench/runner.hpp"
#include "bench/runner_impl.hpp"

namespace scot::bench {

CaseResult run_case_hp(const CaseConfig& cfg) {
  return detail::run_with_scheme<HpDomain>(cfg);
}

}  // namespace scot::bench
