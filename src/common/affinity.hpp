// Thread-affinity pinning for the benchmark worker loop.  Pinning removes
// scheduler migration noise from throughput numbers; it is opt-in (--pin)
// because on a shared CI runner pinning to busy cores can *add* noise.
#pragma once

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace scot {

// Pins the calling thread to CPU `cpu % hardware_concurrency`.  Returns
// true on success; false (and leaves affinity untouched) on failure or on
// platforms without pthread affinity.
inline bool pin_this_thread(unsigned cpu) {
#if defined(__linux__)
  const unsigned n = std::thread::hardware_concurrency();
  if (n == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % n, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace scot
