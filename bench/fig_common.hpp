// Shared scaffolding for the figure-reproduction binaries: one table per
// (structure, key range), rows = thread counts, columns = SMR schemes —
// the same series the paper plots.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench/options.hpp"
#include "bench/runner.hpp"
#include "bench/table.hpp"

namespace scot::bench {

enum class Metric { kThroughputMops, kAvgPending };

struct GridSpec {
  const char* title;
  StructureId structure;
  std::uint64_t key_range;
  Metric metric = Metric::kThroughputMops;
  int read_pct = 50;  // paper headline mix: 50r / 25i / 25d
  int insert_pct = 25;
  int delete_pct = 25;
  bool include_nr = true;  // the paper's memory figures omit NR
};

inline void run_grid(const GridSpec& spec, int def_ms) {
  const auto threads = env_threads();
  const int ms = env_ms(def_ms);
  const unsigned runs = env_runs();

  std::printf("== %s ==\n", spec.title);
  std::printf("   structure=%s range=%llu mix=%d/%d/%d ms=%d runs=%u\n",
              structure_name(spec.structure),
              static_cast<unsigned long long>(spec.key_range), spec.read_pct,
              spec.insert_pct, spec.delete_pct, ms, runs);

  std::vector<std::string> header{"threads"};
  std::vector<SchemeId> schemes;
  for (SchemeId s : kAllSchemes) {
    if (!spec.include_nr && s == SchemeId::kNR) continue;
    schemes.push_back(s);
    header.push_back(scheme_name(s));
  }
  Table t(std::move(header));
  for (unsigned th : threads) {
    std::vector<std::string> row{std::to_string(th)};
    for (SchemeId s : schemes) {
      CaseConfig cfg;
      cfg.structure = spec.structure;
      cfg.scheme = s;
      cfg.threads = th;
      cfg.key_range = spec.key_range;
      cfg.read_pct = spec.read_pct;
      cfg.insert_pct = spec.insert_pct;
      cfg.delete_pct = spec.delete_pct;
      cfg.millis = ms;
      cfg.runs = runs;
      cfg.sample_memory = spec.metric == Metric::kAvgPending;
      const CaseResult r = run_case(cfg);
      row.push_back(spec.metric == Metric::kThroughputMops
                        ? format_double(r.mops, 2)
                        : format_double(r.avg_pending, 0));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("%s\n", spec.metric == Metric::kThroughputMops
                          ? "   (Mops/s; higher is better)"
                          : "   (avg not-yet-reclaimed nodes; lower is "
                            "better; HLN reported via the domain-wide gauge)");
  std::printf("\n");
}

}  // namespace scot::bench
