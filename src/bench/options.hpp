// Benchmark-harness configuration shared by every figure/table binary.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace scot::bench {

enum class SchemeId { kNR, kEBR, kHP, kHPopt, kHE, kIBR, kHLN };
enum class StructureId {
  kHMList,
  kHList,
  kHListWF,
  kNMTree,
  kHashMap,
  kSkipList,       // Fraser-style optimistic traversal with SCOT
  kSkipListEager,  // Herlihy-Shavit-style eager unlink (baseline)
};

inline constexpr SchemeId kAllSchemes[] = {
    SchemeId::kNR, SchemeId::kEBR, SchemeId::kHP,  SchemeId::kHPopt,
    SchemeId::kHE, SchemeId::kIBR, SchemeId::kHLN};

inline const char* scheme_name(SchemeId s) {
  switch (s) {
    case SchemeId::kNR: return "NR";
    case SchemeId::kEBR: return "EBR";
    case SchemeId::kHP: return "HP";
    case SchemeId::kHPopt: return "HPopt";
    case SchemeId::kHE: return "HE";
    case SchemeId::kIBR: return "IBR";
    case SchemeId::kHLN: return "HLN";
  }
  return "?";
}

inline const char* structure_name(StructureId s) {
  switch (s) {
    case StructureId::kHMList: return "HMList";
    case StructureId::kHList: return "HList";
    case StructureId::kHListWF: return "HListWF";
    case StructureId::kNMTree: return "NMTree";
    case StructureId::kHashMap: return "HashMap";
    case StructureId::kSkipList: return "SkipList";
    case StructureId::kSkipListEager: return "SkipListHS";
  }
  return "?";
}

// Reverse lookups for the paper-artifact CLI spellings (Appendix A.5).
inline std::optional<SchemeId> scheme_from_name(std::string_view name) {
  for (SchemeId s : kAllSchemes) {
    if (name == scheme_name(s)) return s;
  }
  return std::nullopt;
}

inline std::optional<StructureId> structure_from_mode(std::string_view mode) {
  if (mode == "listlf") return StructureId::kHList;
  if (mode == "listwf") return StructureId::kHListWF;
  if (mode == "listhm") return StructureId::kHMList;
  if (mode == "tree") return StructureId::kNMTree;
  if (mode == "hash") return StructureId::kHashMap;
  if (mode == "skip") return StructureId::kSkipList;
  if (mode == "skiphs") return StructureId::kSkipListEager;
  return std::nullopt;
}

struct CaseConfig {
  StructureId structure = StructureId::kHList;
  SchemeId scheme = SchemeId::kEBR;
  unsigned threads = 1;
  std::uint64_t key_range = 512;
  int read_pct = 50;    // remainder split between insert and delete
  int insert_pct = 25;
  int delete_pct = 25;
  int millis = 300;
  bool sample_memory = false;
  unsigned runs = 1;  // median-of-runs (the paper uses 5)
  std::uint64_t seed = 42;
  std::size_t hash_buckets = 0;  // HashMap only; 0 = key_range / 8
};

struct CaseResult {
  double mops = 0;  // million operations per second (median run)
  std::uint64_t total_ops = 0;
  double seconds = 0;
  double avg_pending = 0;  // mean not-yet-reclaimed nodes over samples
  std::int64_t peak_pending = 0;
  std::uint64_t restarts = 0;
  std::uint64_t recoveries = 0;
};

// --- paper-artifact CLI (Appendix A.5) ------------------------------------
//
//     <mode> <seconds> <keyrange> <runs> <read%> <ins%> <del%> <SCHEME>
//     <threads>
//
// Modes: listlf listwf listhm tree hash skip skiphs.  Parsing is strict:
// every numeric field must be a whole decimal number, the workload mix must
// sum to 100, and seconds/keyrange/runs/threads must be positive.

inline constexpr const char* kCliUsage =
    "<listlf|listwf|listhm|tree|hash|skip|skiphs> <seconds> <keyrange> "
    "<runs> <read%> <ins%> <del%> <NR|EBR|HP|HPopt|HE|IBR|HLN> <threads>";

// Whole-string decimal parse; rejects "", " 42", "4x", "1.5", overflow.
inline bool parse_decimal(std::string_view sv, long long& out) {
  if (sv.empty()) return false;
  if (sv.front() != '-' && (sv.front() < '0' || sv.front() > '9'))
    return false;  // strtoll would silently skip leading whitespace
  const std::string s(sv);
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  out = v;
  return true;
}

// Parses `argv[1..9]` into a CaseConfig (argv[0] is the program name, as in
// main()).  Returns nullopt on malformed input; `error`, when given,
// receives a one-line reason.
inline std::optional<CaseConfig> parse_cli(int argc, const char* const* argv,
                                           std::string* error = nullptr) {
  const auto fail = [error](std::string msg) -> std::optional<CaseConfig> {
    if (error) *error = std::move(msg);
    return std::nullopt;
  };
  if (argc != 10) return fail("expected exactly 9 arguments");

  CaseConfig cfg;
  const auto structure = structure_from_mode(argv[1]);
  if (!structure) return fail(std::string("unknown mode '") + argv[1] + "'");
  cfg.structure = *structure;

  // Upper bounds guard the narrowing casts below: cfg.millis is an int and
  // cfg.runs/cfg.threads are unsigned, so "positive" alone is not enough.
  // Threads get a much tighter cap: every domain allocates per-thread state
  // arrays sized by max_threads, so a huge-but-representable count is a
  // memory bomb rather than merely slow.
  constexpr long long kMaxSeconds = std::numeric_limits<int>::max() / 1000;
  constexpr long long kMaxUnsigned = std::numeric_limits<unsigned>::max();
  constexpr long long kMaxThreads = 4096;

  long long seconds, range, runs, read, ins, del, threads;
  if (!parse_decimal(argv[2], seconds) || seconds <= 0 ||
      seconds > kMaxSeconds)
    return fail(std::string("bad <seconds> '") + argv[2] + "'");
  if (!parse_decimal(argv[3], range) || range <= 0)
    return fail(std::string("bad <keyrange> '") + argv[3] + "'");
  if (!parse_decimal(argv[4], runs) || runs <= 0 || runs > kMaxUnsigned)
    return fail(std::string("bad <runs> '") + argv[4] + "'");
  if (!parse_decimal(argv[5], read) || read < 0 || read > 100)
    return fail(std::string("bad <read%> '") + argv[5] + "'");
  if (!parse_decimal(argv[6], ins) || ins < 0 || ins > 100)
    return fail(std::string("bad <ins%> '") + argv[6] + "'");
  if (!parse_decimal(argv[7], del) || del < 0 || del > 100)
    return fail(std::string("bad <del%> '") + argv[7] + "'");
  if (read + ins + del != 100)
    return fail("workload mix <read%>+<ins%>+<del%> must sum to 100");

  const auto scheme = scheme_from_name(argv[8]);
  if (!scheme) return fail(std::string("unknown scheme '") + argv[8] + "'");
  cfg.scheme = *scheme;

  if (!parse_decimal(argv[9], threads) || threads <= 0 ||
      threads > kMaxThreads)
    return fail(std::string("bad <threads> '") + argv[9] + "'");

  cfg.millis = static_cast<int>(seconds * 1000);
  cfg.key_range = static_cast<std::uint64_t>(range);
  cfg.runs = static_cast<unsigned>(runs);
  cfg.read_pct = static_cast<int>(read);
  cfg.insert_pct = static_cast<int>(ins);
  cfg.delete_pct = static_cast<int>(del);
  cfg.threads = static_cast<unsigned>(threads);
  cfg.sample_memory = true;
  return cfg;
}

// --- environment knobs so the figure binaries scale to the host -----------
// SCOT_BENCH_MS        per-cell duration in milliseconds (default `def_ms`)
// SCOT_BENCH_THREADS   comma list of thread counts (default "1,2,4,8")
// SCOT_BENCH_RUNS      runs per cell, median reported (default 1)

inline int env_ms(int def_ms) {
  if (const char* e = std::getenv("SCOT_BENCH_MS")) return std::atoi(e);
  return def_ms;
}

inline unsigned env_runs() {
  if (const char* e = std::getenv("SCOT_BENCH_RUNS")) {
    const int v = std::atoi(e);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 1;
}

inline std::vector<unsigned> env_threads() {
  std::vector<unsigned> out;
  std::string spec = "1,2,4,8";
  if (const char* e = std::getenv("SCOT_BENCH_THREADS")) spec = e;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) {
      const long v = std::strtol(tok.c_str(), nullptr, 10);
      if (v > 0) out.push_back(static_cast<unsigned>(v));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) out = {1, 2, 4, 8};
  return out;
}

}  // namespace scot::bench
