// Atomic link words for type-stable (pool-recycled) objects.
//
// The node pool recycles memory while stale optimistic readers may still be
// issuing atomic loads against it — the paper's validate-and-restart design
// tolerates the stale *values* algorithmically (DESIGN.md §4), but
// placement-new re-construction of a `std::atomic` member performs a plain,
// non-atomic write, which is a formal C++ data race with those loads (the
// one race pair behind all of PR 2's TSan reports).  `StableAtomic` closes
// it: the default constructor deliberately writes nothing, and
// initialisation happens through a relaxed atomic store, so every access to
// the word across the node's whole reuse cycle is atomic.
#pragma once

#include <atomic>

namespace scot {

template <class T>
class StableAtomic {
 public:
  using value_type = T;

  // No write: the underlying bytes may be concurrently read by a stale
  // reader, and either the previous node's value or the constructor-body
  // store of the new node supersedes whatever is there.
  StableAtomic() noexcept {}

  // Atomic (relaxed) initialisation.  Relaxed is enough: the CAS/store that
  // later links the node into the structure provides the release edge that
  // readers synchronise with.
  explicit StableAtomic(T v) noexcept {
    a_.store(v, std::memory_order_relaxed);
  }

  ~StableAtomic() = default;
  StableAtomic(const StableAtomic&) = delete;
  StableAtomic& operator=(const StableAtomic&) = delete;

  T load(std::memory_order mo) const noexcept { return a_.load(mo); }
  void store(T v, std::memory_order mo) noexcept { a_.store(v, mo); }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) noexcept {
    return a_.compare_exchange_strong(expected, desired, success, failure);
  }
  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order success,
                             std::memory_order failure) noexcept {
    return a_.compare_exchange_weak(expected, desired, success, failure);
  }

 private:
  // The union suppresses std::atomic's C++20 value-initialising default
  // constructor; all member access goes through atomic operations.  The
  // atomic's storage is engaged for the lifetime of the StableAtomic (its
  // constructors either store into it or leave the prior bytes in place —
  // the type-stability contract of the pool).
  union {
    std::atomic<T> a_;
  };
};

}  // namespace scot
