// Throughput comparison between two BenchReports, cell-by-cell.  The logic
// lives here (not in the bench_diff binary) so the threshold behaviour is
// unit-testable.
#pragma once

#include <string>
#include <vector>

#include "bench/report/report.hpp"

namespace scot::bench {

struct DiffOptions {
  // A cell regresses when its throughput drops by more than this percentage
  // relative to the baseline.
  double threshold_pct = 5.0;
};

struct CellDelta {
  std::string key;  // cell_key() of the matched pair
  double base_mops = 0;
  double cand_mops = 0;
  double delta_pct = 0;  // (cand - base) / base * 100; + is faster
  bool regression = false;
};

struct DiffReport {
  std::vector<CellDelta> deltas;           // cells present in both reports
  std::vector<std::string> only_baseline;  // keys the candidate is missing
  std::vector<std::string> only_candidate;
  int regressions = 0;
  // Hardware comparability: throughput deltas between runs captured on
  // machines with different hardware-thread counts measure the machines,
  // not the code (the committed 1-core baseline vs. a multi-core CI runner
  // being the motivating case).  `hw_mismatch` is set when both reports
  // recorded a nonzero meta.hardware_threads and they differ; bench_diff
  // warns on it, and fails under --strict-hw.
  unsigned baseline_hw_threads = 0;
  unsigned candidate_hw_threads = 0;
  bool hw_mismatch = false;
};

DiffReport diff_reports(const BenchReport& baseline,
                        const BenchReport& candidate,
                        const DiffOptions& options = {});

}  // namespace scot::bench
