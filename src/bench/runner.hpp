// Entry point of the benchmark harness: runs one (structure, scheme,
// threads, workload) cell and reports throughput / memory overhead /
// restart statistics.  The template instantiations live in one translation
// unit per scheme (runner_<scheme>.cpp) to keep compile times parallel.
#pragma once

#include "bench/options.hpp"

namespace scot::bench {

CaseResult run_case(const CaseConfig& cfg);

// Per-scheme dispatchers (implemented in runner_<scheme>.cpp).
CaseResult run_case_nr(const CaseConfig& cfg);
CaseResult run_case_ebr(const CaseConfig& cfg);
CaseResult run_case_hp(const CaseConfig& cfg);
CaseResult run_case_hpopt(const CaseConfig& cfg);
CaseResult run_case_he(const CaseConfig& cfg);
CaseResult run_case_ibr(const CaseConfig& cfg);
CaseResult run_case_hyaline(const CaseConfig& cfg);

}  // namespace scot::bench
