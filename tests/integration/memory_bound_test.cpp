// Theorem 1 of the paper: with HP, a SCOT structure's total unreclaimed
// memory is O(|D| + N) — concretely at most H*N protected nodes plus N*R
// limbo slack — even while traversals sit inside dangerous zones.  The
// companion EBR runs demonstrate the contrast the paper draws in Figures
// 10-12 (EBR's relaxed reclamation keeps far more garbage around).
#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace scot {
namespace {

using Key = std::uint64_t;
using Val = std::uint64_t;

template <class Smr, class DS>
std::int64_t churn_pending(unsigned threads, int iters, Key range) {
  auto cfg = test::small_config(threads);
  cfg.scan_threshold = 64;
  // small_config's test default era_freq (8) advances EBR's epoch so fast
  // that EBR reclaims almost as promptly as HP: its garbage plateau (one
  // epoch window, era_freq x threads retirements) lands right at HP's
  // limbo-threshold sawtooth cap (scan_threshold x threads), reducing the
  // EbrKeepsMoreGarbage comparison below to sampling noise.  Slow the
  // clock until the epoch window clearly dominates that cap — this is the
  // direction of the paper's calibration too (era ticks are rarer than
  // scans, §5).  HP ignores the knob entirely, so the Theorem-1 bounds are
  // unaffected.
  cfg.era_freq = 4 * cfg.scan_threshold;
  Smr smr(cfg);
  std::int64_t peak = 0;
  {
    DS ds(smr);
    std::atomic<std::int64_t> observed_peak{0};
    test::run_threads(threads, [&](unsigned tid) {
      auto& h = smr.handle(tid);
      Xoshiro256 rng(tid + 29);
      for (int i = 0; i < iters; ++i) {
        const Key k = rng.next_in(range);
        if (rng.next_in(2)) {
          ds.insert(h, k, k);
        } else {
          ds.erase(h, k);
        }
        if ((i & 1023) == 0) {
          std::int64_t p = smr.pending_nodes();
          std::int64_t cur = observed_peak.load();
          while (p > cur && !observed_peak.compare_exchange_weak(cur, p)) {
          }
        }
      }
    });
    peak = observed_peak.load();
  }
  return peak;
}

TEST(MemoryBound, HpListPendingStaysWithinTheorem1Bound) {
  constexpr unsigned kThreads = 4;
  constexpr unsigned kSlots = 8;   // H
  constexpr unsigned kScan = 64;   // R
  const std::int64_t bound = kSlots * kThreads + kThreads * kScan;
  const std::int64_t peak = churn_pending<HpDomain, HarrisList<Key, Val, HpDomain>>(
      kThreads, test::scaled_iters(60000), 64);
  EXPECT_LE(peak, 2 * bound) << "peak pending exceeded the H*N + N*R bound "
                                "(x2 slack for sampling jitter)";
}

TEST(MemoryBound, HpTreePendingStaysWithinTheorem1Bound) {
  constexpr unsigned kThreads = 4;
  const std::int64_t bound = 8 * kThreads + kThreads * 64;
  const std::int64_t peak =
      churn_pending<HpDomain, NatarajanMittalTree<Key, Val, HpDomain>>(
          kThreads, test::scaled_iters(60000), 64);
  EXPECT_LE(peak, 2 * bound);
}

// Median peak over `runs` independent mini-runs; the garbage-count
// comparison below is statistical, and a single shrunk run is too noisy.
template <class Smr, class DS>
std::int64_t median_peak(unsigned threads, int iters, Key range, int runs) {
  std::vector<std::int64_t> peaks;
  peaks.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i)
    peaks.push_back(churn_pending<Smr, DS>(threads, iters, range));
  std::sort(peaks.begin(), peaks.end());
  return peaks[peaks.size() / 2];
}

TEST(MemoryBound, EbrKeepsMoreGarbageThanHpUnderSameChurn) {
  // The paper's Figure 10 ordering: HP lowest, EBR highest.  On 2 cores the
  // gap is narrower but the ordering is stable — at full iterations.  At the
  // default 10x smoke shrink a single run flaked ~1 in 5, so smoke mode
  // shrinks this test less (4x) and compares medians of 3 mini-runs; the
  // full-scale run stays a single comparison.
  const bool smoke = test::smoke_mode();
  const int iters = smoke ? test::scaled_iters(60000, /*divisor=*/4) : 60000;
  const int runs = smoke ? 3 : 1;
  const std::int64_t hp_peak =
      median_peak<HpDomain, HarrisList<Key, Val, HpDomain>>(4, iters, 64, runs);
  const std::int64_t ebr_peak =
      median_peak<EbrDomain, HarrisList<Key, Val, EbrDomain>>(4, iters, 64,
                                                              runs);
  EXPECT_GE(ebr_peak, hp_peak)
      << "EBR should never keep less garbage than HP under equal churn";
}

TEST(MemoryBound, StalledTraverserDoesNotUnboundHpMemory) {
  // A thread parked mid-operation (holding hazard pointers over a marked
  // chain) must not prevent HP from reclaiming unrelated churn.
  auto cfg = test::small_config(3);
  cfg.scan_threshold = 64;
  HpDomain smr(cfg);
  HarrisList<Key, Val, HpDomain> list(smr);
  auto& h0 = smr.handle(0);
  for (Key k = 0; k < 32; ++k) ASSERT_TRUE(list.insert(h0, k, k));
  // Simulate the stalled traverser: protections held, op never ends.
  auto& stalled = smr.handle(2);
  stalled.begin_op();
  std::atomic<marked_ptr<ListNode<Key, Val>>>* fake = nullptr;
  (void)fake;
  // (Holding live protections is exercised via the SMR-layer robustness
  // tests; here the stalled thread simply keeps its op open.)
  test::run_threads(2, [&](unsigned tid) {
    auto& h = smr.handle(tid);
    Xoshiro256 rng(tid);
    const int iters = test::scaled_iters(40000);
    for (int i = 0; i < iters; ++i) {
      const Key k = rng.next_in(64);
      if (rng.next_in(2)) {
        list.insert(h, k, k);
      } else {
        list.erase(h, k);
      }
    }
  });
  EXPECT_LT(smr.pending_nodes(), 1024)
      << "HP must stay bounded with a stalled participant";
  stalled.end_op();
}

TEST(MemoryBound, PendingDrainsToNearZeroAtQuiescence) {
  auto cfg = test::small_config(4);
  cfg.scan_threshold = 16;
  HpDomain smr(cfg);
  {
    HarrisList<Key, Val, HpDomain> list(smr);
    test::run_threads(4, [&](unsigned tid) {
      auto& h = smr.handle(tid);
      Xoshiro256 rng(tid);
      const int iters = test::scaled_iters(20000);
      for (int i = 0; i < iters; ++i) {
        const Key k = rng.next_in(64);
        if (rng.next_in(2)) {
          list.insert(h, k, k);
        } else {
          list.erase(h, k);
        }
      }
    });
    // Force residual limbo lists through scans.
    for (unsigned t = 0; t < 4; ++t) smr.handle(t).scan();
    EXPECT_LT(smr.pending_nodes(), 4 * 16 + 64);
  }
}

}  // namespace
}  // namespace scot
