// Parameterized property sweep: every (structure, workload-shape) cell runs
// a randomized concurrent workload and then checks the sequential-coherence
// property (contains == erase for every key at quiescence) plus structure
// invariants.  This is the widest net in the suite; each combination is a
// distinct ctest case.
#include <gtest/gtest.h>

#include <tuple>

#include "tests/test_util.hpp"

namespace scot {
namespace {

using Key = std::uint64_t;
using Val = std::uint64_t;

struct SweepParam {
  unsigned threads;
  Key range;
  int write_pct;  // of 100; remainder are reads
  const char* label;
};

std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
  return os << p.label;
}

class MixedStressSweep : public ::testing::TestWithParam<SweepParam> {};

template <class Smr, class DS>
void sweep_body(const SweepParam& p, int iters) {
  Smr smr(test::small_config(p.threads));
  DS ds(smr);
  test::run_threads(p.threads, [&](unsigned tid) {
    auto& h = smr.handle(tid);
    Xoshiro256 rng(tid * 1299709 + p.range);
    for (int i = 0; i < iters; ++i) {
      const Key k = rng.next_in(p.range);
      const auto roll = static_cast<int>(rng.next_in(100));
      if (roll >= p.write_pct) {
        ds.contains(h, k);
      } else if (roll % 2 == 0) {
        ds.insert(h, k, k);
      } else {
        ds.erase(h, k);
      }
    }
  });
  auto& h = smr.handle(0);
  for (Key k = 0; k < p.range; ++k) {
    { const bool was_present = ds.contains(h, k); const bool erased = ds.erase(h, k); ASSERT_EQ(was_present, erased) << "key " << k; }
  }
  ASSERT_EQ(ds.size_unsafe(), 0u);
}

TEST_P(MixedStressSweep, HarrisListUnderHp) {
  sweep_body<HpDomain, HarrisList<Key, Val, HpDomain>>(
      GetParam(), test::scaled_iters(15000));
}

TEST_P(MixedStressSweep, HarrisListUnderHyaline) {
  sweep_body<HyalineDomain, HarrisList<Key, Val, HyalineDomain>>(
      GetParam(), test::scaled_iters(15000));
}

TEST_P(MixedStressSweep, HarrisListUnderIbr) {
  sweep_body<IbrDomain, HarrisList<Key, Val, IbrDomain>>(
      GetParam(), test::scaled_iters(15000));
}

TEST_P(MixedStressSweep, HarrisMichaelUnderHe) {
  sweep_body<HeDomain, HarrisMichaelList<Key, Val, HeDomain>>(
      GetParam(), test::scaled_iters(15000));
}

TEST_P(MixedStressSweep, WaitFreeListUnderHpOpt) {
  sweep_body<HpOptDomain,
             HarrisList<Key, Val, HpOptDomain, HarrisListWaitFreeTraits>>(
      GetParam(), test::scaled_iters(15000));
}

template <class Smr>
void tree_sweep_body(const SweepParam& p, int iters) {
  Smr smr(test::small_config(p.threads));
  NatarajanMittalTree<Key, Val, Smr> tree(smr);
  test::run_threads(p.threads, [&](unsigned tid) {
    auto& h = smr.handle(tid);
    Xoshiro256 rng(tid * 31 + 11);
    for (int i = 0; i < iters; ++i) {
      const Key k = rng.next_in(p.range);
      const auto roll = static_cast<int>(rng.next_in(100));
      if (roll >= p.write_pct) {
        tree.contains(h, k);
      } else if (roll % 2 == 0) {
        tree.insert(h, k, k);
      } else {
        tree.erase(h, k);
      }
    }
  });
  ASSERT_TRUE(tree.check_structure_unsafe());
  auto& h = smr.handle(0);
  for (Key k = 0; k < p.range; ++k) {
    { const bool was_present = tree.contains(h, k); const bool erased = tree.erase(h, k); ASSERT_EQ(was_present, erased) << "key " << k; }
  }
}

TEST_P(MixedStressSweep, TreeUnderHp) {
  tree_sweep_body<HpDomain>(GetParam(), test::scaled_iters(15000));
}

TEST_P(MixedStressSweep, TreeUnderHyaline) {
  tree_sweep_body<HyalineDomain>(GetParam(), test::scaled_iters(15000));
}

TEST_P(MixedStressSweep, TreeUnderEbr) {
  tree_sweep_body<EbrDomain>(GetParam(), test::scaled_iters(15000));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MixedStressSweep,
    ::testing::Values(
        SweepParam{2, 8, 50, "t2_r8_w50"},
        SweepParam{2, 128, 50, "t2_r128_w50"},
        SweepParam{4, 8, 50, "t4_r8_w50"},
        SweepParam{4, 64, 20, "t4_r64_w20"},
        SweepParam{4, 64, 100, "t4_r64_w100"},
        SweepParam{4, 1024, 50, "t4_r1024_w50"},
        SweepParam{8, 16, 50, "t8_r16_w50"},
        SweepParam{8, 256, 80, "t8_r256_w80"}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace scot
