// Benchmark-harness smoke tests: every figure binary funnels through
// run_case(), so a short run per scheme/structure here guards the whole
// bench/ directory against bit-rot.
#include <gtest/gtest.h>

#include <cstdlib>

#include "bench/options.hpp"
#include "bench/runner.hpp"
#include "bench/table.hpp"

namespace scot::bench {
namespace {

CaseConfig tiny_case(StructureId s, SchemeId r) {
  CaseConfig cfg;
  cfg.structure = s;
  cfg.scheme = r;
  cfg.threads = 2;
  cfg.key_range = 64;
  cfg.millis = 30;
  cfg.sample_memory = true;
  return cfg;
}

TEST(BenchHarness, RunsEverySchemeOnTheScotList) {
  for (SchemeId s : kAllSchemes) {
    CaseResult r = run_case(tiny_case(StructureId::kHList, s));
    EXPECT_GT(r.total_ops, 0u) << scheme_name(s);
    EXPECT_GT(r.mops, 0.0) << scheme_name(s);
    EXPECT_GE(r.seconds, 0.02) << scheme_name(s);
  }
}

TEST(BenchHarness, RunsEveryStructureUnderHp) {
  for (StructureId st :
       {StructureId::kHMList, StructureId::kHList, StructureId::kHListWF,
        StructureId::kNMTree, StructureId::kHashMap}) {
    CaseResult r = run_case(tiny_case(st, SchemeId::kHP));
    EXPECT_GT(r.total_ops, 0u) << structure_name(st);
  }
}

TEST(BenchHarness, MemorySamplerReportsPending) {
  CaseConfig cfg = tiny_case(StructureId::kHList, SchemeId::kEBR);
  cfg.millis = 100;
  cfg.key_range = 512;
  CaseResult r = run_case(cfg);
  // EBR under churn always has *some* retired-but-unreclaimed nodes.
  EXPECT_GT(r.peak_pending, 0);
  EXPECT_GE(r.avg_pending, 0.0);
}

TEST(BenchHarness, NrNeverReclaims) {
  CaseConfig cfg = tiny_case(StructureId::kHList, SchemeId::kNR);
  cfg.millis = 60;
  CaseResult r = run_case(cfg);
  EXPECT_GT(r.peak_pending, 0) << "NR leaks by design";
}

TEST(BenchHarness, RestartCountersSurface) {
  CaseConfig cfg = tiny_case(StructureId::kHMList, SchemeId::kHP);
  cfg.threads = 4;
  cfg.key_range = 16;
  cfg.millis = 80;
  CaseResult r = run_case(cfg);
  // The HM list restarts under contention (Table 2); on 2 cores the count
  // may be modest but the plumbing must surface it.
  EXPECT_GE(r.restarts, 0u);
  EXPECT_GT(r.total_ops, 0u);
}

TEST(BenchHarness, EnvThreadParsing) {
  setenv("SCOT_BENCH_THREADS", "1,3,7", 1);
  auto v = env_threads();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1u);
  EXPECT_EQ(v[1], 3u);
  EXPECT_EQ(v[2], 7u);
  setenv("SCOT_BENCH_THREADS", "garbage", 1);
  EXPECT_FALSE(env_threads().empty()) << "falls back to defaults";
  unsetenv("SCOT_BENCH_THREADS");
  EXPECT_EQ(env_threads().size(), 4u);
}

TEST(BenchHarness, EnvMsAndRuns) {
  setenv("SCOT_BENCH_MS", "123", 1);
  EXPECT_EQ(env_ms(999), 123);
  unsetenv("SCOT_BENCH_MS");
  EXPECT_EQ(env_ms(999), 999);
  setenv("SCOT_BENCH_RUNS", "5", 1);
  EXPECT_EQ(env_runs(), 5u);
  unsetenv("SCOT_BENCH_RUNS");
  EXPECT_EQ(env_runs(), 1u);
}

TEST(BenchHarness, TableFormatsAlignedMarkdown) {
  Table t({"threads", "EBR", "HP"});
  t.add_row({"1", "12.34", "5.67"});
  t.add_row({"128", "1.00", "0.99"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| threads | EBR   | HP   |"), std::string::npos) << s;
  EXPECT_NE(s.find("| 128     | 1.00  | 0.99 |"), std::string::npos) << s;
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(BenchHarness, FormatHelpers) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_si(1234.0), "1.23k");
  EXPECT_EQ(format_si(1234567.0), "1.23M");
  EXPECT_EQ(format_si(12.0), "12");
  EXPECT_EQ(format_si(2.5e9), "2.50G");
}

TEST(BenchHarness, MedianOfRunsIsStable) {
  CaseConfig cfg = tiny_case(StructureId::kHList, SchemeId::kEBR);
  cfg.runs = 3;
  cfg.millis = 20;
  CaseResult r = run_case(cfg);
  EXPECT_GT(r.total_ops, 0u);
}

}  // namespace
}  // namespace scot::bench
