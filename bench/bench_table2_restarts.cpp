// Table 2: restart statistics under HP, key range 10,000, 50r/25i/25d.
// The paper reports (at 1/64/256 threads) that the Harris-Michael list's
// restart rate climbs to 8.19% of operations while Harris+SCOT stays at
// ~0%.  Rows here are the host's thread counts; the shape to check is the
// per-list restart ratio, not the absolute counts.
#include <cinttypes>
#include <cstdio>

#include "bench/fig_common.hpp"

int main(int argc, char** argv) {
  using namespace scot::bench;
  fig_init(argc, argv, "table2");
  const auto threads = env_threads();
  const int ms = env_ms(400);
  std::printf(
      "SCOT reproduction — Table 2 (restart statistics, HP, range 10,000)\n\n");
  Table t({"threads", "HMList restarts", "HMList ops/s", "HMList restart%",
           "HList restarts", "HList ops/s", "HList restart%"});
  for (unsigned th : threads) {
    CaseConfig cfg;
    cfg.scheme = SchemeId::kHP;
    cfg.threads = th;
    cfg.key_range = 10000;
    cfg.millis = ms;
    cfg.runs = env_runs();
    apply_session_flags(cfg);

    cfg.structure = StructureId::kHMList;
    const CaseResult hm = run_case(cfg);
    fig_record("Table 2: HMList restarts under HP", cfg, hm);
    cfg.structure = StructureId::kHListWF;
    const CaseResult hl = run_case(cfg);
    fig_record("Table 2: HList restarts under HP", cfg, hl);

    const double hm_pct =
        hm.total_ops ? 100.0 * static_cast<double>(hm.restarts) /
                           static_cast<double>(hm.total_ops)
                     : 0.0;
    const double hl_pct =
        hl.total_ops ? 100.0 * static_cast<double>(hl.restarts) /
                           static_cast<double>(hl.total_ops)
                     : 0.0;
    t.add_row({std::to_string(th), std::to_string(hm.restarts),
               format_si(hm.mops * 1e6), format_double(hm_pct, 2),
               std::to_string(hl.restarts), format_si(hl.mops * 1e6),
               format_double(hl_pct, 2)});
  }
  t.print();
  std::printf(
      "\n(restart%% = full traversal restarts / operations; the paper reports "
      "0%%->8.19%% for HMList and ~0%% for HList)\n");
  return fig_finish();
}
