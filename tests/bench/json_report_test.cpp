// Unit tests for the bench telemetry subsystem's JSON layer
// (src/bench/report/json.hpp) and the BenchReport model
// (src/bench/report/report.hpp): writer escaping, parser strictness, and
// the serialise -> parse round trip the bench_diff gate depends on.
#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>

#include "bench/report/json.hpp"
#include "bench/report/report.hpp"

namespace scot::bench {
namespace {

// --- writer ---------------------------------------------------------------

TEST(JsonWriter, EscapesMandatoryCharacters) {
  json::Writer w;
  w.value(std::string_view("a\"b\\c\nd\te\x01" "f"));
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
}

TEST(JsonWriter, QuoteRoundTripsThroughParse) {
  const std::string nasty = "quote\" back\\slash \n\r\t \x02 ümlaut";
  const auto parsed = json::parse(json::quote(nasty));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->type, json::Value::Type::kString);
  EXPECT_EQ(parsed->string, nasty);
}

TEST(JsonWriter, NestedStructureShape) {
  json::Writer w;
  w.begin_object();
  w.key("a").value(std::uint64_t{1});
  w.key("b").begin_array();
  w.value(std::int64_t{-2});
  w.value(true);
  w.null();
  w.end_array();
  w.key("c").begin_object().end_object();
  w.end_object();
  const auto parsed = json::parse(w.str());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->find("a")->num_or(0), 1.0);
  const json::Value* b = parsed->find("b");
  ASSERT_TRUE(b != nullptr && b->is_array());
  ASSERT_EQ(b->items.size(), 3u);
  EXPECT_EQ(b->items[0].num_or(0), -2.0);
  EXPECT_TRUE(b->items[1].boolean);
  EXPECT_EQ(b->items[2].type, json::Value::Type::kNull);
  ASSERT_TRUE(parsed->find("c") != nullptr);
  EXPECT_TRUE(parsed->find("c")->is_object());
}

TEST(JsonWriter, DoublesRoundTripExactly) {
  for (const double v : {0.0, 1.0, -1.5, 0.1, 3.220622481833618, 1e-12,
                         9.87654321e20}) {
    json::Writer w;
    w.value(v);
    const auto parsed = json::parse(w.str());
    ASSERT_TRUE(parsed.has_value()) << w.str();
    EXPECT_EQ(parsed->number, v) << w.str();
  }
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  json::Writer w;
  w.value(std::numeric_limits<double>::infinity());
  EXPECT_EQ(w.str(), "null");
}

// --- parser ---------------------------------------------------------------

TEST(JsonParse, AcceptsScalarsAndSkipsWhitespace) {
  EXPECT_EQ(json::parse(" 42 ")->number, 42.0);
  EXPECT_EQ(json::parse("-1.5e3")->number, -1500.0);
  EXPECT_TRUE(json::parse("\ttrue\n")->boolean);
  EXPECT_EQ(json::parse("null")->type, json::Value::Type::kNull);
  EXPECT_EQ(json::parse("\"hi\"")->string, "hi");
}

TEST(JsonParse, DecodesUnicodeEscapes) {
  EXPECT_EQ(json::parse("\"\\u0041\"")->string, "A");
  EXPECT_EQ(json::parse("\"\\u00fc\"")->string, "\xc3\xbc");       // ü
  EXPECT_EQ(json::parse("\"\\ud83d\\ude00\"")->string,
            "\xf0\x9f\x98\x80");  // 😀 via surrogate pair
}

TEST(JsonParse, RejectsMalformedInput) {
  std::string error;
  const char* bad[] = {
      "",           "{",           "[1,",       "{\"a\":}",
      "tru",        "\"unterm",    "01x",       "{\"a\" 1}",
      "[1] trailing", "\"\\q\"",   "\"\\ud800\"",  // unpaired surrogate
      "{a: 1}",     "[1,,2]",
  };
  for (const char* s : bad) {
    error.clear();
    EXPECT_FALSE(json::parse(s, &error).has_value()) << "'" << s << "'";
    EXPECT_FALSE(error.empty()) << "'" << s << "'";
  }
}

TEST(JsonParse, RejectsAbsurdNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(json::parse(deep).has_value());
}

TEST(JsonParse, FindLooksUpObjectMembers) {
  const auto v = json::parse("{\"x\": 1, \"y\": \"z\"}");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->find("x") != nullptr);
  EXPECT_EQ(v->find("y")->str_or(""), "z");
  EXPECT_EQ(v->find("missing"), nullptr);
}

// --- BenchReport ----------------------------------------------------------

CaseConfig sample_cfg() {
  CaseConfig cfg;
  cfg.structure = StructureId::kNMTree;
  cfg.scheme = SchemeId::kIBR;
  cfg.threads = 4;
  cfg.key_range = 10000;
  cfg.read_pct = 90;
  cfg.insert_pct = 5;
  cfg.delete_pct = 5;
  cfg.millis = 123;
  cfg.runs = 3;
  cfg.seed = 99;
  cfg.key_dist = KeyDist::kZipfian;
  cfg.zipf_theta = 0.75;
  cfg.pin_threads = true;
  cfg.op_budget = 5000;
  return cfg;
}

CaseResult sample_result() {
  CaseResult r;
  r.mops = 1.25;
  r.total_ops = 20000;
  r.seconds = 0.016;
  r.avg_pending = 17.5;
  r.peak_pending = 42;
  r.restarts = 7;
  r.recoveries = 2;
  r.reads = 18000;
  r.inserts = 1000;
  r.removes = 1000;
  return r;
}

TEST(BenchReport, SchemaHeaderAndMetadataPresent) {
  BenchReport report;
  const std::string text = report.to_json();
  const auto parsed = json::parse(text);
  ASSERT_TRUE(parsed.has_value()) << text;
  EXPECT_EQ(parsed->find("schema")->str_or(""), kReportSchemaName);
  EXPECT_EQ(parsed->find("schema_version")->num_or(0), kReportSchemaVersion);
  const json::Value* meta = parsed->find("meta");
  ASSERT_TRUE(meta != nullptr && meta->is_object());
  for (const char* key : {"git_sha", "compiler", "flags", "build_type",
                          "timestamp_utc"}) {
    ASSERT_TRUE(meta->find(key) != nullptr) << key;
    EXPECT_FALSE(std::string(meta->find(key)->str_or("")).empty()) << key;
  }
  EXPECT_TRUE(parsed->find("cells")->is_array());
}

TEST(BenchReport, RoundTripPreservesCells) {
  BenchReport report;
  report.add("fig8", "Fig 8a: tree, range 10,000", sample_cfg(),
             sample_result());
  CaseConfig uniform = sample_cfg();
  uniform.key_dist = KeyDist::kUniform;
  uniform.scheme = SchemeId::kEBR;
  report.add("fig8", "second cell", uniform, CaseResult{});

  std::string error;
  const auto loaded = BenchReport::from_json(report.to_json(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->cells().size(), 2u);

  const ReportCell& c = loaded->cells()[0];
  EXPECT_EQ(c.bench, "fig8");
  EXPECT_EQ(c.label, "Fig 8a: tree, range 10,000");
  EXPECT_EQ(c.cfg.structure, StructureId::kNMTree);
  EXPECT_EQ(c.cfg.scheme, SchemeId::kIBR);
  EXPECT_EQ(c.cfg.threads, 4u);
  EXPECT_EQ(c.cfg.key_range, 10000u);
  EXPECT_EQ(c.cfg.read_pct, 90);
  EXPECT_EQ(c.cfg.key_dist, KeyDist::kZipfian);
  EXPECT_DOUBLE_EQ(c.cfg.zipf_theta, 0.75);
  EXPECT_TRUE(c.cfg.pin_threads);
  EXPECT_EQ(c.cfg.op_budget, 5000u);
  EXPECT_DOUBLE_EQ(c.result.mops, 1.25);
  EXPECT_EQ(c.result.total_ops, 20000u);
  EXPECT_EQ(c.result.peak_pending, 42);
  EXPECT_EQ(c.result.reads, 18000u);
  EXPECT_EQ(loaded->cells()[1].cfg.scheme, SchemeId::kEBR);
  EXPECT_EQ(loaded->cells()[1].cfg.key_dist, KeyDist::kUniform);

  // The identity key survives the round trip, so baselines written by an
  // older binary still match cells produced by a newer one.
  EXPECT_EQ(cell_key(report.cells()[0]), cell_key(loaded->cells()[0]));
}

TEST(BenchReport, CellKeySeparatesWorkloadsButNotMeasurements) {
  ReportCell a{"fig8", "label", sample_cfg(), sample_result()};
  ReportCell b = a;
  b.result.mops = 999;  // measurements do not change identity
  b.cfg.seed = 1;       // nor do seed/duration/runs
  b.cfg.millis = 9999;
  b.cfg.runs = 7;
  EXPECT_EQ(cell_key(a), cell_key(b));

  ReportCell c = a;
  c.cfg.threads = 8;
  EXPECT_NE(cell_key(a), cell_key(c));
  ReportCell d = a;
  d.cfg.scheme = SchemeId::kHP;
  EXPECT_NE(cell_key(a), cell_key(d));
  ReportCell e = a;
  e.cfg.key_dist = KeyDist::kUniform;
  EXPECT_NE(cell_key(a), cell_key(e));
}

TEST(BenchReport, AsymKeysBackwardCompatible) {
  // The regression gate's linchpin: cells from reports that predate the
  // asym field must keep matching new default (asym-on) runs, while
  // --no-asym runs get a distinct identity.
  ReportCell modern{"fig8", "label", sample_cfg(), sample_result()};
  modern.cfg.asymmetric_fences = true;
  ReportCell classic = modern;
  classic.cfg.asymmetric_fences = false;
  EXPECT_NE(cell_key(modern), cell_key(classic));
  EXPECT_NE(cell_key(classic).find("|noasym"), std::string::npos);
  EXPECT_EQ(cell_key(modern).find("|noasym"), std::string::npos);

  // A pre-knob cell (no "asym" field at all) loads as asym-on.
  std::string error;
  const auto legacy = BenchReport::from_json(
      "{\"schema\": \"scot-bench\", \"schema_version\": 1, \"cells\": "
      "[{\"bench\": \"fig8\", \"label\": \"label\", \"structure\": "
      "\"HList\", \"scheme\": \"EBR\", \"threads\": 1}]}",
      &error);
  ASSERT_TRUE(legacy.has_value()) << error;
  EXPECT_TRUE(legacy->cells()[0].cfg.asymmetric_fences);

  // An explicit false survives the serialise -> parse round trip.
  BenchReport report;
  report.add("fig8", "label", classic.cfg, classic.result);
  const auto loaded = BenchReport::from_json(report.to_json(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_FALSE(loaded->cells()[0].cfg.asymmetric_fences);
  EXPECT_EQ(cell_key(loaded->cells()[0]), cell_key(classic));
}

TEST(BenchReport, MicroCellsRoundTripStructureNone) {
  // bench_micro_smr's protect-latency cells: structure "none" plus the
  // ns/cycles measurements must survive the round trip.
  CaseConfig cfg;
  cfg.structure = StructureId::kNone;
  cfg.scheme = SchemeId::kHP;
  cfg.asymmetric_fences = false;
  CaseResult r;
  r.ns_per_op = 9.37;
  r.cycles_per_op = 25.3;
  BenchReport report;
  report.add("micro_smr", "protect-latency", cfg, r);
  std::string error;
  const auto loaded = BenchReport::from_json(report.to_json(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->cells().size(), 1u);
  EXPECT_EQ(loaded->cells()[0].cfg.structure, StructureId::kNone);
  EXPECT_DOUBLE_EQ(loaded->cells()[0].result.ns_per_op, 9.37);
  EXPECT_DOUBLE_EQ(loaded->cells()[0].result.cycles_per_op, 25.3);
}

TEST(BenchReport, FromJsonRejectsForeignAndFutureFiles) {
  std::string error;
  EXPECT_FALSE(BenchReport::from_json("{}", &error).has_value());
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
  EXPECT_FALSE(
      BenchReport::from_json("{\"schema\": \"other\", \"schema_version\": 1}")
          .has_value());
  EXPECT_FALSE(
      BenchReport::from_json(
          "{\"schema\": \"scot-bench\", \"schema_version\": 999, "
          "\"cells\": []}",
          &error)
          .has_value());
  EXPECT_NE(error.find("schema_version"), std::string::npos) << error;
  EXPECT_FALSE(
      BenchReport::from_json(
          "{\"schema\": \"scot-bench\", \"schema_version\": 1}", &error)
          .has_value())
      << "missing cells array must fail";
  // Unknown scheme names are a hard error, not a skipped cell.
  EXPECT_FALSE(
      BenchReport::from_json(
          "{\"schema\": \"scot-bench\", \"schema_version\": 1, \"cells\": "
          "[{\"structure\": \"HList\", \"scheme\": \"QSBR\"}]}",
          &error)
          .has_value());
}

TEST(BenchReport, WriteAndLoadFile) {
  const std::string path =
      testing::TempDir() + "scot_json_report_test.json";
  BenchReport report;
  report.add("cli", "HList under EBR", sample_cfg(), sample_result());
  std::string error;
  ASSERT_TRUE(report.write_file(path, &error)) << error;
  const auto loaded = BenchReport::load_file(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->cells().size(), 1u);
  std::remove(path.c_str());

  EXPECT_FALSE(
      BenchReport::load_file("/nonexistent/dir/x.json", &error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace scot::bench
