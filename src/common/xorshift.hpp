// Small, fast per-thread PRNG used by the workload generator and the tests.
// xoshiro256** has excellent statistical quality for benchmark key streams
// and is allocation-free, which matters because the benchmark threads call
// it once per operation.
#pragma once

#include <cstdint>

namespace scot {

class Xoshiro256 {
 public:
  // SplitMix64 seeding as recommended by the xoshiro authors: it guarantees
  // that even adjacent integer seeds produce uncorrelated streams.
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Unbiased-enough range reduction for benchmark purposes (Lemire's
  // multiply-shift; the bias for ranges << 2^64 is negligible).
  constexpr std::uint64_t next_in(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform double in [0, 1) with 53 bits of precision (the standard
  // top-bits construction from the xoshiro authors).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace scot
