// HE: hazard eras (Ramalhete & Correia, SPAA 2017), with the reservation-
// snapshot scan optimization the paper applies to it (Section 5: "we
// implemented a similar optimization for HE and IBR").
//
// HE keeps the hazard-pointer programming model (indexed protection slots,
// dup) but publishes *eras* instead of pointers: protect(idx) records the
// global era at which the load was performed.  A retired node is reclaimable
// once no published era intersects its [birth, retire] lifetime.  Compared to
// HP this replaces the per-node publication fence with (amortized) one fence
// per era change.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/align.hpp"
#include "common/asymfence.hpp"
#include "smr/handle_core.hpp"
#include "smr/node_pool.hpp"
#include "smr/smr_config.hpp"

namespace scot {

class HeDomain {
 public:
  static constexpr const char* kName = "HE";
  static constexpr bool kRobust = true;
  static constexpr std::uint64_t kIdleEra = 0;  // eras start at 1

  class Handle : public HandleCore<HeDomain, Handle> {
   public:
    using Base = HandleCore<HeDomain, Handle>;
    using Base::retire;  // typed retire(Protected<T>) — API v2
    Handle(HeDomain* dom, unsigned tid) : Base(dom, tid) {
      snapshot_.reserve(static_cast<std::size_t>(dom->cfg_.max_threads) *
                        dom->cfg_.slots_per_thread);
    }

    // HE has no eager activation store: an operation becomes visible to
    // reclaimers at its *first slot publish* (end_op cleared every slot, so
    // the first protect() of the next operation always publishes).  That
    // store already runs the asymmetric discipline below — release +
    // compiler barrier, with the scan-side heavy barrier restoring the
    // StoreLoad edge (DESIGN.md §5, activation case) — so begin_op stays
    // free under both disciplines.
    void begin_op() noexcept {}

    void end_op() noexcept {
      while (used_mask_ != 0) {
        const unsigned idx =
            static_cast<unsigned>(__builtin_ctz(used_mask_));
        used_mask_ &= used_mask_ - 1;
        slot(idx).store(kIdleEra, std::memory_order_release);
      }
    }

    // HE get_protected: loop until the global era observed after the load
    // equals the era published in the slot.  When the era is already
    // published (the common case within one era period) this is a plain
    // load — the fence amortization that makes HE faster than HP.  Only the
    // era-change publication carries a fence, and that is the store the
    // asymmetric discipline relaxes: the loop's re-read of src/clock must
    // be ordered after the slot store, and scans restore that edge with a
    // heavy barrier before collect_eras() (DESIGN.md §5).
    // `Src` is std::atomic<P> or StableAtomic<P>.
    template <class Src, class P = typename Src::value_type>
    P protect(const Src& src, unsigned idx) noexcept {
      std::uint64_t prev = slot(idx).load(std::memory_order_relaxed);
      const asymfence::Path fences = dom_->fence_path_;
      for (;;) {
        P v = src.load(std::memory_order_acquire);
        const std::uint64_t e = dom_->clock_.load(std::memory_order_seq_cst);
        if (e == prev) {
          used_mask_ |= 1u << idx;
          return v;
        }
        if (fences == asymfence::Path::kClassic) {
          slot(idx).store(e, std::memory_order_seq_cst);
        } else {
          slot(idx).store(e, std::memory_order_release);
          asymfence::light_barrier(fences);
        }
        prev = e;
      }
    }

    template <class T>
    void publish(T* /*p*/, unsigned idx) noexcept {
      // Publishing the current era protects everything alive at it,
      // including the immortal anchor this is used for.
      const std::uint64_t e = dom_->clock_.load(std::memory_order_acquire);
      if (dom_->fence_path_ == asymfence::Path::kClassic) {
        slot(idx).store(e, std::memory_order_seq_cst);
      } else {
        slot(idx).store(e, std::memory_order_release);
        asymfence::light_barrier(dom_->fence_path_);
      }
      used_mask_ |= 1u << idx;
    }

    void dup(unsigned i, unsigned j) noexcept {
      assert(i < j && "SCOT requires ascending-index dup (paper §3.2)");
      slot(j).store(slot(i).load(std::memory_order_relaxed),
                    std::memory_order_release);
      used_mask_ |= 1u << j;
    }

    static constexpr bool op_valid() noexcept { return true; }
    void revalidate_op() noexcept {}

    void retire(ReclaimNode* n) {
      n->debug_state = kNodeRetired;
      n->retire_era = dom_->clock_.load(std::memory_order_acquire);
      limbo_.push(n);
      dom_->counters_.on_retire(dom_->cfg_.track_stats);
      era_tick();
      if (limbo_.count >= dom_->cfg_.scan_threshold) scan();
    }

    std::uint64_t on_alloc_era() noexcept {
      era_tick();
      return dom_->clock_.load(std::memory_order_acquire);
    }

    void scan() {
      // Surface in-flight era publications before reading the slots; a
      // publication the barrier does not surface belongs to a reader whose
      // validating re-read is ordered after every unlink in this batch.
      if (dom_->fence_path_ != asymfence::Path::kClassic)
        asymfence::heavy_barrier(dom_->fence_path_);
      // Reservation snapshot (sorted) — one pass over the global slot array
      // per scan instead of one per retired node.
      snapshot_.clear();
      dom_->collect_eras(snapshot_);
      std::sort(snapshot_.begin(), snapshot_.end());
      std::uint64_t freed = 0;
      ReclaimNode* n = limbo_.take();
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        if (lifetime_reserved(birth_era_of(n), n->retire_era)) {
          limbo_.push(n);
        } else {
          dom_->pool().free(tid_, n, n->alloc_size);
          ++freed;
        }
        n = next;
      }
      dom_->counters_.on_free(freed, dom_->cfg_.track_stats);
    }

    unsigned limbo_size() const noexcept { return limbo_.count; }

   private:
    friend class HeDomain;

    // True if some published era lies within [birth, retire].
    bool lifetime_reserved(std::uint64_t birth,
                           std::uint64_t retire) const noexcept {
      auto it = std::lower_bound(snapshot_.begin(), snapshot_.end(), birth);
      return it != snapshot_.end() && *it <= retire;
    }

    void era_tick() noexcept {
      if (++tick_ >= dom_->cfg_.era_freq) {
        tick_ = 0;
        dom_->clock_.fetch_add(1, std::memory_order_acq_rel);
      }
    }

    std::atomic<std::uint64_t>& slot(unsigned idx) noexcept {
      return dom_->slot(tid_, idx);
    }

    LimboList limbo_;
    std::uint32_t used_mask_ = 0;
    unsigned tick_ = 0;
    std::vector<std::uint64_t> snapshot_;
  };

  explicit HeDomain(SmrConfig cfg = {})
      : cfg_(cfg),
        pool_(cfg.max_threads),
        stride_((cfg.slots_per_thread + kSlotsPerLine - 1) / kSlotsPerLine *
                kSlotsPerLine),
        slots_(static_cast<std::size_t>(stride_) * cfg.max_threads),
        fence_path_(asymfence::resolve(cfg.asymmetric_fences)) {
    assert(cfg_.slots_per_thread <= 32);
    for (auto& s : slots_) s.store(kIdleEra, std::memory_order_relaxed);
    handles_.reserve(cfg_.max_threads);
    for (unsigned t = 0; t < cfg_.max_threads; ++t)
      handles_.push_back(std::make_unique<Handle>(this, t));
  }

  ~HeDomain() { drain_all(); }

  Handle& handle(unsigned tid) { return *handles_.at(tid); }
  const SmrConfig& config() const noexcept { return cfg_; }
  NodePool& pool() noexcept { return pool_; }
  std::int64_t pending_nodes() const noexcept {
    return counters_.pending.load(std::memory_order_relaxed);
  }
  const SmrCounters& counters() const noexcept { return counters_; }
  std::uint64_t era() const noexcept {
    return clock_.load(std::memory_order_acquire);
  }
  asymfence::Path fence_path() const noexcept { return fence_path_; }

  std::atomic<std::uint64_t>& slot(unsigned tid, unsigned idx) noexcept {
    assert(idx < cfg_.slots_per_thread);
    return slots_[static_cast<std::size_t>(tid) * stride_ + idx];
  }

  void collect_eras(std::vector<std::uint64_t>& out) const {
    for (unsigned t = 0; t < cfg_.max_threads; ++t) {
      for (unsigned i = 0; i < cfg_.slots_per_thread; ++i) {
        const std::uint64_t e =
            slots_[static_cast<std::size_t>(t) * stride_ + i].load(
                std::memory_order_acquire);
        if (e != kIdleEra) out.push_back(e);
      }
    }
  }

 private:
  friend class Handle;
  static constexpr unsigned kSlotsPerLine = static_cast<unsigned>(
      kFalseSharingRange / sizeof(std::atomic<std::uint64_t>));

  void drain_all() {
    std::uint64_t freed = 0;
    for (auto& h : handles_) {
      ReclaimNode* n = h->limbo_.take();
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        pool_.free(h->tid(), n, n->alloc_size);
        ++freed;
        n = next;
      }
    }
    counters_.on_free(freed, cfg_.track_stats);
  }

  SmrConfig cfg_;
  NodePool pool_;
  SmrCounters counters_;
  std::atomic<std::uint64_t> clock_{1};
  unsigned stride_;
  std::vector<std::atomic<std::uint64_t>> slots_;
  asymfence::Path fence_path_;
  std::vector<std::unique_ptr<Handle>> handles_;
};

}  // namespace scot
