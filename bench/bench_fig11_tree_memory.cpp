// Figure 11: NMTree average not-yet-reclaimed nodes (lower is better).
// Expected shape: HP/HPopt lowest ("strict and conservative reclamation"),
// EBR highest ("relaxed and delayed reclamation").
#include "bench/fig_common.hpp"

int main(int argc, char** argv) {
  using namespace scot::bench;
  fig_init(argc, argv, "fig11");
  std::printf("SCOT reproduction — Figure 11 (NMTree memory overhead)\n\n");
  GridSpec a{"Fig 11a: NMTree, range 128", StructureId::kNMTree, 128,
             Metric::kAvgPending};
  a.include_nr = false;
  run_grid(a, 300);
  GridSpec b{"Fig 11b: NMTree, range 100,000", StructureId::kNMTree, 100000,
             Metric::kAvgPending};
  b.include_nr = false;
  run_grid(b, 400);
  return fig_finish();
}
