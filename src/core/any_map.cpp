// The one translation unit that instantiates the full scheme × structure
// cross product and registers it with the runtime registry.  Everything
// else in the tree resolves cells through AnyMapRegistry at runtime —
// adding a scheme or structure is one registration line here plus an enum
// value + name row in the matching registry header (DESIGN.md §6).
#include "core/any_map.hpp"

#include <vector>

#include "core/core.hpp"

namespace scot {
namespace {

using K = AnyMap::Key;
using V = AnyMap::Value;

// Keep the registry's robustness column honest against the domain types.
static_assert(!NoReclaimDomain::kRobust == !scheme_info(SchemeId::kNR).robust);
static_assert(!EbrDomain::kRobust == !scheme_info(SchemeId::kEBR).robust);
static_assert(HpDomain::kRobust == scheme_info(SchemeId::kHP).robust);
static_assert(HpOptDomain::kRobust == scheme_info(SchemeId::kHPopt).robust);
static_assert(HeDomain::kRobust == scheme_info(SchemeId::kHE).robust);
static_assert(IbrDomain::kRobust == scheme_info(SchemeId::kIBR).robust);
static_assert(HyalineDomain::kRobust == scheme_info(SchemeId::kHLN).robust);

template <class Smr, class DS>
class TypedAnyMap final : public detail::AnyMapImpl {
 public:
  explicit TypedAnyMap(const AnyMapOptions& options)
      : smr_(options.smr), ds_(make_ds(smr_, options)) {
    // Handle table resolved once: the per-operation path must not pay the
    // domain's bounds-checked handle() lookup on every call (the v1 typed
    // loop hoisted the handle reference out of the hot loop; this is the
    // type-erased equivalent).
    handles_.reserve(options.smr.max_threads);
    for (unsigned t = 0; t < options.smr.max_threads; ++t)
      handles_.push_back(&smr_.handle(t));
  }

  bool insert(unsigned tid, K key, V value) override {
    return ds_->insert(*handles_[tid], key, value);
  }
  bool erase(unsigned tid, K key) override {
    return ds_->erase(*handles_[tid], key);
  }
  bool contains(unsigned tid, K key) override {
    return ds_->contains(*handles_[tid], key);
  }
  std::optional<V> get(unsigned tid, K key) override {
    return ds_->get(*handles_[tid], key);
  }
  std::size_t size_unsafe() const override { return ds_->size_unsafe(); }
  std::int64_t pending_nodes() const override { return smr_.pending_nodes(); }
  std::uint64_t restarts() const override {
    std::uint64_t n = 0;
    for (unsigned t = 0; t < smr_.config().max_threads; ++t)
      n += smr_.handle(t).ds_restarts;
    return n;
  }
  std::uint64_t recoveries() const override {
    std::uint64_t n = 0;
    for (unsigned t = 0; t < smr_.config().max_threads; ++t)
      n += smr_.handle(t).ds_recoveries;
    return n;
  }

 private:
  static std::unique_ptr<DS> make_ds(Smr& smr, const AnyMapOptions& options) {
    if constexpr (requires { DS(smr, std::size_t{1}); }) {
      return std::make_unique<DS>(
          smr, options.hash_buckets != 0 ? options.hash_buckets : 64);
    } else {
      return std::make_unique<DS>(smr);
    }
  }

  // Declaration order is destruction order in reverse: the structure's
  // teardown deallocates through the domain, so the domain must outlive it.
  mutable Smr smr_;
  std::unique_ptr<DS> ds_;
  std::vector<typename Smr::Handle*> handles_;
};

template <class Smr, class DS>
std::unique_ptr<detail::AnyMapImpl> make_cell(const AnyMapOptions& options) {
  return std::make_unique<TypedAnyMap<Smr, DS>>(options);
}

template <class Smr>
void register_scheme(SchemeId id) {
  auto& reg = AnyMapRegistry::instance();
  reg.add(id, StructureId::kHMList, &make_cell<Smr, HarrisMichaelList<K, V, Smr>>);
  reg.add(id, StructureId::kHList, &make_cell<Smr, HarrisList<K, V, Smr>>);
  reg.add(id, StructureId::kHListWF,
          &make_cell<Smr, HarrisList<K, V, Smr, HarrisListWaitFreeTraits>>);
  reg.add(id, StructureId::kNMTree,
          &make_cell<Smr, NatarajanMittalTree<K, V, Smr>>);
  reg.add(id, StructureId::kHashMap, &make_cell<Smr, HashMap<K, V, Smr>>);
  reg.add(id, StructureId::kSkipList, &make_cell<Smr, SkipList<K, V, Smr>>);
  reg.add(id, StructureId::kSkipListEager,
          &make_cell<Smr, SkipList<K, V, Smr, SkipListEagerTraits>>);
  // Trait-ablation variants (bench_ablation_recovery / bench_ablation_unroll)
  // — registered like any other cell so the ablation binaries route through
  // run_case() and their JSON cells carry a real structure identity.
  reg.add(id, StructureId::kHListNoRecovery,
          &make_cell<Smr, HarrisList<K, V, Smr, HarrisListNoRecoveryTraits>>);
  reg.add(id, StructureId::kHListSimple,
          &make_cell<Smr, HarrisList<K, V, Smr, HarrisListSimpleTraits>>);
}

const bool kRegistered = [] {
  register_scheme<NoReclaimDomain>(SchemeId::kNR);
  register_scheme<EbrDomain>(SchemeId::kEBR);
  register_scheme<HpDomain>(SchemeId::kHP);
  register_scheme<HpOptDomain>(SchemeId::kHPopt);
  register_scheme<HeDomain>(SchemeId::kHE);
  register_scheme<IbrDomain>(SchemeId::kIBR);
  register_scheme<HyalineDomain>(SchemeId::kHLN);
  return true;
}();

}  // namespace

std::optional<AnyMap> AnyMap::make(SchemeId scheme, StructureId structure,
                                   const AnyMapOptions& options) {
  // ODR-use the registrar so linking make() always pulls the registrations.
  (void)kRegistered;
  const AnyMapRegistry::Factory factory =
      AnyMapRegistry::instance().find(scheme, structure);
  if (factory == nullptr) return std::nullopt;
  return AnyMap(scheme, structure, options.smr.max_threads, factory(options));
}

}  // namespace scot
