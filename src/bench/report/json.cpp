#include "bench/report/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace scot::bench::json {

const Value* Value::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] == key) return &items[i];
  }
  return nullptr;
}

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  out += '"';
  return out;
}

// --- writer ---------------------------------------------------------------

void Writer::newline_indent() {
  out_ += '\n';
  out_.append(2 * has_entry_.size(), ' ');
}

// Comma/indent bookkeeping shared by every value form.  A value directly
// after key() continues that line; an array element starts its own.
void Writer::pre_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_entry_.empty()) {
    if (has_entry_.back()) out_ += ',';
    has_entry_.back() = true;
    newline_indent();
  }
}

Writer& Writer::begin_object() {
  pre_value();
  out_ += '{';
  has_entry_.push_back(false);
  return *this;
}

Writer& Writer::end_object() {
  const bool had_entry = has_entry_.back();
  has_entry_.pop_back();
  if (had_entry) newline_indent();
  out_ += '}';
  return *this;
}

Writer& Writer::begin_array() {
  pre_value();
  out_ += '[';
  has_entry_.push_back(false);
  return *this;
}

Writer& Writer::end_array() {
  const bool had_entry = has_entry_.back();
  has_entry_.pop_back();
  if (had_entry) newline_indent();
  out_ += ']';
  return *this;
}

Writer& Writer::key(std::string_view k) {
  if (has_entry_.back()) out_ += ',';
  has_entry_.back() = true;
  newline_indent();
  out_ += quote(k);
  out_ += ": ";
  after_key_ = true;
  return *this;
}

Writer& Writer::value(std::string_view v) {
  pre_value();
  out_ += quote(v);
  return *this;
}

Writer& Writer::value(double v) {
  pre_value();
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    out_ += "null";
    return *this;
  }
  // Shortest representation that round-trips: try 15 significant digits,
  // fall back to 17 (always exact for binary64).
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out_ += buf;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  pre_value();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  pre_value();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

Writer& Writer::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  return *this;
}

Writer& Writer::null() {
  pre_value();
  out_ += "null";
  return *this;
}

// --- parser ---------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view s, std::string* error) : s_(s), error_(error) {}

  bool run(Value& out) {
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(msg) + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return fail("invalid literal");
    pos_ += n;
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > 64) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    switch (s_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.type = Value::Type::kString;
        return parse_string(out.string);
      case 't':
        out.type = Value::Type::kBool;
        out.boolean = true;
        return consume_literal("true");
      case 'f':
        out.type = Value::Type::kBool;
        out.boolean = false;
        return consume_literal("false");
      case 'n':
        out.type = Value::Type::kNull;
        return consume_literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_number(Value& out) {
    const char c = s_[pos_];
    if (c != '-' && (c < '0' || c > '9')) return fail("unexpected character");
    // strtod needs NUL termination; copy the longest plausible number slice.
    std::size_t end = pos_;
    while (end < s_.size()) {
      const char d = s_[end];
      if ((d >= '0' && d <= '9') || d == '-' || d == '+' || d == '.' ||
          d == 'e' || d == 'E') {
        ++end;
      } else {
        break;
      }
    }
    const std::string slice(s_.substr(pos_, end - pos_));
    char* parsed_end = nullptr;
    const double v = std::strtod(slice.c_str(), &parsed_end);
    if (parsed_end != slice.c_str() + slice.size() || slice.empty()) {
      return fail("malformed number");
    }
    out.type = Value::Type::kNumber;
    out.number = v;
    pos_ = end;
    return true;
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = s_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("bad hex digit in \\u escape");
      }
    }
    return true;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (pos_ >= s_.size()) return fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return fail("truncated escape");
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need a pair
            if (pos_ + 1 >= s_.size() || s_[pos_] != '\\' ||
                s_[pos_ + 1] != 'u') {
              return fail("unpaired surrogate");
            }
            pos_ += 2;
            unsigned lo = 0;
            if (!parse_hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) return fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("unknown escape");
      }
    }
  }

  bool parse_array(Value& out, int depth) {
    ++pos_;  // '['
    out.type = Value::Type::kArray;
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Value item;
      if (!parse_value(item, depth + 1)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      const char c = s_[pos_++];
      if (c == ']') return true;
      if (c != ',') return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(Value& out, int depth) {
    ++pos_;  // '{'
    out.type = Value::Type::kObject;
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        return fail("expected string key in object");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        return fail("expected ':' after object key");
      }
      ++pos_;
      Value item;
      if (!parse_value(item, depth + 1)) return false;
      out.keys.push_back(std::move(key));
      out.items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      const char c = s_[pos_++];
      if (c == '}') return true;
      if (c != ',') return fail("expected ',' or '}' in object");
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  if (error != nullptr) error->clear();
  Value out;
  Parser p(text, error);
  if (!p.run(out)) return std::nullopt;
  return out;
}

}  // namespace scot::bench::json
