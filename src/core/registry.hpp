// Runtime structure registry: the closed set of data structures as values,
// the per-concept structure tables, and the SchemeId × StructureId → factory
// tables behind the type-erased facades (scot::AnyMap, scot::AnyKv,
// scot::AnyContainer).
//
// Like src/smr/registry.hpp this is the single source of truth for structure
// identity: the bench options, the JSON reports and the paper CLI mode
// spellings all resolve through the tables here.  Structures are grouped by
// *container concept* (ContainerKind): uint64-keyed maps, string-keyed kv
// shards, and the queue/stack/deque shapes each have their own iteration
// table and their own factory registry, because their op surfaces differ —
// but they share one StructureId namespace so JSON cell keys, CLI names and
// grid labels never collide across concepts.
//
// The factory tables are genuine *runtime* registries — src/core/any_map.cpp,
// src/kv/any_kv.cpp and src/core/any_container.cpp populate their scheme ×
// structure cross products at static-initialisation time, and out-of-tree
// code can register additional cells through
// `AnyMapRegistry::instance().add(...)` (DESIGN.md §6 and §11 have the
// recipe).
//
// This header is deliberately light: it forward-declares the type-erased
// implementation interfaces instead of including the structure headers, so
// name resolution never pays for template instantiation.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "smr/registry.hpp"

namespace scot {

enum class StructureId {
  kHMList,
  kHList,
  kHListWF,
  kNMTree,
  kHashMap,
  kSkipList,        // Fraser-style optimistic traversal with SCOT
  kSkipListEager,   // Herlihy-Shavit-style eager unlink (baseline)
  kHListNoRecovery, // trait ablation §3.2.1: restart-from-head, no recovery
  kHListSimple,     // trait ablation §3.2: simple (Fig 5 left) Do_Find
  kKvHash,          // string-keyed resizable hash map (src/kv/, DESIGN.md §10)
  kMSQueue,         // Michael-Scott queue (core/ms_queue.hpp, DESIGN.md §11)
  kTreiberStack,    // Treiber stack (core/treiber_stack.hpp)
  kDeque,           // Michael CAS-based deque (core/deque.hpp)
  kNone,            // SMR-layer microbench cells (no data structure)
};

// The container concept a StructureId belongs to.  Grids, CLI resolution,
// the bench runner's dispatch and the facade make() checks all branch on
// this — never on ad-hoc StructureId comparisons — so adding a structure to
// a concept is one enum row plus one case below.
enum class ContainerKind {
  kMap,    // uint64 → uint64 ordered/unordered maps (scot::AnyMap)
  kKv,     // string-keyed serving shards (scot::AnyKv / KvStore)
  kQueue,  // FIFO: push_back / pop_front (scot::AnyQueue)
  kStack,  // LIFO: push_front / pop_front (scot::AnyStack)
  kDeque,  // both ends (scot::AnyDeque)
  kNone,   // StructureId::kNone — no data structure at all
};

inline ContainerKind container_kind(StructureId s) noexcept {
  switch (s) {
    case StructureId::kHMList:
    case StructureId::kHList:
    case StructureId::kHListWF:
    case StructureId::kNMTree:
    case StructureId::kHashMap:
    case StructureId::kSkipList:
    case StructureId::kSkipListEager:
    case StructureId::kHListNoRecovery:
    case StructureId::kHListSimple: return ContainerKind::kMap;
    case StructureId::kKvHash: return ContainerKind::kKv;
    case StructureId::kMSQueue: return ContainerKind::kQueue;
    case StructureId::kTreiberStack: return ContainerKind::kStack;
    case StructureId::kDeque: return ContainerKind::kDeque;
    case StructureId::kNone: return ContainerKind::kNone;
  }
  return ContainerKind::kNone;
}

inline const char* container_kind_name(ContainerKind k) noexcept {
  switch (k) {
    case ContainerKind::kMap: return "map";
    case ContainerKind::kKv: return "kv";
    case ContainerKind::kQueue: return "queue";
    case ContainerKind::kStack: return "stack";
    case ContainerKind::kDeque: return "deque";
    case ContainerKind::kNone: return "none";
  }
  return "?";
}

// --- per-concept iteration tables -----------------------------------------

// The uint64-keyed map structures every figure grid and the AnyMap
// cross-product tests iterate.
inline constexpr StructureId kAllStructures[] = {
    StructureId::kHMList,  StructureId::kHList,    StructureId::kHListWF,
    StructureId::kNMTree,  StructureId::kHashMap,  StructureId::kSkipList,
    StructureId::kSkipListEager};

// Trait-ablation variants of the Harris list (bench_ablation_*): registered,
// name-resolvable identities so their JSON cells diff cleanly, but — like
// kNone — deliberately absent from kAllStructures, so no figure grid or
// cross-product test ever iterates them.
inline constexpr StructureId kAblationStructures[] = {
    StructureId::kHListNoRecovery, StructureId::kHListSimple};

// String-keyed structures served through AnyKv/KvStore (src/kv/).  A
// separate table because the uint64-keyed grids above cannot iterate them:
// the op surface (string_view keys, blob values) is different, so they get
// their own cross-product tests and "kv:" bench cells.
inline constexpr StructureId kKvStructures[] = {StructureId::kKvHash};

// The queue/stack/deque concept (core/ms_queue.hpp, core/treiber_stack.hpp,
// core/deque.hpp), served through scot::AnyContainer and the per-concept
// facades.  One table per kind for single-concept grids, plus the combined
// table bench_containers and the cross-product tests iterate.
inline constexpr StructureId kQueueStructures[] = {StructureId::kMSQueue};
inline constexpr StructureId kStackStructures[] = {StructureId::kTreiberStack};
inline constexpr StructureId kDequeStructures[] = {StructureId::kDeque};
inline constexpr StructureId kContainerStructures[] = {
    StructureId::kMSQueue, StructureId::kTreiberStack, StructureId::kDeque};

inline const char* structure_name(StructureId s) noexcept {
  switch (s) {
    case StructureId::kHMList: return "HMList";
    case StructureId::kHList: return "HList";
    case StructureId::kHListWF: return "HListWF";
    case StructureId::kNMTree: return "NMTree";
    case StructureId::kHashMap: return "HashMap";
    case StructureId::kSkipList: return "SkipList";
    case StructureId::kSkipListEager: return "SkipListHS";
    case StructureId::kHListNoRecovery: return "HListNoRec";
    case StructureId::kHListSimple: return "HListSimple";
    case StructureId::kKvHash: return "KvHash";
    case StructureId::kMSQueue: return "MSQueue";
    case StructureId::kTreiberStack: return "TreiberStack";
    case StructureId::kDeque: return "Deque";
    case StructureId::kNone: return "none";
  }
  return "?";
}

// Reverse of structure_name(); used when loading JSON reports.  "none", the
// ablation variants, the kv structures and the container structures are all
// resolvable (their cells carry these names) even though only kAllStructures
// feeds the map-shaped figure grids.
inline std::optional<StructureId> structure_from_name(std::string_view name) {
  if (name == structure_name(StructureId::kNone)) return StructureId::kNone;
  for (StructureId s : kAblationStructures) {
    if (name == structure_name(s)) return s;
  }
  for (StructureId s : kKvStructures) {
    if (name == structure_name(s)) return s;
  }
  for (StructureId s : kContainerStructures) {
    if (name == structure_name(s)) return s;
  }
  for (StructureId s : kAllStructures) {
    if (name == structure_name(s)) return s;
  }
  return std::nullopt;
}

// Paper-artifact CLI mode spellings (Appendix A.5), extended with the
// container concept's modes.  Container modes take a push/pop mix instead
// of read/insert/delete — parse_cli enforces <read%> = 0 for them.
inline std::optional<StructureId> structure_from_mode(std::string_view mode) {
  if (mode == "listlf") return StructureId::kHList;
  if (mode == "listwf") return StructureId::kHListWF;
  if (mode == "listhm") return StructureId::kHMList;
  if (mode == "tree") return StructureId::kNMTree;
  if (mode == "hash") return StructureId::kHashMap;
  if (mode == "skip") return StructureId::kSkipList;
  if (mode == "skiphs") return StructureId::kSkipListEager;
  if (mode == "queue") return StructureId::kMSQueue;
  if (mode == "stack") return StructureId::kTreiberStack;
  if (mode == "deque") return StructureId::kDeque;
  return std::nullopt;
}

// --- factory registries ----------------------------------------------------

// One registry shape for every type-erased facade: maps (scheme, structure)
// to a factory producing the concept's implementation interface.
// Registration normally happens during static init from the concept's single
// cross-product TU, but the table is mutex-guarded so late (test /
// out-of-tree) registration is safe.  Last registration for a cell wins, so
// tests can shadow a factory.
template <class Impl, class Options>
class AnyFactoryRegistry {
 public:
  using Factory = std::unique_ptr<Impl> (*)(const Options&);

  struct Entry {
    SchemeId scheme;
    StructureId structure;
    Factory factory;
  };

  static AnyFactoryRegistry& instance() {
    static AnyFactoryRegistry registry;
    return registry;
  }

  void add(SchemeId scheme, StructureId structure, Factory factory) {
    std::lock_guard<std::mutex> lock(mu_);
    for (Entry& e : entries_) {
      if (e.scheme == scheme && e.structure == structure) {
        e.factory = factory;
        return;
      }
    }
    entries_.push_back(Entry{scheme, structure, factory});
  }

  Factory find(SchemeId scheme, StructureId structure) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_) {
      if (e.scheme == scheme && e.structure == structure) return e.factory;
    }
    return nullptr;
  }

  std::vector<Entry> entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_;
  }

 private:
  AnyFactoryRegistry() = default;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

struct AnyMapOptions;        // core/any_map.hpp
struct AnyKvOptions;         // kv/any_kv.hpp
struct AnyContainerOptions;  // core/any_container.hpp
namespace detail {
class AnyMapImpl;        // core/any_map.hpp
class AnyKvImpl;         // kv/any_kv.hpp
class AnyContainerImpl;  // core/any_container.hpp
}  // namespace detail

// Populated by src/core/any_map.cpp; queried by AnyMap::make().
using AnyMapRegistry = AnyFactoryRegistry<detail::AnyMapImpl, AnyMapOptions>;

// The string-keyed sibling: populated by src/kv/any_kv.cpp (scheme cross
// product × kKvStructures); queried by AnyKv::make() and, per shard, by
// KvStore::make().
using AnyKvRegistry = AnyFactoryRegistry<detail::AnyKvImpl, AnyKvOptions>;

// The queue/stack/deque concept: populated by src/core/any_container.cpp
// (scheme cross product × kContainerStructures); queried by
// AnyContainer::make() and the per-concept facades.
using AnyContainerRegistry =
    AnyFactoryRegistry<detail::AnyContainerImpl, AnyContainerOptions>;

}  // namespace scot
