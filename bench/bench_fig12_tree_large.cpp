// Figure 12: NMTree with an out-of-cache key range.  The paper uses
// 50,000,000 keys on a 384 GiB machine; this container scales the range to
// 2,000,000 (still far beyond L2, ~1M live nodes after prefill) — the
// regime, not the absolute size, is what the figure demonstrates.
// Expected shape: absolute throughput drops vs Figure 9 (deeper traversals,
// cache misses), relative scheme ordering unchanged; IBR and Hyaline-1S
// competitive with EBR; EBR keeps the most unreclaimed objects at high
// thread counts, HP/HPopt the fewest.
#include "bench/fig_common.hpp"

int main(int argc, char** argv) {
  using namespace scot::bench;
  constexpr std::uint64_t kRange = 2000000;  // paper: 50,000,000 (see above)
  fig_init(argc, argv, "fig12");
  std::printf("SCOT reproduction — Figure 12 (NMTree, out-of-cache range)\n\n");
  run_grid({"Fig 12a: NMTree throughput, range 2,000,000",
            StructureId::kNMTree, kRange},
           500);
  GridSpec mem{"Fig 12b: NMTree not-yet-reclaimed, range 2,000,000",
               StructureId::kNMTree, kRange, Metric::kAvgPending};
  mem.include_nr = false;
  run_grid(mem, 500);
  return fig_finish();
}
