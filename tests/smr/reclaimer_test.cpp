// Background reclaimer (smr/reclaimer.hpp, DESIGN.md §9): service-thread
// lifecycle, drain-on-shutdown custody, mutator barrier attribution, the
// adaptive memory-target controller, and a start/stop vs join/leave race
// hammer.  The hammer is the TSan witness for the doorbell and donation
// protocol; the drain tests are the ASan witness that stopping (or
// destroying) a domain mid-donation leaks nothing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "smr/reclaimer.hpp"
#include "tests/test_util.hpp"

namespace scot {
namespace {

using test::TestNode;

SmrConfig bg_config(unsigned threads = 2) {
  SmrConfig cfg = test::small_config(threads);
  cfg.background_reclaim = true;
  cfg.reclaim_interval_us = 100;
  return cfg;
}

// Poll until `pred()` holds or ~2s elapse; the reclaimer runs on its own
// schedule, so every cross-thread expectation in this file is eventual.
template <class Pred>
bool eventually(Pred&& pred, int timeout_ms = 2000) {
  for (int waited = 0; waited < timeout_ms; waited += 5) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// --- ReclaimerThreadBase (scheme-agnostic service thread) -------------------

TEST(ReclaimerThreadBaseTest, DoorbellTriggersRoundBeforePollPeriod) {
  ReclaimerThreadBase t;
  std::atomic<int> rounds{0};
  // Poll period of 1s: any round observed below the timeout was doorbell-
  // driven, not the fallback poll.
  t.start(1'000'000, [&] { rounds.fetch_add(1); });
  EXPECT_TRUE(t.running());
  t.ring();
  EXPECT_TRUE(eventually([&] { return rounds.load() > 0; }));
  t.stop();
  EXPECT_FALSE(t.running());
}

TEST(ReclaimerThreadBaseTest, StopIsIdempotentAndRingOutlivesThread) {
  ReclaimerThreadBase t;
  t.ring();  // before start: consumed by the first wait, never lost
  std::atomic<int> rounds{0};
  t.start(1'000'000, [&] { rounds.fetch_add(1); });
  EXPECT_TRUE(eventually([&] { return rounds.load() > 0; }));
  t.stop();
  t.stop();            // idempotent
  t.ring();            // after stop: safe no-op
  EXPECT_FALSE(t.running());
}

// --- Domain lifecycle -------------------------------------------------------

template <class Smr>
class ReclaimerTest : public ::testing::Test {};

TYPED_TEST_SUITE(ReclaimerTest, test::ReclaimingSchemes);

TYPED_TEST(ReclaimerTest, ConfigStartsServiceAndStopDrains) {
  TypeParam smr(bg_config());
  EXPECT_TRUE(smr.background_active());
  {
    auto h = scoped_handle(smr);
    test::churn_retire(h.get(), test::scaled_iters(8000));
  }
  // At least one round must have run before we pull the plug.
  ASSERT_TRUE(eventually([&] { return smr.background_stats().rounds > 0; }));
  smr.stop_background_reclaimer();
  EXPECT_FALSE(smr.background_active());
  EXPECT_FALSE(smr.background_stats().active);
  // Inline reclamation works again after stop: mutators re-adopt whatever
  // is still parked in the background mailbox and scan it themselves.
  {
    auto h = scoped_handle(smr);
    test::churn_retire(h.get(), test::scaled_iters(4000));
  }
  // Destructor drains the rest; ASan closes the custody argument.
}

TYPED_TEST(ReclaimerTest, StopStartRestartsCleanly) {
  TypeParam smr(bg_config());
  smr.stop_background_reclaimer();
  EXPECT_FALSE(smr.background_active());
  smr.start_background_reclaimer();
  EXPECT_TRUE(smr.background_active());
  auto h = scoped_handle(smr);
  test::churn_retire(h.get(), test::scaled_iters(4000));
  EXPECT_TRUE(eventually([&] { return smr.background_stats().rounds > 0; }));
}

TYPED_TEST(ReclaimerTest, DonatedBatchesAreAdoptedAndReclaimed) {
  TypeParam smr(bg_config());
  {
    auto h = scoped_handle(smr);
    test::churn_retire(h.get(), test::scaled_iters(20000));
  }  // leave() donates the sub-threshold remainder to the mailbox too
  const auto drained = [&] {
    return smr.pending_nodes() <= 16;  // == small_config scan_threshold
  };
  EXPECT_TRUE(eventually(drained)) << "pending=" << smr.pending_nodes();
  const BgReclaimStats s = smr.background_stats();
  EXPECT_GT(s.batches_donated, 0u);
  EXPECT_GT(s.nodes_adopted, 0u);
  EXPECT_GT(s.scans, 0u);
}

// The acceptance property of the whole PR: with the reclaimer on, no
// mutator issues a process-wide heavy barrier — every one is attributed to
// the service thread.  The domain-wide obs aggregate counts every heavy
// barrier whoever issued it; ReclaimControl::heavy_barriers counts only the
// service rounds.  Equality of the two — after quiescing, while the
// reclaimer is still attached — is exactly "mutators issued zero".
TYPED_TEST(ReclaimerTest, MutatorsIssueNoHeavyBarriers) {
  SmrConfig cfg = bg_config();
  cfg.track_stats = true;
  TypeParam smr(cfg);
  {
    auto a = scoped_handle(smr);
    auto b = scoped_handle(smr);
    test::churn_retire(a.get(), test::scaled_iters(10000));
    test::churn_retire(b.get(), test::scaled_iters(10000));
  }
  if (smr.stats().retires == 0) {
    GTEST_SKIP() << "built without SCOT_STATS; no obs attribution to check";
  }
  // Quiesce: backlog consumed and no round in flight (rounds stable across
  // one full poll period).
  ASSERT_TRUE(eventually([&] { return smr.pending_nodes() <= 16; }));
  std::uint64_t rounds = smr.background_stats().rounds;
  ASSERT_TRUE(eventually([&] {
    const std::uint64_t now = smr.background_stats().rounds;
    const bool stable = now == rounds;
    rounds = now;
    return stable;
  }));
  const std::uint64_t domain_wide = smr.stats().heavy_barriers;
  const std::uint64_t service_side = smr.background_stats().heavy_barriers;
  EXPECT_EQ(domain_wide, service_side)
      << (domain_wide - service_side) << " heavy barrier(s) escaped to a "
      << "mutator";
}

// Figure-10-style bound: under sustained churn with a memory_target set,
// the controller must either keep pending under the target outright or
// respond by tightening the effective thresholds.  The mutator applies
// bounded backpressure (as a real allocator would) so the single-core CI
// container cannot starve the service thread into a flaky failure.
TYPED_TEST(ReclaimerTest, AdaptiveControllerBoundsPendingUnderChurn) {
  SmrConfig cfg = bg_config();
  cfg.scan_threshold = 256;  // high base: the controller has room to act
  cfg.era_freq = 64;
  cfg.memory_target = 512;
  TypeParam smr(cfg);
  const unsigned base_threshold =
      smr.background_stats().effective_scan_threshold;

  std::int64_t peak = 0;
  {
    auto h = scoped_handle(smr);
    const int chunks = test::scaled_iters(150);
    for (int i = 0; i < chunks; ++i) {
      test::churn_retire(h.get(), 256);
      peak = std::max(peak, smr.pending_nodes());
      // Backpressure: past 4x target, yield until the reclaimer catches up
      // (bounded, so a wedged reclaimer fails the test instead of hanging).
      for (int spin = 0;
           spin < 200 &&
           smr.pending_nodes() >
               static_cast<std::int64_t>(4 * cfg.memory_target);
           ++spin) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  }
  // The bound: the peak never escaped the backpressure envelope, and once
  // the churn stops the reclaimer brings pending under the target.
  EXPECT_LE(peak, static_cast<std::int64_t>(8 * cfg.memory_target));
  EXPECT_TRUE(eventually([&] {
    return smr.pending_nodes() <=
           static_cast<std::int64_t>(cfg.memory_target);
  })) << "pending=" << smr.pending_nodes();
  EXPECT_LE(smr.background_stats().effective_scan_threshold, base_threshold);
}

// The controller itself, deterministically: rounds are driven by hand on a
// domain whose own service thread was never started (DomainReclaimer is
// exactly the round/adapt half, independent of the thread).  Sustained
// pressure comes from a mutator's private sub-threshold limbo — pending
// the reclaimer can see in the gauge but cannot adopt, so it persists
// across rounds the way a backlogged system's would.
TYPED_TEST(ReclaimerTest, AdaptiveControllerTightensThenRelaxes) {
  SmrConfig cfg = test::small_config(2);
  cfg.background_reclaim = false;  // no thread; rounds run inline below
  cfg.scan_threshold = 256;
  cfg.batch_capacity = 256;  // Hyaline's threshold analogue, same base
  cfg.era_freq = 64;
  cfg.memory_target = 64;
  TypeParam smr(cfg);
  DomainReclaimer<TypeParam> svc(smr);
  const unsigned base_threshold =
      smr.background_stats().effective_scan_threshold;
  ASSERT_EQ(base_threshold, 256u);

  {
    auto h = scoped_handle(smr);
    test::churn_retire(h.get(), 200);  // below threshold: stays in limbo
    ASSERT_GT(smr.pending_nodes(),
              static_cast<std::int64_t>(cfg.memory_target));

    svc.round();  // over target: one halving step
    BgReclaimStats s = smr.background_stats();
    EXPECT_EQ(s.effective_scan_threshold, 128u);
    EXPECT_EQ(s.adaptations, 1u);

    for (int i = 0; i < 8; ++i) svc.round();  // converge to the floors
    s = smr.background_stats();
    EXPECT_EQ(s.effective_scan_threshold, 8u);  // kMinThreshold
    EXPECT_EQ(s.effective_era_freq, 4u);        // kMinEraFreq
    const std::uint64_t at_floor = s.adaptations;
    svc.round();  // still over target, but floored: no further adaptation
    EXPECT_EQ(smr.background_stats().adaptations, at_floor);
  }  // leave() with the service inactive scans inline: pressure released

  // Pressure gone: the thresholds double back to the configured base (and
  // not past it), one relax step per round.
  for (int i = 0; i < 10; ++i) svc.round();
  const BgReclaimStats s = smr.background_stats();
  EXPECT_LE(smr.pending_nodes(),
            static_cast<std::int64_t>(cfg.memory_target));
  EXPECT_EQ(s.effective_scan_threshold, base_threshold);
  EXPECT_EQ(s.effective_era_freq, 64u);
}

// TSan witness: one controller cycling the service thread while mutator
// threads churn sessions (join / retire past the donation threshold /
// leave) the whole time.  Exercises every cross-thread edge at once —
// doorbell rings against a stopping thread, donations racing stop's final
// drain, leave() donating to a mailbox the reclaimer is taking, orphan
// adoption flipping between inline and background custody.
TYPED_TEST(ReclaimerTest, StartStopVersusJoinLeaveHammer) {
  SmrConfig cfg = bg_config(4);
  TypeParam smr(cfg);
  std::atomic<bool> stop{false};

  std::thread controller([&] {
    const int cycles = test::scaled_iters(40);
    for (int i = 0; i < cycles; ++i) {
      smr.stop_background_reclaimer();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      smr.start_background_reclaimer();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    stop.store(true);
  });
  test::run_threads(3, [&](unsigned) {
    while (!stop.load(std::memory_order_relaxed)) {
      auto h = scoped_handle(smr);
      test::churn_retire(h.get(), 64);
    }
  });
  controller.join();
  // Whatever custody state the hammer ended in, teardown must drain it.
}

// NR's surface is uniform but inert: nothing to reclaim, nothing to start.
TEST(ReclaimerNrTest, NoReclaimDomainHasInertSurface) {
  SmrConfig cfg = bg_config();
  NoReclaimDomain smr(cfg);
  EXPECT_FALSE(smr.background_active());
  smr.start_background_reclaimer();  // no-op
  EXPECT_FALSE(smr.background_active());
  EXPECT_EQ(smr.background_stats().rounds, 0u);
  smr.stop_background_reclaimer();   // no-op
}

}  // namespace
}  // namespace scot
