// TreiberStack recovery validation through the scot::AnyStack facade, for
// every scheme: LIFO semantics, element conservation under concurrent
// push/pop churn, and the degenerate-shape recovery contract — restart and
// recover coincide at a single anchor, so ds_recoveries stays 0 by
// construction (DESIGN.md §11).  Runs in both fence disciplines via the
// SCOT_ASYM env knob.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/any_container.hpp"
#include "tests/test_util.hpp"

namespace scot {
namespace {

AnyContainerOptions small_options(unsigned threads = 4) {
  AnyContainerOptions options;
  options.smr = test::small_config(threads);
  return options;
}

TEST(AnyStack, MakeEnforcesTheContainerKind) {
  EXPECT_TRUE(AnyStack::make(SchemeId::kHE).has_value());
  EXPECT_FALSE(
      AnyStack::make(SchemeId::kHE, StructureId::kMSQueue).has_value())
      << "a queue must not open as a stack";
  EXPECT_FALSE(AnyStack::make(SchemeId::kHE, StructureId::kDeque).has_value());
}

TEST(AnyStack, EverySchemeLifoSingleThreaded) {
  constexpr std::uint64_t kItems = 256;
  for (SchemeId s : kAllSchemes) {
    SCOPED_TRACE(scheme_name(s));
    auto st = AnyStack::make(s, StructureId::kTreiberStack, small_options());
    ASSERT_TRUE(st.has_value());
    auto session = st->session();
    EXPECT_EQ(session.pop(), std::nullopt) << "starts empty";
    for (std::uint64_t i = 0; i < kItems; ++i)
      EXPECT_TRUE(session.push(i * 7));
    EXPECT_EQ(st->size_unsafe(), kItems);
    for (std::uint64_t i = kItems; i-- > 0;) {
      const auto v = session.pop();
      ASSERT_TRUE(v.has_value()) << i;
      EXPECT_EQ(*v, i * 7) << "LIFO order";
    }
    EXPECT_EQ(session.pop(), std::nullopt) << "drained";
    EXPECT_EQ(st->size_unsafe(), 0u);
  }
}

TEST(AnyStack, UnionSurfaceRejectsTheWrongEnds) {
  auto c = AnyContainer::make(SchemeId::kEBR, StructureId::kTreiberStack,
                              small_options());
  ASSERT_TRUE(c.has_value());
  auto session = c->session();
  EXPECT_FALSE(session.push_back(1)) << "stacks only grow at the top";
  EXPECT_TRUE(session.push_front(1));
  EXPECT_EQ(session.pop_back(), std::nullopt)
      << "stacks only shrink at the top";
  EXPECT_EQ(session.pop_front(), 1u);
}

// Mixed push/pop churn: every tagged element is popped or drained exactly
// once, and interleaved pops never invent or lose elements.
TEST(AnyStack, EverySchemeConcurrentConservation) {
  const unsigned kThreads = 4;
  const std::uint64_t kPerThread =
      static_cast<std::uint64_t>(test::scaled_iters(20000));
  for (SchemeId s : kAllSchemes) {
    SCOPED_TRACE(scheme_name(s));
    auto st = AnyStack::make(s, StructureId::kTreiberStack,
                             small_options(kThreads));
    ASSERT_TRUE(st.has_value());
    std::vector<std::vector<std::uint64_t>> popped(kThreads);
    test::run_threads(kThreads, [&](unsigned t) {
      auto session = st->session();
      Xoshiro256 rng(0x5eed + t);
      auto& mine = popped[t];
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(session.push((static_cast<std::uint64_t>(t) << 32) | i));
        if (rng.next() & 1) {
          const auto v = session.pop();
          if (v.has_value()) mine.push_back(*v);
        }
      }
    });
    std::vector<std::uint64_t> all;
    {
      auto session = st->session();
      while (const auto v = session.pop()) all.push_back(*v);
    }
    EXPECT_EQ(st->size_unsafe(), 0u);
    for (const auto& p : popped) all.insert(all.end(), p.begin(), p.end());
    ASSERT_EQ(all.size(), kThreads * kPerThread);
    std::sort(all.begin(), all.end());
    EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
        << "duplicate element popped";
    for (unsigned t = 0; t < kThreads; ++t) {
      EXPECT_EQ(all[t * kPerThread], static_cast<std::uint64_t>(t) << 32);
      EXPECT_EQ(all[(t + 1) * kPerThread - 1],
                (static_cast<std::uint64_t>(t) << 32) | (kPerThread - 1));
    }
    // The degenerate-shape contract: a failed pop CAS re-reads the anchor,
    // which *is* the whole traversal — there is no separate recovery path
    // to take, so the recovery counter must stay exactly 0 no matter how
    // contended the run was.
    EXPECT_EQ(st->recoveries(), 0u)
        << "stack recoveries are 0 by construction (DESIGN.md §11)";
  }
}

TEST(AnyStack, DeprecatedTidSurfaceStillWorks) {
  auto st = AnyStack::make(SchemeId::kHPopt, StructureId::kTreiberStack,
                           small_options(2));
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->push(0, 11));
  EXPECT_TRUE(st->push(1, 22));
  EXPECT_EQ(st->pop(0), 22u);
  EXPECT_EQ(st->pop(1), 11u);
  EXPECT_EQ(st->pop(0), std::nullopt);
}

TEST(AnyStack, TeardownWithResidentElementsDoesNotLeak) {
  for (SchemeId s : kAllSchemes) {
    SCOPED_TRACE(scheme_name(s));
    auto st = AnyStack::make(s, StructureId::kTreiberStack, small_options());
    ASSERT_TRUE(st.has_value());
    auto session = st->session();
    for (std::uint64_t i = 0; i < 128; ++i) ASSERT_TRUE(session.push(i));
    session.reset();
  }
}

}  // namespace
}  // namespace scot
