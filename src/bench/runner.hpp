// Entry point of the benchmark harness: runs one (structure, scheme,
// threads, workload) cell and reports throughput / memory overhead /
// restart statistics.  Since API v2 there is a single registry-driven
// implementation (runner.cpp): the cell is built through scot::AnyMap, so
// scheme and structure are runtime values and no per-scheme translation
// units exist.  Virtual dispatch is per *operation*; the protect() fast
// path inside an operation is the fully typed code.
#pragma once

#include "bench/options.hpp"

namespace scot::bench {

CaseResult run_case(const CaseConfig& cfg);

}  // namespace scot::bench
