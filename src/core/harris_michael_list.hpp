// The Harris-Michael lock-free linked list (Michael, SPAA 2002).
//
// This is the paper's *compatible baseline*: logical deletion followed by
// **eager** physical removal.  Whenever a traversal encounters a logically
// deleted node it must unlink it before proceeding (and restart from the
// head if the unlink CAS fails).  That discipline is what makes the list
// safe under HP/HE/IBR/Hyaline-1S without SCOT — and it is also why the
// list pays extra CAS traffic and restarts under contention (Table 2 of the
// paper reports restart rates up to 8.19% at 256 threads).
//
// Protection roles (API v2 guard slots, ascending-dup discipline):
//   hp.next = next, hp.curr = curr, hp.prev = prev.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>

#include "common/align.hpp"
#include "core/list_common.hpp"
#include "core/marked_ptr.hpp"
#include "smr/handle_registry.hpp"
#include "smr/smr.hpp"

namespace scot {

template <class Key, class Value, SmrDomainV2 Smr,
          class Compare = std::less<Key>>
class HarrisMichaelList {
 public:
  using Node = ListNode<Key, Value>;
  using MP = marked_ptr<Node>;
  // Link words live in pool-recycled nodes, so they are StableAtomic (the
  // head is one too: traversal code points at head and node links alike).
  using Link = StableAtomic<MP>;
  using Handle = typename Smr::Handle;
  using Guard = TraversalGuard<Handle>;
  using NodeSlot = ProtectionSlot<Handle, Node>;

  static constexpr unsigned kSlotsRequired = 3;

  // Slot roles in index (= ascending-dup) order.
  struct Hp {
    NodeSlot next, curr, prev;
    explicit Hp(Guard& g)
        : next(g.template slot<Node>()),
          curr(g.template slot<Node>()),
          prev(g.template slot<Node>()) {}
  };

  explicit HarrisMichaelList(Smr& smr, Compare cmp = {})
      : smr_(smr), cmp_(cmp) {
    auto h = scoped_handle(smr_);
    Node* tail = h->template alloc<Node>(Key{}, Value{}, 1);
    head_.store(MP(tail), std::memory_order_release);
  }

  ~HarrisMichaelList() {
    // Single-threaded teardown: free every node still linked (including
    // logically deleted but not yet unlinked ones; retired nodes are
    // unlinked by construction and owned by the SMR domain).
    auto sh = scoped_handle(smr_);
    auto& h = sh.get();
    Node* n = head_.load(std::memory_order_relaxed).ptr();
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed).ptr();
      h.dealloc_unpublished(n);
      n = next;
    }
  }

  HarrisMichaelList(const HarrisMichaelList&) = delete;
  HarrisMichaelList& operator=(const HarrisMichaelList&) = delete;

  // Inserts `key`; returns false if already present.
  bool insert(Handle& h, const Key& key, const Value& value = {}) {
    Guard guard(h);
    Hp hp(guard);
    Node* n = h.template alloc<Node>(key, value, 0);
    for (;;) {
      Position pos = find(guard, hp, key);
      if (pos.found) {
        h.dealloc_unpublished(n);
        return false;
      }
      n->next.store(MP(pos.curr), std::memory_order_relaxed);
      MP expected(pos.curr);
      if (pos.prev->compare_exchange_strong(expected, MP(n),
                                            std::memory_order_seq_cst,
                                            std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  // Removes `key`; returns false if absent.
  bool erase(Handle& h, const Key& key) {
    Guard guard(h);
    Hp hp(guard);
    for (;;) {
      Position pos = find(guard, hp, key);
      if (!pos.found) return false;
      MP next = pos.next;  // unmarked: find() only returns live nodes
      assert(!next.marked());
      // Logical deletion: mark curr's next pointer.
      if (!pos.curr->next.compare_exchange_strong(next, next.with_mark(),
                                                  std::memory_order_seq_cst,
                                                  std::memory_order_relaxed)) {
        continue;  // lost a race on curr; retry from find
      }
      // One eager unlink attempt; on failure the next traversal cleans up.
      MP expected(pos.curr);
      if (pos.prev->compare_exchange_strong(expected, next.clean(),
                                            std::memory_order_seq_cst,
                                            std::memory_order_relaxed)) {
        h.retire(pos.curr);
      } else {
        find(guard, hp, key);  // help unlink (Michael's cleanup pass)
      }
      return true;
    }
  }

  bool contains(Handle& h, const Key& key) {
    Guard guard(h);
    Hp hp(guard);
    return find(guard, hp, key).found;
  }

  std::optional<Value> get(Handle& h, const Key& key) {
    Guard guard(h);
    Hp hp(guard);
    Position pos = find(guard, hp, key);
    if (!pos.found) return std::nullopt;
    return pos.curr->value;  // curr is hazard-protected
  }

  // Single-threaded size (tests / teardown only).
  std::size_t size_unsafe() const {
    std::size_t n = 0;
    const Node* c = head_.load(std::memory_order_acquire).ptr();
    while (c != nullptr) {
      if (c->rank == 0 &&
          !c->next.load(std::memory_order_acquire).marked())
        ++n;
      c = c->next.load(std::memory_order_acquire).ptr();
    }
    return n;
  }

 private:
  struct Position {
    Link* prev;
    Node* curr;
    MP next;
    bool found;
  };

  // Michael's Find: eagerly unlinks every logically deleted node it meets.
  Position find(Guard& g, Hp& hp, const Key& key) {
    Handle& h = g.handle();
    for (;;) {
      Link* prev = &head_;
      MP curr_m = hp.curr.protect(head_);
      if (!g.valid()) {
        restart(g);
        continue;
      }
      Node* curr = curr_m.ptr();
      bool retry = false;
      while (curr != nullptr) {
        MP next = hp.next.protect(curr->next);
        if (!g.valid()) {
          retry = true;
          break;
        }
        // Validate that curr is still linked and live; catches concurrent
        // insertions at prev and removals of curr.
        if (prev->load(std::memory_order_seq_cst) != MP(curr)) {
          retry = true;
          break;
        }
        if (next.marked()) {
          // Eager physical removal of the logically deleted curr.
          MP expected(curr);
          if (!prev->compare_exchange_strong(expected, next.clean(),
                                             std::memory_order_seq_cst,
                                             std::memory_order_relaxed)) {
            retry = true;
            break;
          }
          h.retire(curr);
          curr = next.ptr();
          hp.curr.dup_from(hp.next);
          continue;
        }
        if (!node_less_than_key(curr, key, cmp_)) {
          return {prev, curr, next, node_equals_key(curr, key, cmp_)};
        }
        prev = &curr->next;
        hp.prev.dup_from(hp.curr);
        curr = next.ptr();
        hp.curr.dup_from(hp.next);
      }
      if (!retry) {
        // Fell off the list: with the tail sentinel this is unreachable,
        // but kept for structural robustness.
        return {prev, nullptr, MP{}, false};
      }
      restart(g);
    }
  }

  void restart(Guard& g) {
    ++g.handle().ds_restarts;
    g.revalidate();
  }

  alignas(kCacheLine) Link head_{MP{}};
  Smr& smr_;
  [[no_unique_address]] Compare cmp_;
};

}  // namespace scot
