// kv_cache_robust: a concurrent key-value cache on the SCOT hash map,
// demonstrating why robustness matters for long-running services.
//
// Scenario (the paper's motivation, §1): a cache shard serves get/put/evict
// from many threads.  One worker gets stuck — page fault storm, FUSE stall,
// debugger, unlucky preemption — in the middle of a lookup.  With EBR the
// stuck reader freezes the global epoch and evicted entries pile up without
// bound; with a robust scheme (here: Hyaline-1S) memory stays bounded and
// the service keeps running.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "scot.hpp"

using namespace scot;

template <class Smr>
long long run_shard(const char* label, int stalled_ms) {
  SmrConfig cfg;
  cfg.max_threads = 4;
  Smr smr(cfg);
  HashMap<std::uint64_t, std::uint64_t, Smr> cache(smr, /*buckets=*/256);

  // Warm the cache.
  {
    auto sh = scoped_handle(smr);
    for (std::uint64_t k = 0; k < 2048; ++k) cache.insert(sh.get(), k, k * k);
  }

  std::atomic<bool> stop{false};
  std::atomic<long long> peak{0};

  // Thread 3 is the victim: it opens an operation and stalls inside it.
  std::thread victim([&] {
    auto sh = scoped_handle(smr);
    auto& h = sh.get();
    h.begin_op();  // stuck mid-lookup...
    std::this_thread::sleep_for(std::chrono::milliseconds(stalled_ms));
    h.end_op();  // ...finally rescheduled
  });

  // Threads 1-2 keep serving puts/evictions (maximum reclamation pressure).
  std::vector<std::thread> workers;
  for (unsigned t = 1; t <= 2; ++t) {
    workers.emplace_back([&] {
      auto sh = scoped_handle(smr);
      auto& h = sh.get();
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = (i * 2654435761u) % 2048;
        cache.erase(h, k);        // evict
        cache.insert(h, k, i);    // refill
        if ((i & 255) == 0) {
          long long p = smr.pending_nodes();
          long long cur = peak.load();
          while (p > cur && !peak.compare_exchange_weak(cur, p)) {
          }
        }
        ++i;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(stalled_ms + 100));
  stop.store(true);
  for (auto& w : workers) w.join();
  victim.join();

  std::printf("  %-28s peak unreclaimed entries: %lld\n", label, peak.load());
  return peak.load();
}

int main() {
  std::printf("KV cache with a worker stalled mid-operation for 400 ms:\n\n");
  const long long ebr = run_shard<EbrDomain>("EBR (epoch-based):", 400);
  const long long hln = run_shard<HyalineDomain>("Hyaline-1S (robust):", 400);
  const long long hp = run_shard<HpDomain>("Hazard pointers (robust):", 400);
  std::printf(
      "\nEBR let garbage grow ~%lldx beyond the robust schemes — on a real\n"
      "shard that is an OOM kill; SCOT makes the robust schemes usable with\n"
      "the fast optimistic-traversal structures.\n",
      hln + hp > 0 ? ebr / ((hln + hp) / 2 + 1) : 0);
  return 0;
}
