#include "bench/runner.hpp"
#include "bench/runner_impl.hpp"

namespace scot::bench {

CaseResult run_case_ebr(const CaseConfig& cfg) {
  return detail::run_with_scheme<EbrDomain>(cfg);
}

}  // namespace scot::bench
