// Lifecycle tests shared by all seven reclamation schemes (typed suite):
// allocation, retirement, the pending gauge, and domain teardown.
#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace scot {
namespace {

using test::TestNode;

template <class Smr>
class SmrBasicTest : public ::testing::Test {};

TYPED_TEST_SUITE(SmrBasicTest, test::AllSchemes);

TYPED_TEST(SmrBasicTest, NamesAndFlagsArePopulated) {
  EXPECT_NE(TypeParam::kName, nullptr);
  EXPECT_GT(std::string(TypeParam::kName).size(), 0u);
}

TYPED_TEST(SmrBasicTest, AllocConstructsAndStampsMetadata) {
  TypeParam smr(test::small_config());
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  auto* n = h.template alloc<TestNode>(std::uint64_t{77});
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->payload, 77u);
  EXPECT_EQ(n->alloc_size, sizeof(TestNode));
  EXPECT_EQ(n->debug_state, kNodeLive);
  h.dealloc_unpublished(n);
}

TYPED_TEST(SmrBasicTest, DeallocUnpublishedRecyclesWithoutRetire) {
  TypeParam smr(test::small_config());
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  auto* a = h.template alloc<TestNode>(std::uint64_t{1});
  h.dealloc_unpublished(a);
  EXPECT_EQ(smr.pending_nodes(), 0) << "unpublished nodes never hit limbo";
  auto* b = h.template alloc<TestNode>(std::uint64_t{2});
  EXPECT_EQ(static_cast<void*>(a), static_cast<void*>(b))
      << "pool should recycle the cell immediately";
  h.dealloc_unpublished(b);
}

TYPED_TEST(SmrBasicTest, RetireRaisesPendingGauge) {
  TypeParam smr(test::small_config());
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  auto* n = h.template alloc<TestNode>(std::uint64_t{0});
  h.retire(n);
  EXPECT_GE(smr.pending_nodes(), 1);
  EXPECT_GE(smr.counters().retired.load(), 1u);
}

TYPED_TEST(SmrBasicTest, QuiescentChurnEventuallyReclaims) {
  TypeParam smr(test::small_config());
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  // No operation is in flight, so every scheme except NR must be able to
  // recycle retired nodes once scan thresholds are crossed.
  test::churn_retire(h, 2000);
  if constexpr (std::is_same_v<TypeParam, NoReclaimDomain>) {
    EXPECT_EQ(smr.pending_nodes(), 2000);
  } else {
    EXPECT_LT(smr.pending_nodes(), 2000)
        << "reclaiming scheme never freed anything";
    EXPECT_GT(smr.counters().reclaimed.load(), 0u);
  }
}

TYPED_TEST(SmrBasicTest, PendingGaugeBalancesRetiresAndFrees) {
  TypeParam smr(test::small_config());
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  test::churn_retire(h, 500);
  const auto retired = smr.counters().retired.load();
  const auto reclaimed = smr.counters().reclaimed.load();
  EXPECT_EQ(smr.pending_nodes(),
            static_cast<std::int64_t>(retired - reclaimed));
}

TYPED_TEST(SmrBasicTest, BeginEndOpAreReentrantAcrossOperations) {
  TypeParam smr(test::small_config());
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  for (int i = 0; i < 100; ++i) {
    h.begin_op();
    h.revalidate_op();
    EXPECT_TRUE(h.op_valid());
    h.end_op();
  }
}

TYPED_TEST(SmrBasicTest, HandlesAreDistinctPerTid) {
  TypeParam smr(test::small_config(4));
  EXPECT_NE(&smr.handle(0), &smr.handle(1));
  EXPECT_EQ(smr.handle(2).tid(), 2u);
  EXPECT_THROW(smr.handle(4), std::out_of_range);
}

TYPED_TEST(SmrBasicTest, TrackStatsOffSilencesGauge) {
  auto cfg = test::small_config();
  cfg.track_stats = false;
  TypeParam smr(cfg);
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  test::churn_retire(h, 100);
  EXPECT_EQ(smr.counters().retired.load(), 0u);
}

TYPED_TEST(SmrBasicTest, DomainTeardownFreesLimbo) {
  // Covered implicitly by ASAN-less leak hygiene: this simply exercises the
  // destructor path with a populated limbo list / open batch.
  TypeParam smr(test::small_config());
  auto sh = scoped_handle(smr);
  auto& h = sh.get();
  for (int i = 0; i < 7; ++i) {
    auto* n = h.template alloc<TestNode>(std::uint64_t{1});
    h.retire(n);
  }
  // Destructor runs at scope exit; nothing to assert beyond "no crash".
}

TYPED_TEST(SmrBasicTest, ConcurrentAllocRetireIsCoherent) {
  TypeParam smr(test::small_config(4));
  test::run_threads(4, [&](unsigned tid) {
    auto sh = scoped_handle(smr);
    auto& h = sh.get();
    for (int i = 0; i < 5000; ++i) {
      h.begin_op();
      auto* n = h.template alloc<TestNode>(std::uint64_t{tid});
      h.retire(n);
      h.end_op();
    }
  });
  const auto retired = smr.counters().retired.load();
  const auto reclaimed = smr.counters().reclaimed.load();
  EXPECT_EQ(retired, 20000u);
  EXPECT_LE(reclaimed, retired);
  EXPECT_EQ(smr.pending_nodes(),
            static_cast<std::int64_t>(retired - reclaimed));
}

}  // namespace
}  // namespace scot
