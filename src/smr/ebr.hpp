// EBR: epoch-based reclamation (Fraser 2004; Hart et al. 2007).
//
// Fast and easy to use, but *not robust*: a stalled thread freezes its
// published epoch, which blocks reclamation of everything retired at or after
// that epoch — memory grows without bound (the paper's motivating weakness,
// Section 2.2.1, and the behaviour our robustness tests demonstrate).
//
// Reclamation rule.  A thread entering an operation publishes the global
// epoch E; while inside the operation it can only reach nodes that were still
// linked when it entered.  A node retired at epoch R was unlinked before the
// retire, so any thread whose published reservation is > R entered after the
// unlink and cannot hold a reference.  Hence: free a retired node once
// `retire_epoch < min(active reservations)`.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/align.hpp"
#include "common/asymfence.hpp"
#include "smr/handle_core.hpp"
#include "smr/node_pool.hpp"
#include "smr/smr_config.hpp"

namespace scot {

class EbrDomain {
 public:
  static constexpr const char* kName = "EBR";
  static constexpr bool kRobust = false;
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  class Handle : public HandleCore<EbrDomain, Handle> {
   public:
    using Base = HandleCore<EbrDomain, Handle>;
    using Base::retire;  // typed retire(Protected<T>) — API v2
    Handle(EbrDomain* dom, unsigned tid) : Base(dom, tid) {}

    void begin_op() noexcept {
      // The reservation must be visible to reclaimers before any of this
      // operation's shared loads execute (StoreLoad).  Classic: a seq_cst
      // activation store.  Asymmetric: release store + compiler barrier;
      // the StoreLoad edge is restored by the heavy barrier every scan
      // issues before reading the reservations (DESIGN.md §5).  The epoch
      // is loaded *before* the store (data dependency), so the published
      // reservation can never lag the clock value this operation validates
      // against.
      const std::uint64_t e = dom_->clock_.load(std::memory_order_acquire);
      const asymfence::Path fences = dom_->fence_path_;
      if (fences == asymfence::Path::kClassic) {
        dom_->res_[tid_]->store(e, std::memory_order_seq_cst);
      } else {
        dom_->res_[tid_]->store(e, std::memory_order_release);
        asymfence::light_barrier(fences);
      }
    }
    void end_op() noexcept {
      dom_->res_[tid_]->store(kIdle, std::memory_order_release);
    }

    // `Src` is std::atomic<P> or StableAtomic<P> (pool-recycled link words).
    template <class Src, class P = typename Src::value_type>
    P protect(const Src& src, unsigned /*idx*/) noexcept {
      return src.load(std::memory_order_acquire);
    }
    template <class T>
    void publish(T* /*p*/, unsigned /*idx*/) noexcept {}
    void dup(unsigned /*i*/, unsigned /*j*/) noexcept {}
    static constexpr bool op_valid() noexcept { return true; }
    void revalidate_op() noexcept {}

    void retire(ReclaimNode* n) {
      n->debug_state = kNodeRetired;
      n->retire_era = dom_->clock_.load(std::memory_order_acquire);
      limbo_.push(n);
      dom_->counters_.on_retire(dom_->cfg_.track_stats);
      if (++tick_ >= dom_->cfg_.era_freq) {
        tick_ = 0;
        dom_->clock_.fetch_add(1, std::memory_order_acq_rel);
      }
      if (limbo_.count >= dom_->cfg_.scan_threshold) scan();
    }

    std::uint64_t on_alloc_era() noexcept { return 0; }

    // Frees every retired node no active reservation can still reference.
    void scan() {
      // Surface in-flight activation stores before snapshotting the
      // reservations; a reservation the barrier does not surface belongs
      // to a thread whose first shared load is ordered after every unlink
      // in this batch (DESIGN.md §5, activation case).
      if (dom_->fence_path_ != asymfence::Path::kClassic)
        asymfence::heavy_barrier(dom_->fence_path_);
      const std::uint64_t min_res = dom_->min_reservation();
      ReclaimNode* n = limbo_.take();
      std::uint64_t freed = 0;
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        if (n->retire_era < min_res) {
          dom_->pool().free(tid_, n, n->alloc_size);
          ++freed;
        } else {
          limbo_.push(n);
        }
        n = next;
      }
      dom_->counters_.on_free(freed, dom_->cfg_.track_stats);
    }

    // Test hook: number of nodes parked in this thread's limbo list.
    unsigned limbo_size() const noexcept { return limbo_.count; }

   private:
    friend class EbrDomain;
    LimboList limbo_;
    unsigned tick_ = 0;
  };

  explicit EbrDomain(SmrConfig cfg = {})
      : cfg_(cfg),
        pool_(cfg.max_threads),
        res_(cfg.max_threads),
        fence_path_(asymfence::resolve(cfg.asymmetric_fences)) {
    for (auto& r : res_) r->store(kIdle, std::memory_order_relaxed);
    handles_.reserve(cfg_.max_threads);
    for (unsigned t = 0; t < cfg_.max_threads; ++t)
      handles_.push_back(std::make_unique<Handle>(this, t));
  }

  ~EbrDomain() { drain_all(); }

  Handle& handle(unsigned tid) { return *handles_.at(tid); }
  const SmrConfig& config() const noexcept { return cfg_; }
  NodePool& pool() noexcept { return pool_; }
  std::int64_t pending_nodes() const noexcept {
    return counters_.pending.load(std::memory_order_relaxed);
  }
  const SmrCounters& counters() const noexcept { return counters_; }
  std::uint64_t epoch() const noexcept {
    return clock_.load(std::memory_order_acquire);
  }
  asymfence::Path fence_path() const noexcept { return fence_path_; }

  std::uint64_t min_reservation() const noexcept {
    std::uint64_t m = kIdle;
    for (const auto& r : res_) {
      const std::uint64_t v = r->load(std::memory_order_acquire);
      if (v < m) m = v;
    }
    return m;
  }

 private:
  friend class Handle;

  // Destructor-time cleanup: no threads are active, free everything.
  void drain_all() {
    std::uint64_t freed = 0;
    for (auto& h : handles_) {
      ReclaimNode* n = h->limbo_.take();
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        pool_.free(h->tid(), n, n->alloc_size);
        ++freed;
        n = next;
      }
    }
    counters_.on_free(freed, cfg_.track_stats);
  }

  SmrConfig cfg_;
  NodePool pool_;
  SmrCounters counters_;
  std::atomic<std::uint64_t> clock_{1};
  std::vector<Padded<std::atomic<std::uint64_t>>> res_;
  asymfence::Path fence_path_;
  std::vector<std::unique_ptr<Handle>> handles_;
};

}  // namespace scot
