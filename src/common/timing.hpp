// Monotonic timing helpers for the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace scot {

using Clock = std::chrono::steady_clock;

inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

inline double ns_to_sec(std::uint64_t ns) noexcept {
  return static_cast<double>(ns) * 1e-9;
}

}  // namespace scot
