#include "bench/runner.hpp"
#include "bench/runner_impl.hpp"

namespace scot::bench {

CaseResult run_case_he(const CaseConfig& cfg) {
  return detail::run_with_scheme<HeDomain>(cfg);
}

}  // namespace scot::bench
