// Concurrent list tests: disjoint-key determinism, same-key mutual
// exclusion, mixed churn with post-hoc coherence, and restart accounting
// (the behavioural basis of Table 2).
#include <gtest/gtest.h>

#include <atomic>

#include "tests/test_util.hpp"

namespace scot {
namespace {

using Key = std::uint64_t;
using Val = std::uint64_t;

template <class Smr>
class ListConcurrentTest : public ::testing::Test {};

TYPED_TEST_SUITE(ListConcurrentTest, test::AllSchemes);

// Each thread inserts its own residue class; everything must be present.
template <class List, class Smr>
void disjoint_inserts(Smr& smr, unsigned threads, Key per_thread) {
  List list(smr);
  test::run_threads(threads, [&](unsigned tid) {
    auto& h = smr.handle(tid);
    for (Key i = 0; i < per_thread; ++i) {
      ASSERT_TRUE(list.insert(h, i * threads + tid, tid));
    }
  });
  auto& h = smr.handle(0);
  EXPECT_EQ(list.size_unsafe(), threads * per_thread);
  for (Key k = 0; k < threads * per_thread; ++k) {
    EXPECT_TRUE(list.contains(h, k)) << "missing key " << k;
    EXPECT_EQ(list.get(h, k).value_or(~0ull), k % threads);
  }
}

TYPED_TEST(ListConcurrentTest, DisjointInsertsAllPresentHM) {
  TypeParam smr(test::small_config(4));
  disjoint_inserts<HarrisMichaelList<Key, Val, TypeParam>>(smr, 4, 300);
}
TYPED_TEST(ListConcurrentTest, DisjointInsertsAllPresentHL) {
  TypeParam smr(test::small_config(4));
  disjoint_inserts<HarrisList<Key, Val, TypeParam>>(smr, 4, 300);
}

// N threads race to insert the same key: exactly one wins; then N race to
// erase it: exactly one wins.
template <class List, class Smr>
void same_key_races(Smr& smr, unsigned threads) {
  List list(smr);
  const int rounds = test::scaled_iters(200);
  for (int round = 0; round < rounds; ++round) {
    std::atomic<int> ins_wins{0}, del_wins{0};
    test::run_threads(threads, [&](unsigned tid) {
      auto& h = smr.handle(tid);
      if (list.insert(h, 42, tid)) ins_wins.fetch_add(1);
    });
    EXPECT_EQ(ins_wins.load(), 1) << "round " << round;
    test::run_threads(threads, [&](unsigned tid) {
      auto& h = smr.handle(tid);
      if (list.erase(h, 42)) del_wins.fetch_add(1);
    });
    EXPECT_EQ(del_wins.load(), 1) << "round " << round;
    EXPECT_FALSE(list.contains(smr.handle(0), 42));
  }
}

TYPED_TEST(ListConcurrentTest, SameKeyInsertEraseMutualExclusionHM) {
  TypeParam smr(test::small_config(4));
  same_key_races<HarrisMichaelList<Key, Val, TypeParam>>(smr, 4);
}
TYPED_TEST(ListConcurrentTest, SameKeyInsertEraseMutualExclusionHL) {
  TypeParam smr(test::small_config(4));
  same_key_races<HarrisList<Key, Val, TypeParam>>(smr, 4);
}

// Mixed churn on a tiny range (maximizes marked-chain traffic), then a
// single-threaded coherence drain: contains/erase must agree on every key.
template <class List, class Smr>
void churn_then_drain(Smr& smr, unsigned threads, Key range, int iters) {
  List list(smr);
  test::run_threads(threads, [&](unsigned tid) {
    auto& h = smr.handle(tid);
    Xoshiro256 rng(tid * 7919 + 13);
    for (int i = 0; i < iters; ++i) {
      const Key k = rng.next_in(range);
      switch (rng.next_in(4)) {
        case 0:
        case 1:
          list.insert(h, k, k);
          break;
        case 2:
          list.erase(h, k);
          break;
        default:
          list.contains(h, k);
          break;
      }
    }
  });
  auto& h = smr.handle(0);
  std::size_t live = 0;
  for (Key k = 0; k < range; ++k) {
    const bool c = list.contains(h, k);
    const bool e = list.erase(h, k);
    EXPECT_EQ(c, e) << "key " << k
                    << ": contains and erase disagree after quiescence";
    live += e;
  }
  EXPECT_EQ(list.size_unsafe(), 0u);
  (void)live;
}

TYPED_TEST(ListConcurrentTest, TinyRangeChurnCoherenceHM) {
  TypeParam smr(test::small_config(8));
  churn_then_drain<HarrisMichaelList<Key, Val, TypeParam>>(
      smr, 8, 12, test::scaled_iters(40000));
}
TYPED_TEST(ListConcurrentTest, TinyRangeChurnCoherenceHL) {
  TypeParam smr(test::small_config(8));
  churn_then_drain<HarrisList<Key, Val, TypeParam>>(smr, 8, 12,
                                                    test::scaled_iters(40000));
}
TYPED_TEST(ListConcurrentTest, TinyRangeChurnCoherenceHLSimple) {
  TypeParam smr(test::small_config(8));
  churn_then_drain<HarrisList<Key, Val, TypeParam, HarrisListSimpleTraits>>(
      smr, 8, 12, test::scaled_iters(40000));
}
TYPED_TEST(ListConcurrentTest, TinyRangeChurnCoherenceHLNoRecovery) {
  TypeParam smr(test::small_config(8));
  churn_then_drain<
      HarrisList<Key, Val, TypeParam, HarrisListNoRecoveryTraits>>(
      smr, 8, 12, test::scaled_iters(40000));
}

TYPED_TEST(ListConcurrentTest, ReadersNeverObserveErasedThenPresentKey) {
  // A fixed key is inserted once and never erased: concurrent readers must
  // always find it, no matter how much churn surrounds it.
  TypeParam smr(test::small_config(4));
  HarrisList<Key, Val, TypeParam> list(smr);
  ASSERT_TRUE(list.insert(smr.handle(0), 500, 1));
  std::atomic<bool> stop{false};
  std::atomic<int> misses{0};
  test::run_threads(4, [&](unsigned tid) {
    auto& h = smr.handle(tid);
    if (tid == 0) {
      Xoshiro256 rng(3);
      const int iters = test::scaled_iters(60000);
      for (int i = 0; i < iters; ++i) {
        const Key k = 490 + rng.next_in(20);
        if (k == 500) continue;
        if (rng.next_in(2)) {
          list.insert(h, k, k);
        } else {
          list.erase(h, k);
        }
      }
      stop.store(true);
    } else {
      while (!stop.load(std::memory_order_relaxed)) {
        if (!list.contains(h, 500)) misses.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(misses.load(), 0) << "stable key transiently disappeared";
}

TYPED_TEST(ListConcurrentTest, RestartCountersBehaveLikeTable2) {
  // Table 2 of the paper: the Harris-Michael list restarts under contention
  // while Harris+SCOT restarts stay near zero.  With only 2 cores we do not
  // assert a ratio, just that the SCOT list's restarts stay tiny relative to
  // operations while HM's counter is the one that grows when anything does.
  TypeParam smr1(test::small_config(8));
  TypeParam smr2(test::small_config(8));
  HarrisMichaelList<Key, Val, TypeParam> hm(smr1);
  HarrisList<Key, Val, TypeParam> hl(smr2);

  const int kIters = test::scaled_iters(30000);
  auto workload = [&](auto& list, auto& smr) {
    test::run_threads(8, [&](unsigned tid) {
      auto& h = smr.handle(tid);
      Xoshiro256 rng(tid + 100);
      for (int i = 0; i < kIters; ++i) {
        const Key k = rng.next_in(32);
        switch (rng.next_in(4)) {
          case 0:
          case 1:
            list.insert(h, k, k);
            break;
          case 2:
            list.erase(h, k);
            break;
          default:
            list.contains(h, k);
            break;
        }
      }
    });
    std::uint64_t restarts = 0;
    for (unsigned t = 0; t < 8; ++t) restarts += smr.handle(t).ds_restarts;
    return restarts;
  };
  const std::uint64_t hm_restarts = workload(hm, smr1);
  const std::uint64_t hl_restarts = workload(hl, smr2);
  // SCOT restarts only on dangerous-zone invalidation, which needs a chain
  // unlink to race with a traversal inside the chain — rare even on a hot
  // 32-key list.
  EXPECT_LT(hl_restarts, static_cast<std::uint64_t>(8 * kIters / 100))
      << "Harris+SCOT restart rate should stay below 1% of operations";
  this->RecordProperty("hm_restarts", static_cast<int>(hm_restarts));
  this->RecordProperty("hl_restarts", static_cast<int>(hl_restarts));
}

}  // namespace
}  // namespace scot
