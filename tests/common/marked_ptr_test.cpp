#include "core/marked_ptr.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

namespace scot {
namespace {

struct Dummy : ReclaimNode {
  int x = 0;
};

using MP = marked_ptr<Dummy>;

TEST(MarkedPtr, DefaultIsNullAndClean) {
  MP p;
  EXPECT_EQ(p.ptr(), nullptr);
  EXPECT_EQ(p.bits(), 0u);
  EXPECT_FALSE(p.marked());
  EXPECT_FALSE(p.tagged());
  EXPECT_FALSE(static_cast<bool>(p));
}

TEST(MarkedPtr, RoundTripsPointer) {
  alignas(16) Dummy d;
  MP p(&d);
  EXPECT_EQ(p.ptr(), &d);
  EXPECT_TRUE(static_cast<bool>(p));
  EXPECT_EQ(p.bits(), 0u);
}

TEST(MarkedPtr, MarkBitIsIndependentOfPointer) {
  alignas(16) Dummy d;
  MP p(&d);
  MP m = p.with_mark();
  EXPECT_TRUE(m.marked());
  EXPECT_TRUE(m.flagged());  // list mark == tree flag
  EXPECT_FALSE(m.tagged());
  EXPECT_EQ(m.ptr(), &d);
  EXPECT_NE(m, p);
  EXPECT_EQ(m.clean(), p);
}

TEST(MarkedPtr, TagBitIsIndependentOfMarkBit) {
  alignas(16) Dummy d;
  MP t = MP(&d).with_tag();
  EXPECT_TRUE(t.tagged());
  EXPECT_FALSE(t.flagged());
  MP both = t.with_flag();
  EXPECT_TRUE(both.tagged());
  EXPECT_TRUE(both.flagged());
  EXPECT_EQ(both.bits(), kMarkBit | kTagBit);
  EXPECT_EQ(both.clean().bits(), 0u);
  EXPECT_EQ(both.ptr(), &d);
}

TEST(MarkedPtr, WithBitsReplacesBits) {
  alignas(16) Dummy d;
  MP p = MP(&d).with_mark();
  EXPECT_EQ(p.with_bits(kTagBit).bits(), kTagBit);
  EXPECT_EQ(p.with_bits(0).bits(), 0u);
}

TEST(MarkedPtr, EqualityComparesRawIncludingBits) {
  alignas(16) Dummy d;
  EXPECT_EQ(MP(&d), MP(&d));
  EXPECT_NE(MP(&d), MP(&d).with_mark());
  EXPECT_NE(MP(&d).with_tag(), MP(&d).with_mark());
  EXPECT_EQ(MP(&d).with_mark(), MP(&d, kMarkBit));
}

TEST(MarkedPtr, FromRawPreservesEverything) {
  alignas(16) Dummy d;
  MP p = MP(&d).with_tag();
  EXPECT_EQ(MP::from_raw(p.raw()), p);
}

TEST(MarkedPtr, NullWithBitsIsFalseyButKeepsBits) {
  MP p = MP(nullptr).with_mark();
  EXPECT_FALSE(static_cast<bool>(p));  // address part is null
  EXPECT_TRUE(p.marked());
}

TEST(MarkedPtr, SmrRawStripsBits) {
  alignas(16) Dummy d;
  EXPECT_EQ(smr_raw(MP(&d).with_mark().with_tag()),
            static_cast<ReclaimNode*>(&d));
  EXPECT_EQ(smr_raw(MP{}), nullptr);
  EXPECT_EQ(smr_raw(MP(nullptr).with_mark()), nullptr);
}

TEST(MarkedPtr, AtomicIsLockFree) {
  std::atomic<MP> a{MP{}};
  EXPECT_TRUE(a.is_lock_free());
  alignas(16) Dummy d;
  MP expected{};
  EXPECT_TRUE(a.compare_exchange_strong(expected, MP(&d).with_mark()));
  EXPECT_EQ(a.load().ptr(), &d);
  EXPECT_TRUE(a.load().marked());
}

}  // namespace
}  // namespace scot
