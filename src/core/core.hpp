// Umbrella header for the SCOT data structures.
#pragma once

#include "core/deque.hpp"
#include "core/harris_list.hpp"
#include "core/harris_michael_list.hpp"
#include "core/hash_map.hpp"
#include "core/marked_ptr.hpp"
#include "core/ms_queue.hpp"
#include "core/nm_tree.hpp"
#include "core/registry.hpp"
#include "core/skip_list.hpp"
#include "core/treiber_stack.hpp"
#include "core/wait_free.hpp"
#include "smr/smr.hpp"
