// HP: hazard pointers (Michael 2004), in the two variants the paper
// evaluates:
//
//  * `HpDomain`    — the original scheme: every limbo-list scan re-reads the
//                    global hazard array once per retired node.
//  * `HpOptDomain` — "HPopt": captures one local snapshot of all hazard slots
//                    before scanning the limbo list and binary-searches it
//                    (the optimization the paper borrows from Hyaline [26]).
//                    The paper reports a substantial difference in some
//                    tests; bench_micro_smr and the figure benches expose it.
//
// protect(src, idx) implements Figure 1 of the paper: publish the pointer
// (with logical-deletion bits cleared) in slot `idx`, then re-read `src`
// until it is stable.  dup(i, j) copies slot i to slot j; SCOT requires all
// dup calls to copy toward *higher* indices because scans read slots in
// ascending order (see DESIGN.md §4).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/align.hpp"
#include "common/asymfence.hpp"
#include "smr/handle_core.hpp"
#include "smr/node_pool.hpp"
#include "smr/smr_config.hpp"

namespace scot {

template <bool kSnapshotScan>
class HazardPointerDomain {
 public:
  static constexpr const char* kName = kSnapshotScan ? "HPopt" : "HP";
  static constexpr bool kRobust = true;

  class Handle : public HandleCore<HazardPointerDomain, Handle> {
   public:
    using Base = HandleCore<HazardPointerDomain, Handle>;
    Handle(HazardPointerDomain* dom, unsigned tid) : Base(dom, tid) {
      if constexpr (kSnapshotScan) {
        // Worst case is every slot of every thread occupied; reserving it
        // up front keeps collect_hazards() allocation-free after the first
        // scan of each handle.
        snapshot_.reserve(static_cast<std::size_t>(dom->cfg_.max_threads) *
                          dom->cfg_.slots_per_thread);
      }
    }

   protected:
    // HazardPointerDomain is a template, so the base is dependent and its
    // members need explicit re-introduction.
    using Base::dom_;
    using Base::tid_;

   public:
    using Base::retire;  // typed retire(Protected<T>) — API v2

    void begin_op() noexcept {}

    // Clears every slot this operation touched (release: the nodes remain
    // valid until the store is visible; nothing in this thread reads them
    // afterwards).
    void end_op() noexcept {
      while (used_mask_ != 0) {
        const unsigned idx =
            static_cast<unsigned>(__builtin_ctz(used_mask_));
        used_mask_ &= used_mask_ - 1;
        slot(idx).store(nullptr, std::memory_order_release);
      }
    }

    // `Src` is std::atomic<P> or StableAtomic<P> (pool-recycled link words).
    template <class Src, class P = typename Src::value_type>
    P protect(const Src& src, unsigned idx) noexcept {
      P cur = src.load(std::memory_order_acquire);
      const asymfence::Path fences = dom_->fence_path_;
      if (fences == asymfence::Path::kClassic) {
        for (;;) {
          // seq_cst publish followed by a seq_cst re-read gives the
          // StoreLoad ordering the HP safety argument requires: if the
          // re-read still sees `cur`, the publication preceded any
          // subsequent unlink of the link we loaded from, so a retirement
          // scan must observe the slot.
          slot(idx).store(smr_raw(cur), std::memory_order_seq_cst);
          P again = src.load(std::memory_order_seq_cst);
          if (again == cur) break;
          cur = again;
        }
      } else {
        for (;;) {
          // Asymmetric fast path: the StoreLoad edge above is restored by
          // the heavy barrier every scan issues before reading the slots
          // (DESIGN.md §5).  On the fallback path light_barrier() is a real
          // seq_cst fence, making the pair equivalent to the classic code.
          slot(idx).store(smr_raw(cur), std::memory_order_release);
          asymfence::light_barrier(fences);
          P again = src.load(std::memory_order_acquire);
          if (again == cur) break;
          cur = again;
        }
      }
      used_mask_ |= 1u << idx;
      return cur;
    }

    // Non-validating publication, for immortal anchors (sentinel nodes that
    // are never retired).  Do NOT use for reclaimable nodes.
    template <class T>
    void publish(T* p, unsigned idx) noexcept {
      if (dom_->fence_path_ == asymfence::Path::kClassic) {
        slot(idx).store(smr_raw(p), std::memory_order_seq_cst);
      } else {
        slot(idx).store(smr_raw(p), std::memory_order_release);
        asymfence::light_barrier(dom_->fence_path_);
      }
      used_mask_ |= 1u << idx;
    }

    void dup(unsigned i, unsigned j) noexcept {
      assert(i < j && "SCOT requires ascending-index dup (paper §3.2)");
      slot(j).store(slot(i).load(std::memory_order_relaxed),
                    std::memory_order_release);
      used_mask_ |= 1u << j;
    }

    static constexpr bool op_valid() noexcept { return true; }
    void revalidate_op() noexcept {}

    void retire(ReclaimNode* n) {
      n->debug_state = kNodeRetired;
      limbo_.push(n);
      dom_->counters_.on_retire(dom_->cfg_.track_stats);
      if (limbo_.count >= dom_->cfg_.scan_threshold) scan();
    }

    std::uint64_t on_alloc_era() noexcept { return 0; }

    void scan() {
      // One heavy barrier covers the whole scan batch: every node in the
      // limbo list was unlinked (and retired) before this point, so a
      // reader publication the barrier does not surface belongs to a
      // validating re-read that is ordered after the unlink and retries.
      if (dom_->fence_path_ != asymfence::Path::kClassic)
        asymfence::heavy_barrier(dom_->fence_path_);
      std::uint64_t freed = 0;
      if constexpr (kSnapshotScan) {
        snapshot_.clear();
        dom_->collect_hazards(snapshot_);
        std::sort(snapshot_.begin(), snapshot_.end());
        ReclaimNode* n = limbo_.take();
        while (n != nullptr) {
          ReclaimNode* next = n->smr_next;
          if (std::binary_search(snapshot_.begin(), snapshot_.end(), n)) {
            limbo_.push(n);
          } else {
            dom_->pool().free(tid_, n, n->alloc_size);
            ++freed;
          }
          n = next;
        }
      } else {
        ReclaimNode* n = limbo_.take();
        while (n != nullptr) {
          ReclaimNode* next = n->smr_next;
          if (dom_->is_hazard(n)) {
            limbo_.push(n);
          } else {
            dom_->pool().free(tid_, n, n->alloc_size);
            ++freed;
          }
          n = next;
        }
      }
      dom_->counters_.on_free(freed, dom_->cfg_.track_stats);
    }

    unsigned limbo_size() const noexcept { return limbo_.count; }

   private:
    friend class HazardPointerDomain;

    std::atomic<ReclaimNode*>& slot(unsigned idx) noexcept {
      return dom_->slot(tid_, idx);
    }

    LimboList limbo_;
    std::uint32_t used_mask_ = 0;
    std::vector<ReclaimNode*> snapshot_;  // HPopt scratch, reused across scans
  };

  explicit HazardPointerDomain(SmrConfig cfg = {})
      : cfg_(cfg),
        pool_(cfg.max_threads),
        stride_((cfg.slots_per_thread + kSlotsPerLine - 1) / kSlotsPerLine *
                kSlotsPerLine),
        slots_(static_cast<std::size_t>(stride_) * cfg.max_threads),
        fence_path_(asymfence::resolve(cfg.asymmetric_fences)) {
    assert(cfg_.slots_per_thread <= 32);
    for (auto& s : slots_) s.store(nullptr, std::memory_order_relaxed);
    handles_.reserve(cfg_.max_threads);
    for (unsigned t = 0; t < cfg_.max_threads; ++t)
      handles_.push_back(std::make_unique<Handle>(this, t));
  }

  ~HazardPointerDomain() { drain_all(); }

  Handle& handle(unsigned tid) { return *handles_.at(tid); }
  const SmrConfig& config() const noexcept { return cfg_; }
  NodePool& pool() noexcept { return pool_; }
  std::int64_t pending_nodes() const noexcept {
    return counters_.pending.load(std::memory_order_relaxed);
  }
  const SmrCounters& counters() const noexcept { return counters_; }
  asymfence::Path fence_path() const noexcept { return fence_path_; }

  std::atomic<ReclaimNode*>& slot(unsigned tid, unsigned idx) noexcept {
    assert(idx < cfg_.slots_per_thread);
    return slots_[static_cast<std::size_t>(tid) * stride_ + idx];
  }

  bool is_hazard(const ReclaimNode* n) const noexcept {
    for (unsigned t = 0; t < cfg_.max_threads; ++t) {
      for (unsigned i = 0; i < cfg_.slots_per_thread; ++i) {
        if (slots_[static_cast<std::size_t>(t) * stride_ + i].load(
                std::memory_order_acquire) == n)
          return true;
      }
    }
    return false;
  }

  void collect_hazards(std::vector<ReclaimNode*>& out) const {
    // Ascending slot order; paired with ascending-index dup this guarantees
    // a protected node is seen in at least one slot (paper §3.2).  The
    // scan's cost is the acquire load per slot, which is irreducible
    // without making readers maintain a per-line occupancy summary (a
    // write on the protect hot path — not worth it); the Handle reserves
    // `snapshot_` for the worst case instead, so HPopt scans allocate at
    // most once per handle.
    for (unsigned t = 0; t < cfg_.max_threads; ++t) {
      for (unsigned i = 0; i < cfg_.slots_per_thread; ++i) {
        ReclaimNode* v = slots_[static_cast<std::size_t>(t) * stride_ + i]
                             .load(std::memory_order_acquire);
        if (v != nullptr) out.push_back(v);
      }
    }
  }

 private:
  friend class Handle;
  static constexpr unsigned kSlotsPerLine =
      static_cast<unsigned>(kFalseSharingRange / sizeof(std::atomic<void*>));

  void drain_all() {
    std::uint64_t freed = 0;
    for (auto& h : handles_) {
      ReclaimNode* n = h->limbo_.take();
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        pool_.free(h->tid(), n, n->alloc_size);
        ++freed;
        n = next;
      }
    }
    counters_.on_free(freed, cfg_.track_stats);
  }

  SmrConfig cfg_;
  NodePool pool_;
  SmrCounters counters_;
  unsigned stride_;
  std::vector<std::atomic<ReclaimNode*>> slots_;
  asymfence::Path fence_path_;
  std::vector<std::unique_ptr<Handle>> handles_;
};

using HpDomain = HazardPointerDomain<false>;
using HpOptDomain = HazardPointerDomain<true>;

}  // namespace scot
