// Distribution sanity for the Zipfian workload generator
// (src/common/zipf.hpp): bounds, head-heaviness, skew monotonicity in
// theta, and stream determinism.  Fixed RNG seeds keep every assertion
// deterministic — margins are wide enough that these are shape checks, not
// statistical flakes.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/xorshift.hpp"
#include "common/zipf.hpp"

namespace scot {
namespace {

std::vector<std::uint64_t> histogram(const Zipf& z, std::uint64_t samples,
                                     std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> counts(z.n(), 0);
  for (std::uint64_t i = 0; i < samples; ++i) ++counts[z.next(rng)];
  return counts;
}

TEST(Zipf, RanksStayInBounds) {
  const Zipf z(100, 0.99);
  Xoshiro256 rng(1);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(z.next(rng), 100u);
  }
}

TEST(Zipf, DegenerateRangesResolve) {
  Xoshiro256 rng(2);
  const Zipf one(1, 0.99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(one.next(rng), 0u);
  const Zipf two(2, 0.5);
  bool saw[2] = {false, false};
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t r = two.next(rng);
    ASSERT_LT(r, 2u);
    saw[r] = true;
  }
  EXPECT_TRUE(saw[0]);
  EXPECT_TRUE(saw[1]);
  // Zipf(0, ...) clamps to n = 1 rather than dividing by zero.
  const Zipf zero(0, 0.9);
  EXPECT_EQ(zero.n(), 1u);
  EXPECT_EQ(zero.next(rng), 0u);
}

TEST(Zipf, HeadIsHeavierThanTail) {
  const Zipf z(1000, 0.99);
  const auto counts = histogram(z, 200000, 3);
  // Rank 0 beats a mid-rank and the first decile carries far more mass
  // than the last decile — the defining shape of a Zipfian.
  EXPECT_GT(counts[0], counts[500] * 10);
  std::uint64_t first_decile = 0, last_decile = 0;
  for (int i = 0; i < 100; ++i) first_decile += counts[i];
  for (int i = 900; i < 1000; ++i) last_decile += counts[i];
  EXPECT_GT(first_decile, last_decile * 5);
}

TEST(Zipf, SkewGrowsMonotonicallyWithTheta) {
  std::uint64_t previous_head = 0;
  for (const double theta : {0.2, 0.5, 0.8, 0.99}) {
    const Zipf z(1000, theta);
    const auto counts = histogram(z, 200000, 4);
    std::uint64_t head = 0;
    for (int i = 0; i < 10; ++i) head += counts[i];
    EXPECT_GT(head, previous_head) << "theta " << theta;
    previous_head = head;
  }
}

TEST(Zipf, SameSeedSameStream) {
  const Zipf z(512, 0.9);
  Xoshiro256 a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t ra = z.next(a);
    EXPECT_EQ(ra, z.next(b));
    diverged = diverged || ra != z.next(c);
  }
  EXPECT_TRUE(diverged) << "different seeds must give different streams";
}

}  // namespace
}  // namespace scot
