// Benchmark-harness configuration shared by every figure/table binary.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

namespace scot::bench {

enum class SchemeId { kNR, kEBR, kHP, kHPopt, kHE, kIBR, kHLN };
enum class StructureId {
  kHMList,
  kHList,
  kHListWF,
  kNMTree,
  kHashMap,
  kSkipList,       // Fraser-style optimistic traversal with SCOT
  kSkipListEager,  // Herlihy-Shavit-style eager unlink (baseline)
};

inline constexpr SchemeId kAllSchemes[] = {
    SchemeId::kNR, SchemeId::kEBR, SchemeId::kHP,  SchemeId::kHPopt,
    SchemeId::kHE, SchemeId::kIBR, SchemeId::kHLN};

inline const char* scheme_name(SchemeId s) {
  switch (s) {
    case SchemeId::kNR: return "NR";
    case SchemeId::kEBR: return "EBR";
    case SchemeId::kHP: return "HP";
    case SchemeId::kHPopt: return "HPopt";
    case SchemeId::kHE: return "HE";
    case SchemeId::kIBR: return "IBR";
    case SchemeId::kHLN: return "HLN";
  }
  return "?";
}

inline const char* structure_name(StructureId s) {
  switch (s) {
    case StructureId::kHMList: return "HMList";
    case StructureId::kHList: return "HList";
    case StructureId::kHListWF: return "HListWF";
    case StructureId::kNMTree: return "NMTree";
    case StructureId::kHashMap: return "HashMap";
    case StructureId::kSkipList: return "SkipList";
    case StructureId::kSkipListEager: return "SkipListHS";
  }
  return "?";
}

struct CaseConfig {
  StructureId structure = StructureId::kHList;
  SchemeId scheme = SchemeId::kEBR;
  unsigned threads = 1;
  std::uint64_t key_range = 512;
  int read_pct = 50;    // remainder split between insert and delete
  int insert_pct = 25;
  int delete_pct = 25;
  int millis = 300;
  bool sample_memory = false;
  unsigned runs = 1;  // median-of-runs (the paper uses 5)
  std::uint64_t seed = 42;
  std::size_t hash_buckets = 0;  // HashMap only; 0 = key_range / 8
};

struct CaseResult {
  double mops = 0;  // million operations per second (median run)
  std::uint64_t total_ops = 0;
  double seconds = 0;
  double avg_pending = 0;  // mean not-yet-reclaimed nodes over samples
  std::int64_t peak_pending = 0;
  std::uint64_t restarts = 0;
  std::uint64_t recoveries = 0;
};

// --- environment knobs so the figure binaries scale to the host -----------
// SCOT_BENCH_MS        per-cell duration in milliseconds (default `def_ms`)
// SCOT_BENCH_THREADS   comma list of thread counts (default "1,2,4,8")
// SCOT_BENCH_RUNS      runs per cell, median reported (default 1)

inline int env_ms(int def_ms) {
  if (const char* e = std::getenv("SCOT_BENCH_MS")) return std::atoi(e);
  return def_ms;
}

inline unsigned env_runs() {
  if (const char* e = std::getenv("SCOT_BENCH_RUNS")) {
    const int v = std::atoi(e);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 1;
}

inline std::vector<unsigned> env_threads() {
  std::vector<unsigned> out;
  std::string spec = "1,2,4,8";
  if (const char* e = std::getenv("SCOT_BENCH_THREADS")) spec = e;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) {
      const long v = std::strtol(tok.c_str(), nullptr, 10);
      if (v > 0) out.push_back(static_cast<unsigned>(v));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) out = {1, 2, 4, 8};
  return out;
}

}  // namespace scot::bench
