#include "bench/runner.hpp"
#include "bench/runner_impl.hpp"

namespace scot::bench {

CaseResult run_case_ibr(const CaseConfig& cfg) {
  return detail::run_with_scheme<IbrDomain>(cfg);
}

}  // namespace scot::bench
