// Ablation (paper §3.2.1 / §3.2.2): the recovery optimization — escaping a
// failed dangerous-zone validation to the last safe node's new successor
// instead of restarting from the head.  The paper found it "beneficial for
// Harris' list" but not for the tree; this bench quantifies the list side:
// throughput plus the restart/recovery counters that explain it.
//
// Both variants are registered AnyMap cells (StructureId::kHList with the
// default traits, StructureId::kHListNoRecovery without the escape), so the
// runs go through the same registry-driven run_case() as every figure
// binary and the JSON cells carry distinct structure identities that
// bench_diff keys on.
#include <cstdio>

#include "bench/fig_common.hpp"

using namespace scot;
using namespace scot::bench;

static CaseResult run_list(StructureId structure, unsigned threads,
                           std::uint64_t range, int ms, const char* variant) {
  CaseConfig cfg;
  cfg.structure = structure;
  cfg.scheme = SchemeId::kHP;
  cfg.threads = threads;
  cfg.key_range = range;
  cfg.millis = ms;
  cfg.runs = env_runs();
  apply_session_flags(cfg);
  const CaseResult r = run_case(cfg);
  fig_record(std::string("recovery ablation, ") + variant, cfg, r);
  return r;
}

int main(int argc, char** argv) {
  fig_init(argc, argv, "ablation_recovery");
  const int ms = env_ms(300);
  std::printf(
      "SCOT ablation — §3.2.1 recovery optimization (Harris list, HP)\n\n");
  for (std::uint64_t range : {std::uint64_t{512}, std::uint64_t{10000}}) {
    Table t({"threads", "recovery Mops", "recovery restarts", "recoveries",
             "no-recovery Mops", "no-recovery restarts"});
    for (unsigned th : env_threads()) {
      const CaseResult on = run_list(StructureId::kHList, th, range, ms, "on");
      const CaseResult off =
          run_list(StructureId::kHListNoRecovery, th, range, ms, "off");
      t.add_row({std::to_string(th), format_double(on.mops, 2),
                 std::to_string(on.restarts), std::to_string(on.recoveries),
                 format_double(off.mops, 2), std::to_string(off.restarts)});
    }
    std::printf("== key range %llu ==\n",
                static_cast<unsigned long long>(range));
    t.print();
    std::printf("\n");
  }
  return fig_finish();
}
