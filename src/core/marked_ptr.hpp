// Tagged pointer for logical deletion.
//
// The non-blocking structures in this library steal the three low-order bits
// of their link words (pool cells are 16-byte aligned):
//  * Harris' list uses bit 0 as the *mark* ("the node owning this link is
//    logically deleted").
//  * The Natarajan-Mittal tree uses bit 0 as the *flag* ("the leaf this edge
//    points to is being deleted") and bit 1 as the *tag* ("this edge is
//    frozen as part of a pending chain removal").
//  * KvHashMap's incremental resize uses bit 2 as the *pend* bit ("this
//    link belongs to a child chain still under construction by the current
//    doubling round").  Every word of an in-flight child chain carries it,
//    it is cleared exactly once when the round's DONE winner seals the
//    chain, and no post-round mutation ever re-installs it — which is what
//    lets a stale migration helper's commit CAS (whose expected value
//    always carries the bit) fail instead of resurrecting an erased key.
#pragma once

#include <atomic>
#include <cstdint>

#include "smr/reclaim_node.hpp"

namespace scot {

inline constexpr std::uintptr_t kMarkBit = 1;  // list mark / tree flag
inline constexpr std::uintptr_t kTagBit = 2;   // tree tag / kv freeze
inline constexpr std::uintptr_t kPendBit = 4;  // kv child chain in flight
inline constexpr std::uintptr_t kBitsMask = kMarkBit | kTagBit | kPendBit;

template <class T>
class marked_ptr {
 public:
  constexpr marked_ptr() noexcept = default;
  constexpr explicit marked_ptr(T* p, std::uintptr_t bits = 0) noexcept
      : raw_(reinterpret_cast<std::uintptr_t>(p) | bits) {}

  static constexpr marked_ptr from_raw(std::uintptr_t raw) noexcept {
    marked_ptr m;
    m.raw_ = raw;
    return m;
  }

  T* ptr() const noexcept { return reinterpret_cast<T*>(raw_ & ~kBitsMask); }
  constexpr std::uintptr_t raw() const noexcept { return raw_; }
  constexpr std::uintptr_t bits() const noexcept { return raw_ & kBitsMask; }

  constexpr bool marked() const noexcept { return (raw_ & kMarkBit) != 0; }
  constexpr bool flagged() const noexcept { return marked(); }
  constexpr bool tagged() const noexcept { return (raw_ & kTagBit) != 0; }
  constexpr bool pended() const noexcept { return (raw_ & kPendBit) != 0; }

  constexpr marked_ptr clean() const noexcept {
    return from_raw(raw_ & ~kBitsMask);
  }
  constexpr marked_ptr with_mark() const noexcept {
    return from_raw(raw_ | kMarkBit);
  }
  constexpr marked_ptr with_flag() const noexcept { return with_mark(); }
  constexpr marked_ptr with_tag() const noexcept {
    return from_raw(raw_ | kTagBit);
  }
  constexpr marked_ptr with_pend() const noexcept {
    return from_raw(raw_ | kPendBit);
  }
  constexpr marked_ptr without_pend() const noexcept {
    return from_raw(raw_ & ~kPendBit);
  }
  constexpr marked_ptr with_bits(std::uintptr_t bits) const noexcept {
    return from_raw((raw_ & ~kBitsMask) | bits);
  }

  constexpr explicit operator bool() const noexcept {
    return (raw_ & ~kBitsMask) != 0;
  }

  friend constexpr bool operator==(marked_ptr a, marked_ptr b) noexcept {
    return a.raw_ == b.raw_;
  }
  friend constexpr bool operator!=(marked_ptr a, marked_ptr b) noexcept {
    return a.raw_ != b.raw_;
  }

 private:
  std::uintptr_t raw_ = 0;
};

// Customization point used by the SMR schemes (hazard slots publish the
// address with the deletion bits cleared, per Figure 1 of the paper).
template <class T>
inline ReclaimNode* smr_raw(marked_ptr<T> p) noexcept {
  T* n = p.ptr();
  return n ? static_cast<ReclaimNode*>(n) : nullptr;
}

}  // namespace scot
