// Harris' lock-free linked list (Harris, DISC 2001) with **SCOT** — Safe
// Concurrent Optimistic Traversals (the paper's core contribution, §3.2).
//
// Harris' list lets traversals walk *through* chains of logically deleted
// nodes and remove a whole chain with one CAS.  That optimistic traversal is
// incompatible with HP/HE/IBR/Hyaline-1S: a traverser standing inside a
// marked chain follows frozen next-pointers whose targets may already be
// retired and reclaimed (Figure 2 of the paper).  SCOT's fix:
//
//   * Hp2 protects the *last safe* (unmarked) node, Hp3 protects the *first
//     unsafe* (marked) node of the chain ("dangerous zone").
//   * After protecting each next node inside the zone, the traverser
//     validates that the last safe node still points at the first unsafe
//     node.  Chains are only ever unlinked whole-prefix via the last safe
//     node's link (the mark bit lives in the predecessor's next field), so
//     a successful validation proves the chain was still linked — hence not
//     yet retired — when the protection was published.
//   * On validation failure the operation restarts, or, with the §3.2.1
//     *recovery optimization*, hops to the last safe node's new successor
//     when that node is itself still unmarked.
//
// Traits select the paper's variants:
//   kUnrolled  — Figure 5 right (2 dups in the safe zone, 1 in the zone)
//                vs. Figure 5 left (3 dups everywhere);
//   kRecovery  — §3.2.1 recovery optimization;
//   kWaitFree  — §3.4 wait-free Search via the helping protocol.
//
// Protection roles (API v2 guard slots, allocated in ascending order so the
// ascending-dup discipline of paper §3.2 holds by construction):
//   hp.next = next, hp.curr = curr, hp.prev = last safe, hp.unsafe = first
//   unsafe.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "common/align.hpp"
#include "core/list_common.hpp"
#include "core/marked_ptr.hpp"
#include "core/wait_free.hpp"
#include "smr/handle_registry.hpp"
#include "smr/smr.hpp"

namespace scot {

struct HarrisListTraits {
  static constexpr bool kUnrolled = true;
  static constexpr bool kRecovery = true;
  static constexpr bool kWaitFree = false;
  static constexpr int kFastPathRestarts = 4;  // M, before Request_Help
};

struct HarrisListSimpleTraits : HarrisListTraits {
  static constexpr bool kUnrolled = false;
};

struct HarrisListNoRecoveryTraits : HarrisListTraits {
  static constexpr bool kRecovery = false;
};

struct HarrisListWaitFreeTraits : HarrisListTraits {
  static constexpr bool kWaitFree = true;
};

template <class Key, class Value, SmrDomainV2 Smr,
          class Traits = HarrisListTraits, class Compare = std::less<Key>>
class HarrisList {
 public:
  using Node = ListNode<Key, Value>;
  using MP = marked_ptr<Node>;
  // Link words live in pool-recycled nodes, so they are StableAtomic (the
  // head is one too: traversal code points at head and node links alike).
  using Link = StableAtomic<MP>;
  using Handle = typename Smr::Handle;
  using Guard = TraversalGuard<Handle>;
  using NodeSlot = ProtectionSlot<Handle, Node>;

  static constexpr unsigned kSlotsRequired = 4;

  // The traversal's protection roles.  Construction order is the slot
  // index order, so every dup_from below copies toward a higher index
  // (paper §3.2; asserted by ProtectionSlot).
  struct Hp {
    NodeSlot next, curr, prev, unsafe;
    explicit Hp(Guard& g)
        : next(g.template slot<Node>()),
          curr(g.template slot<Node>()),
          prev(g.template slot<Node>()),
          unsafe(g.template slot<Node>()) {}
  };

  explicit HarrisList(Smr& smr, Compare cmp = {}) : smr_(smr), cmp_(cmp) {
    auto h = scoped_handle(smr_);
    Node* tail = h->template alloc<Node>(Key{}, Value{}, 1);
    head_.store(MP(tail), std::memory_order_release);
    if constexpr (Traits::kWaitFree) {
      wf_ = std::make_unique<WfHelpRegistry<Key>>(smr_.config().max_threads);
    }
  }

  ~HarrisList() {
    auto sh = scoped_handle(smr_);
    auto& h = sh.get();
    Node* n = head_.load(std::memory_order_relaxed).ptr();
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed).ptr();
      h.dealloc_unpublished(n);
      n = next;
    }
  }

  HarrisList(const HarrisList&) = delete;
  HarrisList& operator=(const HarrisList&) = delete;

  // Inserts `key`; returns false if already present.
  bool insert(Handle& h, const Key& key, const Value& value = {}) {
    Guard guard(h);
    Hp hp(guard);
    Node* n = h.template alloc<Node>(key, value, 0);
    for (;;) {
      if constexpr (Traits::kWaitFree) help_others(guard, hp);
      Position pos;
      do_find(guard, hp, key, /*search_only=*/false, pos, DefaultControl{});
      if (pos.found) {
        h.dealloc_unpublished(n);
        return false;
      }
      n->next.store(MP(pos.curr), std::memory_order_relaxed);
      MP expected(pos.curr);
      if (pos.prev->compare_exchange_strong(expected, MP(n),
                                            std::memory_order_seq_cst,
                                            std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  // Removes `key`; returns false if absent.
  bool erase(Handle& h, const Key& key) {
    Guard guard(h);
    Hp hp(guard);
    for (;;) {
      if constexpr (Traits::kWaitFree) help_others(guard, hp);
      Position pos;
      do_find(guard, hp, key, /*search_only=*/false, pos, DefaultControl{});
      if (!pos.found) return false;
      MP next = pos.next;
      assert(!next.marked());
      // Logical deletion (Figure 3, L21): mark curr's own next field.
      if (!pos.curr->next.compare_exchange_strong(next, next.with_mark(),
                                                  std::memory_order_seq_cst,
                                                  std::memory_order_relaxed)) {
        continue;
      }
      // One optimistic unlink attempt (Figure 3, L22); failure leaves the
      // node for a later traversal's chain removal.
      MP expected(pos.curr);
      if (pos.prev->compare_exchange_strong(expected, next.clean(),
                                            std::memory_order_seq_cst,
                                            std::memory_order_relaxed)) {
        h.retire(pos.curr);
      }
      return true;
    }
  }

  // Membership test.  Lock-free by default; wait-free with
  // Traits::kWaitFree (fast path + helping slow path, §3.4).
  bool contains(Handle& h, const Key& key) {
    Guard guard(h);
    Hp hp(guard);
    if constexpr (Traits::kWaitFree) {
      Position pos;
      FindOutcome out = do_find(guard, hp, key, /*search_only=*/true, pos,
                                BoundedControl{Traits::kFastPathRestarts});
      if (out == FindOutcome::kOk) return pos.found;
      const std::uint64_t tag = wf_->request_help(h.tid(), key);
      return slow_search(guard, hp, key, tag, h.tid());
    } else {
      Position pos;
      do_find(guard, hp, key, /*search_only=*/true, pos, DefaultControl{});
      return pos.found;
    }
  }

  // Lookup with value copy (lock-free path only; values are immutable once
  // inserted).
  std::optional<Value> get(Handle& h, const Key& key) {
    Guard guard(h);
    Hp hp(guard);
    Position pos;
    do_find(guard, hp, key, /*search_only=*/true, pos, DefaultControl{});
    if (!pos.found) return std::nullopt;
    return pos.curr->value;  // protected by hp.curr
  }

  // Test-only: performs the logical deletion of `key` (marking the node's
  // next pointer) while deliberately skipping the physical unlink attempt.
  // This builds chains of logically deleted nodes deterministically, which
  // the dangerous-zone tests traverse and prune.  Not part of the public
  // set semantics.
  bool debug_mark_only(Handle& h, const Key& key) {
    Guard guard(h);
    Hp hp(guard);
    for (;;) {
      Position pos;
      do_find(guard, hp, key, /*search_only=*/true, pos, DefaultControl{});
      if (!pos.found) return false;
      MP next = pos.next;
      if (pos.curr->next.compare_exchange_strong(next, next.with_mark(),
                                                 std::memory_order_seq_cst,
                                                 std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  // Test-only: access the wait-free help registry (requires
  // Traits::kWaitFree).
  WfHelpRegistry<Key>& debug_wf_registry() {
    static_assert(Traits::kWaitFree);
    return *wf_;
  }

  // Single-threaded observers for tests.
  std::size_t size_unsafe() const {
    std::size_t n = 0;
    const Node* c = head_.load(std::memory_order_acquire).ptr();
    while (c != nullptr) {
      if (c->rank == 0 && !c->next.load(std::memory_order_acquire).marked())
        ++n;
      c = c->next.load(std::memory_order_acquire).ptr();
    }
    return n;
  }

  // Number of nodes physically in the list (marked chains included).
  std::size_t physical_size_unsafe() const {
    std::size_t n = 0;
    const Node* c = head_.load(std::memory_order_acquire).ptr();
    while (c != nullptr) {
      if (c->rank == 0) ++n;
      c = c->next.load(std::memory_order_acquire).ptr();
    }
    return n;
  }

 private:
  struct Position {
    Link* prev;
    Node* curr;
    MP next;
    bool found;
  };

  enum class FindOutcome : std::uint8_t {
    kOk,            // position settled
    kAborted,       // fast-path budget exhausted
    kExternalTrue,  // slow path: another participant published "found"
    kExternalFalse  // slow path: another participant published "not found"
  };

  // --- traversal control policies ---------------------------------------
  struct DefaultControl {
    bool on_restart() const { return true; }
    WfPoll poll() const { return WfPoll::kContinue; }
  };
  struct BoundedControl {
    int budget;
    bool on_restart() { return --budget > 0; }
    WfPoll poll() const { return WfPoll::kContinue; }
  };
  struct HelpControl {
    WfHelpRegistry<Key>* reg;
    unsigned help_tid;
    std::uint64_t tag;
    bool on_restart() const { return true; }
    WfPoll poll() const { return reg->poll_status(help_tid, tag); }
  };

  // SCOT-augmented Do_Find (Figure 5).  Returns the settled position for the
  // caller, unlinking the marked chain adjacent to it when
  // `!search_only` (Figure 3, L43-44 semantics).
  template <class Control>
  FindOutcome do_find(Guard& g, Hp& hp, const Key& key, bool search_only,
                      Position& out, Control control) {
    Handle& h = g.handle();
    // All locals hoisted so that `goto restart` stays well-formed.
    Link* prev;
    MP prev_next;  // expected value of *prev while inside a dangerous zone
    Node* curr;
    MP next;
    MP tmp;
    bool in_zone;

    goto init;

  restart:
    ++h.ds_restarts;
    if (!control.on_restart()) return FindOutcome::kAborted;

  init:
    g.revalidate();
    switch (control.poll()) {
      case WfPoll::kContinue:
        break;
      case WfPoll::kStale:
      case WfPoll::kDoneFalse:
        return FindOutcome::kExternalFalse;
      case WfPoll::kDoneTrue:
        return FindOutcome::kExternalTrue;
    }
    prev = &head_;
    prev_next = MP{};
    in_zone = false;
    tmp = hp.curr.protect(head_);
    if (!g.valid()) goto restart;
    curr = tmp.ptr();  // tail sentinel at minimum; never null
    next = hp.next.protect(curr->next);
    if (!g.valid()) goto restart;

    for (;;) {
      switch (control.poll()) {
        case WfPoll::kContinue:
          break;
        case WfPoll::kStale:
        case WfPoll::kDoneFalse:
          return FindOutcome::kExternalFalse;
        case WfPoll::kDoneTrue:
          return FindOutcome::kExternalTrue;
      }

      if (next.marked()) {
        // --- dangerous zone (curr is logically deleted) ------------------
        if (!in_zone) {
          in_zone = true;
          if constexpr (Traits::kUnrolled) {
            // Figure 5 right, L48-49: protect the first unsafe node.
            hp.unsafe.dup_from(hp.curr);
            prev_next = MP(curr);
          } else {
            // Figure 5 left: hp.unsafe/prev_next normally already track
            // curr via the last safe advance; the one exception is a chain
            // starting at the very first node (prev == &head_, nothing
            // advanced yet).
            if (!prev_next) {
              hp.unsafe.dup_from(hp.curr);
              prev_next = MP(curr);
            }
          }
          assert(prev_next == MP(curr));
        }
        curr = next.ptr();
        assert(curr != nullptr);  // the tail sentinel is never marked
        hp.curr.dup_from(hp.next);
        next = hp.next.protect(curr->next);
        if (!g.valid()) goto restart;
        // SCOT validation (Figure 5, L55): the last safe node must still
        // point at the first unsafe node, otherwise the chain may have been
        // unlinked and (partially) reclaimed.
        if (prev->load(std::memory_order_seq_cst) != prev_next) {
          if constexpr (Traits::kRecovery) {
            // §3.2.1: if the last safe node is itself still unmarked, the
            // zone was resolved (unlinked or replaced) — continue from its
            // new successor instead of restarting from the head.
            MP w = prev->load(std::memory_order_seq_cst);
            if (!w.marked()) {
              ++h.ds_recoveries;
              tmp = hp.curr.protect(*prev);
              if (!g.valid()) goto restart;
              if (tmp.marked()) goto restart;  // prev got marked meanwhile
              curr = tmp.ptr();
              assert(curr != nullptr);
              next = hp.next.protect(curr->next);
              if (!g.valid()) goto restart;
              prev_next = MP{};
              in_zone = false;
              continue;
            }
          }
          goto restart;
        }
        continue;
      }

      // --- safe zone (curr is live) --------------------------------------
      if (!node_less_than_key(curr, key, cmp_)) break;
      prev = &curr->next;
      hp.prev.dup_from(hp.curr);
      if constexpr (Traits::kUnrolled) {
        prev_next = MP{};
      } else {
        // Simple variant: continuously mirror next into hp.unsafe so that
        // zone entry needs no extra work (Figure 5 left, L11-14).
        hp.unsafe.dup_from(hp.next);
        prev_next = next;
      }
      in_zone = false;
      curr = next.ptr();
      assert(curr != nullptr);  // tail sentinel terminates every traversal
      hp.curr.dup_from(hp.next);
      next = hp.next.protect(curr->next);
      if (!g.valid()) goto restart;
    }

    // Settled: curr is the first live node with key >= target.
    if (!search_only && in_zone && prev_next != MP(curr)) {
      // Remove the whole marked chain with one CAS (Figure 5, L57-59).
      MP expected = prev_next;
      if (!prev->compare_exchange_strong(expected, MP(curr),
                                         std::memory_order_seq_cst,
                                         std::memory_order_relaxed)) {
        goto restart;
      }
      retire_chain(h, prev_next.ptr(), curr);
    }
    out.prev = prev;
    out.curr = curr;
    out.next = next;
    out.found = node_equals_key(curr, key, cmp_);
    return FindOutcome::kOk;
  }

  // Retires every node of an unlinked chain [from, to) — Figure 5,
  // Do_Retire.
  void retire_chain(Handle& h, Node* from, Node* to) {
    while (from != to) {
      Node* next = from->next.load(std::memory_order_relaxed).ptr();
      h.retire(from);
      from = next;
    }
  }

  // --- wait-free traversal machinery (§3.4) ------------------------------

  // Called by Insert/Delete once per retry loop: serve at most one pending
  // help request (Figure 7, Help_Threads).
  void help_others(Guard& g, Hp& hp) {
    Key key;
    std::uint64_t tag;
    unsigned tid;
    if (wf_->poll_for_work(g.handle().tid(), &key, &tag, &tid)) {
      slow_search(g, hp, key, tag, tid);
    }
  }

  // Figure 7, Slow_Search: the traversal itself is the SCOT Do_Find; every
  // iteration polls the helpee's record for an externally published result.
  bool slow_search(Guard& g, Hp& hp, const Key& key, std::uint64_t tag,
                   unsigned help_tid) {
    Position pos;
    FindOutcome out = do_find(g, hp, key, /*search_only=*/true, pos,
                              HelpControl{wf_.get(), help_tid, tag});
    switch (out) {
      case FindOutcome::kExternalTrue:
        return true;
      case FindOutcome::kExternalFalse:
        return false;
      case FindOutcome::kOk:
        return wf_->publish_result(help_tid, tag, pos.found);
      case FindOutcome::kAborted:
        break;  // unreachable: HelpControl never aborts
    }
    assert(false && "slow_search: unexpected outcome");
    return false;
  }

  alignas(kCacheLine) Link head_{MP{}};
  Smr& smr_;
  [[no_unique_address]] Compare cmp_;
  std::unique_ptr<WfHelpRegistry<Key>> wf_;
};

}  // namespace scot
