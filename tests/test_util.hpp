// Shared helpers for the SCOT test suite.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string_view>
#include <thread>
#include <vector>

#include "common/xorshift.hpp"
#include "core/core.hpp"

namespace scot::test {

// SCOT_SMOKE=1 shrinks the heavy concurrent/stress suites so sanitizer CI
// finishes in minutes; unset or a false-y value ("", "0", "false", "off",
// "no") keeps the full counts.
inline bool smoke_mode() {
  const char* e = std::getenv("SCOT_SMOKE");
  if (e == nullptr) return false;
  const std::string_view v(e);
  return !(v.empty() || v == "0" || v == "false" || v == "off" || v == "no");
}

// Iteration budget for churn loops: `full` normally, `full / divisor`
// (but at least 1) under SCOT_SMOKE.
inline int scaled_iters(int full, int divisor = 10) {
  return smoke_mode() ? std::max(1, full / divisor) : full;
}

using AllSchemes =
    ::testing::Types<NoReclaimDomain, EbrDomain, HpDomain, HpOptDomain,
                     HeDomain, IbrDomain, HyalineDomain>;

using ReclaimingSchemes = ::testing::Types<EbrDomain, HpDomain, HpOptDomain,
                                           HeDomain, IbrDomain, HyalineDomain>;

using RobustSchemes =
    ::testing::Types<HpDomain, HpOptDomain, HeDomain, IbrDomain, HyalineDomain>;

inline SmrConfig small_config(unsigned threads = 4) {
  SmrConfig cfg;
  cfg.max_threads = threads;
  cfg.scan_threshold = 16;
  cfg.era_freq = 8;
  // These suites assert inline-reclamation semantics — who scans, when, and
  // with which handle identity — so the background reclaimer is pinned off
  // regardless of the SCOT_BG environment default.  reclaimer_test opts in
  // explicitly; everything else runs the machinery it is actually testing.
  cfg.background_reclaim = false;
  return cfg;
}

// Runs `fn(tid)` on `threads` std::threads and joins them.
template <class F>
void run_threads(unsigned threads, F&& fn) {
  std::vector<std::thread> ts;
  ts.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) ts.emplace_back(fn, t);
  for (auto& t : ts) t.join();
}

// A dummy reclaimable node for SMR-layer tests.
struct TestNode : ReclaimNode {
  std::uint64_t payload;
  explicit TestNode(std::uint64_t p = 0) : payload(p) {}
};

// Churn helper: allocate-and-retire `n` nodes through `h` to force scans and
// era advancement.
template <class Handle>
void churn_retire(Handle& h, int n) {
  for (int i = 0; i < n; ++i) {
    auto* node = h.template alloc<TestNode>(static_cast<std::uint64_t>(i));
    h.retire(node);
  }
}

}  // namespace scot::test
