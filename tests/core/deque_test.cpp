// Michael-deque recovery validation through the scot::AnyDeque facade, for
// every scheme: both-ends semantics checked against a sequential model,
// element conservation under mixed-end concurrent churn, and teardown with
// resident elements (including teardown straight after contended runs,
// where the anchor may need the destructor's link fix-up).  The deque's
// recovery escapes are help-stabilize events (DESIGN.md §11).  Runs in both
// fence disciplines via the SCOT_ASYM env knob.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/any_container.hpp"
#include "tests/test_util.hpp"

namespace scot {
namespace {

AnyContainerOptions small_options(unsigned threads = 4) {
  AnyContainerOptions options;
  options.smr = test::small_config(threads);
  return options;
}

TEST(AnyDeque, MakeEnforcesTheContainerKind) {
  EXPECT_TRUE(AnyDeque::make(SchemeId::kIBR).has_value());
  EXPECT_FALSE(
      AnyDeque::make(SchemeId::kIBR, StructureId::kMSQueue).has_value())
      << "a queue must not open as a deque";
  EXPECT_FALSE(
      AnyDeque::make(SchemeId::kIBR, StructureId::kTreiberStack).has_value());
}

// Drives the deque and a std::deque through the same pseudo-random sequence
// of end operations and demands identical observable behaviour, per scheme.
TEST(AnyDeque, EverySchemeMatchesASequentialModel) {
  const std::uint64_t kOps =
      static_cast<std::uint64_t>(test::scaled_iters(20000));
  for (SchemeId s : kAllSchemes) {
    SCOPED_TRACE(scheme_name(s));
    auto dq = AnyDeque::make(s, StructureId::kDeque, small_options());
    ASSERT_TRUE(dq.has_value());
    auto session = dq->session();
    std::deque<std::uint64_t> model;
    Xoshiro256 rng(0xdecade);
    for (std::uint64_t i = 0; i < kOps; ++i) {
      const std::uint64_t draw = rng.next();
      const bool left = draw & 1;
      // Pop-biased once warm so both the empty and populated paths churn.
      const bool push = model.size() < 4 || (draw & 6) != 0;
      if (push) {
        if (left) {
          ASSERT_TRUE(session.push_left(i));
          model.push_front(i);
        } else {
          ASSERT_TRUE(session.push_right(i));
          model.push_back(i);
        }
      } else if (left) {
        const auto v = session.pop_left();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, model.front());
        model.pop_front();
      } else {
        const auto v = session.pop_right();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, model.back());
        model.pop_back();
      }
    }
    ASSERT_EQ(dq->size_unsafe(), model.size());
    // Drain alternately from both ends against the model.
    bool left = true;
    while (!model.empty()) {
      if (left) {
        const auto v = session.pop_left();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, model.front());
        model.pop_front();
      } else {
        const auto v = session.pop_right();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, model.back());
        model.pop_back();
      }
      left = !left;
    }
    EXPECT_EQ(session.pop_left(), std::nullopt);
    EXPECT_EQ(session.pop_right(), std::nullopt);
    EXPECT_EQ(dq->size_unsafe(), 0u);
  }
}

// A deque used one-sided is a stack at either end.
TEST(AnyDeque, BothEndsBehaveAsStacks) {
  auto dq = AnyDeque::make(SchemeId::kNR, StructureId::kDeque, small_options());
  ASSERT_TRUE(dq.has_value());
  auto session = dq->session();
  for (std::uint64_t i = 0; i < 64; ++i) ASSERT_TRUE(session.push_left(i));
  for (std::uint64_t i = 64; i-- > 0;) EXPECT_EQ(session.pop_left(), i);
  for (std::uint64_t i = 0; i < 64; ++i) ASSERT_TRUE(session.push_right(i));
  for (std::uint64_t i = 64; i-- > 0;) EXPECT_EQ(session.pop_right(), i);
  EXPECT_EQ(dq->size_unsafe(), 0u);
}

// ...and used end-to-end it is a queue, in both directions.
TEST(AnyDeque, EndToEndBehavesAsAQueue) {
  auto dq = AnyDeque::make(SchemeId::kHP, StructureId::kDeque, small_options());
  ASSERT_TRUE(dq.has_value());
  auto session = dq->session();
  for (std::uint64_t i = 0; i < 64; ++i) ASSERT_TRUE(session.push_right(i));
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(session.pop_left(), i);
  for (std::uint64_t i = 0; i < 64; ++i) ASSERT_TRUE(session.push_left(i));
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(session.pop_right(), i);
}

// Mixed-end churn from every thread: each tagged element is popped exactly
// once, none invented, none lost — the anchor-descriptor discipline keeps
// the two ends coherent under every scheme.
TEST(AnyDeque, EverySchemeConcurrentMixedEndConservation) {
  const unsigned kThreads = 4;
  const std::uint64_t kPerThread =
      static_cast<std::uint64_t>(test::scaled_iters(10000));
  for (SchemeId s : kAllSchemes) {
    SCOPED_TRACE(scheme_name(s));
    auto dq =
        AnyDeque::make(s, StructureId::kDeque, small_options(kThreads));
    ASSERT_TRUE(dq.has_value());
    std::vector<std::vector<std::uint64_t>> popped(kThreads);
    test::run_threads(kThreads, [&](unsigned t) {
      auto session = dq->session();
      Xoshiro256 rng(0xd0 + t);
      auto& mine = popped[t];
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t draw = rng.next();
        const bool ok = (draw & 1)
                            ? session.push_left(
                                  (static_cast<std::uint64_t>(t) << 32) | i)
                            : session.push_right(
                                  (static_cast<std::uint64_t>(t) << 32) | i);
        ASSERT_TRUE(ok);
        if (draw & 2) {
          const auto v =
              (draw & 4) ? session.pop_left() : session.pop_right();
          if (v.has_value()) mine.push_back(*v);
        }
      }
    });
    std::vector<std::uint64_t> all;
    {
      auto session = dq->session();
      while (const auto v = session.pop_left()) all.push_back(*v);
    }
    EXPECT_EQ(dq->size_unsafe(), 0u);
    for (const auto& p : popped) all.insert(all.end(), p.begin(), p.end());
    ASSERT_EQ(all.size(), kThreads * kPerThread);
    std::sort(all.begin(), all.end());
    EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
        << "duplicate element popped";
    for (unsigned t = 0; t < kThreads; ++t) {
      EXPECT_EQ(all[t * kPerThread], static_cast<std::uint64_t>(t) << 32);
      EXPECT_EQ(all[(t + 1) * kPerThread - 1],
                (static_cast<std::uint64_t>(t) << 32) | (kPerThread - 1));
    }
    // Shape contract (DESIGN.md §11): deque escapes are help-stabilize
    // events.  Cumulative and contention-dependent, so just exercised here;
    // values land in the bench tables.
    (void)dq->restarts();
    (void)dq->recoveries();
  }
}

TEST(AnyDeque, DeprecatedTidSurfaceStillWorks) {
  auto dq = AnyDeque::make(SchemeId::kHE, StructureId::kDeque,
                           small_options(2));
  ASSERT_TRUE(dq.has_value());
  EXPECT_TRUE(dq->push_left(0, 11));
  EXPECT_TRUE(dq->push_right(1, 22));
  EXPECT_EQ(dq->pop_right(0), 22u);
  EXPECT_EQ(dq->pop_right(1), 11u);
  EXPECT_EQ(dq->pop_left(0), std::nullopt);
}

// Destruction with elements resident — and, in the concurrent variant,
// straight after contended mixed-end churn, so a push-status anchor left by
// a preempted helper exercises the destructor's link fix-up path.
TEST(AnyDeque, TeardownWithResidentElementsDoesNotLeak) {
  for (SchemeId s : kAllSchemes) {
    SCOPED_TRACE(scheme_name(s));
    auto dq = AnyDeque::make(s, StructureId::kDeque, small_options());
    ASSERT_TRUE(dq.has_value());
    auto session = dq->session();
    for (std::uint64_t i = 0; i < 128; ++i) {
      ASSERT_TRUE((i & 1) ? session.push_left(i) : session.push_right(i));
    }
    session.reset();  // leave before the deque is destroyed
  }
}

TEST(AnyDeque, TeardownAfterContendedChurnDoesNotLeak) {
  const unsigned kThreads = 4;
  const std::uint64_t kPerThread =
      static_cast<std::uint64_t>(test::scaled_iters(4000));
  for (SchemeId s : kAllSchemes) {
    SCOPED_TRACE(scheme_name(s));
    auto dq =
        AnyDeque::make(s, StructureId::kDeque, small_options(kThreads));
    ASSERT_TRUE(dq.has_value());
    test::run_threads(kThreads, [&](unsigned t) {
      auto session = dq->session();
      Xoshiro256 rng(0xfeed + t);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t draw = rng.next();
        if (draw & 1) {
          ASSERT_TRUE(session.push_left(draw));
        } else {
          ASSERT_TRUE(session.push_right(draw));
        }
        if (draw & 2) {
          if (draw & 4) {
            session.pop_left();
          } else {
            session.pop_right();
          }
        }
      }
    });
    // Destroy with whatever is resident; ASan is the witness.
  }
}

}  // namespace
}  // namespace scot
