// scot::kv — semantics of the string-keyed resizable shard (AnyKv /
// KvHashMap) and the sharded KvStore facade, across every registered
// scheme.  The hammer at the bottom is the concurrent
// resize-vs-op-vs-session-churn witness ISSUE 9 asks for: writers keep a
// must-survive key set while churn threads update/erase a volatile range,
// session churners join and leave the shard domains, and the directory
// doubles repeatedly underneath all of them.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "kv/any_kv.hpp"
#include "kv/kv_hash_map.hpp"
#include "kv/kv_store.hpp"
#include "tests/test_util.hpp"

namespace scot {
namespace {

using test::run_threads;
using test::scaled_iters;
using test::small_config;

std::string key_of(unsigned i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%08u", i);
  return buf;
}

std::string value_of(unsigned i, std::size_t len = 24) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "v%u|", i);
  std::string v = buf;
  while (v.size() < len) v.push_back(static_cast<char>('a' + (i % 26)));
  return v;
}

AnyKvOptions small_kv_options(std::size_t initial_buckets = 4) {
  AnyKvOptions o;
  o.smr = small_config(8);
  o.initial_buckets = initial_buckets;
  return o;
}

TEST(KvHash, HashAvalanchesLowAndHighBits) {
  // Shard routing uses the top 16 bits; buckets use the low bits.  Nearby
  // keys must differ in both.
  const std::uint64_t a = kv_hash("user00000001");
  const std::uint64_t b = kv_hash("user00000002");
  EXPECT_NE(a, b);
  EXPECT_NE(a >> 48, b >> 48);
  EXPECT_NE(a & 0xffff, b & 0xffff);
  EXPECT_EQ(kv_hash("abc"), kv_hash(std::string("abc")));
}

TEST(AnyKv, EverySchemeRegistersTheKvCell) {
  for (const SchemeId scheme : kAllSchemes) {
    for (const StructureId structure : kKvStructures) {
      auto kv = AnyKv::make(scheme, structure, small_kv_options());
      ASSERT_TRUE(kv.has_value()) << scheme_name(scheme);
      EXPECT_EQ(kv->scheme(), scheme);
      EXPECT_EQ(kv->structure(), structure);
      EXPECT_STREQ(kv->structure_name(), "KvHash");
    }
  }
  // KvHash is name-resolvable but deliberately absent from the uint64 grid.
  EXPECT_EQ(structure_from_name("KvHash"), StructureId::kKvHash);
  for (const StructureId s : kAllStructures) EXPECT_NE(s, StructureId::kKvHash);
}

TEST(AnyKv, StringSemanticsAllSchemes) {
  for (const SchemeId scheme : kAllSchemes) {
    SCOPED_TRACE(scheme_name(scheme));
    auto kv = AnyKv::make(scheme, StructureId::kKvHash, small_kv_options());
    ASSERT_TRUE(kv.has_value());
    auto s = kv->session();

    EXPECT_TRUE(s.put("alpha", "1"));
    EXPECT_TRUE(s.put("beta", "2"));
    EXPECT_FALSE(s.put("alpha", "one"));  // update, not insert
    EXPECT_EQ(s.get("alpha"), "one");
    EXPECT_EQ(s.get("beta"), "2");
    EXPECT_FALSE(s.get("gamma").has_value());
    EXPECT_TRUE(s.contains("beta"));
    EXPECT_TRUE(s.erase("beta"));
    EXPECT_FALSE(s.erase("beta"));
    EXPECT_FALSE(s.contains("beta"));

    // Empty values and binary keys (embedded NUL) are plain byte strings.
    EXPECT_TRUE(s.put("empty", ""));
    EXPECT_EQ(s.get("empty"), "");
    const std::string nul_key("k\0k", 3);
    EXPECT_TRUE(s.put(nul_key, "nul"));
    EXPECT_EQ(s.get(nul_key), "nul");
    EXPECT_FALSE(s.contains("k"));

    s.reset();
    EXPECT_EQ(kv->size_unsafe(), 3u);
  }
}

TEST(AnyKv, OversizePairsAreRejectedAsNoOps) {
  auto kv = AnyKv::make(SchemeId::kEBR, StructureId::kKvHash,
                        small_kv_options());
  ASSERT_TRUE(kv.has_value());
  auto s = kv->session();
  const std::string big(64 * 1024, 'x');
  EXPECT_FALSE(kv->put_ok("k", big));
  EXPECT_FALSE(kv->put_ok(big, "v"));
  EXPECT_TRUE(kv->put_ok("k", std::string(4096, 'x')));
  EXPECT_FALSE(s.put("k", big));
  EXPECT_FALSE(s.contains("k"));
  s.reset();
  EXPECT_EQ(kv->size_unsafe(), 0u);
}

TEST(AnyKv, ResizeGrowsTheDirectoryAndKeepsEveryKey) {
  const unsigned kKeys = static_cast<unsigned>(scaled_iters(3000, 4));
  auto kv = AnyKv::make(SchemeId::kEBR, StructureId::kKvHash,
                        small_kv_options(/*initial_buckets=*/2));
  ASSERT_TRUE(kv.has_value());
  EXPECT_EQ(kv->bucket_count(), 2u);
  {
    auto s = kv->session();
    for (unsigned i = 0; i < kKeys; ++i)
      ASSERT_TRUE(s.put(key_of(i), value_of(i)));
  }
  EXPECT_EQ(kv->size_unsafe(), kKeys);  // also drains in-flight migrations
  EXPECT_EQ(kv->pending_migration(), 0u);
  EXPECT_GT(kv->bucket_count(), 2u);
  EXPECT_GT(kv->migrated_buckets(), 0u);
  {
    auto s = kv->session();
    for (unsigned i = 0; i < kKeys; ++i) {
      ASSERT_EQ(s.get(key_of(i)), value_of(i)) << i;
    }
    // Erase the odd half, re-check both halves.
    for (unsigned i = 1; i < kKeys; i += 2) ASSERT_TRUE(s.erase(key_of(i)));
    for (unsigned i = 0; i < kKeys; ++i) {
      ASSERT_EQ(s.contains(key_of(i)), i % 2 == 0) << i;
    }
  }
  EXPECT_EQ(kv->size_unsafe(), (kKeys + 1) / 2);
}

TEST(KvStore, ShardCountsAgreeOnContent) {
  const unsigned kKeys = 512;
  for (const unsigned shards : {1u, 4u}) {
    KvStoreOptions o;
    o.smr = small_config(8);
    o.shards = shards;
    o.initial_buckets_per_shard = 4;
    auto store = KvStore::make(SchemeId::kIBR, StructureId::kKvHash, o);
    ASSERT_TRUE(store.has_value());
    EXPECT_EQ(store->shard_count(), shards);
    auto s = store->session();
    for (unsigned i = 0; i < kKeys; ++i)
      ASSERT_TRUE(s.put(key_of(i), value_of(i)));
    for (unsigned i = 0; i < kKeys; i += 3) ASSERT_TRUE(s.erase(key_of(i)));
    for (unsigned i = 0; i < kKeys; ++i) {
      if (i % 3 == 0) {
        ASSERT_FALSE(s.contains(key_of(i))) << i;
      } else {
        ASSERT_EQ(s.get(key_of(i)), value_of(i)) << i;
      }
    }
    s.reset();
    EXPECT_EQ(store->size_unsafe(), kKeys - (kKeys + 2) / 3);
  }
}

TEST(KvStore, StatsAggregateAcrossShardDomains) {
  KvStoreOptions o;
  o.smr = small_config(8);
  o.smr.track_stats = true;
  o.shards = 4;
  o.initial_buckets_per_shard = 2;
  auto store = KvStore::make(SchemeId::kHP, StructureId::kKvHash, o);
  ASSERT_TRUE(store.has_value());
  {
    auto s = store->session();
    for (unsigned i = 0; i < 2000; ++i) s.put(key_of(i), value_of(i));
    for (unsigned i = 0; i < 2000; ++i) s.erase(key_of(i));
  }
  const obs::StatsSnapshot agg = store->stats();
  if (agg.enabled) {  // false when SCOT_STATS is compiled out
    // Every shard saw joins (the session joins all of them) and the churn
    // produced retires somewhere; the merged snapshot must reflect both.
    EXPECT_GE(agg.joins, 4u);
    EXPECT_GT(agg.retires, 0u);
  }
  EXPECT_EQ(store->size_unsafe(), 0u);
}

// Regression for the insert_copy ABA: a stale migration helper that slept
// between its child-chain walk and its commit CAS must not resurrect a key
// that a client erased after the round completed (the kPendBit discipline
// makes the stale commit fail).  Checkers put+erase their own key and must
// never see it again, while driver threads force back-to-back doubling
// rounds underneath them.
TEST(KvStore, EraseStaysErasedDuringResizeStorm) {
  const int kCheckIters = scaled_iters(2000, 10);
  const unsigned kDriverKeys = static_cast<unsigned>(scaled_iters(6000, 16));
  KvStoreOptions o;
  o.smr = small_config(16);
  o.shards = 1;  // all traffic in one shard maximizes resize interference
  o.initial_buckets_per_shard = 2;
  auto store = KvStore::make(SchemeId::kEBR, StructureId::kKvHash, o);
  ASSERT_TRUE(store.has_value());

  std::atomic<bool> failed{false};
  std::mutex fail_mu;
  std::string fail_what;
  const auto fail = [&](std::string what) {
    std::lock_guard<std::mutex> lk(fail_mu);
    if (!failed.exchange(true)) fail_what = std::move(what);
  };
  run_threads(4, [&](unsigned t) {
    auto s = store->session();
    if (t < 2) {
      // Drivers: unique keys keep the load factor over the doubling
      // threshold so migration rounds run for the whole test.
      for (unsigned i = 0; i < kDriverKeys && !failed.load(); ++i)
        s.put(key_of(t * 1000000u + i), value_of(i));
    } else {
      for (int i = 0; i < kCheckIters && !failed.load(); ++i) {
        const std::string k = key_of(7000000u + t * 100000u +
                                     static_cast<unsigned>(i % 8));
        if (!s.put(k, "gone")) fail("checker put saw a live " + k);
        if (!s.erase(k)) fail("checker erase lost " + k);
        if (s.contains(k)) fail("erased key resurrected (contains): " + k);
        if (s.get(k).has_value()) fail("erased key resurrected (get): " + k);
      }
    }
  });
  ASSERT_FALSE(failed.load()) << fail_what;
  EXPECT_EQ(store->size_unsafe(), 2u * kDriverKeys);
  EXPECT_EQ(store->pending_migration(), 0u);
}

// Regression for the resize-claim races: drainers hammer size_unsafe()
// (which runs drain_migrations) while writers start round after round.  A
// stale claimant publishing over a later generation used to wedge pending_
// at a count nothing decrements — this test then hangs in drain — and the
// claimed-but-unpublished window used to be a hot spin; now drainers help
// publish or yield through it.
TEST(KvStore, DrainRacesRoundClaimsWithoutWedging) {
  const unsigned kDriverKeys = static_cast<unsigned>(scaled_iters(4000, 16));
  KvStoreOptions o;
  o.smr = small_config(16);
  o.shards = 1;
  o.initial_buckets_per_shard = 2;
  auto store = KvStore::make(SchemeId::kHP, StructureId::kKvHash, o);
  ASSERT_TRUE(store.has_value());

  std::atomic<int> writers_done{0};
  run_threads(4, [&](unsigned t) {
    if (t < 3) {
      auto s = store->session();
      for (unsigned i = 0; i < kDriverKeys; ++i)
        s.put(key_of(t * 1000000u + i), value_of(i));
      writers_done.fetch_add(1);
    } else {
      // Drainer: every call must terminate with the in-flight round (if
      // any) fully migrated, even when it interleaves with claim CASes.
      do {
        store->size_unsafe();
      } while (writers_done.load() < 3);
    }
  });
  EXPECT_EQ(store->size_unsafe(), 3u * kDriverKeys);
  EXPECT_EQ(store->pending_migration(), 0u);
  EXPECT_GT(store->bucket_count(), 2u);
}

// The ISSUE 9 hammer: concurrent resize vs. operations vs. session churn.
// Two writer threads own disjoint must-survive ranges; two churn threads
// update/erase/reinsert a shared volatile range; one session-churn thread
// opens and closes short-lived sessions in a loop.  The shard starts at 2
// buckets, so the directory doubles many times while all of this runs.
class KvHammerTest : public ::testing::TestWithParam<SchemeId> {};

TEST_P(KvHammerTest, ConcurrentResizeOpsAndSessionChurn) {
  const SchemeId scheme = GetParam();
  const unsigned kStablePerWriter =
      static_cast<unsigned>(scaled_iters(1500, 5));
  const unsigned kVolatile = 256;
  const int kChurnIters = scaled_iters(4000, 8);

  KvStoreOptions o;
  o.smr = small_config(16);
  o.shards = 2;
  o.initial_buckets_per_shard = 2;
  auto store = KvStore::make(scheme, StructureId::kKvHash, o);
  ASSERT_TRUE(store.has_value());

  // First failure wins; records which invariant broke and on which key so a
  // one-in-many-runs race leaves something actionable behind.
  std::atomic<bool> failed{false};
  std::mutex fail_mu;
  std::string fail_what;
  const auto fail = [&](std::string what) {
    std::lock_guard<std::mutex> lk(fail_mu);
    if (!failed.exchange(true)) fail_what = std::move(what);
  };
  run_threads(5, [&](unsigned t) {
    if (t < 2) {
      // Writers: insert the must-survive set, then verify their own range.
      auto s = store->session();
      for (unsigned i = 0; i < kStablePerWriter; ++i) {
        const unsigned id = t * 1000000u + i;
        if (!s.put(key_of(id), value_of(id)))
          fail("fresh writer put not an insert: " + key_of(id));
      }
      for (unsigned i = 0; i < kStablePerWriter; ++i) {
        const unsigned id = t * 1000000u + i;
        const auto v = s.get(key_of(id));
        if (v != value_of(id))
          fail("writer read-back of " + key_of(id) + " got " +
               (v.has_value() ? *v : std::string("<absent>")));
      }
    } else if (t < 4) {
      // Churners: update/erase/reinsert the shared volatile range; every
      // observed value must be one this test ever wrote.
      auto s = store->session();
      Xoshiro256 rng(0x9e3779b9u * (t + 1));
      for (int i = 0; i < kChurnIters; ++i) {
        const unsigned id =
            5000000u + static_cast<unsigned>(rng.next_in(kVolatile));
        switch (rng.next_in(4)) {
          case 0:
            s.put(key_of(id), value_of(id));
            break;
          case 1:
            s.put(key_of(id), value_of(id + 1));  // distinct update payload
            break;
          case 2:
            s.erase(key_of(id));
            break;
          default: {
            const auto v = s.get(key_of(id));
            if (v.has_value() && *v != value_of(id) && *v != value_of(id + 1))
              fail("churner read of " + key_of(id) + " got " + *v);
            break;
          }
        }
      }
    } else {
      // Session churn: join/leave the shard domains while everyone else
      // runs, doing a little work per short-lived session.
      for (int i = 0; i < scaled_iters(300, 6); ++i) {
        auto s = store->session();
        const unsigned id = 6000000u + static_cast<unsigned>(i % 64);
        s.put(key_of(id), value_of(id));
        s.contains(key_of(id));
        s.erase(key_of(id));
      }
    }
  });
  ASSERT_FALSE(failed.load()) << fail_what;

  // Quiesced: every must-survive key is present with its exact value, the
  // volatile range is consistent, and no migration round is stuck.
  {
    auto s = store->session();
    for (unsigned t = 0; t < 2; ++t) {
      for (unsigned i = 0; i < kStablePerWriter; ++i) {
        const unsigned id = t * 1000000u + i;
        ASSERT_EQ(s.get(key_of(id)), value_of(id)) << id;
      }
    }
    for (unsigned i = 0; i < kVolatile; ++i) {
      const auto v = s.get(key_of(5000000u + i));
      if (v.has_value()) {
        ASSERT_TRUE(*v == value_of(5000000u + i) ||
                    *v == value_of(5000000u + i + 1));
      }
    }
  }
  const std::size_t size = store->size_unsafe();
  EXPECT_GE(size, 2u * kStablePerWriter);
  EXPECT_LE(size, 2u * kStablePerWriter + kVolatile + 64);
  EXPECT_EQ(store->pending_migration(), 0u);
  EXPECT_GT(store->bucket_count(), 2u * o.shards);

  // Bounded pending garbage: with all sessions closed the domains may hold
  // deferred batches, but nothing unbounded relative to the churn volume.
  const std::int64_t pending = store->pending_nodes();
  EXPECT_GE(pending, 0);
  EXPECT_LT(pending, 200000);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, KvHammerTest,
                         ::testing::ValuesIn(std::vector<SchemeId>(
                             std::begin(kAllSchemes), std::end(kAllSchemes))),
                         [](const ::testing::TestParamInfo<SchemeId>& info) {
                           return scheme_name(info.param);
                         });

}  // namespace
}  // namespace scot
