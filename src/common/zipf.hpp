// Zipfian rank generator (Gray et al., "Quickly generating billion-record
// synthetic databases", SIGMOD '94 — the same construction YCSB uses):
// ranks in [0, n), rank 0 the most popular, skew theta in (0, 1) where
// larger theta is more skewed (YCSB's default hot-spot constant is 0.99).
//
// zeta(n, theta) is computed once at construction (O(n)), so build one
// instance per benchmark run and share it read-only across worker threads;
// next() itself is allocation-free and thread-safe given a per-thread RNG.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/xorshift.hpp"

namespace scot {

class Zipf {
 public:
  Zipf(std::uint64_t n, double theta)
      : n_(n < 1 ? 1 : n),
        theta_(theta),
        zetan_(zeta(n_, theta)),
        half_pow_theta_(std::pow(0.5, theta)),
        alpha_(1.0 / (1.0 - theta)),
        // eta is only reached when n >= 3 (smaller n resolves via the
        // uz < 1 / uz < 1 + 0.5^theta branches), so the 0/0 it would
        // produce at n <= 2 is never consulted.
        eta_((1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta)) /
             (1.0 - zeta(2, theta) / zetan_)) {}

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  std::uint64_t next(Xoshiro256& rng) const {
    const double u = rng.next_double();
    if (n_ == 1) return 0;
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + half_pow_theta_) return 1;
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;  // floating slack at u -> 1
  }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; ++i)
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_;
  double half_pow_theta_;
  double alpha_;
  double eta_;
};

}  // namespace scot
