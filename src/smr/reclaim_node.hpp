// Intrusive metadata shared by every SMR scheme in the library.
//
// All nodes managed by a reclamation domain derive from `ReclaimNode`.  The
// header fields are only touched by the *owner* of the node's current
// lifecycle stage (allocator, data structure, retire list, reclaimer), never
// concurrently, with one deliberate exception: the node's **birth era**.
//
// The birth era is read by Hyaline-1S `protect()` calls that may race with
// reclamation of the node (see the SCOT paper, Section 2.2.5: a thread must
// restart its operation when it observes a node born after the era it
// published on entry).  To make that read safe we keep the birth era *outside*
// the C++ node object, in a 16-byte allocation header that the node pool
// never scribbles over: freeing a node preserves its birth era, and reusing
// the memory stores the (strictly larger) new era before the node is
// published.  A racing reader therefore observes either the old era or a
// newer one — both make its safety check conservative, never unsound.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace scot {

struct ReclaimNode {
  // Epoch/era at which the node was retired (EBR epoch, HE/IBR era).
  // Written once by retire(); read only by reclamation scans.
  std::uint64_t retire_era = 0;

  // Multi-purpose link, used at mutually exclusive lifecycle stages:
  //  - limbo-list link (EBR/HP/HE/IBR),
  //  - batch-membership link (Hyaline),
  //  - pool free-list link (after reclamation).
  ReclaimNode* smr_next = nullptr;

  // Hyaline only: link in a reservation slot's retirement list.  A batch
  // inserts a *distinct* member node into each active slot, so this link is
  // never shared between slots.
  ReclaimNode* slot_next = nullptr;

  // Hyaline only: the batch handle holding the reference counter.
  void* batch = nullptr;

  // Size the pool handed out for this node (excluding the allocation
  // header).  Needed so that type-erased reclamation paths (limbo scans,
  // Hyaline batch frees) can return the memory to the right size class.
  std::uint32_t alloc_size = 0;
  std::uint32_t debug_state = 0;  // lifecycle breadcrumb for assertions
};

// Lifecycle breadcrumbs (debug only; checked by tests and assertions).
enum : std::uint32_t {
  kNodeLive = 0x11111111u,
  kNodeRetired = 0x22222222u,
  kNodeFreed = 0x33333333u,
};

// The out-of-band allocation header described above.  `birth_era` must stay
// at a fixed offset from the node and must survive free/reuse cycles.
struct AllocHeader {
  std::atomic<std::uint64_t> birth_era;
  std::uint64_t pad;
};
static_assert(sizeof(AllocHeader) == 16);

inline AllocHeader* header_of(void* node) noexcept {
  return reinterpret_cast<AllocHeader*>(static_cast<std::byte*>(node) -
                                        sizeof(AllocHeader));
}

inline const AllocHeader* header_of(const void* node) noexcept {
  return reinterpret_cast<const AllocHeader*>(
      static_cast<const std::byte*>(node) - sizeof(AllocHeader));
}

inline std::uint64_t birth_era_of(const ReclaimNode* n) noexcept {
  return header_of(n)->birth_era.load(std::memory_order_acquire);
}

// Customization point: extracts the raw ReclaimNode* that hazard slots should
// publish from a value loaded out of a data-structure link.  `marked_ptr`
// (src/core/marked_ptr.hpp) provides an overload found via ADL.
template <class T>
inline ReclaimNode* smr_raw(T* p) noexcept {
  return p ? static_cast<ReclaimNode*>(p) : nullptr;
}

}  // namespace scot
