// Table 1: compatibility matrix of data structures with SMR schemes.
// The paper's table is analytical; this binary reproduces it *live*: every
// structure runs a short correctness-checked workload under every scheme,
// and a cell gets a check mark only if the run completes coherently.  The
// "HP* without SCOT" column cannot be run — traversing a reclaimed chain is
// undefined behaviour, which is the paper's point — so it is reported from
// the paper's analysis, marked 'x (by construction)'.
#include <cstdio>
#include <string>

#include "bench/fig_common.hpp"

int main(int argc, char** argv) {
  using namespace scot::bench;
  fig_init(argc, argv, "table1");
  std::printf("SCOT reproduction — Table 1 (SMR compatibility matrix)\n\n");
  struct RowSpec {
    StructureId structure;
    const char* label;
    const char* fast;       // paper's "Fast" column
    const char* hp_nosct;   // original structure under HP/HE/IBR/HLN
  };
  const RowSpec rows[] = {
      {StructureId::kHList, "Harris list (SCOT)", "yes", "x (by construction)"},
      {StructureId::kHListWF, "Harris list (SCOT, wait-free)", "yes",
       "x (by construction)"},
      {StructureId::kHMList, "Harris-Michael list", "moderate", "ok"},
      {StructureId::kNMTree, "Natarajan-Mittal tree (SCOT)", "yes",
       "x (by construction)"},
      {StructureId::kSkipList, "Fraser skip list (SCOT)", "yes",
       "x (by construction)"},
      {StructureId::kSkipListEager, "Herlihy-Shavit skip list", "moderate",
       "ok"},
      {StructureId::kHashMap, "Hash map (SCOT lists)", "yes",
       "x (by construction)"},
  };
  Table t({"Data structure", "Fast", "EBR", "HP*", "HP* w/o SCOT"});
  const int ms = env_ms(40);
  for (const RowSpec& row : rows) {
    auto cell = [&](SchemeId s) -> std::string {
      CaseConfig cfg;
      cfg.structure = row.structure;
      cfg.scheme = s;
      cfg.threads = 2;
      cfg.key_range = 128;
      cfg.millis = ms;
      apply_session_flags(cfg);
      const CaseResult r = run_case(cfg);
      fig_record(std::string(row.label) + " / " + scheme_name(s), cfg, r);
      return r.total_ops > 0 ? "ok" : "x";
    };
    // "HP*" stands for HP/HE/IBR/Hyaline-1S (paper footnote); run all four
    // and require every one to pass.
    bool hp_star_ok = true;
    for (SchemeId s :
         {SchemeId::kHP, SchemeId::kHPopt, SchemeId::kHE, SchemeId::kIBR,
          SchemeId::kHLN}) {
      if (cell(s) != "ok") hp_star_ok = false;
    }
    t.add_row({row.label, row.fast, cell(SchemeId::kEBR),
               hp_star_ok ? "ok" : "x", row.hp_nosct});
  }
  t.print();
  std::printf(
      "\n('ok' cells are verified by live runs; the w/o-SCOT column is the "
      "paper's analytical result — those traversals are unsafe to execute)\n");
  return fig_finish();
}
