// Asymmetric process-wide fences for reader/reclaimer protocols.
//
// Hazard-pointer-style publication needs a StoreLoad edge on the *reader*
// side: the slot store must be globally visible before the validating
// re-read executes.  Encoding that edge with seq_cst atomics puts a full
// fence on every protect() call — the dominant cost of HP/HPopt traversals
// (and of HE/IBR era publication) on read-mostly workloads.  Era-scheme
// *operation activation* (EBR's epoch reservation, IBR's interval publish,
// Hyaline's slot activation) carries the same shaped edge — the activation
// store vs. the operation's first shared load — and uses the same remedy,
// so an era-scheme read-side operation is fence-free end to end.
//
// The standard remedy is to make the fence asymmetric: readers run a
// release store plus a *compiler-only* barrier (Path::kMembarrier), and the
// rare reclaimer compensates by issuing one process-wide heavy barrier
// (`sys_membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED)`, which IPIs every CPU
// running this process) before it reads the published slots.  See
// DESIGN.md §5 for the safety argument, and the SMR surveys (Singh 2024;
// Nikolaev & Ravindran's Hyaline line) for the technique's pedigree.
//
// Three runtime paths, resolved per reclamation domain at construction:
//   kClassic       — the knob is off: callers keep their original seq_cst
//                    code, this header is not involved (A/B falsifiability).
//   kMembarrier    — fast path: light_barrier() compiles to nothing,
//                    heavy_barrier() is the expedited membarrier syscall.
//                    Requires one process-wide registration, performed the
//                    first time a domain resolves the path.
//   kFenceFallback — the syscall is unavailable (non-Linux, old kernel,
//                    seccomp): light_barrier() degrades to a real seq_cst
//                    fence per slot, which restores the classic two-sided
//                    ordering at roughly classic cost.  Engages
//                    automatically; nothing else in the domain changes.
#pragma once

#include <atomic>

#if defined(__linux__)
#include <linux/membarrier.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "obs/trace.hpp"

// ThreadSanitizer does not instrument stand-alone atomic_thread_fence (GCC
// even warns "'atomic_thread_fence' is not supported with
// '-fsanitize=thread'"), so orderings established only by a fence are
// invisible to the race detector — a fence-shaped blind spot.  Under TSan
// we substitute a seq_cst RMW on a process-wide dummy atomic, which TSan
// does model; on real hardware an RMW is at least as strong as the fence it
// replaces, and outside TSan builds the plain fence is kept.
#if defined(__SANITIZE_THREAD__)
#define SCOT_TSAN_FENCES 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SCOT_TSAN_FENCES 1
#endif
#endif
#ifndef SCOT_TSAN_FENCES
#define SCOT_TSAN_FENCES 0
#endif

namespace scot::asymfence {

#if SCOT_TSAN_FENCES
namespace detail {
inline std::atomic<unsigned>& fence_sink() noexcept {
  static std::atomic<unsigned> sink{0};
  return sink;
}
}  // namespace detail
#endif

// TSan-aware stand-alone fences.  All raw atomic_thread_fence uses in the
// library route through these so TSan sees every fence-carried edge.
inline void release_fence() noexcept {
#if SCOT_TSAN_FENCES
  detail::fence_sink().fetch_add(1, std::memory_order_release);
#else
  std::atomic_thread_fence(std::memory_order_release);
#endif
}

inline void seq_cst_fence() noexcept {
#if SCOT_TSAN_FENCES
  detail::fence_sink().fetch_add(1, std::memory_order_seq_cst);
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

enum class Path {
  kClassic,        // asymmetric fences disabled by config
  kMembarrier,     // registered; expedited membarrier serves heavy_barrier()
  kFenceFallback,  // syscall unavailable; per-slot seq_cst fences instead
};

// Test hook: makes resolve() behave as if sys_membarrier were unavailable,
// so the fallback path can be exercised on kernels that do support the
// syscall.  Affects domains constructed *after* the call.
inline std::atomic<bool>& detail_force_fallback() noexcept {
  static std::atomic<bool> f{false};
  return f;
}
inline void force_fallback_for_testing(bool on) noexcept {
  detail_force_fallback().store(on, std::memory_order_relaxed);
}

namespace detail {

enum class SysState { kUnknown, kReady, kUnavailable };

inline std::atomic<SysState>& sys_state() noexcept {
  static std::atomic<SysState> s{SysState::kUnknown};
  return s;
}

// Probes and registers in one step.  Registration is idempotent and
// process-wide; racing probes from concurrent domain constructors at worst
// register twice.
inline SysState probe_and_register() noexcept {
#if defined(__linux__) && defined(SYS_membarrier)
  const long cmds = syscall(SYS_membarrier, MEMBARRIER_CMD_QUERY, 0, 0);
  if (cmds < 0 ||
      (cmds & MEMBARRIER_CMD_PRIVATE_EXPEDITED) == 0 ||
      (cmds & MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED) == 0)
    return SysState::kUnavailable;
  if (syscall(SYS_membarrier, MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED, 0,
              0) != 0)
    return SysState::kUnavailable;
  return SysState::kReady;
#else
  return SysState::kUnavailable;
#endif
}

inline SysState ensure_registered() noexcept {
  auto& st = sys_state();
  SysState s = st.load(std::memory_order_acquire);
  if (s == SysState::kUnknown) {
    s = probe_and_register();
    st.store(s, std::memory_order_release);
  }
  return s;
}

}  // namespace detail

// Resolves the runtime path for a domain, registering the process for
// expedited membarrier on first use.  Call once per domain construction and
// cache the result: the branch in protect() must be on a plain bool/enum,
// not on an atomic.
inline Path resolve(bool want_asymmetric) noexcept {
  if (!want_asymmetric) return Path::kClassic;
  if (detail_force_fallback().load(std::memory_order_relaxed))
    return Path::kFenceFallback;
  return detail::ensure_registered() == detail::SysState::kReady
             ? Path::kMembarrier
             : Path::kFenceFallback;
}

// What resolve() picks when asymmetric fences are requested.  Bench report
// metadata records this; it consults (and, on first call, performs) the
// same probe-and-register resolve() uses, so it can never disagree with
// the path the domains actually run — e.g. when QUERY advertises the
// commands but seccomp rejects the registration.
inline const char* runtime_path_name() noexcept {
  if (detail_force_fallback().load(std::memory_order_relaxed))
    return "fence-fallback";
  return detail::ensure_registered() == detail::SysState::kReady
             ? "membarrier"
             : "fence-fallback";
}

inline const char* path_name(Path p) noexcept {
  switch (p) {
    case Path::kClassic: return "classic";
    case Path::kMembarrier: return "membarrier";
    case Path::kFenceFallback: return "fence-fallback";
  }
  return "?";
}

// Reader-side publication barrier.  Callers pass their domain's resolved
// path; kClassic never reaches here (classic callers keep seq_cst atomics).
inline void light_barrier(Path p) noexcept {
  if (p == Path::kMembarrier) {
    // Compiler barrier only: the matching heavy_barrier() supplies the
    // hardware StoreLoad edge on the rare reclaimer side.
    std::atomic_signal_fence(std::memory_order_seq_cst);
  } else {
    // Fallback: a real full fence per slot (TSan-aware, so the reader /
    // reclaimer pairing stays visible to the race detector).
    seq_cst_fence();
  }
}

// Reclaimer-side barrier, issued once per scan before the first read of the
// published slots.  After it returns, every reader publication that was not
// yet visible belongs to a reader whose validating re-read is ordered after
// this point (see DESIGN.md §5).
inline void heavy_barrier(Path p) noexcept {
  // Every scheme's scan/seal funnels through here, so this one span covers
  // all heavy-barrier events in the trace (no-op unless SCOT_TRACE=1).
  obs::TraceSpan span(obs::TraceKind::kBarrier);
#if defined(__linux__) && defined(SYS_membarrier)
  if (p == Path::kMembarrier &&
      syscall(SYS_membarrier, MEMBARRIER_CMD_PRIVATE_EXPEDITED, 0, 0) == 0)
    return;
#else
  (void)p;
#endif
  // Fallback path — readers already fence per slot, so a local full fence
  // is all the reclaimer needs.  Also the safety net for a post-registration
  // syscall failure, which the kernel contract rules out.
  seq_cst_fence();
}

}  // namespace scot::asymfence
