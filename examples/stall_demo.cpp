// stall_demo: a minimal, watchable reproduction of the paper's core
// trade-off.  Runs the same list workload under every scheme while one
// thread repeatedly stalls inside operations, printing the pending-garbage
// gauge once per interval.  EBR's line grows with every stall; the robust
// schemes' lines stay flat — and thanks to SCOT they run the *fast* Harris
// list, not the slowed-down Harris-Michael variant.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "scot.hpp"

using namespace scot;

template <class Smr>
void demo(const char* name) {
  SmrConfig cfg;
  cfg.max_threads = 3;
  Smr smr(cfg);
  HarrisList<std::uint64_t, std::uint64_t, Smr> list(smr);
  {
    auto sh = scoped_handle(smr);
    for (std::uint64_t k = 0; k < 1024; ++k) list.insert(sh.get(), k, k);
  }

  std::atomic<bool> stop{false};
  // Churning worker.
  std::thread churn([&] {
    auto sh = scoped_handle(smr);
    auto& h = sh.get();
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t k = (i * 2654435761u) % 1024;
      list.erase(h, k);
      list.insert(h, k, i);
      ++i;
    }
  });
  // Repeatedly-stalling reader: 10 ms of work, 90 ms stalled mid-op.
  std::thread staller([&] {
    auto sh = scoped_handle(smr);
    auto& h = sh.get();
    while (!stop.load(std::memory_order_relaxed)) {
      h.begin_op();
      std::this_thread::sleep_for(std::chrono::milliseconds(90));
      h.end_op();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  // Report the *peak* of the gauge in each 100 ms window (instantaneous
  // samples alias with the stall period; peaks show the real growth).
  std::printf("%-6s peak pending: ", name);
  for (int i = 0; i < 6; ++i) {
    long long peak = 0;
    for (int s = 0; s < 33; ++s) {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      peak = std::max(peak, static_cast<long long>(smr.pending_nodes()));
    }
    std::printf("%8lld", peak);
    std::fflush(stdout);
  }
  stop.store(true);
  churn.join();
  staller.join();
  std::printf("   (after stop: %lld)\n",
              static_cast<long long>(smr.pending_nodes()));
}

int main() {
  std::printf(
      "Retired-but-unreclaimed nodes, sampled every 100 ms, while one\n"
      "thread repeatedly stalls mid-operation (Harris list + SCOT):\n\n");
  demo<EbrDomain>("EBR");
  demo<HpDomain>("HP");
  demo<HpOptDomain>("HPopt");
  demo<HeDomain>("HE");
  demo<IbrDomain>("IBR");
  demo<HyalineDomain>("HLN");
  std::printf(
      "\nEBR grows while the staller pins the epoch; the robust schemes\n"
      "stay bounded (the paper's property (A), usable on Harris' list only\n"
      "because of SCOT).\n");
  return 0;
}
