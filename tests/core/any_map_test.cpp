// scot::AnyMap / runtime registry coverage: every SchemeId x StructureId
// cell must be constructible through the facade and behave like a set/map
// under single-threaded semantics and a small concurrent churn.  This is
// the acceptance test of the API v2 registry — if a registration line goes
// missing, the cross-product walk below fails by name.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

#include "scot.hpp"
#include "tests/test_util.hpp"

namespace scot {
namespace {

AnyMapOptions small_options(unsigned threads = 2) {
  AnyMapOptions options;
  options.smr = test::small_config(threads);
  options.smr.track_stats = true;  // the leak check reads pending_nodes()
  options.hash_buckets = 16;
  return options;
}

std::string cell_name(SchemeId s, StructureId d) {
  return std::string(scheme_name(s)) + "/" + structure_name(d);
}

TEST(AnyMapRegistry, CoversTheFullCrossProduct) {
  const auto entries = AnyMapRegistry::instance().entries();
  std::size_t expected = 0;
  for (SchemeId s : kAllSchemes) {
    for (StructureId d : kAllStructures) {
      ++expected;
      EXPECT_NE(AnyMapRegistry::instance().find(s, d), nullptr)
          << "unregistered cell " << cell_name(s, d);
    }
  }
  EXPECT_GE(entries.size(), expected);
}

TEST(AnyMap, UnregisteredCellsAreRejected) {
  EXPECT_FALSE(AnyMap::make(SchemeId::kEBR, StructureId::kNone).has_value());
}

// The trait-ablation variants are real registered cells (bench_ablation_*
// routes through run_case / AnyMap), registered for every scheme even
// though the grids never iterate them.
TEST(AnyMap, AblationVariantCellsAreRegisteredAndFunctional) {
  for (SchemeId s : kAllSchemes) {
    for (StructureId d : scot::kAblationStructures) {
      SCOPED_TRACE(cell_name(s, d));
      auto map = AnyMap::make(s, d, small_options());
      ASSERT_TRUE(map.has_value());
      EXPECT_TRUE(map->insert(0, 7, 70));
      EXPECT_TRUE(map->contains(0, 7));
      EXPECT_FALSE(map->contains(0, 8));
      EXPECT_TRUE(map->erase(0, 7));
      EXPECT_FALSE(map->contains(0, 7));
    }
  }
}

TEST(AnyMap, ReportsItsIdentity) {
  auto map = AnyMap::make(SchemeId::kHLN, StructureId::kSkipList,
                          small_options());
  ASSERT_TRUE(map.has_value());
  EXPECT_EQ(map->scheme(), SchemeId::kHLN);
  EXPECT_EQ(map->structure(), StructureId::kSkipList);
  EXPECT_STREQ(map->scheme_name(), "HLN");
  EXPECT_STREQ(map->structure_name(), "SkipList");
  EXPECT_EQ(map->max_threads(), 2u);
}

TEST(AnyMap, StatsSnapshotReflectsWorkload) {
  auto map = AnyMap::make(SchemeId::kEBR, StructureId::kHMList,
                          small_options());
  ASSERT_TRUE(map.has_value());
  for (std::uint64_t k = 0; k < 32; ++k) ASSERT_TRUE(map->insert(0, k, k));
  for (std::uint64_t k = 0; k < 32; ++k) ASSERT_TRUE(map->erase(0, k));
  const obs::StatsSnapshot s = map->stats();
  if (!s.enabled) GTEST_SKIP() << "stats compiled out (SCOT_STATS=0)";
  // Every erase retires the unlinked node through the facade's domain.
  EXPECT_GE(s.retires, 32u);
  EXPECT_EQ(s.retires, s.retired_total);
  EXPECT_GT(s.joins, 0u);
  EXPECT_NE(s.to_string().find("retires: "), std::string::npos);
}

// Single-threaded set/map semantics + iterate smoke + leak check, for every
// registered cell.
TEST(AnyMap, EveryCellSingleThreadedSemantics) {
  constexpr std::uint64_t kKeys = 64;
  for (SchemeId s : kAllSchemes) {
    for (StructureId d : kAllStructures) {
      SCOPED_TRACE(cell_name(s, d));
      auto map = AnyMap::make(s, d, small_options());
      ASSERT_TRUE(map.has_value());

      for (std::uint64_t k = 0; k < kKeys; ++k) {
        EXPECT_TRUE(map->insert(0, k, k * 10));
        EXPECT_FALSE(map->insert(0, k, k)) << "duplicate insert must fail";
      }
      EXPECT_EQ(map->size_unsafe(), kKeys);  // full iteration
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        EXPECT_TRUE(map->contains(0, k));
        const auto v = map->get(0, k);
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, k * 10);
      }
      for (std::uint64_t k = 0; k < kKeys; k += 2) {
        EXPECT_TRUE(map->erase(0, k));
        EXPECT_FALSE(map->erase(0, k)) << "double erase must fail";
      }
      EXPECT_EQ(map->size_unsafe(), kKeys / 2);
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        EXPECT_EQ(map->contains(0, k), k % 2 == 1);
      }

      // Leak check via the domain-wide gauge: when quiescent, the
      // retired-but-unreclaimed count is bounded by what the scheme is
      // allowed to park (per-thread limbo below the scan threshold, plus an
      // unsealed Hyaline batch).  NR is exempt: leaking is its contract.
      EXPECT_GE(map->pending_nodes(), 0);
      if (s != SchemeId::kNR) {
        const std::int64_t bound =
            static_cast<std::int64_t>(map->max_threads()) *
            (small_options().smr.scan_threshold + map->max_threads() + 8);
        EXPECT_LE(map->pending_nodes(), bound);
      }
    }
  }
}

// Two-thread churn through the facade: exercises guards, protection slots
// and reclamation under contention for every cell.
TEST(AnyMap, EveryCellConcurrentChurnSmoke) {
  const int iters = test::scaled_iters(600);
  constexpr std::uint64_t kRange = 32;
  for (SchemeId s : kAllSchemes) {
    for (StructureId d : kAllStructures) {
      SCOPED_TRACE(cell_name(s, d));
      auto map = AnyMap::make(s, d, small_options(2));
      ASSERT_TRUE(map.has_value());
      test::run_threads(2, [&](unsigned tid) {
        Xoshiro256 rng(0xA11CE + tid);
        for (int i = 0; i < iters; ++i) {
          const std::uint64_t k = rng.next_in(kRange);
          switch (rng.next_in(3)) {
            case 0: map->insert(tid, k, k); break;
            case 1: map->erase(tid, k); break;
            default: map->contains(tid, k); break;
          }
        }
      });
      EXPECT_LE(map->size_unsafe(), kRange);
      EXPECT_GE(map->pending_nodes(), 0);
      // Restart telemetry must be readable through the facade (the count
      // itself is workload-dependent).
      (void)map->restarts();
      (void)map->recoveries();
    }
  }
}

// ---- String-keyed cells (scot::AnyKv, src/kv/) ----------------------------
// The serving layer reuses the same runtime-registry pattern with typed
// (string) keys, so the cross-product checks live here next to their
// integer-keyed siblings.  Deeper resize/hammer coverage is kv_store_test.

AnyKvOptions small_kv_options(unsigned threads = 2) {
  AnyKvOptions options;
  options.smr = test::small_config(threads);
  options.smr.track_stats = true;
  options.initial_buckets = 8;
  return options;
}

// Every scheme serves the KvHash cell with arbitrary byte-string keys and
// values: insert-vs-update distinction, read-back, erase, and keys that
// are not C strings (embedded NUL).
TEST(AnyKv, StringKeyedCellSemanticsAllSchemes) {
  const std::string nul_key = std::string("a\0b", 3);
  for (SchemeId s : kAllSchemes) {
    for (StructureId d : kKvStructures) {
      SCOPED_TRACE(cell_name(s, d));
      auto kv = AnyKv::make(s, d, small_kv_options());
      ASSERT_TRUE(kv.has_value());
      auto session = kv->session();
      EXPECT_TRUE(session.put("alpha", "one"));
      EXPECT_TRUE(session.put(nul_key, "nul"));
      EXPECT_TRUE(session.put("empty", ""));
      EXPECT_FALSE(session.put("alpha", "uno"));  // update, not insert
      EXPECT_EQ(session.get("alpha"), std::optional<std::string>("uno"));
      EXPECT_EQ(session.get(nul_key), std::optional<std::string>("nul"));
      EXPECT_EQ(session.get("empty"), std::optional<std::string>(""));
      EXPECT_FALSE(session.get("absent").has_value());
      EXPECT_TRUE(session.erase(nul_key));
      EXPECT_FALSE(session.erase(nul_key));
      EXPECT_FALSE(session.contains(nul_key));
      EXPECT_TRUE(session.contains("alpha"));
      session.reset();
      EXPECT_EQ(kv->size_unsafe(), 2u);
    }
  }
}

// Two-session churn over a small string keyspace for every scheme: the
// typed-key analogue of EveryCellConcurrentChurnSmoke.
TEST(AnyKv, StringKeyedChurnSmokeAllSchemes) {
  const int iters = test::scaled_iters(600);
  constexpr std::uint64_t kRange = 32;
  for (SchemeId s : kAllSchemes) {
    for (StructureId d : kKvStructures) {
      SCOPED_TRACE(cell_name(s, d));
      auto kv = AnyKv::make(s, d, small_kv_options(2));
      ASSERT_TRUE(kv.has_value());
      test::run_threads(2, [&](unsigned tid) {
        auto session = kv->session();
        Xoshiro256 rng(0xC0FFEE + tid);
        std::string value;
        char kb[24];
        for (int i = 0; i < iters; ++i) {
          std::snprintf(kb, sizeof(kb), "k%llu",
                        static_cast<unsigned long long>(rng.next_in(kRange)));
          const std::string key(kb);
          switch (rng.next_in(3)) {
            case 0: session.put(key, key); break;
            case 1: session.erase(key); break;
            default: {
              if (session.get(key, &value)) {
                EXPECT_EQ(value, key);
              }
              break;
            }
          }
        }
      });
      EXPECT_LE(kv->size_unsafe(), kRange);
      EXPECT_GE(kv->pending_nodes(), 0);
      (void)kv->restarts();
      (void)kv->recoveries();
    }
  }
}

}  // namespace
}  // namespace scot
