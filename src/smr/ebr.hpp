// EBR: epoch-based reclamation (Fraser 2004; Hart et al. 2007).
//
// Fast and easy to use, but *not robust*: a stalled thread freezes its
// published epoch, which blocks reclamation of everything retired at or after
// that epoch — memory grows without bound (the paper's motivating weakness,
// Section 2.2.1, and the behaviour our robustness tests demonstrate).
//
// Reclamation rule.  A thread entering an operation publishes the global
// epoch E; while inside the operation it can only reach nodes that were still
// linked when it entered.  A node retired at epoch R was unlinked before the
// retire, so any thread whose published reservation is > R entered after the
// unlink and cannot hold a reference.  Hence: free a retired node once
// `retire_epoch < min(active reservations)`.
//
// Membership is dynamic (see nr.hpp for the reference walkthrough): the
// reservation lives inside the Handle, scans walk the live handle registry,
// and leave() donates whatever a final scan could not reclaim to the
// domain's orphan list for adoption by the next retirer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/align.hpp"
#include "common/asymfence.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "smr/handle_core.hpp"
#include "smr/handle_registry.hpp"
#include "smr/node_pool.hpp"
#include "smr/reclaimer.hpp"
#include "smr/smr_config.hpp"

namespace scot {

class EbrDomain {
 public:
  static constexpr const char* kName = "EBR";
  static constexpr bool kRobust = false;
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  class Handle : public HandleCore<EbrDomain, Handle> {
   public:
    using Base = HandleCore<EbrDomain, Handle>;
    using Base::retire;  // typed retire(Protected<T>) — API v2
    Handle(EbrDomain* dom, unsigned tid) : Base(dom, tid) {}

    void begin_op() noexcept {
      // The reservation must be visible to reclaimers before any of this
      // operation's shared loads execute (StoreLoad).  Classic: a seq_cst
      // activation store.  Asymmetric: release store + compiler barrier;
      // the StoreLoad edge is restored by the heavy barrier every scan
      // issues before reading the reservations (DESIGN.md §5).  The epoch
      // is loaded *before* the store (data dependency), so the published
      // reservation can never lag the clock value this operation validates
      // against.
      const std::uint64_t e = dom_->clock_.load(std::memory_order_acquire);
      const asymfence::Path fences = dom_->fence_path_;
      if (fences == asymfence::Path::kClassic) {
        reservation_.store(e, std::memory_order_seq_cst);
      } else {
        reservation_.store(e, std::memory_order_release);
        asymfence::light_barrier(fences);
      }
    }
    void end_op() noexcept {
      reservation_.store(kIdle, std::memory_order_release);
    }

    // `Src` is std::atomic<P> or StableAtomic<P> (pool-recycled link words).
    template <class Src, class P = typename Src::value_type>
    P protect(const Src& src, unsigned /*idx*/) noexcept {
      return src.load(std::memory_order_acquire);
    }
    template <class T>
    void publish(T* /*p*/, unsigned /*idx*/) noexcept {}
    void dup(unsigned /*i*/, unsigned /*j*/) noexcept {}
    static constexpr bool op_valid() noexcept { return true; }
    void revalidate_op() noexcept {}

    void retire(ReclaimNode* n) {
      n->debug_state = kNodeRetired;
      n->retire_era = dom_->clock_.load(std::memory_order_acquire);
      limbo_.push(n);
      // With the background reclaimer active, mailbox adoption is its job;
      // when inactive, retirers self-heal both mailboxes (leave() orphans
      // and anything stranded in the background mailbox by a stop).
      if (!dom_->bg_.is_active() && adopt_all_mailboxes() > 0) {
        obs::count(stats_, obs::Counter::kOrphanAdoptions);
        obs::trace_instant(obs::TraceKind::kAdopt);
      }
      dom_->counters_.on_retire(dom_->cfg_.track_stats);
      obs::count(stats_, obs::Counter::kRetires);
      obs::peak(stats_, limbo_.count);
      if (++tick_ >= dom_->bg_.effective_era_freq()) {
        tick_ = 0;
        dom_->clock_.fetch_add(1, std::memory_order_acq_rel);
        obs::count(stats_, obs::Counter::kEraAdvances);
      }
      if (limbo_.count >= dom_->bg_.effective_scan_threshold()) {
        if (dom_->bg_.is_active()) {
          // Donate the whole chain (one CAS) and ring the doorbell: no
          // scan, no reservation snapshot, and on the asymmetric path no
          // heavy barrier on this (or any) mutator — the service thread
          // issues one barrier for the entire adopted backlog.
          donate_limbo(limbo_, dom_->bg_.mailbox);
          dom_->bg_.thread.ring();
        } else {
          scan();
        }
      }
    }

    std::uint64_t on_alloc_era() noexcept { return 0; }

    // Frees every retired node no active reservation can still reference.
    void scan() {
      obs::TraceSpan span(obs::TraceKind::kScan);
      const std::uint64_t stats_t0 = obs::scan_begin(stats_);
      // Surface in-flight activation stores before snapshotting the
      // reservations; a reservation the barrier does not surface belongs
      // to a thread whose first shared load is ordered after every unlink
      // in this batch (DESIGN.md §5, activation case).
      if (dom_->fence_path_ != asymfence::Path::kClassic) {
        asymfence::heavy_barrier(dom_->fence_path_);
        obs::count(stats_, obs::Counter::kHeavyBarriers);
      }
      const std::uint64_t min_res = dom_->min_reservation();
      ReclaimNode* n = limbo_.take();
      std::uint64_t freed = 0;
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        if (n->retire_era < min_res) {
          dom_->pool().free(tid_, n, n->alloc_size);
          ++freed;
        } else {
          limbo_.push(n);
        }
        n = next;
      }
      dom_->counters_.on_free(freed, dom_->cfg_.track_stats);
      obs::scan_end(stats_, stats_t0, freed);
    }

    // Test hook: number of nodes parked in this thread's limbo list.
    unsigned limbo_size() const noexcept { return limbo_.count; }

    // --- background-reclaimer hooks (service thread only; DESIGN.md §9) ---
    // Adopt every donated chain into this handle's limbo list.
    unsigned bg_collect() { return adopt_all_mailboxes(); }
    // Run the shared scan (one heavy barrier) if there is a backlog.
    bool bg_reclaim() {
      if (limbo_.count == 0) return false;
      scan();
      return true;
    }

   private:
    friend class EbrDomain;

    // Drains both shared mailboxes into the private limbo list; returns the
    // number of nodes adopted.
    unsigned adopt_all_mailboxes() {
      unsigned adopted = 0;
      if (!dom_->orphans_.empty())
        adopted += adopt_orphans(dom_->orphans_, limbo_);
      if (!dom_->bg_.mailbox.empty())
        adopted += adopt_orphans(dom_->bg_.mailbox, limbo_);
      return adopted;
    }

    // Published epoch reservation, read by every scan.  Lives inside the
    // handle (each registry record is kFalseSharingRange-aligned), so the
    // reservation array grows with the registry instead of being sized by
    // max_threads.
    std::atomic<std::uint64_t> reservation_{kIdle};
    LimboList limbo_;
    unsigned tick_ = 0;
  };

  explicit EbrDomain(SmrConfig cfg = {})
      : cfg_(cfg),
        pool_(cfg.max_threads),
        fence_path_(asymfence::resolve(cfg.asymmetric_fences))
#ifndef SCOT_DISALLOW_TID_SHIM
        ,
        shim_(cfg.max_threads)
#endif
  {
    bg_.scan_threshold.store(cfg_.scan_threshold, std::memory_order_relaxed);
    bg_.era_freq.store(cfg_.era_freq, std::memory_order_relaxed);
    if (cfg_.background_reclaim) start_background_reclaimer();
  }

  ~EbrDomain() {
    stop_background_reclaimer();
    drain_all();
  }

  // --- dynamic membership (see nr.hpp for the reference walkthrough) ------
  Handle& join() {
    auto* rec =
        registry_.acquire([this](unsigned idx) { return Handle(this, idx); });
    rec->handle.registry_record_ = rec;
    pool_.ensure_shards(rec->index + 1);
    obs::count(rec->handle.stats_, obs::Counter::kJoins);
    obs::trace_instant(obs::TraceKind::kJoin);
    return rec->handle;
  }

  // Contract: no operation in flight (the reservation is idle).  A final
  // scan reclaims what it can; the rest is donated for adoption by the
  // next retirer on any live handle.
  void leave(Handle& h) {
    assert(h.reservation_.load(std::memory_order_relaxed) == kIdle &&
           "leave() with an operation in flight");
    if (h.limbo_.count > 0) {
      if (bg_.is_active()) {
        // Hand the whole backlog to the service thread; no exit scan.
        donate_limbo(h.limbo_, bg_.mailbox);
        bg_.thread.ring();
        obs::count(h.stats_, obs::Counter::kOrphanDonations);
      } else {
        h.scan();
        if (donate_limbo(h.limbo_, orphans_) > 0)
          obs::count(h.stats_, obs::Counter::kOrphanDonations);
      }
    }
    obs::count(h.stats_, obs::Counter::kLeaves);
    obs::trace_instant(obs::TraceKind::kLeave);
    registry_.release(record_of(h));
  }

  unsigned active_handles() const noexcept { return registry_.active(); }
  std::size_t total_handle_records() const noexcept {
    return registry_.total_records();
  }
  const HandleRegistry<Handle>& registry() const noexcept { return registry_; }

#ifndef SCOT_DISALLOW_TID_SHIM
  // DEPRECATED: fixed-capacity tid-indexed access (joins once per tid and
  // pins the record forever).  New code should use scoped_handle(domain).
  Handle& handle(unsigned tid) { return shim_.get(*this, tid); }
#endif

  // --- background reclamation (smr/reclaimer.hpp, DESIGN.md §9) -----------
  ReclaimControl& reclaim_control() noexcept { return bg_; }
  bool background_active() const noexcept { return bg_.is_active(); }
  BgReclaimStats background_stats() const noexcept { return bg_stats_of(bg_); }
  bool counts_heavy_barrier_per_reclaim() const noexcept {
    return fence_path_ != asymfence::Path::kClassic;
  }

  // Launches the service thread (no-op when already running).  Not
  // thread-safe against a concurrent start/stop — one controller thread,
  // the same contract as domain construction; safe against concurrent
  // mutator operations.
  void start_background_reclaimer() {
    if (bg_.thread.running()) return;
    if (!reclaimer_)
      reclaimer_ = std::make_unique<DomainReclaimer<EbrDomain>>(*this);
    bg_.active.store(true, std::memory_order_release);
    bg_.thread.start(cfg_.reclaim_interval_us,
                     [this] { reclaimer_->round(); });
  }

  // Stops and joins the service thread, runs a final synchronous drain and
  // releases the reclaimer's handle.  Mutators revert to inline scanning
  // and re-adopt anything still parked in the background mailbox.
  void stop_background_reclaimer() {
    bg_.active.store(false, std::memory_order_release);
    bg_.thread.stop();
    if (reclaimer_) {
      reclaimer_->detach();
      reclaimer_.reset();
    }
  }

  const SmrConfig& config() const noexcept { return cfg_; }
  NodePool& pool() noexcept { return pool_; }
  std::int64_t pending_nodes() const noexcept {
    return counters_.pending.load(std::memory_order_relaxed);
  }
  const SmrCounters& counters() const noexcept { return counters_; }
  std::uint64_t epoch() const noexcept {
    return clock_.load(std::memory_order_acquire);
  }
  asymfence::Path fence_path() const noexcept { return fence_path_; }

  // Observability (DESIGN.md §8): the per-handle cell list and the
  // aggregated snapshot.
  obs::DomainStats& obs_stats() noexcept { return stats_obs_; }
  obs::StatsSnapshot stats() const {
    obs::StatsSnapshot s = stats_obs_.snapshot();
    s.enabled = SCOT_STATS != 0 && cfg_.track_stats;
    s.pending = pending_nodes();
    s.retired_total = counters_.retired.load(std::memory_order_relaxed);
    s.reclaimed_total = counters_.reclaimed.load(std::memory_order_relaxed);
    return s;
  }

  // Walks the live registry (not a fixed handles_ vector): records of
  // departed threads hold an idle reservation, so no active-bit filtering
  // is needed.  Callers on the asymmetric path must issue the heavy
  // barrier first; the registry head is (re)read seq_cst after it, which
  // is what makes late joiners visible (DESIGN.md §7).
  std::uint64_t min_reservation() const noexcept {
    std::uint64_t m = kIdle;
    for (const auto* r = registry_.head(); r != nullptr;
         r = r->next_record()) {
      const std::uint64_t v =
          r->handle.reservation_.load(std::memory_order_acquire);
      if (v < m) m = v;
    }
    return m;
  }

 private:
  friend class Handle;

  using Record = HandleRegistry<Handle>::Record;
  static Record* record_of(Handle& h) noexcept {
    return static_cast<Record*>(h.registry_record_);
  }

  // Destructor-time cleanup: no threads are active, free everything —
  // every record's limbo list plus the orphan mailbox.
  void drain_all() {
    std::uint64_t freed = 0;
    for (auto* r = registry_.head(); r != nullptr; r = r->next_record()) {
      ReclaimNode* n = r->handle.limbo_.take();
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        pool_.free(r->index, n, n->alloc_size);
        ++freed;
        n = next;
      }
    }
    ReclaimNode* chains[] = {orphans_.take_all(), bg_.mailbox.take_all()};
    for (ReclaimNode* n : chains) {
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        pool_.free(0, n, n->alloc_size);
        ++freed;
        n = next;
      }
    }
    counters_.on_free(freed, cfg_.track_stats);
  }

  SmrConfig cfg_;
  NodePool pool_;
  SmrCounters counters_;
  std::atomic<std::uint64_t> clock_{1};
  asymfence::Path fence_path_;
  // Declared before the registry: handles hold raw cell pointers, so the
  // cell list must be destroyed after the records are.
  obs::DomainStats stats_obs_;
  HandleRegistry<Handle> registry_;
  OrphanList orphans_;
  ReclaimControl bg_;
  std::unique_ptr<DomainReclaimer<EbrDomain>> reclaimer_;
#ifndef SCOT_DISALLOW_TID_SHIM
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  TidHandleShim<Handle> shim_;
#pragma GCC diagnostic pop
#endif
};

}  // namespace scot
