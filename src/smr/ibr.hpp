// IBR: interval-based reclamation (Wen et al., PPoPP 2018), 2GE variant,
// with the reservation-snapshot scan optimization from the paper.
//
// Each thread publishes one *interval* [lower, upper] instead of per-index
// eras: `lower` is the era at operation start, `upper` is bumped lazily by
// protect() whenever the global era has advanced.  A retired node is
// reclaimable once its lifetime [birth, retire] overlaps no thread's
// interval.  Because protection is not indexed, dup() is a no-op — this is
// the "simplified programming model" the paper credits IBR with.
//
// Ordering note: begin_op stores `lower` (release) before `upper`.  A
// reclaimer snapshots `upper` first and `lower` second; if it observes the
// new upper it is guaranteed to observe the new lower.  A torn pair with a
// stale *lower* maps kIdle to 0 and widens conservatively; a torn pair
// with a stale *upper* yields an empty interval, which is safe not by
// widening but by the fence discipline: an `upper` publication the
// reclaimer cannot see means the operation's shared loads are all ordered
// after the scan's barrier, so it cannot reach the nodes being freed
// (DESIGN.md §5, IBR tear note).
//
// Membership is dynamic (see nr.hpp): the interval lives inside the Handle,
// scans walk the live registry, and leave() idles the interval, scans, and
// donates the leftover limbo to the domain's orphan list.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/align.hpp"
#include "common/asymfence.hpp"
#include "common/chunked_list.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "smr/handle_core.hpp"
#include "smr/handle_registry.hpp"
#include "smr/node_pool.hpp"
#include "smr/reclaimer.hpp"
#include "smr/smr_config.hpp"

namespace scot {

class IbrDomain {
 public:
  static constexpr const char* kName = "IBR";
  static constexpr bool kRobust = true;
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  class Handle : public HandleCore<IbrDomain, Handle> {
   public:
    using Base = HandleCore<IbrDomain, Handle>;
    using Base::retire;  // typed retire(Protected<T>) — API v2
    Handle(IbrDomain* dom, unsigned tid) : Base(dom, tid) {}

    void begin_op() noexcept {
      // Activation publishes the interval: `lower` first (release), then
      // `upper`, whose store carries the StoreLoad edge against this
      // operation's shared loads.  Classic: seq_cst.  Asymmetric: release +
      // compiler barrier, compensated by the heavy barrier scans issue
      // before collect_intervals() (DESIGN.md §5, activation case).  Both
      // eras come from the clock value loaded first, so the published
      // interval can never lag the era this operation validates against.
      const std::uint64_t e = dom_->clock_.load(std::memory_order_acquire);
      upper_cache_ = e;
      res_lower_.store(e, std::memory_order_release);
      const asymfence::Path fences = dom_->fence_path_;
      if (fences == asymfence::Path::kClassic) {
        res_upper_.store(e, std::memory_order_seq_cst);
      } else {
        res_upper_.store(e, std::memory_order_release);
        asymfence::light_barrier(fences);
      }
    }

    void end_op() noexcept {
      res_upper_.store(kIdle, std::memory_order_release);
      res_lower_.store(kIdle, std::memory_order_release);
    }

    // The common case (era unchanged since the last bump) is fence-free
    // either way; the asymmetric discipline relaxes the `upper` bump, whose
    // StoreLoad edge against the loop's re-read is restored by the heavy
    // barrier scans issue before collect_intervals() (DESIGN.md §5).
    // `Src` is std::atomic<P> or StableAtomic<P>.
    template <class Src, class P = typename Src::value_type>
    P protect(const Src& src, unsigned /*idx*/) noexcept {
      const asymfence::Path fences = dom_->fence_path_;
      for (;;) {
        P v = src.load(std::memory_order_acquire);
        const std::uint64_t e = dom_->clock_.load(std::memory_order_seq_cst);
        if (e == upper_cache_) return v;
        if (fences == asymfence::Path::kClassic) {
          res_upper_.store(e, std::memory_order_seq_cst);
        } else {
          res_upper_.store(e, std::memory_order_release);
          asymfence::light_barrier(fences);
        }
        upper_cache_ = e;
      }
    }

    template <class T>
    void publish(T* /*p*/, unsigned /*idx*/) noexcept {}
    void dup(unsigned /*i*/, unsigned /*j*/) noexcept {}
    static constexpr bool op_valid() noexcept { return true; }
    void revalidate_op() noexcept {}

    void retire(ReclaimNode* n) {
      n->debug_state = kNodeRetired;
      n->retire_era = dom_->clock_.load(std::memory_order_acquire);
      limbo_.push(n);
      if (!dom_->bg_.is_active() && adopt_all_mailboxes() > 0) {
        obs::count(stats_, obs::Counter::kOrphanAdoptions);
        obs::trace_instant(obs::TraceKind::kAdopt);
      }
      dom_->counters_.on_retire(dom_->cfg_.track_stats);
      obs::count(stats_, obs::Counter::kRetires);
      obs::peak(stats_, limbo_.count);
      era_tick();
      if (limbo_.count >= dom_->bg_.effective_scan_threshold()) {
        if (dom_->bg_.is_active()) {
          donate_limbo(limbo_, dom_->bg_.mailbox);
          dom_->bg_.thread.ring();
        } else {
          scan();
        }
      }
    }

    std::uint64_t on_alloc_era() noexcept {
      era_tick();
      return dom_->clock_.load(std::memory_order_acquire);
    }

    void scan() {
      obs::TraceSpan span(obs::TraceKind::kScan);
      const std::uint64_t stats_t0 = obs::scan_begin(stats_);
      // Heavy barrier before the snapshot; the registry head is read after
      // it, so records of late-joining threads are covered by the same
      // argument (DESIGN.md §7).
      if (dom_->fence_path_ != asymfence::Path::kClassic) {
        asymfence::heavy_barrier(dom_->fence_path_);
        obs::count(stats_, obs::Counter::kHeavyBarriers);
      }
      snapshot_.clear();
      dom_->collect_intervals(snapshot_);
      std::uint64_t freed = 0;
      ReclaimNode* n = limbo_.take();
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        if (lifetime_reserved(birth_era_of(n), n->retire_era)) {
          limbo_.push(n);
        } else {
          dom_->pool().free(tid_, n, n->alloc_size);
          ++freed;
        }
        n = next;
      }
      dom_->counters_.on_free(freed, dom_->cfg_.track_stats);
      obs::scan_end(stats_, stats_t0, freed);
    }

    unsigned limbo_size() const noexcept { return limbo_.count; }

    // --- background-reclaimer hooks (service thread only; DESIGN.md §9) ---
    unsigned bg_collect() { return adopt_all_mailboxes(); }
    bool bg_reclaim() {
      if (limbo_.count == 0) return false;
      scan();
      return true;
    }

   private:
    friend class IbrDomain;

    unsigned adopt_all_mailboxes() {
      unsigned adopted = 0;
      if (!dom_->orphans_.empty())
        adopted += adopt_orphans(dom_->orphans_, limbo_);
      if (!dom_->bg_.mailbox.empty())
        adopted += adopt_orphans(dom_->bg_.mailbox, limbo_);
      return adopted;
    }

    bool lifetime_reserved(std::uint64_t birth,
                           std::uint64_t retire) noexcept {
      for (std::size_t i = 0; i < snapshot_.size(); ++i) {
        const auto& [lo, hi] = snapshot_[i];
        if (birth <= hi && retire >= lo) return true;
      }
      return false;
    }

    void era_tick() noexcept {
      if (++tick_ >= dom_->bg_.effective_era_freq()) {
        tick_ = 0;
        dom_->clock_.fetch_add(1, std::memory_order_acq_rel);
        obs::count(stats_, obs::Counter::kEraAdvances);
      }
    }

    // Published interval (moved from the domain's per-tid array; the
    // record's alignment isolates it).
    std::atomic<std::uint64_t> res_lower_{kIdle};
    std::atomic<std::uint64_t> res_upper_{kIdle};
    LimboList limbo_;
    std::uint64_t upper_cache_ = kIdle;
    unsigned tick_ = 0;
    // Scan scratch, reused across scans; grows with the registry.
    ChunkedList<std::pair<std::uint64_t, std::uint64_t>> snapshot_;
  };

  explicit IbrDomain(SmrConfig cfg = {})
      : cfg_(cfg),
        pool_(cfg.max_threads),
        fence_path_(asymfence::resolve(cfg.asymmetric_fences))
#ifndef SCOT_DISALLOW_TID_SHIM
        ,
        shim_(cfg.max_threads)
#endif
  {
    bg_.scan_threshold.store(cfg_.scan_threshold, std::memory_order_relaxed);
    bg_.era_freq.store(cfg_.era_freq, std::memory_order_relaxed);
    if (cfg_.background_reclaim) start_background_reclaimer();
  }

  ~IbrDomain() {
    stop_background_reclaimer();
    drain_all();
  }

  // --- dynamic membership (see nr.hpp for the reference walkthrough) ------
  Handle& join() {
    auto* rec =
        registry_.acquire([this](unsigned idx) { return Handle(this, idx); });
    rec->handle.registry_record_ = rec;
    pool_.ensure_shards(rec->index + 1);
    obs::count(rec->handle.stats_, obs::Counter::kJoins);
    obs::trace_instant(obs::TraceKind::kJoin);
    return rec->handle;
  }

  // Contract: no operation in flight (the interval is idle).  A final scan
  // reclaims what it can; the rest is donated for adoption.
  void leave(Handle& h) {
    assert(h.res_upper_.load(std::memory_order_relaxed) == kIdle &&
           "leave() with an operation in flight");
    if (h.limbo_.count > 0) {
      if (bg_.is_active()) {
        donate_limbo(h.limbo_, bg_.mailbox);
        bg_.thread.ring();
        obs::count(h.stats_, obs::Counter::kOrphanDonations);
      } else {
        h.scan();
        if (donate_limbo(h.limbo_, orphans_) > 0)
          obs::count(h.stats_, obs::Counter::kOrphanDonations);
      }
    }
    obs::count(h.stats_, obs::Counter::kLeaves);
    obs::trace_instant(obs::TraceKind::kLeave);
    registry_.release(record_of(h));
  }

  unsigned active_handles() const noexcept { return registry_.active(); }
  std::size_t total_handle_records() const noexcept {
    return registry_.total_records();
  }
  const HandleRegistry<Handle>& registry() const noexcept { return registry_; }

#ifndef SCOT_DISALLOW_TID_SHIM
  // DEPRECATED: fixed-capacity tid-indexed access (joins once per tid and
  // pins the record forever).  New code should use scoped_handle(domain).
  Handle& handle(unsigned tid) { return shim_.get(*this, tid); }
#endif

  // --- background reclamation (smr/reclaimer.hpp, DESIGN.md §9) -----------
  ReclaimControl& reclaim_control() noexcept { return bg_; }
  bool background_active() const noexcept { return bg_.is_active(); }
  BgReclaimStats background_stats() const noexcept { return bg_stats_of(bg_); }
  bool counts_heavy_barrier_per_reclaim() const noexcept {
    return fence_path_ != asymfence::Path::kClassic;
  }

  void start_background_reclaimer() {
    if (bg_.thread.running()) return;
    if (!reclaimer_)
      reclaimer_ = std::make_unique<DomainReclaimer<IbrDomain>>(*this);
    bg_.active.store(true, std::memory_order_release);
    bg_.thread.start(cfg_.reclaim_interval_us,
                     [this] { reclaimer_->round(); });
  }

  void stop_background_reclaimer() {
    bg_.active.store(false, std::memory_order_release);
    bg_.thread.stop();
    if (reclaimer_) {
      reclaimer_->detach();
      reclaimer_.reset();
    }
  }

  const SmrConfig& config() const noexcept { return cfg_; }
  NodePool& pool() noexcept { return pool_; }
  std::int64_t pending_nodes() const noexcept {
    return counters_.pending.load(std::memory_order_relaxed);
  }
  const SmrCounters& counters() const noexcept { return counters_; }
  std::uint64_t era() const noexcept {
    return clock_.load(std::memory_order_acquire);
  }
  asymfence::Path fence_path() const noexcept { return fence_path_; }

  // Observability (DESIGN.md §8): the per-handle cell list and the
  // aggregated snapshot.
  obs::DomainStats& obs_stats() noexcept { return stats_obs_; }
  obs::StatsSnapshot stats() const {
    obs::StatsSnapshot s = stats_obs_.snapshot();
    s.enabled = SCOT_STATS != 0 && cfg_.track_stats;
    s.pending = pending_nodes();
    s.retired_total = counters_.retired.load(std::memory_order_relaxed);
    s.reclaimed_total = counters_.reclaimed.load(std::memory_order_relaxed);
    return s;
  }

  // Walks the live registry; records of departed threads hold idle
  // intervals.  `Out` is any push_back-able container of
  // pair<uint64_t, uint64_t>.
  template <class Out>
  void collect_intervals(Out& out) const {
    for (const auto* r = registry_.head(); r != nullptr;
         r = r->next_record()) {
      // upper first, then lower (see the ordering note above).
      const std::uint64_t hi =
          r->handle.res_upper_.load(std::memory_order_acquire);
      const std::uint64_t lo =
          r->handle.res_lower_.load(std::memory_order_acquire);
      if (lo == kIdle && hi == kIdle) continue;
      // kIdle halves of a torn observation widen conservatively; a
      // stale-upper tear can produce an empty interval, covered by the
      // scan barrier instead (see the ordering note at the top).
      out.push_back({lo == kIdle ? 0 : lo, hi == kIdle ? ~std::uint64_t{0} : hi});
    }
  }

 private:
  friend class Handle;

  using Record = HandleRegistry<Handle>::Record;
  static Record* record_of(Handle& h) noexcept {
    return static_cast<Record*>(h.registry_record_);
  }

  void drain_all() {
    std::uint64_t freed = 0;
    for (auto* r = registry_.head(); r != nullptr; r = r->next_record()) {
      ReclaimNode* n = r->handle.limbo_.take();
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        pool_.free(r->index, n, n->alloc_size);
        ++freed;
        n = next;
      }
    }
    ReclaimNode* chains[] = {orphans_.take_all(), bg_.mailbox.take_all()};
    for (ReclaimNode* n : chains) {
      while (n != nullptr) {
        ReclaimNode* next = n->smr_next;
        pool_.free(0, n, n->alloc_size);
        ++freed;
        n = next;
      }
    }
    counters_.on_free(freed, cfg_.track_stats);
  }

  SmrConfig cfg_;
  NodePool pool_;
  SmrCounters counters_;
  std::atomic<std::uint64_t> clock_{1};
  asymfence::Path fence_path_;
  // Declared before the registry: handles hold raw cell pointers, so the
  // cell list must be destroyed after the records are.
  obs::DomainStats stats_obs_;
  HandleRegistry<Handle> registry_;
  OrphanList orphans_;
  ReclaimControl bg_;
  std::unique_ptr<DomainReclaimer<IbrDomain>> reclaimer_;
#ifndef SCOT_DISALLOW_TID_SHIM
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  TidHandleShim<Handle> shim_;
#pragma GCC diagnostic pop
#endif
};

}  // namespace scot
