#include "bench/runner.hpp"
#include "bench/runner_impl.hpp"

namespace scot::bench {

CaseResult run_case_hyaline(const CaseConfig& cfg) {
  return detail::run_with_scheme<HyalineDomain>(cfg);
}

}  // namespace scot::bench
