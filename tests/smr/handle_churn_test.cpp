// Dynamic handle lifecycle: join/leave churn against every scheme.
//
// What this suite pins down (DESIGN.md §7):
//  * join()/leave() recycle registry records — waves of short-lived threads
//    do not grow the registry past the peak concurrency (no slot leak);
//  * active_handles() returns to baseline once every wave has left;
//  * a departing thread's unreclaimed retires are donated and adopted: they
//    stay accounted in pending_nodes() and are eventually freed by a
//    surviving thread's scans (bounded pending, no lost nodes — a dropped
//    node would additionally be reported by ASan/LSan at domain teardown);
//  * the thread-local re-join fast path keeps a single-thread join/leave
//    loop on one record;
//  * the deprecated tid shim and dynamic sessions compose on one domain.
//
// The AnyMap section drives the same lifecycle through the type-erased
// Session surface with (scaled) thousands of short-lived threads per scheme.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/any_map.hpp"
#include "tests/test_util.hpp"

namespace scot::test {
namespace {

template <class Smr>
class HandleChurnTest : public ::testing::Test {};
TYPED_TEST_SUITE(HandleChurnTest, AllSchemes);

template <class Smr>
class ReclaimingChurnTest : public ::testing::Test {};
TYPED_TEST_SUITE(ReclaimingChurnTest, ReclaimingSchemes);

constexpr bool is_nr(const char* name) {
  return name[0] == 'N' && name[1] == 'R';
}

// Waves of short-lived threads join, churn, and leave.  The registry must
// recycle records: the high-water record count is bounded by the peak
// concurrency, and the active gauge returns to zero after every wave.
TYPED_TEST(HandleChurnTest, WavesRecycleRecords) {
  using Smr = TypeParam;
  constexpr unsigned kThreads = 8;
  const int waves = scaled_iters(60);
  Smr dom(small_config(kThreads));

  for (int w = 0; w < waves; ++w) {
    run_threads(kThreads, [&](unsigned) {
      auto h = scoped_handle(dom);
      h->begin_op();
      h->end_op();
      // NR never reclaims; keep its churn tiny so the test stays cheap.
      churn_retire(*h, is_nr(Smr::kName) ? 4 : 64);
    });
    ASSERT_EQ(dom.active_handles(), 0u) << "wave " << w;
    ASSERT_LE(dom.total_handle_records(), static_cast<std::size_t>(kThreads))
        << "wave " << w;
  }

  if (!is_nr(Smr::kName)) {
    // Adopt-and-drain: one survivor churns enough for its scans to pick up
    // every orphaned retire; with no active reservations the backlog must
    // settle to a bound that does not scale with the number of waves.
    auto h = scoped_handle(dom);
    churn_retire(*h, 512);
    const auto cfg = dom.config();
    const std::int64_t bound =
        4 * static_cast<std::int64_t>(
                std::max<unsigned>(cfg.scan_threshold, kThreads * 16));
    EXPECT_LE(dom.pending_nodes(), bound);
  }
}

// Single-thread join/leave loop: the thread-local cache must re-claim the
// same record every time — one record total, no list growth.
TYPED_TEST(HandleChurnTest, RejoinFastPathReusesRecord) {
  using Smr = TypeParam;
  Smr dom(small_config(2));
  typename Smr::Handle* first = nullptr;
  for (int i = 0; i < 1000; ++i) {
    auto h = scoped_handle(dom);
    if (first == nullptr) first = &*h;
    EXPECT_EQ(&*h, first);
    EXPECT_EQ(h->tid(), 0u);
  }
  EXPECT_EQ(dom.total_handle_records(), 1u);
  EXPECT_EQ(dom.active_handles(), 0u);
}

// The deprecated tid shim pins records; sessions opened alongside it get
// fresh ones and the two surfaces never hand out the same handle at the
// same time.
TYPED_TEST(HandleChurnTest, ShimAndSessionsCompose) {
  using Smr = TypeParam;
  Smr dom(small_config(4));
  auto& pinned0 = dom.handle(0);
  auto& pinned1 = dom.handle(1);
  EXPECT_NE(&pinned0, &pinned1);
  EXPECT_EQ(&dom.handle(0), &pinned0);  // idempotent
  EXPECT_EQ(dom.active_handles(), 2u);

  {
    auto h = scoped_handle(dom);
    EXPECT_NE(&*h, &pinned0);
    EXPECT_NE(&*h, &pinned1);
    EXPECT_EQ(dom.active_handles(), 3u);
  }
  EXPECT_EQ(dom.active_handles(), 2u);
  EXPECT_THROW(dom.handle(4), std::out_of_range);  // fixed-capacity surface
}

// Donation is observable: a reader protecting a node keeps the departing
// thread's final scan from freeing everything, so the leftovers must be
// handed over (still accounted) rather than dropped, and a later retirer
// must adopt and free them once the reader lets go.
TYPED_TEST(ReclaimingChurnTest, LeaveDonatesAndRetirerAdopts) {
  using Smr = TypeParam;
  auto cfg = small_config(4);
  cfg.scan_threshold = 1u << 30;  // no threshold scans: only leave() scans
  Smr dom(cfg);

  auto reader = scoped_handle(dom);
  std::int64_t donated = 0;
  {
    auto worker = scoped_handle(dom);
    reader->begin_op();
    // Pin one of the worker's nodes mid-operation so the worker's exit
    // scan cannot reclaim it (for era schemes the open operation pins the
    // whole batch's lifetime instead of one node).
    auto* node = worker->template alloc<TestNode>(7);
    std::atomic<ReclaimNode*> src{node};
    (void)reader->protect(src, 0u);
    worker->retire(node);
    churn_retire(*worker, 32);
    // worker leaves here: final scan runs under the reader's protection,
    // then donates the leftovers.
    donated = dom.pending_nodes();
  }
  EXPECT_GE(donated, 1) << "leave() lost retires instead of donating";

  reader->end_op();
  // The reader is now also the only retirer; its next retires must adopt
  // the orphans, and with no protections left a scan frees the lot.
  // (Hyaline has no explicit scan — its per-batch handoff already freed
  // everything except the small unsealed remainder.)
  churn_retire(*reader, 64);
  if constexpr (requires { reader->scan(); }) reader->scan();
  EXPECT_LE(dom.pending_nodes(), 16);
}

// Type-erased lifecycle: (scaled) thousands of short-lived threads open
// Sessions against one AnyMap per scheme.  Registry stays at peak-wave
// size, active count returns to the construction-time baseline, pending
// stays bounded.
TEST(AnyMapSessionChurnTest, ThousandsOfSessions) {
  constexpr unsigned kThreads = 8;
  const int waves = scaled_iters(150);  // 150 * 8 = 1200 threads full size
  for (const SchemeId scheme :
       {SchemeId::kNR, SchemeId::kEBR, SchemeId::kHP, SchemeId::kHPopt,
        SchemeId::kHE, SchemeId::kIBR, SchemeId::kHLN}) {
    AnyMapOptions options;
    options.smr = small_config(kThreads);
    auto map = AnyMap::make(scheme, StructureId::kHMList, options);
    ASSERT_TRUE(map.has_value());

    // The structure constructor may pin an anchor handle via the shim.
    const unsigned base_active = map->active_handles();
    const std::size_t base_records = map->total_handle_records();

    for (int w = 0; w < waves; ++w) {
      run_threads(kThreads, [&](unsigned t) {
        auto s = map->session();
        for (std::uint64_t i = 0; i < 50; ++i) {
          const std::uint64_t k = (i * 17 + t) % 256;
          if (i % 3 == 0) {
            s.erase(k);
          } else {
            s.insert(k, k);
          }
          s.contains((k * 5) % 256);
        }
      });
    }

    EXPECT_EQ(map->active_handles(), base_active)
        << scheme_name(scheme) << ": sessions leaked registry slots";
    EXPECT_LE(map->total_handle_records(), base_records + kThreads)
        << scheme_name(scheme) << ": registry grew past peak concurrency";
    if (scheme != SchemeId::kNR) {
      // Bounded garbage across the whole churn: generous static bound,
      // independent of the number of waves.
      EXPECT_LE(map->pending_nodes(), 2048) << scheme_name(scheme);
    }
  }
}

// Sessions are move-only RAII: moving transfers membership, reset leaves
// early and is idempotent.
TEST(AnyMapSessionChurnTest, SessionMoveAndReset) {
  AnyMapOptions options;
  options.smr = small_config(2);
  auto map = AnyMap::make(SchemeId::kEBR, StructureId::kHMList, options);
  ASSERT_TRUE(map.has_value());
  const unsigned base = map->active_handles();

  auto a = map->session();
  EXPECT_TRUE(static_cast<bool>(a));
  EXPECT_EQ(map->active_handles(), base + 1);

  AnyMap::Session b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(map->active_handles(), base + 1);
  EXPECT_TRUE(b.insert(1, 10));
  EXPECT_TRUE(b.contains(1));

  b.reset();
  EXPECT_FALSE(static_cast<bool>(b));
  EXPECT_EQ(map->active_handles(), base);
  b.reset();  // idempotent
  EXPECT_EQ(map->active_handles(), base);
}

}  // namespace
}  // namespace scot::test
