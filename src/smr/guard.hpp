// API v2: typed, guard-centric protection (DESIGN.md §6).
//
// The v1 contract exposed raw slot indices: data structures called
// `h.protect(src, idx)` / `h.dup(i, j)` and had to maintain the paper's
// ascending-index discipline by hand with `kHp*` constants.  v2 wraps that
// in three small types:
//
//   * `Protected<T>` — a typed view of a pointer (plus its logical-deletion
//     bits) that a protection slot currently covers.  Invariants: it only
//     ever holds a value returned by protect()/publish() on a live guard,
//     and it is dereferenceable until the owning guard ends the operation
//     or the slot it came from is re-protected.
//   * `ProtectionSlot<Handle, T>` — one named protection role of a
//     traversal (curr / prev / first-unsafe / ...).  `dup_from` asserts the
//     ascending-index discipline instead of relying on call-site constants.
//   * `TraversalGuard<Handle>` — RAII owner of one operation: begin_op on
//     construction, end_op on destruction, slot allocation in between, and
//     the funnel for op_valid()/revalidate_op() polling.
//
// Everything here is a zero-cost veneer over the v1 handle calls: slots are
// (handle, index) pairs resolved at compile time, so the per-protect fast
// path (including the PR 3 asymmetric-fence publication) is byte-identical
// to v1.  The v1 calls keep working through HandleCore — v2 does not fork
// the schemes, it renames their call sites.
//
// Obtaining the Handle a TraversalGuard wraps: new code should use
// `auto h = scoped_handle(domain)` (smr/handle_registry.hpp) — RAII
// join/leave against the dynamic handle registry — and construct guards
// from `*h`.  The tid-indexed `domain.handle(tid)` spelling still works but
// pins a registry record forever (deprecated shim).
#pragma once

#include <cassert>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "core/marked_ptr.hpp"
#include "smr/reclaim_node.hpp"

namespace scot {

// Typed view of a protected pointer.  Wraps the raw link-word value
// (`marked_ptr<T>`), so traversal code can still see logical-deletion bits;
// `get()`/`operator->` expose the cleaned pointer.
template <class T>
class Protected {
 public:
  using MP = marked_ptr<T>;

  constexpr Protected() noexcept = default;
  constexpr explicit Protected(MP v) noexcept : v_(v) {}
  constexpr explicit Protected(T* p) noexcept : v_(MP(p)) {}

  T* get() const noexcept { return v_.ptr(); }
  T* operator->() const noexcept { return v_.ptr(); }
  T& operator*() const noexcept { return *v_.ptr(); }
  constexpr explicit operator bool() const noexcept {
    return v_.ptr() != nullptr;
  }

  constexpr bool marked() const noexcept { return v_.marked(); }
  constexpr bool flagged() const noexcept { return v_.flagged(); }
  constexpr bool tagged() const noexcept { return v_.tagged(); }
  constexpr std::uintptr_t bits() const noexcept { return v_.bits(); }

  // The raw marked word, for CAS expected-values and zone validation.  The
  // conversion is implicit on purpose: a Protected *is* a protected link
  // value, and traversals mix the two constantly.
  constexpr MP value() const noexcept { return v_; }
  constexpr operator MP() const noexcept { return v_; }

  friend constexpr bool operator==(Protected a, Protected b) noexcept {
    return a.v_ == b.v_;
  }
  friend constexpr bool operator!=(Protected a, Protected b) noexcept {
    return a.v_ != b.v_;
  }

 private:
  MP v_;
};

// One named protection role, bound to a fixed per-thread slot index for the
// lifetime of an operation.  Copyable (it is just a handle + index); the
// *slot contents* are owned by the handle, exactly as in v1.
template <class Handle, class T>
class ProtectionSlot {
 public:
  ProtectionSlot(Handle& h, unsigned idx) noexcept : h_(&h), idx_(idx) {}

  // Publishes protection for the value currently in `src` and returns it
  // once stable.  `Link` is std::atomic<P> or StableAtomic<P> with
  // P = marked_ptr<T> or T*.  For Hyaline-style schemes the caller must
  // poll guard.valid() before trusting previously protected values.
  template <class Link>
  Protected<T> protect(const Link& src) noexcept {
    return Protected<T>(h_->protect(src, idx_));
  }

  // Non-validating publication for immortal anchors (sentinels that are
  // never retired).  Do NOT use for reclaimable nodes.
  void publish(T* anchor) noexcept { h_->publish(anchor, idx_); }

  // Copies another role's protection into this slot.  SCOT requires all
  // copies to flow toward *higher* indices because retirement scans read
  // slots in ascending order (paper §3.2, DESIGN.md §4) — asserted here
  // instead of at every call site.
  template <class U>
  void dup_from(const ProtectionSlot<Handle, U>& src) noexcept {
    assert(src.index() < idx_ &&
           "SCOT requires ascending-index dup (paper §3.2)");
    h_->dup(src.index(), idx_);
  }

  unsigned index() const noexcept { return idx_; }

 private:
  Handle* h_;
  unsigned idx_;
};

// RAII owner of one SMR operation: brackets begin_op/end_op, allocates
// protection slots in ascending order, and funnels validity polling.
// Supersedes OpGuard (which remains as the v1 compatibility spelling).
template <class Handle>
class TraversalGuard {
 public:
  explicit TraversalGuard(Handle& h) noexcept : h_(&h) { h.begin_op(); }
  ~TraversalGuard() { h_->end_op(); }

  TraversalGuard(const TraversalGuard&) = delete;
  TraversalGuard& operator=(const TraversalGuard&) = delete;

  Handle& handle() noexcept { return *h_; }

  // Allocates the next protection index.  Structures allocate all their
  // roles up front, in the order the ascending-dup discipline needs; the
  // count must stay within SmrConfig::slots_per_thread for slot-based
  // schemes (each structure documents its requirement as kSlotsRequired).
  template <class T>
  ProtectionSlot<Handle, T> slot() noexcept {
    return ProtectionSlot<Handle, T>(*h_, next_index_++);
  }

  // One-shot convenience for code outside the traversal discipline (e.g.
  // protecting a single node): allocates a fresh slot and protects through
  // it.  Each call consumes a new index, so do not use it in loops.
  template <class T, class Link>
  Protected<T> protect(const Link& src) noexcept {
    return slot<T>().protect(src);
  }

  // False when the scheme invalidated the running operation (Hyaline's
  // reservation refresh); the traversal must revalidate() and restart from
  // an anchor before trusting any previously protected value.
  bool valid() const noexcept { return h_->op_valid(); }
  void revalidate() noexcept { h_->revalidate_op(); }

  // Typed allocation/retirement passthroughs, so simple users never touch
  // the handle directly.  alloc() hides the birth-era stamp and the
  // StableAtomic link re-initialisation (DESIGN.md §4); retire() accepts
  // the typed protected view.
  template <class T, class... Args>
  T* alloc(Args&&... args) {
    return h_->template alloc<T>(std::forward<Args>(args)...);
  }
  template <class T>
  void retire(Protected<T> p) {
    h_->retire(p);
  }

  unsigned slots_used() const noexcept { return next_index_; }

 private:
  Handle* h_;
  unsigned next_index_ = 0;
};

}  // namespace scot
